"""Aggregation functions ``S(tau) = f(g_1(...), ..., g_n(...))``.

The paper's Section 2 defines the aggregate score of a combination via an
outer function ``f`` (monotone non-decreasing in every argument) and
per-relation proximity weighting functions ``g_i(score, dist_q, dist_mu)``
(non-decreasing in the score, non-increasing in both distances).  The
centroid ``mu(tau)`` minimises the summed distance to the members.

:class:`EuclideanLogScoring` is the concrete function of paper eq. (2),

    S(tau) = sum_i  w_s ln(sigma_i) - w_q ||x_i - q||^2 - w_mu ||x_i - mu||^2,

for which the tight bound has the closed-form/QP structure of Sec. 3.2.1.
:class:`LinearScoring` replaces ``ln`` with identity (used in Appendix C.2
and convenient when scores may be 0).  :class:`CosineProximityScoring`
implements the cosine-similarity variant the paper lists as future work;
it is supported by the numeric fallback bound.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Sequence

import numpy as np

from repro.core.relation import Combination, RankTuple
from repro.spatial.metrics import cosine_distance, euclidean, geometric_median, mean_centroid

__all__ = [
    "Scoring",
    "QuadraticFormScoring",
    "EuclideanLogScoring",
    "LinearScoring",
    "CosineProximityScoring",
]


class Scoring(ABC):
    """Interface every aggregation function implements.

    Concrete scorings define ``f`` via :meth:`aggregate`, the ``g_i`` via
    :meth:`weighted_score`, the distance ``delta`` via :meth:`distance`
    and the centroid ``mu`` via :meth:`centroid`.
    """

    @abstractmethod
    def aggregate(self, weighted_scores: Sequence[float]) -> float:
        """The outer function ``f`` (monotone non-decreasing)."""

    @abstractmethod
    def weighted_score(self, i: int, score: float, dist_q: float, dist_mu: float) -> float:
        """The proximity weighting function ``g_i``."""

    @abstractmethod
    def distance(self, x: np.ndarray, y: np.ndarray) -> float:
        """The metric ``delta`` used for query and centroid distances."""

    @abstractmethod
    def centroid(self, points: np.ndarray) -> np.ndarray:
        """``mu = arg min_w sum_i delta-cost(x_i, w)`` for this scoring."""

    def score_combination(self, tuples: Sequence[RankTuple], query: np.ndarray) -> float:
        """Aggregate score ``S(tau)`` of a full combination."""
        pts = np.array([t.vector for t in tuples], dtype=float)
        mu = self.centroid(pts)
        weighted = [
            self.weighted_score(
                i,
                t.score,
                self.distance(t.vector, query),
                self.distance(t.vector, mu),
            )
            for i, t in enumerate(tuples)
        ]
        return self.aggregate(weighted)

    def make_combination(
        self, tuples: Sequence[RankTuple], query: np.ndarray
    ) -> Combination:
        """Build a scored :class:`Combination`."""
        return Combination(tuple(tuples), self.score_combination(tuples, query))


class QuadraticFormScoring(Scoring):
    """Base for scorings of the shape

        S(tau) = sum_i  w_s * u(sigma_i) - w_q d(x_i,q)^2 - w_mu d(x_i,mu)^2

    with Euclidean ``d`` and a monotone score transform ``u``.  This is the
    family for which the paper's Section 3.2.1 closed forms apply: the
    tight bound reduces to the 1-D convex QP (14), the unconstrained
    completion has the closed form (11)/(41), and dominance regions are
    half-spaces.

    Subclasses fix ``u`` via :meth:`score_utility`.
    """

    #: Flag the tight-bound machinery keys on to use the QP fast path.
    supports_quadratic_bound = True

    def __init__(self, w_s: float = 1.0, w_q: float = 1.0, w_mu: float = 1.0) -> None:
        if min(w_s, w_q, w_mu) < 0:
            raise ValueError("weights must be non-negative")
        self.w_s = float(w_s)
        self.w_q = float(w_q)
        self.w_mu = float(w_mu)

    @abstractmethod
    def score_utility(self, score: float) -> float:
        """The transform ``u`` applied to raw scores (monotone)."""

    def score_utility_array(self, scores: np.ndarray) -> np.ndarray:
        """Vectorised ``u`` over a score column (columnar hot path).

        The default loops over :meth:`score_utility`; subclasses with a
        numpy-native transform override it.  Shape-preserving.
        """
        arr = np.asarray(scores, dtype=float)
        return np.array(
            [self.score_utility(float(s)) for s in arr.ravel()], dtype=float
        ).reshape(arr.shape)

    def aggregate(self, weighted_scores: Sequence[float]) -> float:
        return float(sum(weighted_scores))

    def weighted_score(self, i: int, score: float, dist_q: float, dist_mu: float) -> float:
        return (
            self.w_s * self.score_utility(score)
            - self.w_q * dist_q * dist_q
            - self.w_mu * dist_mu * dist_mu
        )

    def distance(self, x: np.ndarray, y: np.ndarray) -> float:
        return euclidean(x, y)

    def centroid(self, points: np.ndarray) -> np.ndarray:
        # Minimiser of the summed *squared* Euclidean distances, which is
        # the cost the quadratic form charges (Appendix B.3 expands mu as
        # the arithmetic mean).
        return mean_centroid(points)

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(w_s={self.w_s}, w_q={self.w_q}, w_mu={self.w_mu})"
        )


class EuclideanLogScoring(QuadraticFormScoring):
    """Paper eq. (2): ``u(sigma) = ln(sigma)`` — requires positive scores."""

    def score_utility(self, score: float) -> float:
        if score <= 0.0:
            raise ValueError(
                f"EuclideanLogScoring needs strictly positive scores, got {score}"
            )
        return math.log(score)

    def score_utility_array(self, scores: np.ndarray) -> np.ndarray:
        scores = np.asarray(scores, dtype=float)
        if scores.size and float(scores.min()) <= 0.0:
            raise ValueError(
                "EuclideanLogScoring needs strictly positive scores, got "
                f"{float(scores.min())}"
            )
        return np.log(scores)


class LinearScoring(QuadraticFormScoring):
    """``u(sigma) = sigma`` — the variant used in Appendix C.2."""

    def score_utility(self, score: float) -> float:
        return float(score)

    def score_utility_array(self, scores: np.ndarray) -> np.ndarray:
        return np.asarray(scores, dtype=float)


class CosineProximityScoring(Scoring):
    """Cosine-similarity proximity (the paper's future-work extension).

        g_i(sigma, dq, dm) = w_s * sigma - w_q * dq - w_mu * dm

    with ``delta`` the cosine distance and the centroid the geometric
    median under that geometry (approximated by the normalised mean, the
    standard spherical centroid).  No closed-form tight bound exists; the
    numeric bounding fallback handles it.
    """

    supports_quadratic_bound = False

    def __init__(self, w_s: float = 1.0, w_q: float = 1.0, w_mu: float = 1.0) -> None:
        if min(w_s, w_q, w_mu) < 0:
            raise ValueError("weights must be non-negative")
        self.w_s = float(w_s)
        self.w_q = float(w_q)
        self.w_mu = float(w_mu)

    def aggregate(self, weighted_scores: Sequence[float]) -> float:
        return float(sum(weighted_scores))

    def weighted_score(self, i: int, score: float, dist_q: float, dist_mu: float) -> float:
        return self.w_s * score - self.w_q * dist_q - self.w_mu * dist_mu

    def distance(self, x: np.ndarray, y: np.ndarray) -> float:
        return cosine_distance(x, y)

    def centroid(self, points: np.ndarray) -> np.ndarray:
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        norms = np.linalg.norm(pts, axis=1, keepdims=True)
        norms[norms == 0.0] = 1.0
        mean_dir = (pts / norms).mean(axis=0)
        n = np.linalg.norm(mean_dir)
        if n == 0.0:
            # Antipodal degenerate case: fall back to the Euclidean median.
            return geometric_median(pts)
        return mean_dir / n

    def __repr__(self) -> str:
        return (
            f"CosineProximityScoring(w_s={self.w_s}, w_q={self.w_q}, w_mu={self.w_mu})"
        )
