"""Core library: the proximity rank join problem, the ProxRJ template and
the four evaluated algorithms (CBRR/CBPA/TBRR/TBPA)."""

from repro.core.access import (
    AccessKind,
    DistanceAccess,
    MergeStream,
    ScoreAccess,
    ShardCursor,
    StreamInterrupted,
    open_streams,
)
from repro.core.algorithms import ALGORITHMS, cbpa, cbrr, make_algorithm, tbpa, tbrr
from repro.core.batchscore import CandidatePruner, QuadraticBatchScorer
from repro.core.bounds import ApproxTightBound, CornerBound, TightBound
from repro.core.buffers import TopKBuffer
from repro.core.columnar import ColumnarPrefix
from repro.core.durable import (
    DurableRelation,
    DurableShardBackend,
    EvictedShardEndpoint,
    PagedShardCursor,
    ShardCatalog,
    ShardFile,
    open_relation,
    persist_relation,
)
from repro.core.naive import brute_force_topk
from repro.core.probing import ProbeRankJoin, ProbeRunResult
from repro.core.pulling import PotentialAdaptive, PullingStrategy, RoundRobin
from repro.core.relation import Combination, RankTuple, Relation
from repro.core.storage import (
    EndpointBackend,
    ShardedBackend,
    ShardedRelation,
    SingleShardBackend,
    StorageBackend,
    partition_indices,
)
from repro.core.scoring import (
    CosineProximityScoring,
    EuclideanLogScoring,
    LinearScoring,
    QuadraticFormScoring,
    Scoring,
)
from repro.core.template import ProxRJ, RunResult
from repro.core.tracing import PullEvent, RunTrace, TraceBound

__all__ = [
    "AccessKind",
    "DistanceAccess",
    "MergeStream",
    "ScoreAccess",
    "ShardCursor",
    "StreamInterrupted",
    "EndpointBackend",
    "ShardedBackend",
    "ShardedRelation",
    "SingleShardBackend",
    "StorageBackend",
    "open_streams",
    "partition_indices",
    "ALGORITHMS",
    "cbpa",
    "cbrr",
    "make_algorithm",
    "tbpa",
    "tbrr",
    "ApproxTightBound",
    "CandidatePruner",
    "QuadraticBatchScorer",
    "CornerBound",
    "TightBound",
    "TopKBuffer",
    "ColumnarPrefix",
    "DurableRelation",
    "DurableShardBackend",
    "EvictedShardEndpoint",
    "PagedShardCursor",
    "ShardCatalog",
    "ShardFile",
    "open_relation",
    "persist_relation",
    "brute_force_topk",
    "ProbeRankJoin",
    "ProbeRunResult",
    "PotentialAdaptive",
    "PullingStrategy",
    "RoundRobin",
    "Combination",
    "RankTuple",
    "Relation",
    "CosineProximityScoring",
    "EuclideanLogScoring",
    "LinearScoring",
    "QuadraticFormScoring",
    "Scoring",
    "ProxRJ",
    "RunResult",
    "PullEvent",
    "RunTrace",
    "TraceBound",
]
