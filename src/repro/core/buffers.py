"""The output buffer ``O`` of Algorithm 1: a bounded top-K collection.

Combinations enter as they are formed; the buffer retains the best ``K``
by aggregate score, resolving ties deterministically by the combination's
tuple-id key (the paper requires a tie-breaking criterion for
correctness).
"""

from __future__ import annotations

import heapq
from typing import Iterable, Iterator

from repro.core.relation import Combination

__all__ = ["TopKBuffer"]


class _Entry:
    """Heap entry ordered so the *worst* retained combination is on top.

    ``heapq`` is a min-heap; we order by (score, reversed tie-key) so the
    root is the combination that would be evicted first.  The tie key is
    negated element-wise so that, among equal scores, the combination with
    the *largest* key is considered worst — i.e. smaller keys win ties.
    """

    __slots__ = ("combo", "_k")

    def __init__(self, combo: Combination) -> None:
        self.combo = combo
        self._k = (combo.score, tuple(-t for t in combo.key))

    def __lt__(self, other: "_Entry") -> bool:
        return self._k < other._k


class TopKBuffer:
    """Bounded buffer retaining the top ``K`` combinations."""

    def __init__(self, k: int) -> None:
        if k < 1:
            raise ValueError("K must be >= 1")
        self.k = k
        self._heap: list[_Entry] = []
        self._keys: set[tuple[int, ...]] = set()

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def full(self) -> bool:
        """True once K combinations are retained."""
        return len(self._heap) >= self.k

    @property
    def kth_score(self) -> float:
        """Score of the K-th best combination; ``-inf`` while not full.

        This is the ``min_{omega in O} S(omega)`` of Algorithm 1's
        termination test.
        """
        if not self.full:
            return float("-inf")
        return self._heap[0].combo.score

    def add(self, combo: Combination) -> bool:
        """Offer a combination; returns True if it was retained.

        Duplicate keys (same member tuples) are ignored — the ProxRJ loop
        never forms the same combination twice, but the brute-force oracle
        and user code may feed overlapping batches.
        """
        if combo.key in self._keys:
            return False
        entry = _Entry(combo)
        if not self.full:
            heapq.heappush(self._heap, entry)
            self._keys.add(combo.key)
            return True
        if self._heap[0] < entry:
            evicted = heapq.heapreplace(self._heap, entry)
            self._keys.discard(evicted.combo.key)
            self._keys.add(combo.key)
            return True
        return False

    def add_many(self, combos: Iterable[Combination]) -> int:
        """Offer a batch of combinations, best-first; returns how many
        were retained.

        Semantically identical to calling :meth:`add` per combination,
        but candidates that cannot enter the buffer are rejected with a
        raw ``(score, neg-key)`` comparison against the current worst
        retained entry — no ``_Entry`` construction, and the negated
        tie-key tuple is only built when scores actually tie.  The batch
        scorer feeds its surviving candidates through here.
        """
        heap = self._heap
        k = self.k
        keys = self._keys
        added = 0
        for combo in combos:
            if len(heap) >= k:
                worst = heap[0]._k
                score = combo.score
                if score < worst[0]:
                    continue
                if score == worst[0] and tuple(-t for t in combo.key) <= worst[1]:
                    continue
                if combo.key in keys:
                    continue
                evicted = heapq.heapreplace(heap, _Entry(combo))
                keys.discard(evicted.combo.key)
            else:
                if combo.key in keys:
                    continue
                heapq.heappush(heap, _Entry(combo))
            keys.add(combo.key)
            added += 1
        return added

    def ranked(self) -> list[Combination]:
        """Retained combinations, best first (deterministic order)."""
        return [
            e.combo
            for e in sorted(self._heap, reverse=True)
        ]

    def __iter__(self) -> Iterator[Combination]:
        return iter(self.ranked())
