"""Storage backends: where a relation's tuples physically live.

The paper's model gives every relation exactly one sorted access; the
engine, the bounds and the service were all written against that
assumption.  This module introduces the storage boundary that breaks it
cleanly: a :class:`StorageBackend` owns the physical layout of one
relation's tuples and knows how to open a *monotone access stream* over
them — everything above the boundary (engine loop, batch scorer, bounding
schemes, service) keeps seeing the one-stream-per-relation contract of
Definition 2.1.

Two implementations:

* :class:`SingleShardBackend` — the existing in-memory path: one
  contiguous columnar relation, streams opened directly
  (:class:`~repro.core.access.DistanceAccess` /
  :class:`~repro.core.access.ScoreAccess`).
* :class:`ShardedBackend`, owned by :class:`ShardedRelation` — tuples
  hash- or range-partitioned across ``S`` shard relations, each with its
  own columnar arrays and its own per-query sorted order.  Opening a
  stream sorts every shard *independently* (no global sort ever exists)
  and k-way-merges the per-shard cursors through
  :class:`~repro.core.access.MergeStream`.

Shard invariants the merge relies on (and the differential suite pins):

* **Determinism** — each shard order is sorted by ``(rank, tid)`` with
  the parent's *global* tids, and tids are unique across shards, so the
  merged order is the single-shard order bit for bit (per-tuple ranks are
  row-local computations, unchanged by partitioning).
* **Monotonicity across the merge** — the merged rank sequence is
  non-decreasing (distance) / non-increasing (score), so ``last_distance``
  / ``last_score`` statistics feed the bounding schemes exactly as a
  single sorted stream would.
* **``sigma_max`` max-combination** — the merged stream's score ceiling
  is ``max`` over the shards' ``sigma_max``; shards inherit the parent's
  declared ceiling, so the combined value equals the parent's.

Partitioning is by tuple id (``hash``: multiplicative hashing for an
even, order-destroying spread; ``range``: contiguous blocks, the layout a
range-partitioned store would give), so a relation's partition is stable
across queries and access kinds.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Mapping, Protocol, Sequence, runtime_checkable

import numpy as np

from repro.core.relation import Relation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.access import AccessKind

__all__ = [
    "StorageBackend",
    "SingleShardBackend",
    "ShardedBackend",
    "ShardedRelation",
    "EndpointBackend",
    "partition_indices",
]

#: Knuth's multiplicative hash constant (2^32 / golden ratio), enough to
#: decorrelate shard assignment from tid order without a real hash call.
_HASH_MULT = 2654435761
_HASH_MASK = (1 << 32) - 1

PARTITIONERS = ("hash", "range")


def partition_indices(
    n: int, shards: int, partition: str = "hash"
) -> list[np.ndarray]:
    """Positions ``0..n-1`` split into ``shards`` disjoint index arrays.

    ``hash`` spreads ids via multiplicative hashing (even load in
    expectation, adjacent ids land on different shards); ``range`` cuts
    contiguous blocks of near-equal size.  Every position is assigned to
    exactly one shard.  ``range`` shards are empty only when
    ``shards > n``; ``hash`` shards can come up empty whenever the ids
    hash unevenly (small ``n``), so consumers must count *non-empty*
    shards rather than assume ``shards`` of them.
    """
    if shards < 1:
        raise ValueError("shards must be >= 1")
    if partition not in PARTITIONERS:
        raise ValueError(
            f"unknown partition scheme {partition!r}; choose from {PARTITIONERS}"
        )
    positions = np.arange(n, dtype=np.int64)
    if partition == "hash":
        assignment = ((positions * _HASH_MULT) & _HASH_MASK) % shards
        return [positions[assignment == s] for s in range(shards)]
    bounds = np.linspace(0, n, shards + 1).astype(np.int64)
    return [positions[bounds[s] : bounds[s + 1]] for s in range(shards)]


@runtime_checkable
class StorageBackend(Protocol):
    """The boundary between physical tuple layout and the access layer.

    A backend answers two questions: what shards exist (each one a
    :class:`~repro.core.relation.Relation` carrying the parent's global
    tids), and how to open one monotone access stream over the whole
    relation.  ``open_stream`` must produce a stream whose pull sequence
    is bit-identical to a single sorted access over the union of the
    shards — partitioning is an implementation detail the engine never
    observes.
    """

    relation: Relation

    @property
    def shard_count(self) -> int: ...

    @property
    def shards(self) -> tuple[Relation, ...]: ...

    def open_stream(
        self,
        kind: "AccessKind",
        query: np.ndarray | None = None,
        *,
        metric: Callable[[np.ndarray, np.ndarray], float] | None = None,
        use_index: bool = False,
    ): ...


class SingleShardBackend:
    """The in-memory single-shard path: streams open against the relation
    itself, exactly as before the storage boundary existed."""

    def __init__(self, relation: Relation) -> None:
        self.relation = relation

    @property
    def shard_count(self) -> int:
        return 1

    @property
    def shards(self) -> tuple[Relation, ...]:
        return (self.relation,)

    def open_stream(
        self,
        kind: "AccessKind",
        query: np.ndarray | None = None,
        *,
        metric: Callable[[np.ndarray, np.ndarray], float] | None = None,
        use_index: bool = False,
    ):
        from repro.core.access import AccessKind, DistanceAccess, ScoreAccess

        if kind is AccessKind.DISTANCE:
            if query is None:
                raise ValueError("distance-based access requires a query vector")
            return DistanceAccess(
                self.relation, query, metric=metric, use_index=use_index
            )
        return ScoreAccess(self.relation)

    def __repr__(self) -> str:
        return f"SingleShardBackend({self.relation.name!r})"


class ShardedBackend:
    """Partitioned storage: per-shard sorted orders, merged on access.

    Each shard is sorted independently at stream-open time (the global
    order is never materialised anywhere), and the returned
    :class:`~repro.core.access.MergeStream` k-way-merges the shard
    cursors lazily — only what the engine actually pulls is ever merged.
    ``use_index`` is accepted for interface compatibility but sharded
    access always pre-sorts each shard (a per-shard k-d traversal would
    produce the same stream at strictly more bookkeeping).
    """

    def __init__(self, relation: Relation, shards: Sequence[Relation]) -> None:
        if not shards:
            raise ValueError("need at least one shard")
        self.relation = relation
        self._shards = tuple(shards)

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    @property
    def shards(self) -> tuple[Relation, ...]:
        return self._shards

    def open_stream(
        self,
        kind: "AccessKind",
        query: np.ndarray | None = None,
        *,
        metric: Callable[[np.ndarray, np.ndarray], float] | None = None,
        use_index: bool = False,
    ):
        from repro.core.access import (
            AccessKind,
            DistanceAccess,
            MergeStream,
            ScoreAccess,
        )

        if kind is AccessKind.DISTANCE:
            if query is None:
                raise ValueError("distance-based access requires a query vector")
            inner = [
                DistanceAccess(shard, query, metric=metric)
                for shard in self._shards
                if len(shard)
            ]
        else:
            inner = [ScoreAccess(shard) for shard in self._shards if len(shard)]
        return MergeStream(
            self.relation,
            kind,
            [s.order_cursor() for s in inner],
            sigma_max=max(s.sigma_max for s in self._shards if len(s)),
        )

    def __repr__(self) -> str:
        sizes = [len(s) for s in self._shards]
        return f"ShardedBackend({self.relation.name!r}, shards={sizes})"


class EndpointBackend:
    """Storage backend whose shards are served by *remote* endpoints.

    The physical per-shard orders live behind endpoints (paged fetches,
    simulated or real network latency) rather than in local arrays; a
    ``cursor_factory`` turns ``(kind, query)`` into one merge-ready
    cursor per shard — e.g. the async service's
    :class:`~repro.service.async_service.RemoteShardStream`, whose rows
    arrive via pipelined window fetches.  ``open_stream`` k-way-merges
    those cursors through :class:`~repro.core.access.MergeStream`
    exactly like :class:`ShardedBackend` does for in-memory shards, so
    the engine keeps the one-monotone-stream-per-relation contract and
    remote execution stays bit-identical to local sharded access.

    ``use_index``/``metric`` are accepted for protocol compatibility but
    rejected: a remote endpoint serves exactly one pre-agreed order.
    """

    def __init__(
        self,
        relation: Relation,
        shards: Sequence[Relation],
        cursor_factory: Callable[["AccessKind", np.ndarray | None], Sequence],
        *,
        sigma_max: float | None = None,
    ) -> None:
        if not shards:
            raise ValueError("need at least one shard")
        self.relation = relation
        self._shards = tuple(shards)
        self._cursor_factory = cursor_factory
        self._sigma_max = (
            float(sigma_max) if sigma_max is not None else relation.sigma_max
        )

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    @property
    def shards(self) -> tuple[Relation, ...]:
        return self._shards

    def open_stream(
        self,
        kind: "AccessKind",
        query: np.ndarray | None = None,
        *,
        metric: Callable[[np.ndarray, np.ndarray], float] | None = None,
        use_index: bool = False,
    ):
        from repro.core.access import AccessKind, MergeStream

        if metric is not None or use_index:
            raise ValueError(
                "endpoint-backed storage serves pre-agreed orders only "
                "(no custom metric, no index traversal)"
            )
        if kind is AccessKind.DISTANCE and query is None:
            raise ValueError("distance-based access requires a query vector")
        cursors = list(self._cursor_factory(kind, query))
        if not cursors:
            raise ValueError("cursor_factory produced no shard cursors")
        return MergeStream(
            self.relation, kind, cursors, sigma_max=self._sigma_max
        )

    def __repr__(self) -> str:
        return (
            f"EndpointBackend({self.relation.name!r}, "
            f"shards={self.shard_count})"
        )


class ShardedRelation(Relation):
    """A relation whose tuples are partitioned across ``S`` shards.

    Behaves exactly like :class:`~repro.core.relation.Relation` for every
    consumer that reads it whole (brute-force oracle, experiment harness,
    persistence) — the full columnar arrays still exist and iteration
    yields the same tuples — but its :attr:`storage` backend is a
    :class:`ShardedBackend`, so access streams are opened per shard and
    merged.  Each shard relation shares the parent's name, ``sigma_max``,
    *global* tids and the parent's ``RankTuple`` objects themselves (only
    the per-shard columnar arrays are new allocations), making shard
    tuples indistinguishable from parent tuples — the invariant that
    keeps sharded top-K bit-identical.

    ``shard_count`` counts *non-empty* shards: hash partitioning of a
    small relation (or ``shards > n``) can leave some of the requested
    partitions without tuples, and empty shards are dropped rather than
    materialised.

    Parameters beyond :class:`Relation`'s:

    shards:
        Number of partitions ``S`` (>= 1).
    partition:
        ``"hash"`` (default) or ``"range"``; see :func:`partition_indices`.
    """

    def __init__(
        self,
        name: str,
        scores: Sequence[float],
        vectors: np.ndarray,
        *,
        attrs: Sequence[Mapping[str, Any]] | None = None,
        sigma_max: float | None = None,
        tids: Sequence[int] | None = None,
        shards: int = 1,
        partition: str = "hash",
    ) -> None:
        super().__init__(
            name, scores, vectors, attrs=attrs, sigma_max=sigma_max, tids=tids
        )
        self.partition = partition
        parts = partition_indices(len(self), shards, partition)
        tuples = list(self)
        self._shard_relations = tuple(
            Relation._from_rows(
                name,
                self.scores[idx],
                self.vectors[idx],
                self.tids[idx],
                [tuples[i] for i in idx.tolist()],
                self.sigma_max,
            )
            for idx in parts
            if len(idx)
        )

    @property
    def shard_count(self) -> int:
        return len(self._shard_relations)

    @property
    def storage(self) -> ShardedBackend:
        return ShardedBackend(self, self._shard_relations)

    @classmethod
    def from_relation(
        cls, relation: Relation, *, shards: int, partition: str = "hash"
    ) -> "ShardedRelation":
        """Re-partition an existing relation across ``shards`` shards,
        preserving its tids (explicit or default) and attrs."""
        return cls(
            relation.name,
            relation.scores,
            relation.vectors,
            attrs=[t.attrs for t in relation],
            sigma_max=relation.sigma_max,
            tids=relation.tids,
            shards=shards,
            partition=partition,
        )

    def __repr__(self) -> str:
        return (
            f"ShardedRelation({self.name!r}, n={len(self)}, d={self.dim}, "
            f"shards={self.shard_count}, partition={self.partition!r})"
        )
