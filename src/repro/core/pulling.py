"""Pulling strategies (the ``PS`` of the ProxRJ template, Section 3.3).

``RoundRobin`` cycles through the relations; ``PotentialAdaptive`` pulls
the relation with the highest potential ``pot_i`` — the bound on
combinations that could still be improved by an unseen tuple of ``R_i`` —
breaking ties in favour of the least depth, then the least index
(Theorem 3.5's tie-breaking, required for the never-worse-than-round-robin
guarantee).
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.core.bounds.base import BoundingScheme, EngineState

__all__ = ["PullingStrategy", "RoundRobin", "PotentialAdaptive"]


class PullingStrategy(ABC):
    """The ``PS`` interface of Algorithm 1."""

    @abstractmethod
    def choose_input(self, state: EngineState, bound: BoundingScheme) -> int:
        """Index of the next relation to access.

        Should return an unexhausted relation; the engine guarantees at
        least one exists when this is called.  Strategies that return an
        exhausted relation anyway are tolerated: the engine re-chooses
        the first unexhausted stream in one central place, so termination
        and ``max_pulls`` accounting cannot be subverted.

        In block-pull mode (``pull_block > 1``) the engine consults the
        strategy once per *block*, not once per tuple.
        """

    def reset(self) -> None:
        """Clear any per-run state (engines call this before a run)."""


class RoundRobin(PullingStrategy):
    """Cycle ``R_1, ..., R_n``, skipping exhausted relations."""

    def __init__(self) -> None:
        self._next = 0

    def reset(self) -> None:
        self._next = 0

    def choose_input(self, state: EngineState, bound: BoundingScheme) -> int:
        n = state.n
        for offset in range(n):
            i = (self._next + offset) % n
            if not state.streams[i].exhausted:
                self._next = (i + 1) % n
                return i
        raise RuntimeError("all relations are exhausted")


class PotentialAdaptive(PullingStrategy):
    """Pull the relation with maximal potential (Section 3.3).

    With the corner bound this reproduces HRJN*'s adaptive strategy (the
    potential of ``R_i`` is the corner term ``t_i``); with the tight bound
    the potential is ``max{t_M | i not in M}``.
    """

    def choose_input(self, state: EngineState, bound: BoundingScheme) -> int:
        pots = bound.potentials(state)
        best_i = -1
        best_key: tuple[float, int, int] | None = None
        for i, stream in enumerate(state.streams):
            if stream.exhausted:
                continue
            # Maximise potential; break ties by least depth, then least
            # index.  Encode as a sort key (higher is better).
            key = (pots[i], -stream.depth, -i)
            if best_key is None or key > best_key:
                best_key = key
                best_i = i
        if best_i < 0:
            raise RuntimeError("all relations are exhausted")
        return best_i
