"""The ProxRJ template (Algorithm 1) and its run instrumentation.

The engine pulls tuples from the access streams, forms every new
combination the pulls enable (line 6 of Algorithm 1: a cross product
against the seen prefixes of the other relations), keeps the best ``K`` in
the output buffer, and stops as soon as the buffer is full *and* its K-th
score strictly exceeds the bounding scheme's upper bound on unseen
combinations (strict so that boundary *ties* are certified too — see the
comment on the stopping rule in :meth:`ProxRJ.run`).

Two execution modes share the loop:

* **Per-tuple** (``pull_block=1``, the paper's Algorithm 1): one tuple per
  iteration, one bound refresh per ``bound_period`` pulls.
* **Block pull** (``pull_block=B > 1``): up to ``B`` tuples are pulled
  from the chosen relation per iteration, their enabled cross products are
  scored in one vectorised pass, and the bound is refreshed once per
  block.  For the quadratic scoring family a
  :class:`~repro.core.batchscore.CandidatePruner` additionally skips any
  block whose best possible aggregate score cannot beat the current K-th
  score.  Completed runs return the *same ranked top-K* as the per-tuple
  mode (the buffer's retained set depends only on the deterministic
  (score, tuple-id) order, never on insertion order); only the pull
  schedule — and hence ``sum_depths`` — may differ.

For quadratic scorings over streams with a columnar prefix (every
built-in stream) both modes run **columnar**: the loop hands the batch
scorer (stream, start, stop) access-position ranges instead of tuple
lists, so scoring is broadcasting over cached prefix slabs and block
admission reads running prefix maxima in O(1) — see
:mod:`repro.core.batchscore`.  ``vectorise=False`` forces the
object-per-tuple reference path (used by the differential suite to pit
the two implementations against each other).

Correctness requires only that the bound is a correct upper bound;
strategies *should* return unexhausted relations, but the engine
tolerates misbehaving ones by re-choosing the first unexhausted stream
(so ``max_pulls`` and termination guarantees cannot be bypassed).
Optimality additionally needs a tight bound (Theorems 3.2/3.3).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from repro.core.access import AccessKind, StreamInterrupted, open_streams
from repro.core.batchscore import CandidatePruner, QuadraticBatchScorer
from repro.core.bounds.base import INFINITY, BoundingScheme, EngineState
from repro.core.bounds.workspace import BoundWorkspace
from repro.core.buffers import TopKBuffer
from repro.core.pulling import PullingStrategy
from repro.core.relation import Combination, RankTuple, Relation
from repro.core.scoring import QuadraticFormScoring, Scoring

__all__ = ["ProxRJ", "RunResult"]


@dataclass
class RunResult:
    """Outcome of one ProxRJ run.

    Attributes
    ----------
    combinations:
        The top-K combinations, best first.
    depths:
        Tuples pulled per relation (``depth(A, I, i)``).
    bound:
        Final value of the upper bound when the loop stopped.
    total_seconds:
        Wall-clock time of the engine loop only: pulling, combination
        formation/scoring and bound updates.  Stream setup — opening the
        access streams or calling ``stream_factory``, which is where
        pre-sorting and index building happen — is excluded, matching the
        paper's convention of excluding data generation and tuple-fetch
        preparation from CPU time.
    bound_seconds / dominance_seconds:
        Shares of ``total_seconds`` spent in updateBound and in the
        dominance test (the lighter stacked bars of Figure 3).
    solver_seconds:
        Wall-clock inside the LP/QP solver kernels proper — a sub-share
        of ``bound_seconds + dominance_seconds`` that isolates what the
        batched bound kernel can win back from pure bookkeeping.
    combinations_formed:
        How many candidate combinations were materialised and scored (the
        dominant CPU cost of corner-bound algorithms at high depth).
    counters:
        Raw bounding-scheme counters (QP/LP solve counts etc.).
    completed:
        False when the run was cut off — by ``max_pulls``, by the
        ``should_stop`` hook (deadlines/cancellation), or by a stream
        raising :class:`~repro.core.access.StreamInterrupted` — before
        the stopping condition held; the reported top-K is then only the
        best of what was read (used to reproduce the paper's "CBPA did
        not finish within five minutes" n=4 data point).
    """

    combinations: list[Combination]
    depths: list[int]
    bound: float
    total_seconds: float
    bound_seconds: float
    dominance_seconds: float
    combinations_formed: int
    counters: dict[str, float] = field(default_factory=dict)
    completed: bool = True
    solver_seconds: float = 0.0

    @property
    def sum_depths(self) -> int:
        """The paper's primary I/O cost metric."""
        return int(sum(self.depths))

    @property
    def certified_count(self) -> int:
        """How many leading combinations are *certified* final.

        A combination scoring strictly above the final bound cannot be
        displaced by any unseen combination, so the first
        ``certified_count`` entries of ``combinations`` are exactly what
        a completed run would also return.  Completed runs certify all
        ``K``; cut-off runs (deadline, ``max_pulls``) certify the prefix
        whose scores beat the bound at cut-off time — a *certified
        partial top-K*, never a corrupt one.
        """
        return sum(1 for c in self.combinations if c.score > self.bound)


class ProxRJ:
    """Algorithm 1, parameterised by bounding scheme and pulling strategy.

    Parameters
    ----------
    relations:
        The ``n`` input relations.
    scoring:
        Aggregation function (Section 2).
    kind:
        Access kind: distance-based or score-based.
    query:
        The query vector ``q``.  Required for both access kinds (the
        aggregation function depends on it even under score access).
    bound / pull:
        The ``BS`` and ``PS`` of the template.
    k:
        Number of results.
    bound_period:
        Recompute the bound only every this many pulls (>= 1).  A stale
        bound is still a *correct* (if looser) upper bound — bounds only
        decrease as accesses accumulate — so correctness is preserved;
        the paper suggests this as the practical-systems trade-off.
    pull_block:
        Tuples pulled per chosen relation per loop iteration (>= 1).
        ``1`` is the paper's per-tuple Algorithm 1; larger blocks
        amortise strategy calls and bound updates over the block and let
        the vectorised scorer work on bigger batches.  Completed runs
        return the same ranked top-K regardless of the block size; I/O
        (``sum_depths``) may grow by up to ``pull_block - 1`` per
        relation versus per-tuple pulling.
    use_index:
        Serve distance-based access through the k-d tree instead of
        pre-sorting.
    vectorise:
        Use the columnar batch scorer when the scoring supports it
        (default).  ``False`` forces the scalar object-per-tuple path —
        the reference implementation the differential tests compare
        against; completed runs are bit-identical either way.
    stream_factory:
        Optional callable returning one access stream per relation (e.g.
        :func:`repro.service.make_service_streams` partial); overrides
        the default local streams.  Streams must match ``kind``.
    should_stop:
        Optional zero-argument callable checked once per loop iteration
        (before the pull).  Returning True ends the run early with
        ``completed=False`` — the deadline/cancellation hook of the
        async serving layer.  Streams may additionally raise
        :class:`~repro.core.access.StreamInterrupted` from inside a pull
        (e.g. a deadline expiring while remote rows are in flight),
        which the loop converts into the same early stop; either way the
        result is a certified partial: current top-K plus the bound in
        force when the run stopped.
    """

    def __init__(
        self,
        relations: list[Relation],
        scoring: Scoring,
        *,
        kind: AccessKind,
        query: np.ndarray,
        bound: BoundingScheme,
        pull: PullingStrategy,
        k: int,
        bound_period: int = 1,
        pull_block: int = 1,
        use_index: bool = False,
        vectorise: bool = True,
        stream_factory=None,
        max_pulls: int | None = None,
        should_stop: Callable[[], bool] | None = None,
    ) -> None:
        if not relations:
            raise ValueError("need at least one relation")
        if k < 1:
            raise ValueError("K must be >= 1")
        if bound_period < 1:
            raise ValueError("bound_period must be >= 1")
        if pull_block < 1:
            raise ValueError("pull_block must be >= 1")
        if max_pulls is not None and max_pulls < 1:
            raise ValueError("max_pulls must be >= 1 (or None)")
        dims = {r.dim for r in relations}
        if len(dims) != 1:
            raise ValueError(f"relations disagree on dimensionality: {sorted(dims)}")
        names = [r.name for r in relations]
        if len(set(names)) != len(names):
            raise ValueError(f"relation names must be unique, got {names}")
        self.relations = relations
        self.scoring = scoring
        self.kind = kind
        self.query = np.asarray(query, dtype=float)
        self.bound = bound
        self.pull = pull
        self.k = k
        self.bound_period = bound_period
        self.pull_block = pull_block
        self.use_index = use_index
        self.vectorise = vectorise
        self.stream_factory = stream_factory
        self.max_pulls = max_pulls
        self.should_stop = should_stop

    def run(self) -> RunResult:
        """Execute Algorithm 1 and return the instrumented result."""
        if self.stream_factory is not None:
            streams = self.stream_factory()
            if len(streams) != len(self.relations):
                raise ValueError(
                    f"stream_factory returned {len(streams)} streams for "
                    f"{len(self.relations)} relations"
                )
        else:
            streams = open_streams(
                self.relations, self.kind, self.query, use_index=self.use_index
            )
        # One scratch arena per run, shared by the bound stack (gathered
        # batch-kernel slabs, potentials memo) and the batch scorer's
        # candidate sieve; see repro.core.bounds.workspace.
        workspace = BoundWorkspace()
        state = EngineState(
            scoring=self.scoring,
            kind=self.kind,
            query=self.query,
            streams=streams,
            k=self.k,
            output=TopKBuffer(self.k),
            workspace=workspace,
        )
        self.pull.reset()
        batch_scorer = (
            QuadraticBatchScorer(self.scoring, self.query, workspace=workspace)
            if self.vectorise and isinstance(self.scoring, QuadraticFormScoring)
            else None
        )
        # Columnar fast path: every built-in stream exposes a prefix in
        # access order, so the scorer works on (stream, start, stop)
        # ranges over cached slabs.  Duck-typed streams without one fall
        # back to tuple-list pools.
        columnar = batch_scorer is not None and batch_scorer.bind_streams(streams)
        # Block mode prunes hopeless blocks before scoring them; per-tuple
        # mode keeps the paper's exact work profile (the scorer's own
        # admission filter already handles single pulls).
        pruner = (
            CandidatePruner(batch_scorer)
            if batch_scorer is not None and self.pull_block > 1
            else None
        )
        # The timer starts *after* stream setup: opening streams pre-sorts
        # or builds indexes, which RunResult.total_seconds documents as
        # excluded (tuple-fetch preparation, not engine work).
        start = time.perf_counter()
        t = INFINITY
        pulls = 0
        pulls_at_bound = 0
        combos_formed = 0
        completed = True

        # Stopping rule: the paper's Algorithm 1 stops at kth >= t, which
        # certifies the top-K *scores* but lets an unseen combination tie
        # the K-th score — and ties resolve by tuple id, so the retained
        # representative would depend on the pull schedule (and hence on
        # pull_block).  We certify strictly (continue while kth <= t): at
        # termination every unseen combination scores strictly below the
        # K-th score, making the ranked top-K — tie-breaks included — a
        # pure function of the data, bit-identical across block sizes,
        # strategies and the brute-force oracle.  For continuous scores
        # the equality case has probability zero, so the I/O cost of the
        # stricter rule is confined to genuinely tied data.
        while len(state.output) < self.k or state.output.kth_score <= t:
            if all(s.exhausted for s in streams):
                break  # the cross product is fully enumerated
            if self.max_pulls is not None and pulls >= self.max_pulls:
                completed = False
                break
            if self.should_stop is not None and self.should_stop():
                completed = False
                break
            i = self.pull.choose_input(state, self.bound)
            if streams[i].exhausted:
                # A misbehaving strategy returned an exhausted stream.
                # Re-choose here — the single place exhaustion is skipped —
                # so the loop always makes progress and max_pulls cannot
                # be bypassed by repeated no-op pulls.
                i = next(j for j, s in enumerate(streams) if not s.exhausted)
            budget = self.pull_block
            if self.max_pulls is not None:
                budget = min(budget, self.max_pulls - pulls)
            try:
                block = self._pull_from(streams[i], budget)
            except StreamInterrupted:
                completed = False
                break
            if not block:
                # The stream only discovered its exhaustion on this pull
                # (e.g. a remote service returning an empty page); it now
                # reports exhausted, so the next iteration skips it.
                continue
            pulls += len(block)

            # Line 6-7: form combinations P_1 x ... x B_i x ... x P_n,
            # the cross product of the pulled block against the other
            # relations' seen prefixes, in one vectorised pass.
            if columnar:
                depth_i = streams[i].depth
                ranges = [
                    (i, depth_i - len(block), depth_i)
                    if j == i
                    else (j, 0, streams[j].depth)
                    for j in range(state.n)
                ]
                if pruner is None or pruner.admit_ranges(
                    ranges, state.output.kth_score
                ):
                    combos_formed += batch_scorer.add_cross_ranges(
                        ranges, state.output
                    )
            else:
                pools = [
                    block if j == i else streams[j].seen for j in range(state.n)
                ]
                if batch_scorer is not None:
                    if pruner is None or pruner.admit(
                        pools, state.output.kth_score
                    ):
                        combos_formed += batch_scorer.add_cross_product(
                            pools, state.output
                        )
                else:
                    combos_formed += self._form_combinations(state, pools)

            # Line 9: refresh the bound, once per block at most.  With
            # bound_period > 1 (or blocks) the stale t is reused between
            # refreshes — bounds only decrease as accesses accumulate, so
            # a stale t is a correct (looser) upper bound; schemes
            # synchronise against the streams, so skipped pulls are
            # absorbed by the next update.
            if pulls - pulls_at_bound >= self.bound_period or all(
                s.exhausted for s in streams
            ):
                t = self.bound.update(state, i, block[-1])
                pulls_at_bound = pulls

        total = time.perf_counter() - start
        counters = self.bound.counters
        counter_dict = counters.as_dict()
        if pruner is not None:
            counter_dict.update(pruner.as_dict())
        return RunResult(
            combinations=state.output.ranked(),
            depths=state.depths(),
            bound=t,
            total_seconds=total,
            bound_seconds=counters.bound_seconds,
            dominance_seconds=counters.dominance_seconds,
            combinations_formed=combos_formed,
            counters=counter_dict,
            completed=completed,
            solver_seconds=counters.solver_seconds,
        )

    @staticmethod
    def _pull_from(stream, budget: int) -> list[RankTuple]:
        """Pull up to ``budget`` tuples, via the stream's block API when
        available (custom streams may only implement ``next``)."""
        next_block = getattr(stream, "next_block", None)
        if next_block is not None:
            return next_block(budget)
        block: list[RankTuple] = []
        for _ in range(budget):
            tau = stream.next()
            if tau is None:
                break
            block.append(tau)
        return block

    def _form_combinations(self, state: EngineState, pools: list[list]) -> int:
        """Materialise and score the cross product of ``pools``."""
        if any(not pool for pool in pools):
            return 0
        scoring = self.scoring
        query = self.query
        output = state.output
        count = 0
        # Iterative odometer over the pools (cheaper than itertools.product
        # plus per-item function calls for the hot n=2/3 cases).
        idx = [0] * len(pools)
        sizes = [len(p) for p in pools]
        while True:
            tuples = tuple(pools[j][idx[j]] for j in range(len(pools)))
            output.add(scoring.make_combination(tuples, query))
            count += 1
            j = len(pools) - 1
            while j >= 0:
                idx[j] += 1
                if idx[j] < sizes[j]:
                    break
                idx[j] = 0
                j -= 1
            if j < 0:
                break
        return count
