"""The ProxRJ template (Algorithm 1) and its run instrumentation.

The engine pulls tuples one at a time from the access streams, forms every
new combination the pull enables (line 6 of Algorithm 1: a cross product
against the seen prefixes of the other relations), keeps the best ``K`` in
the output buffer, and stops as soon as the buffer is full *and* its K-th
score is at least the bounding scheme's upper bound on unseen
combinations.

Correctness requires only that the bound is a correct upper bound and the
strategy returns unexhausted relations; optimality additionally needs a
tight bound (Theorems 3.2/3.3).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.access import AccessKind, open_streams
from repro.core.batchscore import QuadraticBatchScorer
from repro.core.bounds.base import INFINITY, BoundingScheme, EngineState
from repro.core.buffers import TopKBuffer
from repro.core.pulling import PullingStrategy
from repro.core.relation import Combination, Relation
from repro.core.scoring import QuadraticFormScoring, Scoring

__all__ = ["ProxRJ", "RunResult"]


@dataclass
class RunResult:
    """Outcome of one ProxRJ run.

    Attributes
    ----------
    combinations:
        The top-K combinations, best first.
    depths:
        Tuples pulled per relation (``depth(A, I, i)``).
    bound:
        Final value of the upper bound when the loop stopped.
    total_seconds:
        Wall-clock CPU time of the run (excludes data generation, as in
        the paper, which excludes tuple-fetch time).
    bound_seconds / dominance_seconds:
        Shares of ``total_seconds`` spent in updateBound and in the
        dominance test (the lighter stacked bars of Figure 3).
    combinations_formed:
        How many candidate combinations were materialised and scored (the
        dominant CPU cost of corner-bound algorithms at high depth).
    counters:
        Raw bounding-scheme counters (QP/LP solve counts etc.).
    completed:
        False when the run was cut off by ``max_pulls`` before the
        stopping condition held; the reported top-K is then only the best
        of what was read (used to reproduce the paper's "CBPA did not
        finish within five minutes" n=4 data point).
    """

    combinations: list[Combination]
    depths: list[int]
    bound: float
    total_seconds: float
    bound_seconds: float
    dominance_seconds: float
    combinations_formed: int
    counters: dict[str, float] = field(default_factory=dict)
    completed: bool = True

    @property
    def sum_depths(self) -> int:
        """The paper's primary I/O cost metric."""
        return int(sum(self.depths))


class ProxRJ:
    """Algorithm 1, parameterised by bounding scheme and pulling strategy.

    Parameters
    ----------
    relations:
        The ``n`` input relations.
    scoring:
        Aggregation function (Section 2).
    kind:
        Access kind: distance-based or score-based.
    query:
        The query vector ``q``.  Required for both access kinds (the
        aggregation function depends on it even under score access).
    bound / pull:
        The ``BS`` and ``PS`` of the template.
    k:
        Number of results.
    bound_period:
        Recompute the bound only every this many pulls (>= 1).  A stale
        bound is still a *correct* (if looser) upper bound — bounds only
        decrease as accesses accumulate — so correctness is preserved;
        the paper suggests this as the practical-systems trade-off.
    use_index:
        Serve distance-based access through the k-d tree instead of
        pre-sorting.
    stream_factory:
        Optional callable returning one access stream per relation (e.g.
        :func:`repro.service.make_service_streams` partial); overrides
        the default local streams.  Streams must match ``kind``.
    """

    def __init__(
        self,
        relations: list[Relation],
        scoring: Scoring,
        *,
        kind: AccessKind,
        query: np.ndarray,
        bound: BoundingScheme,
        pull: PullingStrategy,
        k: int,
        bound_period: int = 1,
        use_index: bool = False,
        stream_factory=None,
        max_pulls: int | None = None,
    ) -> None:
        if not relations:
            raise ValueError("need at least one relation")
        if k < 1:
            raise ValueError("K must be >= 1")
        if bound_period < 1:
            raise ValueError("bound_period must be >= 1")
        if max_pulls is not None and max_pulls < 1:
            raise ValueError("max_pulls must be >= 1 (or None)")
        dims = {r.dim for r in relations}
        if len(dims) != 1:
            raise ValueError(f"relations disagree on dimensionality: {sorted(dims)}")
        names = [r.name for r in relations]
        if len(set(names)) != len(names):
            raise ValueError(f"relation names must be unique, got {names}")
        self.relations = relations
        self.scoring = scoring
        self.kind = kind
        self.query = np.asarray(query, dtype=float)
        self.bound = bound
        self.pull = pull
        self.k = k
        self.bound_period = bound_period
        self.use_index = use_index
        self.stream_factory = stream_factory
        self.max_pulls = max_pulls

    def run(self) -> RunResult:
        """Execute Algorithm 1 and return the instrumented result."""
        start = time.perf_counter()
        if self.stream_factory is not None:
            streams = self.stream_factory()
            if len(streams) != len(self.relations):
                raise ValueError(
                    f"stream_factory returned {len(streams)} streams for "
                    f"{len(self.relations)} relations"
                )
        else:
            streams = open_streams(
                self.relations, self.kind, self.query, use_index=self.use_index
            )
        state = EngineState(
            scoring=self.scoring,
            kind=self.kind,
            query=self.query,
            streams=streams,
            k=self.k,
            output=TopKBuffer(self.k),
        )
        self.pull.reset()
        batch_scorer = (
            QuadraticBatchScorer(self.scoring, self.query)
            if isinstance(self.scoring, QuadraticFormScoring)
            else None
        )
        t = INFINITY
        pulls = 0
        combos_formed = 0
        completed = True

        while len(state.output) < self.k or state.output.kth_score < t:
            if all(s.exhausted for s in streams):
                break  # the cross product is fully enumerated
            if self.max_pulls is not None and pulls >= self.max_pulls:
                completed = False
                break
            i = self.pull.choose_input(state, self.bound)
            tau = streams[i].next()
            if tau is None:  # pragma: no cover - strategies skip exhausted
                continue
            pulls += 1

            # Line 6-7: form combinations P_1 x ... x {tau} x ... x P_n.
            pools = [
                [tau] if j == i else streams[j].seen for j in range(state.n)
            ]
            if batch_scorer is not None:
                combos_formed += batch_scorer.add_cross_product(pools, state.output)
            else:
                combos_formed += self._form_combinations(state, pools)

            # Line 9: refresh the bound.  With bound_period > 1 the stale t
            # is reused between refreshes — bounds only decrease as
            # accesses accumulate, so a stale t is a correct (looser)
            # upper bound; schemes synchronise against the streams, so
            # skipped pulls are absorbed by the next update.
            if pulls % self.bound_period == 0 or all(s.exhausted for s in streams):
                t = self.bound.update(state, i, tau)

        total = time.perf_counter() - start
        counters = self.bound.counters
        return RunResult(
            combinations=state.output.ranked(),
            depths=state.depths(),
            bound=t,
            total_seconds=total,
            bound_seconds=counters.bound_seconds,
            dominance_seconds=counters.dominance_seconds,
            combinations_formed=combos_formed,
            counters=counters.as_dict(),
            completed=completed,
        )

    def _form_combinations(self, state: EngineState, pools: list[list]) -> int:
        """Materialise and score the cross product of ``pools``."""
        if any(not pool for pool in pools):
            return 0
        scoring = self.scoring
        query = self.query
        output = state.output
        count = 0
        # Iterative odometer over the pools (cheaper than itertools.product
        # plus per-item function calls for the hot n=2/3 cases).
        idx = [0] * len(pools)
        sizes = [len(p) for p in pools]
        while True:
            tuples = tuple(pools[j][idx[j]] for j in range(len(pools)))
            output.add(scoring.make_combination(tuples, query))
            count += 1
            j = len(pools) - 1
            while j >= 0:
                idx[j] += 1
                if idx[j] < sizes[j]:
                    break
                idx[j] = 0
                j -= 1
            if j < 0:
                break
        return count
