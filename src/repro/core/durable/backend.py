"""The durable storage backend: memmap shards + catalog behind the
storage boundary.

Everything above :class:`~repro.core.storage.StorageBackend` keeps the
one-monotone-stream-per-relation contract; this module adds the tier
*below* it:

* :func:`persist_relation` writes a relation (single-shard or sharded)
  as one immutable columnar file per shard plus one catalog transaction
  flipping the relation to the new generation;
* :class:`DurableRelation` (``Relation.open``) re-opens a persisted
  relation: shard files are memory-mapped, shard ``Relation`` objects
  materialise lazily as zero-copy views over the maps, and the parent's
  full columnar arrays are only scatter-reconstructed when a
  whole-relation reader (oracle, CSV export) actually asks;
* :class:`DurableShardBackend` is the relation's storage backend *and*
  tier manager: a shard is **hot** (a lazy-tuple ``Relation`` over the
  memmap feeds the ordinary sorted-access path, bit-identical to
  in-memory) or **evicted** (no whole-column access — its persisted
  order is served window by window from the memmap through
  :class:`EvictedShardEndpoint`, the same offset-addressed window API
  :class:`~repro.service.simulation.RemoteShardEndpoint` defines, so
  the merge/engine layers run unchanged).  An optional ``memory_budget``
  evicts least-recently-touched shards as others are made hot.

Bit-identity across tiers rests on two facts: the shard files store the
exact float64/int64 bytes of the in-memory columns, and every rank
computation is row-local (chunked distance evaluation over the memmap
produces the same per-row values as the one-shot in-memory evaluation),
so the ``(rank, tid)`` lexsorts — and therefore every stream, bound and
top-K — coincide bit for bit.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Mapping, Sequence

import numpy as np

from repro.core.durable.catalog import CATALOG_FILENAME, ShardCatalog
from repro.core.durable.shardfile import ShardFile, write_shard_file
from repro.core.relation import RankTuple, Relation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.access import AccessKind

__all__ = [
    "DurableRelation",
    "DurableShardBackend",
    "DurableOrder",
    "EvictedShardEndpoint",
    "PagedShardCursor",
    "LazyTuples",
    "persist_relation",
    "open_relation",
]

SHARD_DIRNAME = "shards"

#: Rows per chunk when computing ranks over an evicted shard's memmap —
#: bounds transient residency during the one pass a new order needs.
_SCAN_CHUNK = 4096

#: Default rows per window an evicted shard serves (and the paged
#: cursor's read-ahead quantum).
_PAGE_ROWS = 256


class LazyTuples(Sequence):
    """Aligned-columns view that materialises ``RankTuple`` rows on
    demand (and caches them).

    Hot durable shards and warm-loaded cached orders carry millions of
    rows the engine will mostly never touch as Python objects; this
    sequence keeps the object layer pay-as-you-go while satisfying every
    list-shaped consumer (len, indexing, slicing, iteration).
    """

    __slots__ = ("name", "_scores", "_vectors", "_tids", "_attrs", "_cache")

    def __init__(
        self,
        name: str,
        scores: np.ndarray,
        vectors: np.ndarray,
        tids: np.ndarray,
        attrs: Sequence[Mapping[str, Any]] | None = None,
    ) -> None:
        self.name = name
        self._scores = scores
        self._vectors = vectors
        self._tids = tids
        self._attrs = attrs
        self._cache: list[RankTuple | None] = [None] * len(scores)

    def __len__(self) -> int:
        return len(self._cache)

    def _make(self, i: int) -> RankTuple:
        tup = self._cache[i]
        if tup is None:
            tup = RankTuple(
                relation=self.name,
                tid=int(self._tids[i]),
                score=float(self._scores[i]),
                vector=self._vectors[i],
                attrs=dict(self._attrs[i]) if self._attrs is not None else {},
            )
            self._cache[i] = tup
        return tup

    def __getitem__(self, i):
        if isinstance(i, slice):
            return [self._make(j) for j in range(*i.indices(len(self._cache)))]
        return self._make(int(i))


class DurableOrder:
    """One shard's persisted access order, gathered for replay: the
    ordered columnar arrays, the rank column, the permutation that
    produced them and a lazy tuple view — everything a
    :class:`~repro.service.rankjoin.CachedOrder` needs, with zero
    re-sorting."""

    __slots__ = ("tuples", "ranks", "vectors", "scores", "tids", "positions", "sigma_max")

    def __init__(self, handle: "ShardHandle", perm: np.ndarray, ranks: np.ndarray) -> None:
        file = handle.file
        self.positions = perm
        self.ranks = ranks
        self.vectors = np.asarray(file.vectors[perm], dtype=float)
        self.scores = np.asarray(file.scores[perm], dtype=float)
        self.tids = np.asarray(file.tids[perm], dtype=np.int64)
        attrs = file.attrs
        self.tuples = LazyTuples(
            file.relation,
            self.scores,
            self.vectors,
            self.tids,
            attrs=[attrs[int(p)] for p in perm] if attrs is not None else None,
        )
        self.sigma_max = file.sigma_max


class EvictedShardEndpoint:
    """Window API over an evicted shard's persisted order.

    The disk-tier twin of :class:`~repro.service.simulation.
    RemoteShardEndpoint`: the same offset-addressed
    ``fetch_window(start, limit)`` contract and meters, but windows are
    gathered straight from the shard file's memmap — only the rows a
    window touches are ever read, so a shard streams back page by page
    without the whole column becoming resident.  No latency model: disk
    pages cost what the OS charges.
    """

    def __init__(
        self,
        handle: "ShardHandle",
        perm: np.ndarray,
        ranks: np.ndarray,
        *,
        page_size: int = _PAGE_ROWS,
    ) -> None:
        if page_size < 1:
            raise ValueError("page_size must be >= 1")
        self._handle = handle
        self._perm = perm
        self._ranks = ranks
        self.name = handle.file.relation
        self.shard_index = handle.index
        self.page_size = page_size
        self.windows = 0
        self.pages = 0
        self.tuples_served = 0

    @property
    def total(self) -> int:
        return len(self._ranks)

    def fetch_window(
        self, start: int, limit: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, list[RankTuple]]:
        """Rows ``[start, start + limit)`` of the persisted order,
        clamped to the end: ``(ranks, tids, vectors, scores, tuples)``."""
        if start < 0 or limit < 0:
            raise ValueError("start and limit must be non-negative")
        hi = min(start + limit, self.total)
        lo = min(start, hi)
        rows = self._perm[lo:hi]
        file = self._handle.file
        vectors = np.asarray(file.vectors[rows], dtype=float)
        scores = np.asarray(file.scores[rows], dtype=float)
        tids = np.asarray(file.tids[rows], dtype=np.int64)
        ranks = self._ranks[lo:hi]
        attrs = file.attrs
        tuples = [
            RankTuple(
                relation=self.name,
                tid=int(tids[i]),
                score=float(scores[i]),
                vector=vectors[i],
                attrs=dict(attrs[int(rows[i])]) if attrs is not None else {},
            )
            for i in range(hi - lo)
        ]
        self.windows += 1
        self.pages += max(1, -(-(hi - lo) // self.page_size))
        self.tuples_served += hi - lo
        self._handle.backend.counters["paged_windows"] += 1
        self._handle.backend.counters["paged_rows"] += hi - lo
        return ranks, tids, vectors, scores, tuples

    def __repr__(self) -> str:
        return (
            f"EvictedShardEndpoint({self.name!r}, shard={self.shard_index}, "
            f"rows={self.total}, page_size={self.page_size})"
        )


from repro.core.access import ShardCursor  # noqa: E402  (after RankTuple import)


class PagedShardCursor(ShardCursor):
    """Merge-ready cursor whose rows stream in from an
    :class:`EvictedShardEndpoint` window by window.

    Subclasses :class:`~repro.core.access.ShardCursor` the same way the
    async service's ``RemoteShardStream`` does: columns are preallocated
    at full shard size (``np.empty`` — untouched pages stay virtual) and
    filled as windows land; ``ensure(n)`` implements
    :class:`~repro.core.access.MergeStream`'s read-ahead hook by
    fetching synchronously until the next ``n`` rows past ``pos`` are
    local, rounded up to the endpoint's page quantum so merge refills
    translate into few, large windows.
    """

    __slots__ = ("endpoint", "total", "_filled")

    def __init__(self, endpoint: EvictedShardEndpoint) -> None:
        # Deliberately no super().__init__: columns fill as windows land,
        # so the aligned-length invariant holds by construction.
        total = endpoint.total
        self.endpoint = endpoint
        self.total = total
        self.tuples: list[RankTuple] = []
        self.ranks = np.empty(total, dtype=float)
        self.vectors = np.empty((total, endpoint._handle.file.dim), dtype=float)
        self.scores = np.empty(total, dtype=float)
        self.tids = np.empty(total, dtype=np.int64)
        self.pos = 0
        self._filled = 0

    @property
    def filled(self) -> int:
        return self._filled

    def ensure(self, n: int) -> None:
        """Fetch until the next ``min(n, remaining)`` rows are local."""
        need = min(self.pos + n, self.total)
        while self._filled < need:
            span = max(need - self._filled, self.endpoint.page_size)
            ranks, tids, vectors, scores, tuples = self.endpoint.fetch_window(
                self._filled, span
            )
            hi = self._filled + len(ranks)
            self.ranks[self._filled : hi] = ranks
            self.tids[self._filled : hi] = tids
            if hi > self._filled:
                self.vectors[self._filled : hi] = vectors
                self.scores[self._filled : hi] = scores
            self.tuples.extend(tuples)
            self._filled = hi


class ShardHandle:
    """One shard's tier state: the always-open memmap file, plus the hot
    ``Relation`` when the shard is resident."""

    __slots__ = ("backend", "index", "file", "relation", "evicted")

    def __init__(self, backend: "DurableShardBackend", index: int, file: ShardFile) -> None:
        self.backend = backend
        self.index = index
        self.file = file
        self.relation: Relation | None = None
        self.evicted = False


class DurableShardBackend:
    """Storage backend + tier manager over a persisted relation.

    Implements the :class:`~repro.core.storage.StorageBackend` protocol
    (``shard_count``/``shards``/``open_stream``) and adds the durable
    tier's own surface: per-shard hot/evicted state under an optional
    ``memory_budget``, catalog-backed order persistence
    (:meth:`load_order` / :meth:`store_order`), and paged cursors for
    evicted shards.  ``counters`` meters the tier's traffic
    (catalog order hits/misses/writes, evictions, reloads, paged
    windows) — the evidence the warm-start and eviction tests read.
    """

    is_durable = True

    def __init__(
        self,
        relation: "DurableRelation",
        handles_files: Sequence[ShardFile],
        catalog: ShardCatalog,
        *,
        memory_budget: int | None = None,
        page_rows: int = _PAGE_ROWS,
    ) -> None:
        self.relation = relation
        self.catalog = catalog
        self.generation = int(handles_files[0].generation) if handles_files else 0
        self.memory_budget = memory_budget
        self.page_rows = int(page_rows)
        self.handles = tuple(
            ShardHandle(self, i, f) for i, f in enumerate(handles_files)
        )
        self._touch_clock = 0
        self._touched = [0] * len(self.handles)
        self.counters: dict[str, int] = {
            "catalog_order_hits": 0,
            "catalog_order_misses": 0,
            "catalog_order_writes": 0,
            "order_scans": 0,
            "evictions": 0,
            "reloads": 0,
            "paged_windows": 0,
            "paged_rows": 0,
        }

    # -- tier management ----------------------------------------------------

    @property
    def shard_count(self) -> int:
        return len(self.handles)

    @property
    def evicted_count(self) -> int:
        return sum(1 for h in self.handles if h.evicted)

    @property
    def resident_bytes(self) -> int:
        """Payload bytes of the currently hot shards (budget model: a
        hot shard is charged its full columnar extent, since sorted
        access touches every page)."""
        return sum(h.file.nbytes for h in self.handles if h.relation is not None)

    def shard_relation(self, index: int) -> Relation:
        """The hot ``Relation`` of shard ``index`` (materialising it —
        and evicting colder shards past the budget — as needed)."""
        handle = self.handles[index]
        if handle.relation is None:
            file = handle.file
            handle.relation = Relation._from_columns(
                file.relation,
                file.scores,
                file.vectors,
                file.tids,
                file.sigma_max,
                LazyTuples(
                    file.relation, file.scores, file.vectors, file.tids,
                    attrs=file.attrs,
                ),
            )
            if handle.evicted:
                handle.evicted = False
                self.counters["reloads"] += 1
        self._touch_clock += 1
        self._touched[index] = self._touch_clock
        self._enforce_budget(keep=index)
        return handle.relation

    def _enforce_budget(self, *, keep: int) -> None:
        if self.memory_budget is None:
            return
        while self.resident_bytes > self.memory_budget:
            victims = [
                h.index
                for h in self.handles
                if h.relation is not None and h.index != keep
            ]
            if not victims:
                break
            self.evict(min(victims, key=lambda i: self._touched[i]))

    def evict(self, index: int) -> None:
        """Drop shard ``index``'s hot tier: its ``Relation`` (and every
        lazily built tuple) is released and subsequent streams page the
        shard back from the memmap through the window API."""
        handle = self.handles[index]
        if handle.relation is not None:
            handle.relation = None
            self.counters["evictions"] += 1
        handle.evicted = True

    def evict_all(self) -> None:
        for i in range(len(self.handles)):
            self.evict(i)

    @property
    def shards(self) -> tuple[Relation, ...]:
        """Every shard as a hot ``Relation`` (the whole-relation reader
        path: materialises — and un-evicts — all shards)."""
        return tuple(self.shard_relation(i) for i in range(len(self.handles)))

    # -- persisted access orders -------------------------------------------

    @staticmethod
    def _kind_name(kind: "AccessKind") -> str:
        return kind.value

    def load_order(
        self, shard_index: int, kind: "AccessKind", bucket: bytes
    ) -> DurableOrder | None:
        """Catalog probe for one persisted order; gathers the ordered
        columnar arrays from the shard file on a hit (no sorting)."""
        hit = self.catalog.get_order(
            relation=self.relation.name,
            generation=self.generation,
            shard_index=shard_index,
            kind=self._kind_name(kind),
            bucket=bucket,
        )
        if hit is None:
            self.counters["catalog_order_misses"] += 1
            return None
        self.counters["catalog_order_hits"] += 1
        perm, ranks = hit
        return DurableOrder(self.handles[shard_index], perm, ranks)

    def store_order(
        self,
        shard_index: int,
        kind: "AccessKind",
        bucket: bytes,
        positions: np.ndarray,
        ranks: np.ndarray,
    ) -> bool:
        """Write one computed order back to the catalog.

        Returns ``True`` when the row landed; ``False`` on a read-only
        catalog (worker processes keep their sorts in the local LRU and
        never contend on the store's writer lock).
        """
        written = self.catalog.put_order(
            relation=self.relation.name,
            generation=self.generation,
            shard_index=shard_index,
            kind=self._kind_name(kind),
            bucket=bucket,
            perm=positions,
            ranks=ranks,
        )
        if written:
            self.counters["catalog_order_writes"] += 1
        return written

    def load_recent_orders(self, kind: "AccessKind", *, limit: int):
        """Warm-start feed: the most recently used persisted orders of
        this relation, gathered for replay — ``(shard_index, bucket,
        DurableOrder)`` newest first."""
        for shard_index, bucket, perm, ranks in self.catalog.iter_recent_orders(
            relation=self.relation.name,
            generation=self.generation,
            kind=self._kind_name(kind),
            limit=limit,
        ):
            if 0 <= shard_index < len(self.handles):
                yield shard_index, bucket, DurableOrder(
                    self.handles[shard_index], perm, ranks
                )

    def _compute_order(
        self, shard_index: int, kind: "AccessKind", query: np.ndarray | None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Sort one shard's order reading the memmap in bounded chunks.

        Rank computations are row-local, so chunked evaluation is
        bit-identical to the in-memory one-shot path; only the rank
        column, the tid column and the permutation (O(n), not O(n*d))
        become resident.
        """
        from repro.core.access import AccessKind

        file = self.handles[shard_index].file
        n = file.n
        tids = np.asarray(file.tids)
        if kind is AccessKind.DISTANCE:
            assert query is not None
            ranks_by_row = np.empty(n, dtype=float)
            vectors = file.vectors
            for lo in range(0, n, _SCAN_CHUNK):
                hi = min(lo + _SCAN_CHUNK, n)
                diff = np.asarray(vectors[lo:hi], dtype=float) - query
                ranks_by_row[lo:hi] = np.sqrt(np.einsum("ij,ij->i", diff, diff))
            perm = np.lexsort((tids, ranks_by_row))
        else:
            scores = np.asarray(file.scores, dtype=float)
            ranks_by_row = scores
            perm = np.lexsort((tids, -scores))
        self.counters["order_scans"] += 1
        return perm, ranks_by_row[perm]

    def order_for_paged(
        self,
        shard_index: int,
        kind: "AccessKind",
        bucket: bytes,
        query: np.ndarray | None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """``(perm, ranks)`` for an evicted shard: catalog hit, or one
        chunked scan that is immediately persisted for the next reader."""
        hit = self.catalog.get_order(
            relation=self.relation.name,
            generation=self.generation,
            shard_index=shard_index,
            kind=self._kind_name(kind),
            bucket=bucket,
        )
        if hit is not None:
            self.counters["catalog_order_hits"] += 1
            return hit
        self.counters["catalog_order_misses"] += 1
        perm, ranks = self._compute_order(shard_index, kind, query)
        self.store_order(shard_index, kind, bucket, perm, ranks)
        return perm, ranks

    def paged_cursor(
        self,
        shard_index: int,
        kind: "AccessKind",
        bucket: bytes,
        query: np.ndarray | None,
    ) -> PagedShardCursor:
        """A merge-ready cursor streaming an evicted shard's persisted
        order from the memmap."""
        perm, ranks = self.order_for_paged(shard_index, kind, bucket, query)
        endpoint = EvictedShardEndpoint(
            self.handles[shard_index], perm, ranks, page_size=self.page_rows
        )
        return PagedShardCursor(endpoint)

    # -- stream opening -----------------------------------------------------

    def open_stream(
        self,
        kind: "AccessKind",
        query: np.ndarray | None = None,
        *,
        metric: Callable[[np.ndarray, np.ndarray], float] | None = None,
        use_index: bool = False,
    ):
        from repro.core.access import (
            AccessKind,
            DistanceAccess,
            MergeStream,
            ScoreAccess,
        )

        if kind is AccessKind.DISTANCE and query is None:
            raise ValueError("distance-based access requires a query vector")
        if metric is not None and self.evicted_count:
            raise ValueError(
                "evicted shards serve persisted Euclidean/score orders only; "
                "reload the shard (shard_relation) before using a custom metric"
            )
        query_arr = None if query is None else np.asarray(query, dtype=float)
        if self.shard_count == 1 and not self.handles[0].evicted:
            # Single hot shard: the plain sorted-access fast path, exactly
            # like SingleShardBackend over in-memory columns.
            shard = self.shard_relation(0)
            if kind is AccessKind.DISTANCE:
                return DistanceAccess(
                    shard, query_arr, metric=metric, use_index=use_index
                )
            return ScoreAccess(shard)
        cursors = []
        bucket = self._stream_bucket(kind, query_arr)
        for handle in self.handles:
            if handle.evicted:
                cursors.append(
                    self.paged_cursor(handle.index, kind, bucket, query_arr)
                )
            else:
                shard = self.shard_relation(handle.index)
                if kind is AccessKind.DISTANCE:
                    inner = DistanceAccess(shard, query_arr, metric=metric)
                else:
                    inner = ScoreAccess(shard)
                cursors.append(inner.order_cursor())
        return MergeStream(
            self.relation, kind, cursors, sigma_max=self.relation.sigma_max
        )

    @staticmethod
    def _stream_bucket(kind: "AccessKind", query: np.ndarray | None) -> bytes:
        """Catalog bucket key for engine-level (serviceless) streams:
        the full-precision query bytes (score orders are query-free)."""
        from repro.core.access import AccessKind

        if kind is AccessKind.SCORE or query is None:
            return b""
        return np.ascontiguousarray(query, dtype=float).tobytes()

    def __repr__(self) -> str:
        tiers = "".join("E" if h.evicted else ("H" if h.relation else "-") for h in self.handles)
        return (
            f"DurableShardBackend({self.relation.name!r}, gen={self.generation}, "
            f"shards={self.shard_count} [{tiers}])"
        )


class DurableRelation(Relation):
    """A relation re-opened from its durable store.

    Carries only metadata eagerly (name, ``sigma_max``, cardinality,
    dimensionality — all from the catalog); shard columns are memmap
    views, and the parent-level arrays/tuples that whole-relation
    readers (brute-force oracle, CSV export, re-persist) need are
    scatter-reconstructed on first access.  Its :attr:`storage` is a
    stable :class:`DurableShardBackend` instance, so tier state (hot /
    evicted, budget clocks, counters) survives across streams.
    """

    def __init__(
        self,
        path: Path | str,
        name: str | None = None,
        *,
        memory_budget: int | None = None,
        verify: bool = False,
        page_rows: int = _PAGE_ROWS,
        read_only: bool = False,
    ) -> None:
        self.path = Path(path)
        catalog_path = self.path / CATALOG_FILENAME
        if not catalog_path.exists():
            raise FileNotFoundError(f"no durable catalog at {catalog_path}")
        catalog = ShardCatalog(catalog_path, read_only=read_only)
        names = catalog.relation_names()
        if name is None:
            if len(names) != 1:
                catalog.close()
                raise ValueError(
                    f"store at {self.path} holds relations {names}; "
                    "pass name= to pick one"
                )
            name = names[0]
        row = catalog.relation_row(name)
        if row is None:
            catalog.close()
            raise KeyError(f"relation {name!r} not in catalog at {catalog_path}")
        self.name = name
        self.sigma_max = float(row["sigma_max"])
        self._n = int(row["n"])
        self._dim = int(row["dim"])
        self.partition = row["partition"]
        self.generation = int(row["generation"])
        files = []
        for shard_row in catalog.shard_rows(name, self.generation):
            file = ShardFile(
                self.path / SHARD_DIRNAME / shard_row["filename"], verify=verify
            )
            files.append(file)
        if not files:
            catalog.close()
            raise ValueError(
                f"relation {name!r} generation {self.generation} has no shards"
            )
        self._backend = DurableShardBackend(
            self, files, catalog, memory_budget=memory_budget, page_rows=page_rows
        )
        # Parent-level columns/tuples: reconstructed on demand only.
        self._parent_ready = False
        self._vectors = None
        self._scores = None
        self._tids = None
        self._tuples = None

    # -- metadata (no materialisation) --------------------------------------

    @property
    def dim(self) -> int:
        return self._dim

    def __len__(self) -> int:
        return self._n

    @property
    def catalog(self) -> ShardCatalog:
        return self._backend.catalog

    @property
    def storage(self) -> DurableShardBackend:
        return self._backend

    def close(self) -> None:
        """Close the catalog connection (memmaps are dropped with the
        object)."""
        self._backend.catalog.close()

    # -- whole-relation reader path ------------------------------------------

    def _materialise_parent(self) -> None:
        """Scatter every shard's rows back into parent row positions —
        the exact arrays (and tids) the relation was persisted with."""
        if self._parent_ready:
            return
        vecs = np.empty((self._n, self._dim), dtype=float)
        scores = np.empty(self._n, dtype=float)
        tids = np.empty(self._n, dtype=np.int64)
        attrs: list[dict] | None = None
        for handle in self._backend.handles:
            file = handle.file
            pos = np.asarray(file.positions)
            vecs[pos] = file.vectors
            scores[pos] = file.scores
            tids[pos] = file.tids
            if file.attrs is not None:
                if attrs is None:
                    attrs = [{} for _ in range(self._n)]
                for local, p in enumerate(pos.tolist()):
                    attrs[p] = file.attrs[local]
        for col in (vecs, scores, tids):
            col.setflags(write=False)
        self._vectors = vecs
        self._scores = scores
        self._tids = tids
        self._tuples = LazyTuples(self.name, scores, vecs, tids, attrs=attrs)
        self._parent_ready = True

    @property
    def vectors(self) -> np.ndarray:
        self._materialise_parent()
        return self._vectors

    @property
    def scores(self) -> np.ndarray:
        self._materialise_parent()
        return self._scores

    @property
    def tids(self) -> np.ndarray:
        self._materialise_parent()
        return self._tids

    def __iter__(self):
        self._materialise_parent()
        return iter(self._tuples)

    def __getitem__(self, i: int) -> RankTuple:
        self._materialise_parent()
        return self._tuples[i]

    def __repr__(self) -> str:
        return (
            f"DurableRelation({self.name!r}, n={self._n}, d={self._dim}, "
            f"shards={self._backend.shard_count}, gen={self.generation}, "
            f"path={str(self.path)!r})"
        )


def _safe_filename(name: str) -> str:
    return re.sub(r"[^A-Za-z0-9._-]", "_", name)


def persist_relation(
    relation: Relation,
    path: Path | str,
    *,
    _failpoint: Callable[[str], None] | None = None,
) -> Path:
    """Persist ``relation`` into the durable store at ``path``.

    Writes one immutable columnar file per storage shard (single-shard
    relations produce one; :class:`~repro.core.storage.ShardedRelation`
    one per shard, preserving the partition), then commits the new
    generation to the catalog in one transaction and garbage-collects
    files of superseded generations.  Crash-consistency: new files get
    generation-fresh names and are fsync-renamed into place *before*
    the commit, so a writer dying at any point leaves the previous
    generation fully readable — no torn columnar reads are possible.

    ``_failpoint`` is a test-only hook called with a stage label
    (``"shard-bytes"`` mid-file, ``"before-commit"``, ``"after-commit"``)
    so the crash-consistency suite can kill the writer deterministically
    at each stage.
    """
    path = Path(path)
    shard_dir = path / SHARD_DIRNAME
    shard_dir.mkdir(parents=True, exist_ok=True)
    catalog = ShardCatalog(path / CATALOG_FILENAME)
    try:
        storage = relation.storage
        shards = storage.shards
        generation = catalog.latest_generation(relation.name) + 1
        partition = getattr(relation, "partition", None)
        # Parent-position index: global row position of each tid, so the
        # store can scatter shards back into the exact parent order.
        parent_tids = relation.tids
        sorter = np.argsort(parent_tids, kind="stable")
        sorted_tids = parent_tids[sorter]
        rows = []
        safe = _safe_filename(relation.name)
        for idx, shard in enumerate(shards):
            positions = sorter[np.searchsorted(sorted_tids, shard.tids)]
            filename = f"{safe}-g{generation:06d}-s{idx:04d}.shard"
            interrupt = None
            if _failpoint is not None:
                interrupt = lambda: _failpoint("shard-bytes")  # noqa: E731
            rows.append(
                write_shard_file(
                    shard_dir / filename,
                    relation=relation.name,
                    shard_index=idx,
                    generation=generation,
                    sigma_max=shard.sigma_max,
                    scores=shard.scores,
                    vectors=shard.vectors,
                    tids=shard.tids,
                    positions=positions,
                    attrs=[t.attrs for t in shard],
                    interrupt=interrupt,
                )
            )
        if _failpoint is not None:
            _failpoint("before-commit")
        catalog.commit_generation(
            name=relation.name,
            generation=generation,
            n=len(relation),
            dim=relation.dim,
            sigma_max=relation.sigma_max,
            partition=partition,
            shard_rows=rows,
        )
        if _failpoint is not None:
            _failpoint("after-commit")
        # The new generation is committed: unlink superseded files (and
        # any stray .tmp a crashed writer left behind).
        for stale in catalog.prune_generations(relation.name, generation):
            try:
                (shard_dir / stale).unlink()
            except OSError:
                pass
        for tmp in shard_dir.glob("*.tmp"):
            try:
                tmp.unlink()
            except OSError:
                pass
    finally:
        catalog.close()
    return path


def open_relation(
    path: Path | str,
    name: str | None = None,
    *,
    memory_budget: int | None = None,
    verify: bool = False,
    page_rows: int = _PAGE_ROWS,
    read_only: bool = False,
) -> DurableRelation:
    """Open one relation from the durable store at ``path``.

    ``read_only=True`` opens the catalog without write access — the
    multi-process serving contract: any number of worker processes can
    map the same shard files (one physical copy in the page cache) and
    probe persisted orders concurrently without ever taking the WAL
    writer lock.
    """
    return DurableRelation(
        path,
        name,
        memory_budget=memory_budget,
        verify=verify,
        page_rows=page_rows,
        read_only=read_only,
    )
