"""Append-only columnar shard files served through ``np.memmap``.

One file holds one shard of one relation generation: a fixed-size header
(magic, length-prefixed JSON metadata, segment table with per-segment
CRC32 checksums) followed by 64-byte-aligned columnar segments —
``scores (n float64)``, ``vectors (n*d float64)``, ``tids (n int64)``,
``positions (n int64)`` (each row's position in the parent relation, so
re-opening can scatter shards back into the exact parent row order) and
an optional JSON ``attrs`` segment.  :class:`ShardFile` memory-maps the
file once and exposes the segments as zero-copy array views: the access
layer's sorts fancy-index them exactly like in-memory columns, the
evicted-tier window API slices only the rows a window touches, and the
OS page cache decides what is actually resident.

Durability protocol (what the catalog's crash-consistency guarantee
rests on):

* a shard file is **immutable once named** — generations get fresh
  filenames, so a reader holding generation ``g`` can never observe a
  torn rewrite;
* :func:`write_shard_file` writes to ``<path>.tmp``, flushes, fsyncs,
  then atomically renames — a writer dying mid-write leaves only a
  ``.tmp`` no catalog row references;
* the header records every segment's byte extent and CRC32, and
  :meth:`ShardFile.verify` recomputes them, so truncated or corrupted
  files are detected instead of silently served.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

import numpy as np

__all__ = ["ShardFile", "write_shard_file", "FORMAT_MAGIC", "FORMAT_VERSION"]

FORMAT_MAGIC = b"PRXSHRD1"
FORMAT_VERSION = 1

#: Segment offsets are multiples of this, so float64/int64 views of the
#: page-aligned memmap buffer are always safely aligned.
_ALIGN = 64
_PREAMBLE = struct.Struct("<8sII")  # magic, header json length, data start


def _aligned(offset: int) -> int:
    return -(-offset // _ALIGN) * _ALIGN


def write_shard_file(
    path: Path | str,
    *,
    relation: str,
    shard_index: int,
    generation: int,
    sigma_max: float,
    scores: np.ndarray,
    vectors: np.ndarray,
    tids: np.ndarray,
    positions: np.ndarray,
    attrs: Sequence[Mapping[str, Any]] | None = None,
    interrupt: Callable[[], None] | None = None,
) -> dict:
    """Write one shard as a columnar file; returns its catalog row.

    The file is written to ``<path>.tmp`` and renamed into place only
    after a flush + fsync, so a crash mid-write never produces a
    readable-looking partial file under the final name.  ``interrupt``
    is a test-only failpoint invoked after roughly half the payload
    bytes are on disk — raising from it models a writer killed
    mid-``persist``.
    """
    path = Path(path)
    scores = np.ascontiguousarray(scores, dtype=np.float64)
    vectors = np.ascontiguousarray(np.atleast_2d(vectors), dtype=np.float64)
    tids = np.ascontiguousarray(tids, dtype=np.int64)
    positions = np.ascontiguousarray(positions, dtype=np.int64)
    n, dim = vectors.shape
    if not len(scores) == n == len(tids) == len(positions):
        raise ValueError(f"misaligned shard columns for {path}")
    segments: list[tuple[str, bytes]] = [
        ("scores", scores.tobytes()),
        ("vectors", vectors.tobytes()),
        ("tids", tids.tobytes()),
        ("positions", positions.tobytes()),
    ]
    if attrs is not None and any(attrs):
        segments.append(
            ("attrs", json.dumps([dict(a) for a in attrs]).encode("utf-8"))
        )
    # Offsets are computed relative to a fixed data start, so the header
    # JSON (whose own length varies) never perturbs the layout.
    table = []
    offset = 0
    for name, payload in segments:
        offset = _aligned(offset)
        table.append(
            {
                "name": name,
                "offset": offset,
                "nbytes": len(payload),
                "crc32": zlib.crc32(payload),
            }
        )
        offset += len(payload)
    header = {
        "version": FORMAT_VERSION,
        "relation": relation,
        "shard_index": int(shard_index),
        "generation": int(generation),
        "n": int(n),
        "dim": int(dim),
        "sigma_max": float(sigma_max),
        "tid_min": int(tids.min()),
        "tid_max": int(tids.max()),
        "dtypes": {"scores": "<f8", "vectors": "<f8", "tids": "<i8", "positions": "<i8"},
        "segments": table,
    }
    header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
    data_start = _aligned(_PREAMBLE.size + len(header_bytes))
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "wb") as fh:
        fh.write(_PREAMBLE.pack(FORMAT_MAGIC, len(header_bytes), data_start))
        fh.write(header_bytes)
        fh.write(b"\0" * (data_start - _PREAMBLE.size - len(header_bytes)))
        written = 0
        half = sum(len(p) for _, p in segments) // 2
        fired = interrupt is None
        for entry, (_, payload) in zip(table, segments):
            fh.seek(data_start + entry["offset"])
            fh.write(payload)
            written += len(payload)
            if not fired and written >= half:
                fh.flush()
                fired = True
                interrupt()
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    _fsync_dir(path.parent)
    checksum = zlib.crc32(b"".join(struct.pack("<I", e["crc32"]) for e in table))
    return {
        "filename": path.name,
        "n": n,
        "dim": dim,
        "sigma_max": float(sigma_max),
        "tid_min": header["tid_min"],
        "tid_max": header["tid_max"],
        "checksum": checksum,
    }


def _fsync_dir(directory: Path) -> None:
    """Best-effort directory fsync so the rename itself is durable."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without dir-open
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover
        pass
    finally:
        os.close(fd)


class ShardFile:
    """Zero-copy reader over one columnar shard file.

    The whole file is mapped read-only once; ``scores``/``vectors``/
    ``tids``/``positions`` are array views into the mapping (nothing is
    read until a consumer touches the pages), and ``attrs`` decodes its
    JSON segment lazily on first access.
    """

    def __init__(self, path: Path | str, *, verify: bool = False) -> None:
        self.path = Path(path)
        with open(self.path, "rb") as fh:
            preamble = fh.read(_PREAMBLE.size)
            if len(preamble) < _PREAMBLE.size:
                raise ValueError(f"{self.path}: truncated shard file preamble")
            magic, header_len, data_start = _PREAMBLE.unpack(preamble)
            if magic != FORMAT_MAGIC:
                raise ValueError(f"{self.path}: not a shard file (bad magic)")
            header_bytes = fh.read(header_len)
            if len(header_bytes) < header_len:
                raise ValueError(f"{self.path}: truncated shard file header")
        header = json.loads(header_bytes.decode("utf-8"))
        if header.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"{self.path}: unsupported shard format version "
                f"{header.get('version')!r}"
            )
        self.header = header
        self.relation = str(header["relation"])
        self.shard_index = int(header["shard_index"])
        self.generation = int(header["generation"])
        self.n = int(header["n"])
        self.dim = int(header["dim"])
        self.sigma_max = float(header["sigma_max"])
        self._data_start = int(data_start)
        self._segments = {s["name"]: s for s in header["segments"]}
        expected_end = data_start + max(
            s["offset"] + s["nbytes"] for s in header["segments"]
        )
        actual = self.path.stat().st_size
        if actual < expected_end:
            raise ValueError(
                f"{self.path}: torn shard file ({actual} bytes on disk, "
                f"header promises {expected_end})"
            )
        self._mm = np.memmap(self.path, dtype=np.uint8, mode="r")
        self._attrs: list[dict] | None = None
        if verify:
            self.verify()

    def _segment_bytes(self, name: str) -> np.ndarray:
        seg = self._segments[name]
        lo = self._data_start + seg["offset"]
        return self._mm[lo : lo + seg["nbytes"]]

    @property
    def scores(self) -> np.ndarray:
        """``(n,)`` float64 view into the mapping (zero-copy)."""
        return self._segment_bytes("scores").view(np.float64)

    @property
    def vectors(self) -> np.ndarray:
        """``(n, dim)`` float64 view into the mapping (zero-copy)."""
        return self._segment_bytes("vectors").view(np.float64).reshape(
            self.n, self.dim
        )

    @property
    def tids(self) -> np.ndarray:
        """``(n,)`` int64 view into the mapping (zero-copy)."""
        return self._segment_bytes("tids").view(np.int64)

    @property
    def positions(self) -> np.ndarray:
        """``(n,)`` int64 parent-row positions (zero-copy view)."""
        return self._segment_bytes("positions").view(np.int64)

    @property
    def attrs(self) -> list[dict] | None:
        """Per-row attribute dicts, or ``None`` when the shard has none
        (decoded once, on first access)."""
        if "attrs" not in self._segments:
            return None
        if self._attrs is None:
            self._attrs = json.loads(bytes(self._segment_bytes("attrs")).decode("utf-8"))
        return self._attrs

    @property
    def nbytes(self) -> int:
        """Payload bytes the shard pins when fully resident."""
        return sum(s["nbytes"] for s in self._segments.values())

    def verify(self) -> None:
        """Recompute every segment CRC32 against the header (reads the
        whole file; raises ``ValueError`` on any mismatch)."""
        for name, seg in self._segments.items():
            actual = zlib.crc32(self._segment_bytes(name).tobytes())
            if actual != seg["crc32"]:
                raise ValueError(
                    f"{self.path}: checksum mismatch in segment {name!r} "
                    f"(stored {seg['crc32']:#010x}, computed {actual:#010x})"
                )

    def __repr__(self) -> str:
        return (
            f"ShardFile({self.path.name!r}, relation={self.relation!r}, "
            f"shard={self.shard_index}, gen={self.generation}, n={self.n}, "
            f"d={self.dim})"
        )
