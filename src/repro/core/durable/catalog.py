"""WAL-mode SQLite catalog for the durable tier.

The columnar shard files hold the bytes; this catalog holds everything
about them that must be found, validated or flipped transactionally:

* ``relations`` — one row per persisted relation: current generation,
  cardinality, dimensionality, exact ``sigma_max`` (SQLite ``REAL`` is
  IEEE-754 double, so the float round-trips bit for bit), shard count
  and partition scheme;
* ``shards`` — one row per shard file per generation: filename,
  per-shard metadata, tid range and checksum;
* ``orders`` — persisted per-``(relation, shard, kind, query-bucket)``
  access orders: the sort permutation and the rank column as raw
  float64/int64 blobs, plus hit counters.  These are what let a
  restarted service answer its first hot-bucket query with **zero
  re-sorts** — the order bytes come back exactly as computed, so warm
  runs are bit-identical to the runs that wrote them.

Pragma discipline (the Paper-Scanner catalog idiom): ``journal_mode=
WAL`` for concurrent readers during writes, ``synchronous=NORMAL``,
``foreign_keys=ON`` and a generous ``busy_timeout``.  Generation flips
are single transactions: a writer that dies before committing leaves
the previous generation's rows — and therefore its immutable shard
files — fully readable.

The catalog object is thread-safe: one connection opened with
``check_same_thread=False`` and every statement serialised under an
internal lock (the service submits from a thread pool).

Read-only mode (``read_only=True``) is the multi-process serving
contract: the connection is opened with the SQLite ``mode=ro`` URI (or,
where URI opens are unavailable, falls back to ``PRAGMA query_only=ON``)
so a fleet of worker processes can probe persisted orders concurrently
under WAL without ever taking the writer lock.  In this mode
``get_order`` never bumps hit counters, ``put_order`` is a no-op that
returns ``False``, and generation flips raise.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import Iterator

import numpy as np

try:
    import sqlite3
except ImportError as exc:  # pragma: no cover - stdlib module, absent only
    raise ImportError(
        "repro.core.durable requires the sqlite3 standard-library module "
        "(present in every normal CPython build)"
    ) from exc

__all__ = ["ShardCatalog", "CATALOG_FILENAME"]

CATALOG_FILENAME = "catalog.sqlite"

_SCHEMA = """
CREATE TABLE IF NOT EXISTS relations (
    name        TEXT PRIMARY KEY,
    generation  INTEGER NOT NULL,
    n           INTEGER NOT NULL,
    dim         INTEGER NOT NULL,
    sigma_max   REAL NOT NULL,
    shard_count INTEGER NOT NULL,
    partition   TEXT
);
CREATE TABLE IF NOT EXISTS shards (
    relation    TEXT NOT NULL REFERENCES relations(name) ON DELETE CASCADE,
    generation  INTEGER NOT NULL,
    shard_index INTEGER NOT NULL,
    filename    TEXT NOT NULL,
    n           INTEGER NOT NULL,
    dim         INTEGER NOT NULL,
    sigma_max   REAL NOT NULL,
    tid_min     INTEGER NOT NULL,
    tid_max     INTEGER NOT NULL,
    checksum    INTEGER NOT NULL,
    PRIMARY KEY (relation, generation, shard_index)
);
CREATE TABLE IF NOT EXISTS orders (
    relation    TEXT NOT NULL REFERENCES relations(name) ON DELETE CASCADE,
    generation  INTEGER NOT NULL,
    shard_index INTEGER NOT NULL,
    kind        TEXT NOT NULL,
    bucket      BLOB NOT NULL,
    perm        BLOB NOT NULL,
    ranks       BLOB NOT NULL,
    hits        INTEGER NOT NULL DEFAULT 0,
    last_used   INTEGER NOT NULL DEFAULT 0,
    PRIMARY KEY (relation, generation, shard_index, kind, bucket)
);
"""


class ShardCatalog:
    """Transactional metadata store for one durable relation directory."""

    def __init__(
        self,
        path: Path | str,
        *,
        busy_timeout_ms: int = 30_000,
        read_only: bool = False,
    ) -> None:
        self.path = Path(path)
        self.read_only = bool(read_only)
        self._lock = threading.RLock()
        if self.read_only:
            self._conn = self._connect_read_only(busy_timeout_ms)
            with self._lock:
                cur = self._conn.cursor()
                cur.execute(f"PRAGMA busy_timeout={int(busy_timeout_ms)}")
            return
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(
            str(self.path),
            check_same_thread=False,
            timeout=busy_timeout_ms / 1000.0,
        )
        with self._lock:
            cur = self._conn.cursor()
            cur.execute("PRAGMA journal_mode=WAL")
            cur.execute("PRAGMA synchronous=NORMAL")
            cur.execute("PRAGMA foreign_keys=ON")
            cur.execute(f"PRAGMA busy_timeout={int(busy_timeout_ms)}")
            cur.executescript(_SCHEMA)
            self._conn.commit()

    def _connect_read_only(self, busy_timeout_ms: int) -> "sqlite3.Connection":
        """Open without ever acquiring the writer lock.

        Preferred path: a ``mode=ro`` URI connection — the main database
        file is opened read-only, so even a misbehaving statement cannot
        mutate catalog state.  WAL readers still need the shared-memory
        index, which SQLite creates on demand next to the database; when
        that (or URI support itself) is unavailable the fallback is a
        normal connection pinned by ``PRAGMA query_only=ON``, which
        rejects every write statement at the SQLite level.
        """
        if not self.path.exists():
            raise FileNotFoundError(
                f"cannot open catalog read-only: {self.path} does not exist"
            )
        timeout = busy_timeout_ms / 1000.0
        try:
            conn = sqlite3.connect(
                f"file:{self.path}?mode=ro",
                uri=True,
                check_same_thread=False,
                timeout=timeout,
            )
            # Force the first real page read now so an unusable ro handle
            # (e.g. a WAL side file it cannot map) fails here, not later.
            conn.execute("SELECT 1 FROM sqlite_master LIMIT 1").fetchone()
            return conn
        except sqlite3.OperationalError:
            conn = sqlite3.connect(
                str(self.path), check_same_thread=False, timeout=timeout
            )
            conn.execute("PRAGMA query_only=ON")
            return conn

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    def __enter__(self) -> "ShardCatalog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- relations / generations -------------------------------------------

    def relation_names(self) -> list[str]:
        """Persisted relation names, in first-persist order."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT name FROM relations ORDER BY rowid"
            ).fetchall()
        return [r[0] for r in rows]

    def relation_row(self, name: str) -> dict | None:
        with self._lock:
            row = self._conn.execute(
                "SELECT name, generation, n, dim, sigma_max, shard_count, "
                "partition FROM relations WHERE name = ?",
                (name,),
            ).fetchone()
        if row is None:
            return None
        keys = ("name", "generation", "n", "dim", "sigma_max", "shard_count", "partition")
        return dict(zip(keys, row))

    def latest_generation(self, name: str) -> int:
        """Current committed generation of ``name`` (0 when absent)."""
        row = self.relation_row(name)
        return int(row["generation"]) if row else 0

    def shard_rows(self, name: str, generation: int) -> list[dict]:
        with self._lock:
            rows = self._conn.execute(
                "SELECT shard_index, filename, n, dim, sigma_max, tid_min, "
                "tid_max, checksum FROM shards "
                "WHERE relation = ? AND generation = ? ORDER BY shard_index",
                (name, generation),
            ).fetchall()
        keys = (
            "shard_index", "filename", "n", "dim", "sigma_max",
            "tid_min", "tid_max", "checksum",
        )
        return [dict(zip(keys, r)) for r in rows]

    def commit_generation(
        self,
        *,
        name: str,
        generation: int,
        n: int,
        dim: int,
        sigma_max: float,
        partition: str | None,
        shard_rows: list[dict],
    ) -> None:
        """Flip ``name`` to ``generation`` in ONE transaction.

        Registers the new shard rows, upserts the relation row (keeping
        its rowid, so first-persist ordering survives re-persists) and
        drops stale order rows of older generations.  Readers of the
        previous generation are unaffected until the commit lands; a
        writer dying before this call leaves the catalog untouched.
        """
        if self.read_only:
            raise RuntimeError("commit_generation on a read-only catalog")
        with self._lock:
            cur = self._conn.cursor()
            try:
                cur.execute("BEGIN IMMEDIATE")
                cur.execute(
                    "INSERT INTO relations "
                    "(name, generation, n, dim, sigma_max, shard_count, partition) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?) "
                    "ON CONFLICT(name) DO UPDATE SET generation=excluded.generation, "
                    "n=excluded.n, dim=excluded.dim, sigma_max=excluded.sigma_max, "
                    "shard_count=excluded.shard_count, partition=excluded.partition",
                    (name, generation, n, dim, float(sigma_max), len(shard_rows), partition),
                )
                cur.executemany(
                    "INSERT OR REPLACE INTO shards "
                    "(relation, generation, shard_index, filename, n, dim, "
                    "sigma_max, tid_min, tid_max, checksum) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    [
                        (
                            name, generation, i, r["filename"], r["n"], r["dim"],
                            float(r["sigma_max"]), r["tid_min"], r["tid_max"],
                            r["checksum"],
                        )
                        for i, r in enumerate(shard_rows)
                    ],
                )
                cur.execute(
                    "DELETE FROM orders WHERE relation = ? AND generation != ?",
                    (name, generation),
                )
                self._conn.commit()
            except BaseException:
                self._conn.rollback()
                raise

    def prune_generations(self, name: str, keep_generation: int) -> list[str]:
        """Drop shard rows older than ``keep_generation``; returns their
        filenames so the caller can unlink the (now unreferenced) files."""
        if self.read_only:
            raise RuntimeError("prune_generations on a read-only catalog")
        with self._lock:
            cur = self._conn.cursor()
            stale = [
                r[0]
                for r in cur.execute(
                    "SELECT filename FROM shards WHERE relation = ? AND generation < ?",
                    (name, keep_generation),
                ).fetchall()
            ]
            cur.execute(
                "DELETE FROM shards WHERE relation = ? AND generation < ?",
                (name, keep_generation),
            )
            self._conn.commit()
        return stale

    # -- persisted access orders -------------------------------------------

    def put_order(
        self,
        *,
        relation: str,
        generation: int,
        shard_index: int,
        kind: str,
        bucket: bytes,
        perm: np.ndarray,
        ranks: np.ndarray,
    ) -> bool:
        """Persist one computed access order (idempotent upsert).

        The blobs are the exact little-endian int64/float64 bytes of the
        computed permutation and rank column — reloads are bit-identical
        by construction.  Returns ``True`` when the row was written;
        ``False`` on a read-only catalog (the order simply stays local to
        the worker's in-memory LRU).
        """
        if self.read_only:
            return False
        perm_blob = np.ascontiguousarray(perm, dtype=np.int64).tobytes()
        ranks_blob = np.ascontiguousarray(ranks, dtype=np.float64).tobytes()
        with self._lock:
            self._conn.execute(
                "INSERT INTO orders "
                "(relation, generation, shard_index, kind, bucket, perm, ranks, "
                " hits, last_used) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, 0, "
                "  1 + COALESCE((SELECT MAX(last_used) FROM orders), 0)) "
                "ON CONFLICT(relation, generation, shard_index, kind, bucket) "
                "DO UPDATE SET perm=excluded.perm, ranks=excluded.ranks",
                (relation, generation, shard_index, kind, bucket, perm_blob, ranks_blob),
            )
            self._conn.commit()
        return True

    def get_order(
        self,
        *,
        relation: str,
        generation: int,
        shard_index: int,
        kind: str,
        bucket: bytes,
        count_hit: bool = True,
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """``(perm, ranks)`` of one persisted order, or ``None``.

        A hit bumps the row's ``hits`` counter and recency stamp — the
        catalog-side proof that a warm query was served without a
        re-sort.  Read-only catalogs skip the bump (concurrent worker
        readers must never queue on the writer lock just to count).
        """
        if self.read_only:
            count_hit = False
        with self._lock:
            row = self._conn.execute(
                "SELECT perm, ranks FROM orders WHERE relation = ? AND "
                "generation = ? AND shard_index = ? AND kind = ? AND bucket = ?",
                (relation, generation, shard_index, kind, bucket),
            ).fetchone()
            if row is None:
                return None
            if count_hit:
                self._conn.execute(
                    "UPDATE orders SET hits = hits + 1, last_used = "
                    "  1 + COALESCE((SELECT MAX(last_used) FROM orders), 0) "
                    "WHERE relation = ? AND generation = ? AND shard_index = ? "
                    "AND kind = ? AND bucket = ?",
                    (relation, generation, shard_index, kind, bucket),
                )
                self._conn.commit()
        perm = np.frombuffer(row[0], dtype=np.int64)
        ranks = np.frombuffer(row[1], dtype=np.float64)
        return perm, ranks

    def iter_recent_orders(
        self, *, relation: str, generation: int, kind: str, limit: int
    ) -> Iterator[tuple[int, bytes, np.ndarray, np.ndarray]]:
        """Most-recently-used persisted orders for warm-starting an LRU:
        yields ``(shard_index, bucket, perm, ranks)`` newest first."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT shard_index, bucket, perm, ranks FROM orders "
                "WHERE relation = ? AND generation = ? AND kind = ? "
                "ORDER BY last_used DESC, shard_index LIMIT ?",
                (relation, generation, kind, int(limit)),
            ).fetchall()
        for shard_index, bucket, perm, ranks in rows:
            yield (
                int(shard_index),
                bytes(bucket),
                np.frombuffer(perm, dtype=np.int64),
                np.frombuffer(ranks, dtype=np.float64),
            )

    def order_stats(self, relation: str | None = None) -> list[dict]:
        """Per-order hit counters (the warm-start evidence trail)."""
        query = (
            "SELECT relation, generation, shard_index, kind, hits "
            "FROM orders {} ORDER BY relation, shard_index, kind"
        )
        with self._lock:
            if relation is None:
                rows = self._conn.execute(query.format("")).fetchall()
            else:
                rows = self._conn.execute(
                    query.format("WHERE relation = ?"), (relation,)
                ).fetchall()
        keys = ("relation", "generation", "shard_index", "kind", "hits")
        return [dict(zip(keys, r)) for r in rows]

    def order_count(self, relation: str, generation: int, kind: str | None = None) -> int:
        with self._lock:
            if kind is None:
                row = self._conn.execute(
                    "SELECT COUNT(*) FROM orders WHERE relation = ? AND generation = ?",
                    (relation, generation),
                ).fetchone()
            else:
                row = self._conn.execute(
                    "SELECT COUNT(*) FROM orders WHERE relation = ? AND "
                    "generation = ? AND kind = ?",
                    (relation, generation, kind),
                ).fetchone()
        return int(row[0])

    def total_order_hits(self, relation: str | None = None) -> int:
        """Sum of every order row's hit counter."""
        with self._lock:
            if relation is None:
                row = self._conn.execute("SELECT COALESCE(SUM(hits), 0) FROM orders").fetchone()
            else:
                row = self._conn.execute(
                    "SELECT COALESCE(SUM(hits), 0) FROM orders WHERE relation = ?",
                    (relation,),
                ).fetchone()
        return int(row[0])

    def __repr__(self) -> str:
        return f"ShardCatalog({str(self.path)!r})"
