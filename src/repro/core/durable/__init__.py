"""Durable tiered storage beneath the storage boundary.

Columnar shard files served zero-copy through ``np.memmap``
(:mod:`~repro.core.durable.shardfile`), a WAL-mode SQLite catalog for
metadata and persisted access orders
(:mod:`~repro.core.durable.catalog`), and the tier-managing storage
backend that keeps the layers above unchanged
(:mod:`~repro.core.durable.backend`).
"""

from repro.core.durable.backend import (
    DurableOrder,
    DurableRelation,
    DurableShardBackend,
    EvictedShardEndpoint,
    LazyTuples,
    PagedShardCursor,
    open_relation,
    persist_relation,
)
from repro.core.durable.catalog import CATALOG_FILENAME, ShardCatalog
from repro.core.durable.shardfile import (
    FORMAT_MAGIC,
    FORMAT_VERSION,
    ShardFile,
    write_shard_file,
)

__all__ = [
    "CATALOG_FILENAME",
    "FORMAT_MAGIC",
    "FORMAT_VERSION",
    "DurableOrder",
    "DurableRelation",
    "DurableShardBackend",
    "EvictedShardEndpoint",
    "LazyTuples",
    "PagedShardCursor",
    "ShardCatalog",
    "ShardFile",
    "open_relation",
    "persist_relation",
    "write_shard_file",
]
