"""Execution tracing: explain *why* a ProxRJ run stopped when it did.

Wraps a bounding scheme and records, after every pull: which relation was
accessed, the depths, the bound value, the current K-th score and the
output size.  The trace answers the questions that come up when studying
the operator — "when did the bound cross the K-th score?", "which
relation was the strategy favouring?", "how long was the tail where no
result changed?" — and renders as a compact text timeline.

Usage::

    bound = TraceBound(TightBound())
    engine = ProxRJ(..., bound=bound, ...)
    result = engine.run()
    print(bound.trace.render())
"""

from __future__ import annotations

import io
from dataclasses import dataclass, field

from repro.core.bounds.base import BoundingScheme, EngineState
from repro.core.relation import RankTuple

__all__ = ["PullEvent", "RunTrace", "TraceBound"]


@dataclass(frozen=True)
class PullEvent:
    """One pull and the state right after its bound update."""

    step: int
    relation: int
    depths: tuple[int, ...]
    bound: float
    kth_score: float
    results_held: int

    @property
    def certified(self) -> bool:
        """Whether the stopping condition held at this point."""
        return self.kth_score >= self.bound


@dataclass
class RunTrace:
    """Ordered pull events of one run."""

    events: list[PullEvent] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.events)

    @property
    def stop_step(self) -> int | None:
        """First step at which the run could have stopped (1-based)."""
        for event in self.events:
            if event.certified:
                return event.step
        return None

    def pulls_per_relation(self) -> dict[int, int]:
        counts: dict[int, int] = {}
        for event in self.events:
            counts[event.relation] = counts.get(event.relation, 0) + 1
        return counts

    def bound_series(self) -> list[float]:
        return [e.bound for e in self.events]

    def kth_series(self) -> list[float]:
        return [e.kth_score for e in self.events]

    def render(self, *, every: int = 1) -> str:
        """Text timeline; ``every`` thins long traces."""
        out = io.StringIO()
        out.write(
            f"{'step':>5} {'rel':>4} {'depths':>14} {'bound':>10} "
            f"{'kth':>10} {'held':>5}\n"
        )
        for event in self.events:
            if (event.step - 1) % every and not event.certified:
                continue
            depths = ",".join(str(d) for d in event.depths)
            marker = "  <- certified" if event.certified else ""
            out.write(
                f"{event.step:>5} {event.relation:>4} {depths:>14} "
                f"{event.bound:>10.3f} {event.kth_score:>10.3f} "
                f"{event.results_held:>5}{marker}\n"
            )
        stop = self.stop_step
        if stop is not None:
            out.write(f"stopping condition first held at pull {stop}\n")
        return out.getvalue()


class TraceBound(BoundingScheme):
    """Decorator bounding scheme that records a :class:`RunTrace`.

    Transparent: delegates ``update``/``potentials`` (and the counters)
    to the wrapped scheme, so algorithms behave identically with or
    without tracing.
    """

    def __init__(self, inner: BoundingScheme) -> None:
        super().__init__()
        self.inner = inner
        self.trace = RunTrace()

    @property
    def is_tight(self) -> bool:
        return self.inner.is_tight

    @property
    def counters(self):  # type: ignore[override]
        return self.inner.counters

    @counters.setter
    def counters(self, value) -> None:
        # BoundingScheme.__init__ assigns; forward onto the inner scheme
        # only if it exists yet (during our own construction it does not).
        if hasattr(self, "inner"):
            self.inner.counters = value

    def update(self, state: EngineState, i: int, tau: RankTuple) -> float:
        t = self.inner.update(state, i, tau)
        self.trace.events.append(
            PullEvent(
                step=len(self.trace.events) + 1,
                relation=i,
                depths=tuple(state.depths()),
                bound=t,
                kth_score=state.output.kth_score,
                results_held=len(state.output),
            )
        )
        return t

    def potentials(self, state: EngineState) -> list[float]:
        return self.inner.potentials(state)
