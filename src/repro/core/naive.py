"""Brute-force oracle: exact top-K over the materialised cross product.

Reads *everything* (sumDepths = sum of relation sizes), scores every
combination and returns the exact top-K.  This is the ground truth every
correctness test compares against, and the "read-all" baseline any pull/
bound algorithm must beat on I/O.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.core.buffers import TopKBuffer
from repro.core.relation import Combination, Relation
from repro.core.scoring import Scoring

__all__ = ["brute_force_topk"]


def brute_force_topk(
    relations: list[Relation],
    scoring: Scoring,
    query: np.ndarray,
    k: int,
) -> list[Combination]:
    """Exact top-K combinations, best first (ties by tuple-id key)."""
    if not relations:
        raise ValueError("need at least one relation")
    buffer = TopKBuffer(k)
    query = np.asarray(query, dtype=float)
    for tuples in itertools.product(*relations):
        buffer.add(scoring.make_combination(tuples, query))
    return buffer.ranked()
