"""Vectorised combination scoring for quadratic-form aggregations.

Algorithm 1's line 6 forms ``P_1 x ... x {tau} x ... x P_n`` after every
pull; with corner-bound algorithms at n >= 3 this cross product is the
dominant CPU cost (the paper's Figure 3(k) shows CBPA drowning in
combination formation).  For the quadratic family (2) the aggregate score
separates::

    S(tau) = sum_i [w_s u(sigma_i) - (w_q + w_mu) ||x_i - q||^2]
             + (w_mu / n) || sum_i (x_i - q) ||^2

using ``sum_i ||x_i - mu||^2 = sum_i ||x_i||^2 - (1/n) ||sum_i x_i||^2``
for the mean centroid.  Both terms are outer sums over the pools, so a
whole batch is scored with broadcasting; only the handful of candidates
that can possibly enter the top-K buffer are materialised as
:class:`Combination` objects (with their score recomputed by the
canonical scalar path, so downstream ordering is bit-identical to the
non-vectorised engine).

:class:`CandidatePruner` lifts the same cached statistics to block
granularity: the engine's block-pull mode asks it whether a whole block
cross product can possibly beat the current K-th score, and skips the
scoring pass entirely when it cannot.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.buffers import TopKBuffer
from repro.core.relation import RankTuple
from repro.core.scoring import QuadraticFormScoring

__all__ = ["QuadraticBatchScorer", "CandidatePruner"]

#: Extra candidates materialised beyond K to absorb float-associativity
#: reordering between the batched and the canonical score evaluation.
_SLACK = 8


class QuadraticBatchScorer:
    """Batch scorer bound to one (scoring, query) pair.

    Per-tuple statistics (utility-minus-distance scalar and the centred
    feature vector) are cached across calls, so repeated pools — the seen
    prefixes, re-submitted on every pull — cost array indexing only.
    """

    def __init__(self, scoring: QuadraticFormScoring, query: np.ndarray) -> None:
        self.scoring = scoring
        self.query = np.asarray(query, dtype=float)
        self._scalar: dict[tuple[str, int], float] = {}
        self._vector: dict[tuple[str, int], np.ndarray] = {}
        self._norm: dict[tuple[str, int], float] = {}

    def _stats(self, tup: RankTuple) -> tuple[float, np.ndarray]:
        key = (tup.relation, tup.tid)
        scalar = self._scalar.get(key)
        if scalar is None:
            centred = np.asarray(tup.vector, dtype=float) - self.query
            sq = float(centred @ centred)
            scalar = self.scoring.w_s * self.scoring.score_utility(tup.score) - (
                self.scoring.w_q + self.scoring.w_mu
            ) * sq
            self._scalar[key] = scalar
            self._vector[key] = centred
            self._norm[key] = math.sqrt(sq)
        return scalar, self._vector[key]

    def score_pools(self, pools: list[list[RankTuple]]) -> np.ndarray:
        """Aggregate scores of the full cross product of ``pools``.

        Returns an n-dimensional array indexed like the pools.
        """
        n = len(pools)
        d = len(self.query)
        acc_scalar = np.zeros(())
        acc_vec = np.zeros((d,))
        for pool in pools:
            stats = [self._stats(t) for t in pool]
            a = np.array([s for s, _ in stats])
            v = np.array([vec for _, vec in stats]).reshape(len(pool), d)
            acc_scalar = acc_scalar[..., None] + a
            acc_vec = acc_vec[..., None, :] + v
        spread = np.einsum("...d,...d->...", acc_vec, acc_vec)
        return acc_scalar + (self.scoring.w_mu / n) * spread

    def add_cross_product(
        self, pools: list[list[RankTuple]], output: TopKBuffer
    ) -> int:
        """Score ``prod(pools)`` and offer the viable candidates to the
        top-K buffer.  Returns the number of combinations scored."""
        if any(not pool for pool in pools):
            return 0
        scores = self.score_pools(pools)
        total = scores.size
        flat = scores.ravel()
        keep = min(total, output.k + _SLACK)
        if keep < total:
            # The partition picks *some* keep candidates; with more than
            # ``keep`` candidates tied at the boundary score it would pick
            # an arbitrary subset of the ties, while the sequential engine
            # resolves ties by the deterministic tuple-id key.  Widen the
            # cut to every candidate tied with the boundary (and drop the
            # ones that cannot beat the current K-th score even before
            # materialisation); the buffer then applies the canonical
            # tie-break over the full tied cohort.  Small epsilons guard
            # float drift between the batched and the canonical scores.
            boundary = np.argpartition(flat, total - keep)[total - keep :]
            floor = max(float(flat[boundary].min()), output.kth_score) - 1e-9
            idx = np.nonzero(flat >= floor)[0]
        else:
            idx = np.arange(total)
        # Best-first insertion keeps the buffer's tie-breaking identical
        # to the sequential engine.
        idx = idx[np.argsort(-flat[idx], kind="stable")]
        shape = scores.shape
        for flat_pos in idx:
            coords = np.unravel_index(int(flat_pos), shape)
            tuples = tuple(pool[c] for pool, c in zip(pools, coords))
            output.add(self.scoring.make_combination(tuples, self.query))
        return total

    def pools_upper_bound(self, pools: list[list[RankTuple]]) -> float:
        """Cheap upper bound on the best score in ``prod(pools)``.

        Uses the separated form of the quadratic family: with
        ``scalar(t) = w_s u(sigma) - (w_q + w_mu) ||x - q||^2`` and
        ``v(t) = x - q``, two correct relaxations of

            S = sum_i scalar(t_i) + (w_mu / n) || sum_i v(t_i) ||^2

        are combined:

        * triangle inequality:
          ``S <= sum_i max scalar + (w_mu / n) (sum_i max ||v||)^2``
        * dropping the centroid coupling via ``||sum v||^2 <= n sum
          ||v||^2``, which cancels the ``w_mu`` distance charge per tuple:
          ``S <= sum_i max [w_s u(sigma) - w_q ||x - q||^2]``

        The second is what bites for far-away blocks (their ``- w_q
        ||x - q||^2`` term sinks the sum); the first wins when ``w_q`` is
        tiny.  Costs one cached-dict lookup per pool tuple — no cross
        product is formed — which is what makes skipping whole blocks
        profitable.
        """
        w_mu = self.scoring.w_mu
        sum_scalar = 0.0
        norm_sum = 0.0
        sum_cheap = 0.0
        for pool in pools:
            pool_scalar = -np.inf
            pool_norm = 0.0
            pool_cheap = -np.inf
            for tup in pool:
                scalar, _ = self._stats(tup)
                norm = self._norm[(tup.relation, tup.tid)]
                if scalar > pool_scalar:
                    pool_scalar = scalar
                if norm > pool_norm:
                    pool_norm = norm
                cheap = scalar + w_mu * norm * norm
                if cheap > pool_cheap:
                    pool_cheap = cheap
            sum_scalar += pool_scalar
            norm_sum += pool_norm
            sum_cheap += pool_cheap
        triangle = sum_scalar + (w_mu / len(pools)) * norm_sum * norm_sum
        return min(triangle, sum_cheap)


class CandidatePruner:
    """Engine-level admission test for candidate blocks.

    Generalises the batch scorer's per-tuple caching into a block-level
    filter: before a block cross product is scored, an upper bound on its
    best achievable aggregate score (:meth:`QuadraticBatchScorer.
    pools_upper_bound`) is compared against the current K-th score.  A
    block that provably cannot place a combination into the top-K buffer
    is skipped without scoring or materialising anything.

    The bound overestimates, and ties at the K-th score survive the
    epsilon guard, so pruning never changes the engine's ranked top-K —
    only the work done to reach it.
    """

    def __init__(self, scorer: QuadraticBatchScorer) -> None:
        self.scorer = scorer
        self.blocks_pruned = 0
        self.blocks_scored = 0
        self.combinations_pruned = 0

    def admit(self, pools: list[list[RankTuple]], kth_score: float) -> bool:
        """Whether the block's cross product must be scored."""
        if any(not pool for pool in pools):
            return False  # nothing to form; not counted as a pruned block
        if kth_score == -np.inf:
            self.blocks_scored += 1
            return True
        if self.scorer.pools_upper_bound(pools) < kth_score - 1e-9:
            self.blocks_pruned += 1
            size = 1
            for pool in pools:
                size *= len(pool)
            self.combinations_pruned += size
            return False
        self.blocks_scored += 1
        return True

    def as_dict(self) -> dict[str, float]:
        return {
            "blocks_pruned": self.blocks_pruned,
            "blocks_scored": self.blocks_scored,
            "combinations_pruned": self.combinations_pruned,
        }
