"""Columnar combination scoring for quadratic-form aggregations.

Algorithm 1's line 6 forms ``P_1 x ... x {tau} x ... x P_n`` after every
pull; with corner-bound algorithms at n >= 3 this cross product is the
dominant CPU cost (the paper's Figure 3(k) shows CBPA drowning in
combination formation).  For the quadratic family (2) the aggregate score
separates::

    S(tau) = sum_i [w_s u(sigma_i) - (w_q + w_mu) ||x_i - q||^2]
             + (w_mu / n) || sum_i (x_i - q) ||^2

using ``sum_i ||x_i - mu||^2 = sum_i ||x_i||^2 - (1/n) ||sum_i x_i||^2``
for the mean centroid.  Both terms are outer sums over the pools, so a
whole batch is scored with broadcasting.

The hot path is **columnar**: :meth:`QuadraticBatchScorer.bind_streams`
attaches one :class:`_PrefixSlab` per access stream — a derived
structure-of-arrays cache, aligned with the stream's
:class:`~repro.core.columnar.ColumnarPrefix`, holding the centred vectors
``x - q``, the per-tuple scalar ``w_s u(sigma) - (w_q + w_mu)||x - q||^2``,
the centred norms, and *running per-prefix maxima* of the pruning
statistics.  Slabs grow append-only in amortised O(1) per pulled tuple;
everything downstream indexes by **access position**:

* :meth:`QuadraticBatchScorer.score_ranges` scores a cross product of
  prefix ranges with pure broadcasting over slab slices — no per-pull
  Python loop, no ``(relation, tid)`` dict hashing;
* :meth:`QuadraticBatchScorer.ranges_upper_bound` bounds a block cross
  product in O(1) per full prefix by reading the running maxima, which
  makes :meth:`CandidatePruner.admit_ranges` an O(1)-per-block admission
  test;
* :meth:`QuadraticBatchScorer.add_cross_ranges` materialises only the
  handful of candidates that can possibly enter the top-K buffer (their
  scores recomputed by the canonical scalar path, so downstream ordering
  is bit-identical to the object-per-tuple engine) and admits them via
  :meth:`~repro.core.buffers.TopKBuffer.add_many`.

The tuple-list entry points (:meth:`~QuadraticBatchScorer.score_pools`,
:meth:`~QuadraticBatchScorer.add_cross_product`,
:meth:`~QuadraticBatchScorer.pools_upper_bound`) remain for arbitrary
pools — tests, user code and duck-typed streams without a columnar
prefix — backed by the original per-tuple cache.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.buffers import TopKBuffer
from repro.core.relation import Combination, RankTuple
from repro.core.scoring import QuadraticFormScoring

__all__ = ["QuadraticBatchScorer", "CandidatePruner"]

#: Extra candidates materialised beyond K to absorb float-associativity
#: reordering between the batched and the canonical score evaluation.
_SLACK = 8

#: One range of one stream's prefix, by access position: (stream index,
#: start, stop).  The engine passes (j, 0, depth_j) for the full seen
#: prefixes and (i, depth_i - b, depth_i) for the pulled block.
Range = tuple[int, int, int]


class _PrefixSlab:
    """Scoring-derived columnar cache over one stream's prefix.

    Aligned with the stream's access order; row ``p`` derives from the
    ``p``-th pulled tuple.  Arrays grow by doubling, and each sync
    vectorises over just the newly pulled suffix, so maintaining a slab
    costs amortised O(1) per pull.
    """

    __slots__ = (
        "scoring",
        "query",
        "synced",
        "centred",
        "scalar",
        "norm",
        "cheap",
        "max_scalar",
        "max_norm",
        "max_cheap",
    )

    def __init__(self, scoring: QuadraticFormScoring, query: np.ndarray) -> None:
        self.scoring = scoring
        self.query = query
        self.synced = 0
        d = len(query)
        cap = 16
        self.centred = np.empty((cap, d))
        #: w_s u(sigma) - (w_q + w_mu) ||x - q||^2, the separated scalar.
        self.scalar = np.empty(cap)
        self.norm = np.empty(cap)
        #: scalar + w_mu ||x - q||^2 — the centroid-decoupled relaxation.
        self.cheap = np.empty(cap)
        self.max_scalar = np.empty(cap)
        self.max_norm = np.empty(cap)
        self.max_cheap = np.empty(cap)

    def _grow(self, needed: int) -> None:
        cap = len(self.scalar)
        while cap < needed:
            cap *= 2
        p = self.synced
        for name in self.__slots__[3:]:
            old = getattr(self, name)
            fresh = np.empty((cap,) + old.shape[1:])
            fresh[:p] = old[:p]
            setattr(self, name, fresh)

    def sync(self, prefix, depth: int) -> None:
        """Derive rows ``[synced, depth)`` from the stream's raw prefix."""
        lo = self.synced
        if depth <= lo:
            return
        if depth > len(self.scalar):
            self._grow(depth)
        vecs, scores, _ = prefix.arrays(lo, depth)
        scoring = self.scoring
        centred = vecs - self.query
        sq = np.einsum("ij,ij->i", centred, centred)
        scalar = scoring.w_s * scoring.score_utility_array(scores) - (
            scoring.w_q + scoring.w_mu
        ) * sq
        self.centred[lo:depth] = centred
        self.scalar[lo:depth] = scalar
        self.norm[lo:depth] = np.sqrt(sq)
        cheap = scalar + scoring.w_mu * sq
        self.cheap[lo:depth] = cheap
        # Running maxima, seeded with the previous prefix maximum so a
        # full-prefix bound is one array read.
        for src, dst in (
            (self.scalar, self.max_scalar),
            (self.norm, self.max_norm),
            (self.cheap, self.max_cheap),
        ):
            chunk = src[lo:depth]
            if lo:
                chunk = np.maximum(chunk, dst[lo - 1])
            dst[lo:depth] = np.maximum.accumulate(chunk)
        self.synced = depth


class QuadraticBatchScorer:
    """Batch scorer bound to one (scoring, query) pair.

    Per-tuple statistics (utility-minus-distance scalar and the centred
    feature vector) are cached across calls: columnar slabs indexed by
    access position for bound streams, a ``(relation, tid)`` dict for the
    generic tuple-list path.
    """

    def __init__(
        self,
        scoring: QuadraticFormScoring,
        query: np.ndarray,
        *,
        workspace=None,
    ) -> None:
        self.scoring = scoring
        self.query = np.asarray(query, dtype=float)
        #: Optional per-run BoundWorkspace (repro.core.bounds.workspace):
        #: when the engine threads one through, the candidate sieve's
        #: per-block temporaries come from its grow-only scratch slabs
        #: instead of fresh allocations.
        self.workspace = workspace
        self._scalar: dict[tuple[str, int], float] = {}
        self._vector: dict[tuple[str, int], np.ndarray] = {}
        self._norm: dict[tuple[str, int], float] = {}
        self._streams: list | None = None
        self._slabs: list[_PrefixSlab] = []

    def _scratch(self, name: str, shape: tuple[int, ...]) -> np.ndarray:
        """A zeroed scratch array — workspace-backed when available."""
        if self.workspace is not None:
            return self.workspace.array(name, shape, zero=True)
        return np.zeros(shape)

    # -- columnar path -----------------------------------------------------

    def bind_streams(self, streams: list) -> bool:
        """Attach one prefix slab per stream; True when every stream
        exposes a columnar prefix (the engine's condition for taking the
        range-based path).  Duck-typed streams without ``prefix`` keep
        the tuple-list path."""
        if not all(getattr(s, "prefix", None) is not None for s in streams):
            self._streams = None
            self._slabs = []
            return False
        self._streams = streams
        self._slabs = [_PrefixSlab(self.scoring, self.query) for _ in streams]
        return True

    def _slab(self, j: int, hi: int) -> _PrefixSlab:
        slab = self._slabs[j]
        if slab.synced < hi:
            slab.sync(self._streams[j].prefix, hi)
        return slab

    def score_ranges(self, ranges: list[Range]) -> np.ndarray:
        """Aggregate scores of the cross product of prefix ranges.

        Returns an n-dimensional array indexed like the ranges.  Pure
        broadcasting over cached slab slices: the per-tuple statistics
        were derived when the tuples were pulled, so re-scoring a prefix
        against a new block costs array arithmetic only.
        """
        n = len(ranges)
        acc_scalar = np.zeros(())
        acc_vec = np.zeros((len(self.query),))
        for j, lo, hi in ranges:
            slab = self._slab(j, hi)
            acc_scalar = acc_scalar[..., None] + slab.scalar[lo:hi]
            acc_vec = acc_vec[..., None, :] + slab.centred[lo:hi]
        spread = np.einsum("...d,...d->...", acc_vec, acc_vec)
        return acc_scalar + (self.scoring.w_mu / n) * spread

    def add_cross_ranges(self, ranges: list[Range], output: TopKBuffer) -> int:
        """Score the cross product of ``ranges`` and offer the viable
        candidates to the top-K buffer.  Returns combinations scored.

        The aggregate separates into a broadcast sum of cached per-tuple
        scalars plus a non-negative spread term, so the K-th score
        admits a staged sieve that avoids ever materialising the
        ``(..., d)`` centred-vector broadcast — the dominant memory
        traffic of dense scoring:

        1. dense scalar grid + *constant* spread cap (range norm maxima,
           O(1) from the slabs): drops every combination whose scalar sum
           alone sinks it;
        2. per-survivor norm-sum cap (gathered, sparse): tightens the
           spread bound per combination;
        3. exact spread for the remaining handful.

        Each stage's cap dominates the true score up to float rounding,
        and the sieve keeps a strict superset of everything within
        ``1e-9`` of the K-th score (2e-9 thresholds absorb the rounding),
        so the surviving cohort — and hence the buffer's retained set,
        which is decided by canonically recomputed scores — is identical
        to dense scoring's.
        """
        if any(hi <= lo for _, lo, hi in ranges):
            return 0
        n = len(ranges)
        w_mu = self.scoring.w_mu
        kth = output.kth_score
        slabs = [self._slab(j, hi) for j, _, hi in ranges]
        acc = np.zeros(())
        for slab, (_, lo, hi) in zip(slabs, ranges):
            acc = acc[..., None] + slab.scalar[lo:hi]
        shape = acc.shape
        total = acc.size
        flat_scalar = acc.ravel()
        coords: tuple[np.ndarray, ...] | None = None
        if kth == -np.inf:
            # Buffer not yet full: everything is viable, score densely
            # (depths are small this early).
            idx = np.arange(total)
            exact = self.score_ranges(ranges).ravel()
        elif w_mu == 0.0:
            idx = np.nonzero(flat_scalar >= kth - 2e-9)[0]
            exact = flat_scalar[idx]
        else:
            norm_cap = 0.0
            for slab, (_, lo, hi) in zip(slabs, ranges):
                norm_cap += (
                    slab.max_norm[hi - 1] if lo == 0 else slab.norm[lo:hi].max()
                )
            spread_cap = (w_mu / n) * norm_cap * norm_cap
            idx = np.nonzero(flat_scalar >= kth - 2e-9 - spread_cap)[0]
            if idx.size:
                coords = np.unravel_index(idx, shape)
                norm_sum = self._scratch("sieve_norm_sum", (idx.size,))
                for slab, (_, lo, _), c in zip(slabs, ranges, coords):
                    norm_sum += slab.norm[lo + c]
                upper = flat_scalar[idx] + (w_mu / n) * norm_sum * norm_sum
                alive = upper >= kth - 2e-9
                idx = idx[alive]
                coords = tuple(c[alive] for c in coords)
            if idx.size:
                vsum = self._scratch("sieve_vsum", (idx.size, len(self.query)))
                for slab, (_, lo, _), c in zip(slabs, ranges, coords):
                    vsum += slab.centred[lo + c]
                exact = flat_scalar[idx] + (w_mu / n) * np.einsum(
                    "md,md->m", vsum, vsum
                )
            else:
                exact = np.zeros(0)
        if idx.size == 0:
            return total
        # Same viable cut as the dense path (the sieve keeps a superset
        # of every candidate above the floor, so the floor — and the
        # selected cohort — matches dense scoring exactly).
        m = idx.size
        keep = min(m, output.k + _SLACK)
        if keep < m:
            boundary = np.argpartition(exact, m - keep)[m - keep :]
            floor = max(float(exact[boundary].min()), kth) - 1e-9
            sel = exact >= floor
            idx = idx[sel]
            exact = exact[sel]
        order = np.argsort(-exact, kind="stable")
        final = np.unravel_index(idx[order], shape)
        seens = [self._streams[j].seen for j, _, _ in ranges]
        offsets = [lo for _, lo, _ in ranges]
        scoring = self.scoring
        query = self.query
        combos = [
            scoring.make_combination(
                tuple(
                    seen[off + int(c)]
                    for seen, off, c in zip(seens, offsets, pos)
                ),
                query,
            )
            for pos in zip(*final)
        ]
        output.add_many(combos)
        return total

    def ranges_upper_bound(self, ranges: list[Range]) -> float:
        """Upper bound on the best score in the cross product of
        ``ranges`` — O(1) per full prefix via the slabs' running maxima
        (a suffix range, i.e. the pulled block, reduces over its own
        (small) slice).  Same two relaxations as
        :meth:`pools_upper_bound`."""
        w_mu = self.scoring.w_mu
        sum_scalar = 0.0
        norm_sum = 0.0
        sum_cheap = 0.0
        for j, lo, hi in ranges:
            slab = self._slab(j, hi)
            if lo == 0:
                pool_scalar = slab.max_scalar[hi - 1]
                pool_norm = slab.max_norm[hi - 1]
                pool_cheap = slab.max_cheap[hi - 1]
            else:
                pool_scalar = slab.scalar[lo:hi].max()
                pool_norm = slab.norm[lo:hi].max()
                pool_cheap = slab.cheap[lo:hi].max()
            sum_scalar += pool_scalar
            norm_sum += pool_norm
            sum_cheap += pool_cheap
        triangle = sum_scalar + (w_mu / len(ranges)) * norm_sum * norm_sum
        return float(min(triangle, sum_cheap))

    # -- shared candidate selection ----------------------------------------

    def _viable(self, scores: np.ndarray, output: TopKBuffer) -> np.ndarray:
        """Flat indices of the candidates worth materialising, sorted
        best-first by batched score (stable, so downstream tie-breaking
        stays deterministic)."""
        total = scores.size
        flat = scores.ravel()
        keep = min(total, output.k + _SLACK)
        if keep < total:
            # The partition picks *some* keep candidates; with more than
            # ``keep`` candidates tied at the boundary score it would pick
            # an arbitrary subset of the ties, while the sequential engine
            # resolves ties by the deterministic tuple-id key.  Widen the
            # cut to every candidate tied with the boundary (and drop the
            # ones that cannot beat the current K-th score even before
            # materialisation); the buffer then applies the canonical
            # tie-break over the full tied cohort.  Small epsilons guard
            # float drift between the batched and the canonical scores.
            boundary = np.argpartition(flat, total - keep)[total - keep :]
            floor = max(float(flat[boundary].min()), output.kth_score) - 1e-9
            idx = np.nonzero(flat >= floor)[0]
        else:
            idx = np.arange(total)
        # Best-first insertion keeps the buffer's tie-breaking identical
        # to the sequential engine.
        return idx[np.argsort(-flat[idx], kind="stable")]

    # -- generic tuple-list path -------------------------------------------

    def _stats(self, tup: RankTuple) -> tuple[float, np.ndarray]:
        key = (tup.relation, tup.tid)
        scalar = self._scalar.get(key)
        if scalar is None:
            centred = np.asarray(tup.vector, dtype=float) - self.query
            sq = float(centred @ centred)
            scalar = self.scoring.w_s * self.scoring.score_utility(tup.score) - (
                self.scoring.w_q + self.scoring.w_mu
            ) * sq
            self._scalar[key] = scalar
            self._vector[key] = centred
            self._norm[key] = math.sqrt(sq)
        return scalar, self._vector[key]

    def score_pools(self, pools: list[list[RankTuple]]) -> np.ndarray:
        """Aggregate scores of the full cross product of ``pools``.

        Returns an n-dimensional array indexed like the pools.  Generic
        path for explicit tuple lists; the engine's stream pools go
        through :meth:`score_ranges` instead.
        """
        n = len(pools)
        d = len(self.query)
        acc_scalar = np.zeros(())
        acc_vec = np.zeros((d,))
        for pool in pools:
            stats = [self._stats(t) for t in pool]
            a = np.array([s for s, _ in stats])
            v = np.array([vec for _, vec in stats]).reshape(len(pool), d)
            acc_scalar = acc_scalar[..., None] + a
            acc_vec = acc_vec[..., None, :] + v
        spread = np.einsum("...d,...d->...", acc_vec, acc_vec)
        return acc_scalar + (self.scoring.w_mu / n) * spread

    def add_cross_product(
        self, pools: list[list[RankTuple]], output: TopKBuffer
    ) -> int:
        """Score ``prod(pools)`` and offer the viable candidates to the
        top-K buffer.  Returns the number of combinations scored."""
        if any(not pool for pool in pools):
            return 0
        scores = self.score_pools(pools)
        idx = self._viable(scores, output)
        shape = scores.shape
        combos: list[Combination] = []
        for flat_pos in idx:
            coords = np.unravel_index(int(flat_pos), shape)
            tuples = tuple(pool[c] for pool, c in zip(pools, coords))
            combos.append(self.scoring.make_combination(tuples, self.query))
        output.add_many(combos)
        return scores.size

    def pools_upper_bound(self, pools: list[list[RankTuple]]) -> float:
        """Cheap upper bound on the best score in ``prod(pools)``.

        Uses the separated form of the quadratic family: with
        ``scalar(t) = w_s u(sigma) - (w_q + w_mu) ||x - q||^2`` and
        ``v(t) = x - q``, two correct relaxations of

            S = sum_i scalar(t_i) + (w_mu / n) || sum_i v(t_i) ||^2

        are combined:

        * triangle inequality:
          ``S <= sum_i max scalar + (w_mu / n) (sum_i max ||v||)^2``
        * dropping the centroid coupling via ``||sum v||^2 <= n sum
          ||v||^2``, which cancels the ``w_mu`` distance charge per tuple:
          ``S <= sum_i max [w_s u(sigma) - w_q ||x - q||^2]``

        The second is what bites for far-away blocks (their ``- w_q
        ||x - q||^2`` term sinks the sum); the first wins when ``w_q`` is
        tiny.  Costs one cached-dict lookup per pool tuple — the
        columnar :meth:`ranges_upper_bound` replaces even that with O(1)
        running-maxima reads.
        """
        w_mu = self.scoring.w_mu
        sum_scalar = 0.0
        norm_sum = 0.0
        sum_cheap = 0.0
        for pool in pools:
            pool_scalar = -np.inf
            pool_norm = 0.0
            pool_cheap = -np.inf
            for tup in pool:
                scalar, _ = self._stats(tup)
                norm = self._norm[(tup.relation, tup.tid)]
                if scalar > pool_scalar:
                    pool_scalar = scalar
                if norm > pool_norm:
                    pool_norm = norm
                cheap = scalar + w_mu * norm * norm
                if cheap > pool_cheap:
                    pool_cheap = cheap
            sum_scalar += pool_scalar
            norm_sum += pool_norm
            sum_cheap += pool_cheap
        triangle = sum_scalar + (w_mu / len(pools)) * norm_sum * norm_sum
        return min(triangle, sum_cheap)


class CandidatePruner:
    """Engine-level admission test for candidate blocks.

    Before a block cross product is scored, an upper bound on its best
    achievable aggregate score is compared against the current K-th
    score.  A block that provably cannot place a combination into the
    top-K buffer is skipped without scoring or materialising anything.
    On the columnar path (:meth:`admit_ranges`) the bound reads the
    slabs' running per-prefix maxima, so admission costs O(1) per block
    instead of a rescan of every pool tuple.

    The bound overestimates, and ties at the K-th score survive the
    epsilon guard, so pruning never changes the engine's ranked top-K —
    only the work done to reach it.
    """

    def __init__(self, scorer: QuadraticBatchScorer) -> None:
        self.scorer = scorer
        self.blocks_pruned = 0
        self.blocks_scored = 0
        self.combinations_pruned = 0

    def admit_ranges(self, ranges: list[Range], kth_score: float) -> bool:
        """Whether the cross product of prefix ranges must be scored."""
        if any(hi <= lo for _, lo, hi in ranges):
            return False  # nothing to form; not counted as a pruned block
        if kth_score == -np.inf:
            self.blocks_scored += 1
            return True
        if self.scorer.ranges_upper_bound(ranges) < kth_score - 1e-9:
            self.blocks_pruned += 1
            size = 1
            for _, lo, hi in ranges:
                size *= hi - lo
            self.combinations_pruned += size
            return False
        self.blocks_scored += 1
        return True

    def admit(self, pools: list[list[RankTuple]], kth_score: float) -> bool:
        """Tuple-list variant of :meth:`admit_ranges`."""
        if any(not pool for pool in pools):
            return False  # nothing to form; not counted as a pruned block
        if kth_score == -np.inf:
            self.blocks_scored += 1
            return True
        if self.scorer.pools_upper_bound(pools) < kth_score - 1e-9:
            self.blocks_pruned += 1
            size = 1
            for pool in pools:
                size *= len(pool)
            self.combinations_pruned += size
            return False
        self.blocks_scored += 1
        return True

    def as_dict(self) -> dict[str, float]:
        return {
            "blocks_pruned": self.blocks_pruned,
            "blocks_scored": self.blocks_scored,
            "combinations_pruned": self.combinations_pruned,
        }
