"""Vectorised combination scoring for quadratic-form aggregations.

Algorithm 1's line 6 forms ``P_1 x ... x {tau} x ... x P_n`` after every
pull; with corner-bound algorithms at n >= 3 this cross product is the
dominant CPU cost (the paper's Figure 3(k) shows CBPA drowning in
combination formation).  For the quadratic family (2) the aggregate score
separates::

    S(tau) = sum_i [w_s u(sigma_i) - (w_q + w_mu) ||x_i - q||^2]
             + (w_mu / n) || sum_i (x_i - q) ||^2

using ``sum_i ||x_i - mu||^2 = sum_i ||x_i||^2 - (1/n) ||sum_i x_i||^2``
for the mean centroid.  Both terms are outer sums over the pools, so a
whole batch is scored with broadcasting; only the handful of candidates
that can possibly enter the top-K buffer are materialised as
:class:`Combination` objects (with their score recomputed by the
canonical scalar path, so downstream ordering is bit-identical to the
non-vectorised engine).
"""

from __future__ import annotations

import numpy as np

from repro.core.buffers import TopKBuffer
from repro.core.relation import RankTuple
from repro.core.scoring import QuadraticFormScoring

__all__ = ["QuadraticBatchScorer"]

#: Extra candidates materialised beyond K to absorb float-associativity
#: reordering between the batched and the canonical score evaluation.
_SLACK = 8


class QuadraticBatchScorer:
    """Batch scorer bound to one (scoring, query) pair.

    Per-tuple statistics (utility-minus-distance scalar and the centred
    feature vector) are cached across calls, so repeated pools — the seen
    prefixes, re-submitted on every pull — cost array indexing only.
    """

    def __init__(self, scoring: QuadraticFormScoring, query: np.ndarray) -> None:
        self.scoring = scoring
        self.query = np.asarray(query, dtype=float)
        self._scalar: dict[tuple[str, int], float] = {}
        self._vector: dict[tuple[str, int], np.ndarray] = {}

    def _stats(self, tup: RankTuple) -> tuple[float, np.ndarray]:
        key = (tup.relation, tup.tid)
        scalar = self._scalar.get(key)
        if scalar is None:
            centred = np.asarray(tup.vector, dtype=float) - self.query
            scalar = self.scoring.w_s * self.scoring.score_utility(tup.score) - (
                self.scoring.w_q + self.scoring.w_mu
            ) * float(centred @ centred)
            self._scalar[key] = scalar
            self._vector[key] = centred
        return scalar, self._vector[key]

    def score_pools(self, pools: list[list[RankTuple]]) -> np.ndarray:
        """Aggregate scores of the full cross product of ``pools``.

        Returns an n-dimensional array indexed like the pools.
        """
        n = len(pools)
        d = len(self.query)
        acc_scalar = np.zeros(())
        acc_vec = np.zeros((d,))
        for pool in pools:
            stats = [self._stats(t) for t in pool]
            a = np.array([s for s, _ in stats])
            v = np.array([vec for _, vec in stats]).reshape(len(pool), d)
            acc_scalar = acc_scalar[..., None] + a
            acc_vec = acc_vec[..., None, :] + v
        spread = np.einsum("...d,...d->...", acc_vec, acc_vec)
        return acc_scalar + (self.scoring.w_mu / n) * spread

    def add_cross_product(
        self, pools: list[list[RankTuple]], output: TopKBuffer
    ) -> int:
        """Score ``prod(pools)`` and offer the viable candidates to the
        top-K buffer.  Returns the number of combinations scored."""
        if any(not pool for pool in pools):
            return 0
        scores = self.score_pools(pools)
        total = scores.size
        flat = scores.ravel()
        keep = min(total, output.k + _SLACK)
        if keep < total:
            idx = np.argpartition(flat, total - keep)[total - keep :]
            # Skip candidates that cannot beat the current K-th score even
            # before materialisation (small epsilon guards float drift).
            floor = output.kth_score - 1e-9
            idx = idx[flat[idx] >= floor]
        else:
            idx = np.arange(total)
        # Best-first insertion keeps the buffer's tie-breaking identical
        # to the sequential engine.
        idx = idx[np.argsort(-flat[idx], kind="stable")]
        shape = scores.shape
        for flat_pos in idx:
            coords = np.unravel_index(int(flat_pos), shape)
            tuples = tuple(pool[c] for pool, c in zip(pools, coords))
            output.add(self.scoring.make_combination(tuples, self.query))
        return total
