"""Bounding schemes: corner (HRJN's) and tight (the paper's contribution),
plus the geometry, dominance and numeric-fallback machinery behind them."""

from repro.core.bounds.approximate import ApproxTightBound
from repro.core.bounds.base import BoundCounters, BoundingScheme, EngineState
from repro.core.bounds.corner import CornerBound
from repro.core.bounds.dominance import (
    dominance_lp_problems,
    dominated_mask,
    dominated_mask_batch,
)
from repro.core.bounds.geometry import (
    CompletionResult,
    PartialGeometry,
    completion_geometry,
    dominance_coefficients,
    partial_geometry,
    score_access_completion,
    score_access_completion_batch,
    solve_completion,
    unconstrained_optimum,
)
from repro.core.bounds.tight import TightBound
from repro.core.bounds.workspace import BoundWorkspace

__all__ = [
    "ApproxTightBound",
    "BoundCounters",
    "BoundingScheme",
    "BoundWorkspace",
    "EngineState",
    "CornerBound",
    "TightBound",
    "CompletionResult",
    "PartialGeometry",
    "completion_geometry",
    "dominance_coefficients",
    "dominance_lp_problems",
    "dominated_mask",
    "dominated_mask_batch",
    "partial_geometry",
    "score_access_completion",
    "score_access_completion_batch",
    "solve_completion",
    "unconstrained_optimum",
]
