"""Numeric tight-bound fallback for non-quadratic scorings.

The paper's closed forms (Sec. 3.2.1, App. C.2) require the Euclidean
quadratic aggregation family (2).  For other scorings — notably the
cosine-similarity proximity the paper lists as future work — the inner
problem (6)/(39) is solved numerically: maximise the aggregate score over
the unseen locations ``y_j``, subject to ``||y_j - q|| >= delta_j`` under
distance access (no constraints under score access).

This is a best-effort bound helper: SLSQP from scipy with a few structured
restarts (at the constraint boundary towards the partial centroid, at the
query, and at the seen points).  For the quadratic family the result is
cross-checked against the exact QP in the test suite.

Because a numeric *maximiser* may undershoot the true optimum (making the
"bound" unsafe), callers that need guaranteed correctness should inflate
the result or restrict themselves to quadratic scorings; the library's
default algorithms only use this module when the user explicitly opts in.
"""

from __future__ import annotations

import itertools
import time

import numpy as np

from repro.core.scoring import Scoring

__all__ = ["numeric_completion", "NumericTightBound"]


def _objective(
    scoring: Scoring,
    n: int,
    query: np.ndarray,
    seen: dict[int, tuple[float, np.ndarray]],
    unseen_sigma: dict[int, float],
    flat_y: np.ndarray,
) -> float:
    d = len(query)
    unseen_idx = sorted(unseen_sigma)
    ys = {j: flat_y[k * d : (k + 1) * d] for k, j in enumerate(unseen_idx)}
    pts = np.zeros((n, d))
    for i, (_, vec) in seen.items():
        pts[i] = vec
    for j, y in ys.items():
        pts[j] = y
    mu = scoring.centroid(pts)
    weighted = []
    for i in range(n):
        if i in seen:
            score = seen[i][0]
        else:
            score = unseen_sigma[i]
        weighted.append(
            scoring.weighted_score(
                i, score, scoring.distance(pts[i], query), scoring.distance(pts[i], mu)
            )
        )
    return scoring.aggregate(weighted)


def numeric_completion(
    scoring: Scoring,
    n: int,
    query: np.ndarray,
    seen: dict[int, tuple[float, np.ndarray]],
    unseen_sigma: dict[int, float],
    unseen_delta: dict[int, float] | None = None,
    *,
    restarts: int = 4,
    seed: int = 0,
) -> float:
    """Numerically maximise the completion objective; returns the bound.

    ``unseen_delta`` activates the distance-access constraints
    ``||y_j - q|| >= delta_j``; ``None`` means unconstrained (score
    access).
    """
    from scipy import optimize  # local import: scipy optional at runtime

    query = np.asarray(query, dtype=float)
    d = len(query)
    unseen_idx = sorted(unseen_sigma)
    if not unseen_idx:
        raise ValueError("completion needs at least one unseen relation")
    deltas = unseen_delta or {}

    def neg(flat_y: np.ndarray) -> float:
        return -_objective(scoring, n, query, seen, unseen_sigma, flat_y)

    constraints = []
    for k, j in enumerate(unseen_idx):
        dj = deltas.get(j, 0.0)
        if dj > 0.0:
            constraints.append(
                {
                    "type": "ineq",
                    "fun": (
                        lambda y, k=k, dj=dj: float(
                            np.linalg.norm(y[k * d : (k + 1) * d] - query) - dj
                        )
                    ),
                }
            )

    # Structured starting points: the constraint sphere towards the seen
    # centroid, the query itself (pushed out if constrained), and jittered
    # copies.
    rng = np.random.default_rng(seed)
    if seen:
        nu = np.mean([v for _, v in seen.values()], axis=0)
    else:
        nu = query + 1.0
    direction = nu - query
    norm = np.linalg.norm(direction)
    direction = direction / norm if norm > 1e-12 else np.eye(d)[0]

    starts = []
    base = np.concatenate(
        [query + max(deltas.get(j, 0.0), 1e-6) * direction for j in unseen_idx]
    )
    starts.append(base)
    starts.append(
        np.concatenate(
            [query + (max(deltas.get(j, 0.0), 0.0) + 0.5) * direction for j in unseen_idx]
        )
    )
    for _ in range(max(restarts - 2, 0)):
        jitter = rng.normal(scale=0.5, size=len(base))
        starts.append(base + jitter)

    best = -np.inf
    for x0 in starts:
        res = optimize.minimize(
            neg,
            x0,
            method="SLSQP",
            constraints=constraints,
            options={"maxiter": 200, "ftol": 1e-10},
        )
        feasible = True
        for cons in constraints:
            if cons["fun"](res.x) < -1e-6:
                feasible = False
                break
        if feasible:
            best = max(best, float(-res.fun))
    return best


class NumericTightBound:
    """Tight-style bounding scheme for arbitrary scorings (extension).

    Follows the subset/partial-combination structure of
    :class:`repro.core.bounds.tight.TightBound` but solves every inner
    completion problem numerically, so it works for any
    :class:`~repro.core.scoring.Scoring` — in particular the
    cosine-similarity proximity the paper lists as future work.

    Trade-offs vs the exact scheme:

    * each bound evaluation is an SLSQP solve (orders of magnitude more
      expensive than the batched QP), so this is for small relations or
      demonstration purposes;
    * a numeric maximiser can undershoot the true optimum; ``margin``
      inflates every bound multiplicatively as a safety factor.  With
      the default 2% inflation the scheme is effectively correct on the
      workloads in this repository's tests, but it is *heuristically*
      rather than provably tight.

    It deliberately reuses none of the Euclidean closed forms, making it
    the reference implementation for new scorings.
    """

    def __init__(self, *, margin: float = 0.02, restarts: int = 4) -> None:
        from repro.core.bounds.base import BoundCounters

        if margin < 0:
            raise ValueError("margin must be non-negative")
        self.margin = margin
        self.restarts = restarts
        self.counters = BoundCounters()
        self._synced: list[int] | None = None
        self._cache: dict[tuple, float] = {}

    @property
    def is_tight(self) -> bool:
        return False  # numerically tight up to the solver and margin

    def _inflate(self, value: float) -> float:
        if not np.isfinite(value):
            return value
        return value + self.margin * (1.0 + abs(value))

    def update(self, state, i, tau) -> float:
        from repro.core.access import AccessKind
        from repro.core.bounds.base import NEG_INFINITY

        start = time.perf_counter()
        self.counters.updates += 1
        n = state.n
        kind = state.kind
        best = NEG_INFINITY
        # Enumerate every proper subset and every partial combination of
        # seen tuples; no caching cleverness (reference implementation).
        seen_pools = [list(s.seen) for s in state.streams]
        for mask in range((1 << n) - 1):
            members = [j for j in range(n) if mask >> j & 1]
            others = [j for j in range(n) if not mask >> j & 1]
            if any(state.streams[j].exhausted for j in others):
                continue
            if kind is AccessKind.DISTANCE:
                unseen_delta = {j: state.streams[j].last_distance for j in others}
                unseen_sigma = {j: state.streams[j].sigma_max for j in others}
            else:
                unseen_delta = None
                unseen_sigma = {j: state.streams[j].last_score for j in others}
            pools = [seen_pools[j] for j in members]
            if any(not p for p in pools):
                continue
            sig = (
                mask,
                tuple(round(d, 12) for d in sorted(unseen_delta.values()))
                if unseen_delta
                else None,
                tuple(round(s, 12) for s in sorted(unseen_sigma.values())),
            )
            for chosen in itertools.product(*pools):
                key = (sig, tuple(t.tid for t in chosen))
                value = self._cache.get(key)
                if value is None:
                    seen = {
                        j: (t.score, np.asarray(t.vector, dtype=float))
                        for j, t in zip(members, chosen)
                    }
                    value = self._inflate(
                        numeric_completion(
                            state.scoring, n, state.query, seen, unseen_sigma,
                            unseen_delta, restarts=self.restarts,
                        )
                    )
                    self._cache[key] = value
                    self.counters.entries_created += 1
                if value > best:
                    best = value
        self.counters.bound_seconds += time.perf_counter() - start
        return best

    def potentials(self, state) -> list[float]:
        # Conservative potentials: reuse the global bound for every
        # unexhausted relation (valid upper bounds; PA degenerates to
        # depth/index tie-breaking, which is still correct).
        from repro.core.bounds.base import NEG_INFINITY

        pots = []
        for s in state.streams:
            pots.append(NEG_INFINITY if s.exhausted else 0.0)
        return pots
