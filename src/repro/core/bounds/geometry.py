"""Geometry of the tight bound for quadratic-form scorings (Sec. 3.2.1).

Everything here is for aggregation functions of the paper's shape (2):

    S(tau) = sum_i w_s u(sigma_i) - w_q ||x_i - q||^2 - w_mu ||x_i - mu||^2

For a partial combination ``tau`` over a subset ``M`` (|M| = m) with
partial centroid ``nu``, completing it optimally with unseen tuples
constrained to ``||y_i - q|| >= delta_i`` reduces — by the collinearity
Theorem 3.4 — to the 1-D convex QP (14): unseen positions live on the ray
from ``q`` through ``nu``, seen tuples are represented by their projection
``theta_i = P(x_i)`` (eq. 13) onto that ray, and the objective becomes

    sum w_s u(...)  -  theta' H theta  -  (w_q + w_mu) * sum_i r_i^2

where ``H`` is the spread matrix of eq. (31) and ``r_i`` are the seen
tuples' orthogonal residuals w.r.t. the ray.  The paper folds the residual
term into the constant of (14); it must be restored when reporting
``t(tau)`` (it is what makes the paper's Table 3 value -16.0 rather than
-15.2 for ``tau_1^1 x tau_3^1``).

The module exposes:

* :func:`solve_completion` — distance-based bound ``t(tau)`` + optimum.
* :func:`score_access_completion` — score-based bound (Appendix C.2,
  closed form 41, no constraints).
* :func:`unconstrained_optimum` — closed form (11)/(29).
* :func:`dominance_coefficients` — the ``(b, c)`` of Section 3.2.2 whose
  half-spaces define dominance regions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.scoring import QuadraticFormScoring
from repro.optim.qp import solve_bound_qp, solve_bound_qp_batch, spread_matrix

__all__ = [
    "PartialGeometry",
    "CompletionResult",
    "partial_geometry",
    "unconstrained_optimum",
    "completion_geometry",
    "solve_completion",
    "solve_completion_batch",
    "score_access_completion",
    "score_access_completion_batch",
    "dominance_coefficients",
    "dominance_coefficients_batch",
]

_EPS = 1e-12


@dataclass(frozen=True)
class PartialGeometry:
    """Query-centred geometry of a partial combination.

    Attributes
    ----------
    nu:
        Partial centroid ``nu - q`` (query-centred); zero vector if m = 0.
    direction:
        Unit vector of the ray from ``q`` through ``nu``.  When
        ``nu == q`` every direction yields the same bound (the seen
        projections sum to zero, cancelling all cross terms), so an
        arbitrary axis is used.
    projections:
        ``theta_i = P(x_i)`` of eq. (13) for the seen tuples, in the order
        they were supplied.
    residual_sq:
        ``sum_i ||x_i - q - theta_i * direction||^2`` — the orthogonal
        residual the QP constant must carry.
    """

    nu: np.ndarray
    direction: np.ndarray
    projections: tuple[float, ...]
    residual_sq: float


def partial_geometry(vectors: np.ndarray, query: np.ndarray) -> PartialGeometry:
    """Compute ray direction, projections and residuals for seen tuples."""
    query = np.asarray(query, dtype=float)
    pts = np.atleast_2d(np.asarray(vectors, dtype=float)) - query
    if pts.shape[0] == 0:
        d = len(query)
        direction = np.zeros(d)
        direction[0] = 1.0
        return PartialGeometry(
            nu=np.zeros(d), direction=direction, projections=(), residual_sq=0.0
        )
    nu = pts.mean(axis=0)
    norm = float(np.linalg.norm(nu))
    if norm > _EPS:
        direction = nu / norm
    else:
        # nu == q: the objective is rotation-invariant around q (the seen
        # projections sum to 0), so any axis gives the same optimum value.
        direction = np.zeros(len(query))
        direction[0] = 1.0
    theta = pts @ direction
    residual = pts - np.outer(theta, direction)
    residual_sq = float(np.einsum("ij,ij->", residual, residual))
    return PartialGeometry(
        nu=nu,
        direction=direction,
        projections=tuple(float(t) for t in theta),
        residual_sq=residual_sq,
    )


@dataclass(frozen=True)
class CompletionResult:
    """Outcome of completing a partial combination optimally.

    Attributes
    ----------
    value:
        The upper bound ``t(tau)``.
    theta:
        Optimal signed distances from ``q`` along the ray, one per
        relation (seen tuples hold their projections).
    positions:
        Optimal unseen locations ``y_i^*`` (eq. 15), keyed by relation
        index.
    """

    value: float
    theta: np.ndarray
    positions: dict[int, np.ndarray]


def unconstrained_optimum(
    scoring: QuadraticFormScoring, n: int, m: int, nu_centred: np.ndarray
) -> np.ndarray:
    """Closed form (11)/(29)/(41): the unconstrained completion optimum.

    Returns the query-centred ``y* = (nu - q) * m w_mu / (m w_mu + n w_q)``
    shared by all unseen tuples.  For ``m = 0`` (or ``w_mu = 0``) this is
    the query itself.  If both weights are zero the position is
    irrelevant; the query is returned.
    """
    denom = m * scoring.w_mu + n * scoring.w_q
    if m == 0 or denom <= _EPS:
        return np.zeros_like(np.asarray(nu_centred, dtype=float))
    return np.asarray(nu_centred, dtype=float) * (m * scoring.w_mu / denom)


def solve_completion(
    scoring: QuadraticFormScoring,
    n: int,
    query: np.ndarray,
    seen: dict[int, tuple[float, np.ndarray]],
    unseen_delta: dict[int, float],
    unseen_sigma: dict[int, float],
) -> CompletionResult:
    """Distance-based tight bound ``t(tau)`` for one partial combination.

    Parameters
    ----------
    scoring:
        A quadratic-form scoring (paper eq. 2 family).
    n:
        Number of relations in the join.
    query:
        Query vector ``q``.
    seen:
        ``{relation_index: (score, vector)}`` for the members of the
        partial combination (the set ``M``).
    unseen_delta:
        ``{relation_index: delta_i}`` lower bounds on the distance of
        unseen tuples (the last-access distances; 0 when ``p_i = 0``).
    unseen_sigma:
        ``{relation_index: sigma}`` score upper bound used for each unseen
        tuple (``sigma_i^max`` for distance access).

    Returns
    -------
    CompletionResult
        ``value`` is ``t(tau)``; ``theta`` and ``positions`` describe the
        maximiser (useful for the cache-revalidation fast path and for
        visualisation, cf. Figure 1(b)).
    """
    if set(seen) & set(unseen_delta):
        raise ValueError("a relation cannot be both seen and unseen")
    if len(seen) + len(unseen_delta) != n:
        raise ValueError("seen and unseen must partition the n relations")
    if set(unseen_delta) != set(unseen_sigma):
        raise ValueError("unseen_delta and unseen_sigma must share keys")

    m = len(seen)
    geo = partial_geometry(
        np.array([seen[i][1] for i in sorted(seen)], dtype=float).reshape(m, -1)
        if m
        else np.zeros((0, len(query))),
        query,
    )
    fixed = {i: geo.projections[k] for k, i in enumerate(sorted(seen))}
    lower = dict(unseen_delta)

    h = spread_matrix(n, scoring.w_q, scoring.w_mu)
    qp = solve_bound_qp(h, fixed=fixed, lower=lower)

    score_term = scoring.w_s * (
        sum(scoring.score_utility(seen[i][0]) for i in seen)
        + sum(scoring.score_utility(unseen_sigma[j]) for j in unseen_sigma)
    )
    value = score_term - qp.value - (scoring.w_q + scoring.w_mu) * geo.residual_sq

    query = np.asarray(query, dtype=float)
    positions = {
        j: query + qp.x[j] * geo.direction for j in unseen_delta
    }
    return CompletionResult(value=value, theta=qp.x, positions=positions)


def completion_geometry(
    scoring: QuadraticFormScoring,
    query: np.ndarray,
    scores: np.ndarray,
    vectors: np.ndarray,
    unseen_sigma: dict[int, float],
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The pre-QP half of :func:`solve_completion_batch`: per-entry ray
    geometry and score constants for one subset ``M``.

    Returns ``(proj, residual_sq, score_term)`` — the seen projections
    ``(E, m)`` (the QP's equality values, columns in member order), the
    orthogonal residuals ``(E,)`` and the summed score-utility term
    ``(E,)``.  Split out so the batched bound kernel can gather many
    subsets' QP problems (each with its own fixed/lower pattern) before
    a single :func:`~repro.optim.solve_bound_qp_masked` call.
    """
    query = np.asarray(query, dtype=float)
    scores = np.atleast_2d(np.asarray(scores, dtype=float))
    vectors = np.asarray(vectors, dtype=float)
    num_entries, m = scores.shape
    centred = vectors - query  # (E, m, d)

    if m > 0:
        nu = centred.mean(axis=1)  # (E, d)
        norms = np.linalg.norm(nu, axis=1)
        direction = np.zeros_like(nu)
        good = norms > _EPS
        direction[good] = nu[good] / norms[good, None]
        direction[~good, 0] = 1.0  # rotation-invariant case: any axis
        proj = np.einsum("emd,ed->em", centred, direction)  # (E, m)
        residual_sq = np.einsum("emd,emd->e", centred, centred) - np.einsum(
            "em,em->e", proj, proj
        )
    else:
        proj = np.zeros((num_entries, 0))
        residual_sq = np.zeros(num_entries)

    score_term = scoring.w_s * (
        (
            scoring.score_utility_array(scores).sum(axis=1)
            if m
            else np.zeros(num_entries)
        )
        + sum(scoring.score_utility(unseen_sigma[j]) for j in sorted(unseen_sigma))
    )
    return proj, residual_sq, score_term


def solve_completion_batch(
    scoring: QuadraticFormScoring,
    n: int,
    query: np.ndarray,
    member_idx: list[int],
    scores: np.ndarray,
    vectors: np.ndarray,
    unseen_delta: dict[int, float],
    unseen_sigma: dict[int, float],
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised :func:`solve_completion` for many partial combinations
    of the *same* subset ``M`` (the tight bound's hot loop).

    Parameters
    ----------
    member_idx:
        The relation indices of ``M`` (sorted).
    scores / vectors:
        Per-entry member scores ``(E, m)`` and positions ``(E, m, d)``,
        columns aligned with ``member_idx``.
    unseen_delta / unseen_sigma:
        As in :func:`solve_completion` — shared by all entries.

    Returns
    -------
    (values, thetas):
        ``t(tau)`` per entry and the optimal theta vectors ``(E, n)``.
    """
    proj, residual_sq, score_term = completion_geometry(
        scoring, query, scores, vectors, unseen_sigma
    )
    lower_idx = sorted(unseen_delta)
    lower_vals = np.array([unseen_delta[j] for j in lower_idx])
    h = spread_matrix(n, scoring.w_q, scoring.w_mu)
    qp_vals, thetas = solve_bound_qp_batch(h, member_idx, proj, lower_idx, lower_vals)
    values = score_term - qp_vals - (scoring.w_q + scoring.w_mu) * residual_sq
    return values, thetas


def score_access_completion(
    scoring: QuadraticFormScoring,
    n: int,
    query: np.ndarray,
    seen: dict[int, tuple[float, np.ndarray]],
    unseen_sigma: dict[int, float],
) -> CompletionResult:
    """Score-based tight bound ``t^s(tau)`` (Appendix C.2).

    Unseen tuples carry the last-seen score of their relation and are
    *unconstrained* in space, so the optimum is the closed form (41): all
    unseen tuples collapse onto ``y* = q + (nu - q) m w_mu / (m w_mu + n w_q)``.
    """
    if len(seen) + len(unseen_sigma) != n:
        raise ValueError("seen and unseen must partition the n relations")
    query = np.asarray(query, dtype=float)
    m = len(seen)
    seen_vecs = (
        np.array([seen[i][1] for i in sorted(seen)], dtype=float).reshape(m, -1)
        if m
        else np.zeros((0, len(query)))
    )
    nu_centred = seen_vecs.mean(axis=0) - query if m else np.zeros(len(query))
    y_star = unconstrained_optimum(scoring, n, m, nu_centred) + query

    # Full-combination centroid with all unseen at y*.
    mu = (m * (nu_centred + query) + (n - m) * y_star) / n if n else query
    weighted: list[float] = []
    for k, i in enumerate(sorted(seen)):
        score, vec = seen[i]
        weighted.append(
            scoring.weighted_score(
                i,
                score,
                float(np.linalg.norm(np.asarray(vec, dtype=float) - query)),
                float(np.linalg.norm(np.asarray(vec, dtype=float) - mu)),
            )
        )
    dq = float(np.linalg.norm(y_star - query))
    dmu = float(np.linalg.norm(y_star - mu))
    for j in sorted(unseen_sigma):
        weighted.append(scoring.weighted_score(j, unseen_sigma[j], dq, dmu))
    theta = np.zeros(n)
    geo = partial_geometry(seen_vecs, query)
    for k, i in enumerate(sorted(seen)):
        theta[i] = geo.projections[k]
    for j in unseen_sigma:
        theta[j] = float(np.linalg.norm(y_star - query))
    return CompletionResult(
        value=scoring.aggregate(weighted),
        theta=theta,
        positions={j: y_star.copy() for j in unseen_sigma},
    )


def score_access_completion_batch(
    scoring: QuadraticFormScoring,
    n: int,
    query: np.ndarray,
    scores: np.ndarray,
    vectors: np.ndarray,
    unseen_sigma: dict[int, float],
) -> np.ndarray:
    """Vectorised :func:`score_access_completion` values for many partial
    combinations of the *same* subset ``M`` (the score-access hot loop).

    ``scores`` has shape ``(E, m)`` and ``vectors`` ``(E, m, d)``, columns
    in member order; ``unseen_sigma`` is shared by all entries.  Returns
    the ``(E,)`` bound values ``t^s(tau)``.  Only the values are needed in
    bulk (Algorithm 3 keeps a single incumbent per subset), so the
    maximiser geometry of :class:`CompletionResult` is not materialised.

    Arithmetic mirrors the scalar path operation for operation — centroid
    mean before query-centring, norms taken then squared, weighted terms
    accumulated in relation order — so values match the per-entry
    evaluation to float-associativity noise.
    """
    if vectors.ndim != 3:
        raise ValueError(f"vectors must be (E, m, d), got shape {vectors.shape}")
    query = np.asarray(query, dtype=float)
    scores = np.atleast_2d(np.asarray(scores, dtype=float))
    vectors = np.asarray(vectors, dtype=float)
    num_entries, m = scores.shape
    if m + len(unseen_sigma) != n:
        raise ValueError("seen and unseen must partition the n relations")
    w_s, w_q, w_mu = scoring.w_s, scoring.w_q, scoring.w_mu

    if m:
        nu_centred = vectors.mean(axis=1) - query  # (E, d)
    else:
        nu_centred = np.zeros((num_entries, len(query)))
    denom = m * w_mu + n * w_q
    factor = (m * w_mu / denom) if (m and denom > _EPS) else 0.0
    y_star = nu_centred * factor + query  # closed form (41), query frame
    mu = (m * (nu_centred + query) + (n - m) * y_star) / n if n else query

    values = np.zeros(num_entries)
    if m:
        u_seen = scoring.score_utility_array(scores)  # (E, m)
        for r in range(m):
            dq = np.linalg.norm(vectors[:, r] - query, axis=1)
            dmu = np.linalg.norm(vectors[:, r] - mu, axis=1)
            values = values + (
                w_s * u_seen[:, r] - w_q * dq * dq - w_mu * dmu * dmu
            )
    dq_u = np.linalg.norm(y_star - query, axis=1)
    dmu_u = np.linalg.norm(y_star - mu, axis=1)
    for j in sorted(unseen_sigma):
        u_j = scoring.score_utility(unseen_sigma[j])
        values = values + (w_s * u_j - w_q * dq_u * dq_u - w_mu * dmu_u * dmu_u)
    return values


def dominance_coefficients(
    scoring: QuadraticFormScoring,
    n: int,
    query: np.ndarray,
    seen: dict[int, tuple[float, np.ndarray]],
    unseen_sigma: dict[int, float],
) -> tuple[np.ndarray, float]:
    """Coefficients ``(b, c)`` of Section 3.2.2 for a partial combination.

    With all unseen tuples at the common (query-centred) location ``y``,
    the completion objective is ``f(y) = -(a y'y + 2 b'y + c)``; the
    quadratic coefficient ``a`` (eq. 24) is shared by every partial
    combination of the same subset ``M``, so the dominance region
    ``{y : f_alpha(y) >= f_beta(y)}`` is the half-space
    ``2 (b_alpha - b_beta)' y <= c_beta - c_alpha`` (eq. 16).

    Derivation of ``c`` (eq. 26 with the score constants restored):

        c = w_mu (n-m) m^2/n^2 * nu'nu
          + w_mu sum_{i in M} ||x_i - (m/n) nu||^2
          + w_q  sum_{i in M} ||x_i||^2
          - w_s  sum_{i in M} u(sigma_i)
          - w_s  sum_{j not in M} u(sigma_j^max)

    (all vectors query-centred).
    """
    query = np.asarray(query, dtype=float)
    m = len(seen)
    if m == 0:
        # Single empty partial combination per M = {} — nothing to compare.
        c0 = -scoring.w_s * sum(
            scoring.score_utility(unseen_sigma[j]) for j in unseen_sigma
        )
        return np.zeros(len(query)), float(c0)
    xs = np.array([seen[i][1] for i in sorted(seen)], dtype=float) - query
    nu = xs.mean(axis=0)
    w_s, w_q, w_mu = scoring.w_s, scoring.w_q, scoring.w_mu
    b = -w_mu * (n - m) * (m / n) * nu
    shifted = xs - (m / n) * nu
    c = (
        w_mu * (n - m) * (m * m) / (n * n) * float(nu @ nu)
        + w_mu * float(np.einsum("ij,ij->", shifted, shifted))
        + w_q * float(np.einsum("ij,ij->", xs, xs))
        - w_s * sum(scoring.score_utility(seen[i][0]) for i in seen)
        - w_s * sum(scoring.score_utility(unseen_sigma[j]) for j in unseen_sigma)
    )
    return b, float(c)


def dominance_coefficients_batch(
    scoring: QuadraticFormScoring,
    n: int,
    query: np.ndarray,
    scores: np.ndarray,
    vectors: np.ndarray,
    unseen_sigma: dict[int, float],
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised :func:`dominance_coefficients` for one subset ``M``.

    ``scores`` has shape ``(E, m)`` and ``vectors`` ``(E, m, d)``.
    Returns ``(b, c)`` with shapes ``(E, d)`` and ``(E,)``.
    """
    query = np.asarray(query, dtype=float)
    scores = np.atleast_2d(np.asarray(scores, dtype=float))
    xs = np.asarray(vectors, dtype=float) - query  # (E, m, d)
    num_entries, m = scores.shape
    w_s, w_q, w_mu = scoring.w_s, scoring.w_q, scoring.w_mu
    if m == 0:
        c0 = -w_s * sum(scoring.score_utility(unseen_sigma[j]) for j in unseen_sigma)
        return np.zeros((num_entries, len(query))), np.full(num_entries, c0)
    nu = xs.mean(axis=1)  # (E, d)
    b = -w_mu * (n - m) * (m / n) * nu
    shifted = xs - (m / n) * nu[:, None, :]
    c = (
        w_mu * (n - m) * (m * m) / (n * n) * np.einsum("ed,ed->e", nu, nu)
        + w_mu * np.einsum("emd,emd->e", shifted, shifted)
        + w_q * np.einsum("emd,emd->e", xs, xs)
        - w_s * scoring.score_utility_array(scores).sum(axis=1)
        - w_s * sum(scoring.score_utility(unseen_sigma[j]) for j in unseen_sigma)
    )
    return b, c
