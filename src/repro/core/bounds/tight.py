"""The tight bounding scheme (Section 3.2, Algorithms 2 and 3).

For every proper subset ``M`` of the relations, the scheme keeps the set
``PC(M)`` of partial combinations formable from seen tuples and, for each,
the upper bound ``t(tau)`` on completing it with unseen tuples.  The
global bound is ``t = max_M max_{tau in PC(M)} t(tau)`` (eq. 8–9).
Tightness (Definition 2.2) holds because the optimiser's solution can be
materialised as an actual continuation (Theorem 3.2), which is what buys
instance-optimality (Theorem 3.3).

Bookkeeping follows Algorithm 2 (distance access) and Algorithm 3 (score
access), with the engineering refinements called out in DESIGN.md:

* The scheme synchronises against the streams' seen prefixes, so the
  engine may invoke it only every ``bound_period`` pulls (the paper's
  practical-systems trade-off) and the incremental cross-product still
  forms every new partial combination exactly once.
* After new pulls from ``R_i``, only partial combinations *using a new
  tuple* need fresh solves; cached solutions of subsets with ``i not in
  M`` are revalidated in O(1): the constraint ``theta_i >= delta_i`` only
  shrinks the feasible set, so a cached optimum that still satisfies it
  remains optimal.
* Subsets missing an exhausted relation are dead — no continuation can
  complete them — and are dropped permanently (their ``t_M = -inf``).
* Dominated partial combinations (Sec. 3.2.2) are flagged periodically
  and skipped forever; see :mod:`repro.core.bounds.dominance`.
* Score access keeps a single best entry per subset (Algorithm 3): the
  paper shows relative order within ``PC(M)`` never changes under score
  access, so everything else is immediately dominated.
"""

from __future__ import annotations

import itertools
import time

import numpy as np

from repro.core.access import AccessKind
from repro.core.bounds.base import NEG_INFINITY, BoundingScheme, EngineState
from repro.core.bounds.dominance import dominated_mask
from repro.core.bounds.geometry import (
    dominance_coefficients_batch,
    score_access_completion,
    solve_completion_batch,
)
from repro.core.relation import RankTuple
from repro.core.scoring import QuadraticFormScoring

__all__ = ["TightBound"]

_EPS = 1e-9
_MAX_RELATIONS = 10


class _Entry:
    """One partial combination in ``PC(M)`` with its cached solution.

    ``scores``/``vecs`` hold the member tuples' data aligned with the
    subset's sorted member relations (shape ``(m,)`` / ``(m, d)``).
    """

    __slots__ = (
        "key", "scores", "vecs", "t", "theta", "dominated", "b", "c", "witness"
    )

    def __init__(self, key: tuple[int, ...], scores: np.ndarray, vecs: np.ndarray):
        self.key = key
        self.scores = scores
        self.vecs = vecs
        self.t = NEG_INFINITY
        self.theta: np.ndarray | None = None
        self.dominated = False
        self.b: np.ndarray | None = None
        self.c: float = 0.0
        self.witness: np.ndarray | None = None

    def seen_dict(self, members: tuple[int, ...]) -> dict[int, tuple[float, np.ndarray]]:
        """Member data as the mapping the scalar geometry helpers expect."""
        return {
            j: (float(self.scores[r]), self.vecs[r]) for r, j in enumerate(members)
        }


class _SubsetState:
    """All bookkeeping for one proper subset ``M``."""

    __slots__ = ("mask", "members", "others", "entries", "dead", "t_max")

    def __init__(self, mask: int, n: int):
        self.mask = mask
        self.members = tuple(i for i in range(n) if mask >> i & 1)
        self.others = tuple(i for i in range(n) if not mask >> i & 1)
        self.entries: dict[tuple[int, ...], _Entry] = {}
        self.dead = False
        self.t_max = NEG_INFINITY

    def recompute_max(self) -> None:
        self.t_max = max(
            (e.t for e in self.entries.values() if not e.dominated),
            default=NEG_INFINITY,
        )


class TightBound(BoundingScheme):
    """Tight bounding scheme for either access kind.

    Parameters
    ----------
    dominance_period:
        Run the dominance LP pass every this many accesses under distance
        access (Figures 3(m)/(n) sweep this).  ``None`` disables dominance
        (the paper's "period = infinity").  Ignored under score access,
        where Algorithm 3's best-entry rule plays the same role for free.
    """

    def __init__(self, dominance_period: int | None = None) -> None:
        super().__init__()
        if dominance_period is not None and dominance_period < 1:
            raise ValueError("dominance_period must be >= 1 (or None)")
        self.dominance_period = dominance_period
        self._subsets: list[_SubsetState] | None = None
        self._synced: list[int] = []
        self._accesses = 0

    @property
    def is_tight(self) -> bool:
        return True

    # -- shared plumbing ---------------------------------------------------

    def _init_subsets(self, state: EngineState) -> list[_SubsetState]:
        if self._subsets is None:
            n = state.n
            if n > _MAX_RELATIONS:
                raise ValueError(
                    f"tight bounding enumerates 2^n subsets; n={n} exceeds "
                    f"the supported maximum of {_MAX_RELATIONS}"
                )
            if not isinstance(state.scoring, QuadraticFormScoring):
                raise TypeError(
                    "TightBound requires a QuadraticFormScoring (paper eq. 2 "
                    "family); other scorings need the numeric fallback of "
                    "repro.core.bounds.numeric"
                )
            self._subsets = [_SubsetState(mask, n) for mask in range((1 << n) - 1)]
            # Seed M = {} with its single "empty tuple" partial combination
            # (Appendix B.1): it bounds combinations unseen in every slot.
            # Its lazily-None theta forces a solve on first use.
            d = len(state.query)
            self._subsets[0].entries[()] = _Entry(
                (), np.zeros(0), np.zeros((0, d))
            )
            self._synced = [0] * n
        return self._subsets

    def update(self, state: EngineState, i: int, tau: RankTuple) -> float:
        start = time.perf_counter()
        dominance_before = self.counters.dominance_seconds
        self.counters.updates += 1
        subsets = self._init_subsets(state)
        new_counts = [s.depth - p for s, p in zip(state.streams, self._synced)]
        self._accesses += sum(new_counts)
        if state.kind is AccessKind.DISTANCE:
            t = self._update_distance(state, subsets, new_counts)
        else:
            t = self._update_score(state, subsets, new_counts)
        self._synced = [s.depth for s in state.streams]
        # Keep the two stacked-bar shares disjoint (Figure 3(m)/(n)): the
        # dominance pass runs inside this call but reports its own share.
        elapsed = time.perf_counter() - start
        dominance_delta = self.counters.dominance_seconds - dominance_before
        self.counters.bound_seconds += elapsed - dominance_delta
        return t

    def potentials(self, state: EngineState) -> list[float]:
        subsets = self._init_subsets(state)
        pots = [NEG_INFINITY] * state.n
        for sub in subsets:
            if sub.dead:
                continue
            for i in sub.others:
                if sub.t_max > pots[i]:
                    pots[i] = sub.t_max
        return pots

    def _mark_dead_subsets(self, state: EngineState, subsets: list[_SubsetState]) -> None:
        for sub in subsets:
            if sub.dead:
                continue
            if any(state.streams[j].exhausted for j in sub.others):
                sub.dead = True
                sub.entries.clear()
                sub.t_max = NEG_INFINITY

    def _new_member_pools(
        self, state: EngineState, sub: _SubsetState, new_counts: list[int]
    ) -> "itertools.chain[tuple[RankTuple, ...]]":
        """Iterate the partial combinations of ``M`` that use at least one
        tuple pulled since the last sync, each exactly once.

        Standard incremental cross-product: for the ``r``-th member
        relation, combine its *new* tuples with the full current prefixes
        of earlier members and the old prefixes of later members.
        """
        chunks = []
        members = sub.members
        for r, j in enumerate(members):
            if new_counts[j] == 0:
                continue
            pools: list[list[RankTuple]] = []
            for r2, l in enumerate(members):
                seen = state.streams[l].seen
                if r2 < r:
                    pools.append(seen)
                elif r2 == r:
                    pools.append(seen[self._synced[l] :])
                else:
                    pools.append(seen[: self._synced[l]])
            if any(not p for p in pools):
                continue
            chunks.append(itertools.product(*pools))
        return itertools.chain(*chunks)

    # -- distance access (Algorithm 2) ---------------------------------------

    def _update_distance(
        self,
        state: EngineState,
        subsets: list[_SubsetState],
        new_counts: list[int],
    ) -> float:
        scoring = state.scoring
        assert isinstance(scoring, QuadraticFormScoring)
        n = state.n
        deltas = [s.last_distance for s in state.streams]
        sigma_max = [s.sigma_max for s in state.streams]

        self._mark_dead_subsets(state, subsets)
        track_dominance = self.dominance_period is not None

        for sub in subsets:
            if sub.dead:
                continue
            members = list(sub.members)
            unseen_delta = {j: deltas[j] for j in sub.others}
            unseen_sigma = {j: sigma_max[j] for j in sub.others}

            # New partial combinations (subsets intersecting the new
            # pulls), solved as one vectorised batch per subset.
            new_entries = []
            for chosen in self._new_member_pools(state, sub, new_counts):
                key = tuple(t.tid for t in chosen)
                new_entries.append(
                    _Entry(
                        key,
                        np.array([t.score for t in chosen]),
                        np.array([t.vector for t in chosen], dtype=float).reshape(
                            len(chosen), -1
                        ),
                    )
                )
            if new_entries:
                scores = np.array([e.scores for e in new_entries])
                vecs = np.array([e.vecs for e in new_entries])
                values, thetas = solve_completion_batch(
                    scoring, n, state.query, members, scores, vecs,
                    unseen_delta, unseen_sigma,
                )
                if track_dominance:
                    bs, cs = dominance_coefficients_batch(
                        scoring, n, state.query, scores, vecs, unseen_sigma
                    )
                for r, entry in enumerate(new_entries):
                    entry.t = float(values[r])
                    entry.theta = thetas[r]
                    if track_dominance:
                        entry.b = bs[r]
                        entry.c = float(cs[r])
                    sub.entries[entry.key] = entry
                self.counters.qp_solves += len(new_entries)
                self.counters.entries_created += len(new_entries)

            # Revalidate cached optima where an unseen delta grew
            # (Algorithm 2's "i not in M" branch, feasibility fast path:
            # a cached optimum that still satisfies the new, tighter
            # constraints remains optimal).
            grown = [j for j in sub.others if new_counts[j] > 0]
            if grown:
                stale = [
                    entry
                    for entry in sub.entries.values()
                    if not entry.dominated
                    and (
                        entry.theta is None
                        or any(entry.theta[j] < deltas[j] - _EPS for j in grown)
                    )
                ]
                if stale:
                    scores = np.array([e.scores for e in stale])
                    vecs = np.array([e.vecs for e in stale])
                    values, thetas = solve_completion_batch(
                        scoring, n, state.query, members, scores, vecs,
                        unseen_delta, unseen_sigma,
                    )
                    for r, entry in enumerate(stale):
                        entry.t = float(values[r])
                        entry.theta = thetas[r]
                    self.counters.qp_solves += len(stale)
                    self.counters.entries_revalidated += len(stale)
            sub.recompute_max()

        if track_dominance and self.dominance_period is not None:
            if self._accesses % self.dominance_period == 0:
                self._dominance_pass(scoring, n, subsets)
                for sub in subsets:
                    sub.recompute_max()

        return max((sub.t_max for sub in subsets if not sub.dead), default=NEG_INFINITY)

    def _dominance_pass(
        self, scoring: QuadraticFormScoring, n: int, subsets: list[_SubsetState]
    ) -> None:
        start = time.perf_counter()
        for sub in subsets:
            if sub.dead or not sub.members:
                continue
            entries = list(sub.entries.values())
            live = [e for e in entries if not e.dominated]
            if len(live) < 2:
                continue
            m = len(sub.members)
            # Shared quadratic coefficient of eq. (24) for this subset.
            quad = scoring.w_q * (n - m) + scoring.w_mu * (m / n) * (n - m)
            bs = np.array([e.b for e in entries])
            cs = np.array([e.c for e in entries])
            before = np.array([e.dominated for e in entries])
            witnesses = np.array(
                [
                    e.witness if e.witness is not None else np.full(bs.shape[1], np.nan)
                    for e in entries
                ]
            )
            after, lp_count = dominated_mask(
                bs, cs, before, quad_coeff=quad, witnesses=witnesses
            )
            self.counters.lp_solves += lp_count
            for idx, (entry, dom) in enumerate(zip(entries, after)):
                if dom and not entry.dominated:
                    entry.dominated = True
                    self.counters.entries_dominated += 1
                elif not dom and not np.isnan(witnesses[idx, 0]):
                    entry.witness = witnesses[idx]
        self.counters.dominance_seconds += time.perf_counter() - start

    # -- score access (Algorithm 3) -------------------------------------------

    def _update_score(
        self,
        state: EngineState,
        subsets: list[_SubsetState],
        new_counts: list[int],
    ) -> float:
        scoring = state.scoring
        assert isinstance(scoring, QuadraticFormScoring)
        n = state.n
        last_scores = [s.last_score for s in state.streams]

        self._mark_dead_subsets(state, subsets)

        for sub in subsets:
            if sub.dead:
                continue
            unseen_sigma = {j: last_scores[j] for j in sub.others}

            # Refresh the incumbent first (an unseen last-score may have
            # dropped), then challenge it with every new partial
            # combination; Algorithm 3 retains only the best entry per
            # subset.  Relative order inside PC(M) is unaffected by the
            # refresh (Appendix C), so keeping a single incumbent is safe.
            best: _Entry | None = next(iter(sub.entries.values()), None)
            if best is not None and any(new_counts[j] > 0 for j in sub.others):
                result = score_access_completion(
                    scoring, n, state.query, best.seen_dict(sub.members), unseen_sigma
                )
                best.t = result.value
                self.counters.closed_form_evals += 1
            for chosen in self._new_member_pools(state, sub, new_counts):
                key = tuple(t.tid for t in chosen)
                entry = _Entry(
                    key,
                    np.array([t.score for t in chosen]),
                    np.array([t.vector for t in chosen], dtype=float).reshape(
                        len(chosen), -1
                    ),
                )
                result = score_access_completion(
                    scoring, n, state.query, entry.seen_dict(sub.members), unseen_sigma
                )
                entry.t = result.value
                self.counters.closed_form_evals += 1
                self.counters.entries_created += 1
                if best is None or entry.t > best.t:
                    if best is not None:
                        self.counters.entries_dominated += 1
                    best = entry
                else:
                    self.counters.entries_dominated += 1

            sub.entries = {best.key: best} if best is not None else {}
            sub.recompute_max()

        return max((sub.t_max for sub in subsets if not sub.dead), default=NEG_INFINITY)
