"""The tight bounding scheme (Section 3.2, Algorithms 2 and 3).

For every proper subset ``M`` of the relations, the scheme keeps the set
``PC(M)`` of partial combinations formable from seen tuples and, for each,
the upper bound ``t(tau)`` on completing it with unseen tuples.  The
global bound is ``t = max_M max_{tau in PC(M)} t(tau)`` (eq. 8–9).
Tightness (Definition 2.2) holds because the optimiser's solution can be
materialised as an actual continuation (Theorem 3.2), which is what buys
instance-optimality (Theorem 3.3).

Bookkeeping follows Algorithm 2 (distance access) and Algorithm 3 (score
access), with the engineering refinements called out in DESIGN.md:

* ``PC(M)`` is stored **columnar**: one aligned set of growing arrays per
  subset (member scores ``(E, m)``, member vectors ``(E, m, d)``, bound
  values ``t``, cached optima ``theta``, dominance flags/coefficients).
  New partial combinations are gathered straight from the streams'
  columnar prefix arrays (via :meth:`EngineState.prefix_arrays`) as
  position-grid batches, QP-solved in one vectorised call, and appended
  in amortised O(1) per entry; staleness scans and per-subset maxima are
  array reductions instead of per-entry Python loops.
* **Batched bound kernel** (default, ``batch_kernel=True``): instead of
  one QP call per subset and one feasibility LP per dominance candidate,
  a refresh *gathers* every stale subset's completion problems into the
  run's :class:`~repro.core.bounds.workspace.BoundWorkspace` slabs and
  makes a single :func:`~repro.optim.solve_bound_qp_masked` call (mixed
  fixed/lower patterns, vectorised active-set enumeration), and a
  dominance pass stacks every subset's surviving feasibility LPs into a
  single lockstep :func:`~repro.optim.polyhedron_feasible_point_batch`
  call.  The kernels' row-stable arithmetic makes completed runs
  bit-identical to the scalar path (``batch_kernel=False``, the
  per-subset/per-candidate reference kept for the differential suite).
* **Incremental dominance** (default, ``incremental=True``): the batched
  dominance pass carries caches *across* refreshes — per-entry LP keys,
  feasible points and optimal simplex bases, per-subset pass
  fingerprints, per-entry QP active sets — so unchanged work is skipped,
  duplicated work solved once, and the rest warm-started; every
  mechanism is verdict-preserving (see ``_dominance_pass_batched``), so
  runs stay bit-identical to both reference paths.
* The scheme synchronises against the streams' seen prefixes, so the
  engine may invoke it only every ``bound_period`` pulls (the paper's
  practical-systems trade-off) and the incremental cross-product still
  forms every new partial combination exactly once.
* After new pulls from ``R_i``, only partial combinations *using a new
  tuple* need fresh solves; cached solutions of subsets with ``i not in
  M`` are revalidated in O(1): the constraint ``theta_i >= delta_i`` only
  shrinks the feasible set, so a cached optimum that still satisfies it
  remains optimal.  Subsets none of whose relevant streams advanced are
  not re-solved at all — results are cached incrementally across blocks.
* Subsets missing an exhausted relation are dead — no continuation can
  complete them — and are dropped permanently (their ``t_M = -inf``).
* Dominated partial combinations (Sec. 3.2.2) are flagged periodically
  and skipped forever; see :mod:`repro.core.bounds.dominance`.
* Per-relation potentials are memoised per bound version in the
  workspace: ``pot_i`` reads only the subsets' cached maxima, which
  change exactly when :meth:`update` runs, so the potential-adaptive
  strategy's once-per-block consultation costs a cached-list copy unless
  the bound actually moved (``potential_consults`` vs.
  ``potential_evals`` in the counters).
* Score access keeps a single best entry per subset (Algorithm 3): the
  paper shows relative order within ``PC(M)`` never changes under score
  access, so everything else is immediately dominated.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.access import AccessKind
from repro.core.bounds.base import NEG_INFINITY, BoundingScheme, EngineState
from repro.core.bounds.dominance import (
    _MAX_LP_CONSTRAINTS,
    prepare_dominance_pass,
)
from repro.core.bounds.geometry import (
    completion_geometry,
    dominance_coefficients_batch,
    score_access_completion,
    score_access_completion_batch,
)
from repro.core.bounds.workspace import BoundWorkspace
from repro.core.relation import RankTuple
from repro.core.scoring import QuadraticFormScoring
from repro.optim.qp import (
    solve_bound_qp_batch,
    solve_bound_qp_masked,
    spread_matrix,
)
from repro.optim.simplex import (
    polyhedron_feasible_point,
    polyhedron_feasible_point_batch,
)

__all__ = ["TightBound"]

_EPS = 1e-9
_MAX_RELATIONS = 10
_MIN_CAPACITY = 8


class _SubsetState:
    """All bookkeeping for one proper subset ``M``, stored columnar.

    ``count`` entries live in creation order across aligned arrays;
    ``dominated`` rows are skipped by maxima and revalidation but remain
    as dominance competitors.  ``theta`` rows of ``-inf`` mark optima
    that have never been solved (the ``M = {}`` seed), forcing a first
    solve through the staleness scan.
    """

    __slots__ = (
        "mask",
        "members",
        "others",
        "dead",
        "t_max",
        "count",
        "scores",
        "vecs",
        "t",
        "theta",
        "dominated",
        "b",
        "c",
        "witness",
        "canon",
        "canon_ids",
        "lp_keys",
        "lp_point",
        "lp_basis",
        "qp_active",
        "pass_count",
        "pass_newly",
    )

    def __init__(self, mask: int, n: int, d: int):
        self.mask = mask
        self.members = tuple(i for i in range(n) if mask >> i & 1)
        self.others = tuple(i for i in range(n) if not mask >> i & 1)
        self.dead = False
        self.t_max = NEG_INFINITY
        self.count = 0
        m = len(self.members)
        cap = _MIN_CAPACITY
        self.scores = np.empty((cap, m))
        self.vecs = np.empty((cap, m, d))
        self.t = np.full(cap, NEG_INFINITY)
        self.theta = np.full((cap, n), NEG_INFINITY)
        self.dominated = np.zeros(cap, dtype=bool)
        self.b = np.empty((cap, d))
        self.c = np.empty(cap)
        self.witness = np.full((cap, d), np.nan)
        # Incremental-dominance caches (see TightBound's docstring): the
        # value-equality class of each entry's immutable ``(b, c)`` row
        # (assigned at append; two entries share an id iff their rows are
        # byte-identical), the LP-problem identity key each entry's last
        # verdict was computed for (a padded canon-id row — own class
        # first, then the ordered capped competitor classes, -1 padding;
        # all -2 = no cached verdict), the feasible point and optimal
        # simplex basis of that solve, the last resolving QP active-set
        # mask (-1 = none), and the field fingerprint of the last
        # dominance pass (entry count + new flags) that licenses a full
        # subset skip.
        self.canon = np.full(cap, -1, dtype=np.int64)
        self.canon_ids: dict[bytes, int] = {}
        self.lp_keys = np.full(
            (cap, _MAX_LP_CONSTRAINTS + 1), -2, dtype=np.int64
        )
        self.lp_point = np.full((cap, d), np.nan)
        self.lp_basis: list[np.ndarray | None] = [None] * cap
        self.qp_active = np.full(cap, -1, dtype=np.int64)
        self.pass_count = -1
        self.pass_newly = 0

    def _grow(self, needed: int) -> None:
        cap = len(self.t)
        while cap < needed:
            cap *= 2
        p = self.count
        for name, fill in (
            ("scores", None),
            ("vecs", None),
            ("t", NEG_INFINITY),
            ("theta", NEG_INFINITY),
            ("dominated", False),
            ("b", None),
            ("c", None),
            ("witness", np.nan),
            ("canon", -1),
            ("lp_keys", -2),
            ("lp_point", np.nan),
            ("qp_active", -1),
        ):
            old = getattr(self, name)
            fresh = (
                np.empty((cap,) + old.shape[1:], dtype=old.dtype)
                if fill is None
                else np.full((cap,) + old.shape[1:], fill, dtype=old.dtype)
            )
            fresh[:p] = old[:p]
            setattr(self, name, fresh)
        self.lp_basis.extend([None] * (cap - len(self.lp_basis)))

    def append(self, scores: np.ndarray, vecs: np.ndarray) -> int:
        """Append an entry batch; returns the first new row index."""
        e = len(scores)
        lo = self.count
        if lo + e > len(self.t):
            self._grow(lo + e)
        self.scores[lo : lo + e] = scores
        self.vecs[lo : lo + e] = vecs
        self.dominated[lo : lo + e] = False
        self.witness[lo : lo + e] = np.nan
        # Rows may be reused after clear(): stale caches must not leak
        # into new entries.
        self.lp_keys[lo : lo + e] = -2
        self.lp_basis[lo : lo + e] = [None] * e
        self.qp_active[lo : lo + e] = -1
        self.count = lo + e
        return lo

    def clear(self) -> None:
        self.count = 0
        self.t_max = NEG_INFINITY
        self.pass_count = -1
        self.pass_newly = 0

    def recompute_max(self) -> None:
        cnt = self.count
        live = self.t[:cnt][~self.dominated[:cnt]]
        self.t_max = float(live.max()) if live.size else NEG_INFINITY


@dataclass
class _QPChunk:
    """One subset's pending completion problems within a gathered refresh:
    ``rows`` of ``sub``'s columnar arrays whose QP inputs occupy
    ``span`` of the workspace slabs."""

    sub: _SubsetState
    rows: np.ndarray
    span: slice


class TightBound(BoundingScheme):
    """Tight bounding scheme for either access kind.

    Parameters
    ----------
    dominance_period:
        Run the dominance LP pass every this many accesses under distance
        access (Figures 3(m)/(n) sweep this).  ``None`` disables dominance
        (the paper's "period = infinity").  Ignored under score access,
        where Algorithm 3's best-entry rule plays the same role for free.
    batch_kernel:
        ``True`` (default) routes each refresh through the batched bound
        kernel: one gathered :func:`~repro.optim.solve_bound_qp_masked`
        call for every stale subset's QPs and one lockstep
        :func:`~repro.optim.polyhedron_feasible_point_batch` call per
        dominance pass.  ``False`` keeps the per-subset / per-candidate
        scalar path — the reference the differential suite pins the
        kernel against (completed runs are bit-identical either way).
    incremental:
        ``True`` (default) makes the *batched* dominance pass incremental
        across refreshes: subsets whose candidate field is provably
        unchanged skip their pass outright, candidates whose capped
        competitor tuple is unchanged reuse last pass's (non-empty)
        verdict without re-solving, byte-identical LP systems within a
        pass are solved once, and the LPs that do run are warm-started
        from cached optimal bases and assembled through workspace-owned
        gather plans; the masked QP kernel additionally tries each
        entry's last resolving active set first.  Every mechanism is
        verdict-preserving, so completed runs stay bit-identical to the
        memoryless batched pass and the scalar reference.  ``False``
        keeps the memoryless batched pass (the PR 5 baseline, used by
        the benchmark's speedup denominator).  Ignored when
        ``batch_kernel`` is off.
    """

    def __init__(
        self,
        dominance_period: int | None = None,
        *,
        batch_kernel: bool = True,
        incremental: bool = True,
    ) -> None:
        super().__init__()
        if dominance_period is not None and dominance_period < 1:
            raise ValueError("dominance_period must be >= 1 (or None)")
        self.dominance_period = dominance_period
        self.batch_kernel = batch_kernel
        self.incremental = incremental
        self._subsets: list[_SubsetState] | None = None
        self._synced: list[int] = []
        self._accesses = 0
        self._version = 0
        self._own_workspace: BoundWorkspace | None = None

    @property
    def is_tight(self) -> bool:
        return True

    # -- shared plumbing ---------------------------------------------------

    def _workspace(self, state: EngineState) -> BoundWorkspace:
        if state.workspace is not None:
            return state.workspace
        if self._own_workspace is None:
            self._own_workspace = BoundWorkspace()
        return self._own_workspace

    def _init_subsets(self, state: EngineState) -> list[_SubsetState]:
        if self._subsets is None:
            n = state.n
            if n > _MAX_RELATIONS:
                raise ValueError(
                    f"tight bounding enumerates 2^n subsets; n={n} exceeds "
                    f"the supported maximum of {_MAX_RELATIONS}"
                )
            if not isinstance(state.scoring, QuadraticFormScoring):
                raise TypeError(
                    "TightBound requires a QuadraticFormScoring (paper eq. 2 "
                    "family); other scorings need the numeric fallback of "
                    "repro.core.bounds.numeric"
                )
            d = len(state.query)
            self._subsets = [
                _SubsetState(mask, n, d) for mask in range((1 << n) - 1)
            ]
            # Seed M = {} with its single "empty tuple" partial combination
            # (Appendix B.1): it bounds combinations unseen in every slot.
            # Its -inf theta row forces a solve on first use.
            self._subsets[0].append(np.zeros((1, 0)), np.zeros((1, 0, d)))
            self._synced = [0] * n
        return self._subsets

    def update(self, state: EngineState, i: int, tau: RankTuple) -> float:
        start = time.perf_counter()
        dominance_before = self.counters.dominance_seconds
        self.counters.updates += 1
        subsets = self._init_subsets(state)
        new_counts = [s.depth - p for s, p in zip(state.streams, self._synced)]
        self._accesses += sum(new_counts)
        if state.kind is AccessKind.DISTANCE:
            t = self._update_distance(state, subsets, new_counts)
        else:
            t = self._update_score(state, subsets, new_counts)
        self._synced = [s.depth for s in state.streams]
        self._version += 1
        # Keep the two stacked-bar shares disjoint (Figure 3(m)/(n)): the
        # dominance pass runs inside this call but reports its own share.
        elapsed = time.perf_counter() - start
        dominance_delta = self.counters.dominance_seconds - dominance_before
        self.counters.bound_seconds += elapsed - dominance_delta
        return t

    def potentials(self, state: EngineState) -> list[float]:
        self.counters.potential_consults += 1
        ws = self._workspace(state)
        cached = ws.potentials_if_fresh(self._version)
        if cached is not None:
            return list(cached)
        subsets = self._init_subsets(state)
        self.counters.potential_evals += 1
        pots = [NEG_INFINITY] * state.n
        for sub in subsets:
            if sub.dead:
                continue
            for i in sub.others:
                if sub.t_max > pots[i]:
                    pots[i] = sub.t_max
        ws.cache_potentials(self._version, pots)
        return list(pots)

    def _mark_dead_subsets(self, state: EngineState, subsets: list[_SubsetState]) -> None:
        for sub in subsets:
            if sub.dead:
                continue
            if any(state.streams[j].exhausted for j in sub.others):
                sub.dead = True
                sub.clear()

    def _new_member_batch(
        self, state: EngineState, sub: _SubsetState, new_counts: list[int]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Gather the partial combinations of ``M`` that use at least one
        tuple pulled since the last sync, each exactly once, as stacked
        ``(E, m)`` scores and ``(E, m, d)`` vectors.

        Standard incremental cross-product: for the ``r``-th member
        relation, combine its *new* access positions with the full
        current prefixes of earlier members and the old prefixes of later
        members.  Position index grids are fancy-indexed against the
        streams' columnar prefix arrays, so no ``RankTuple`` is touched;
        chunks keep the canonical row-major creation order.
        """
        members = sub.members
        pos_chunks: list[np.ndarray] = []
        for r, j in enumerate(members):
            if new_counts[j] == 0:
                continue
            spans = []
            for r2, l in enumerate(members):
                if r2 < r:
                    spans.append((0, state.streams[l].depth))
                elif r2 == r:
                    spans.append((self._synced[l], state.streams[l].depth))
                else:
                    spans.append((0, self._synced[l]))
            if any(hi <= lo for lo, hi in spans):
                continue
            grids = np.meshgrid(
                *[np.arange(lo, hi) for lo, hi in spans], indexing="ij"
            )
            pos_chunks.append(np.stack([g.ravel() for g in grids], axis=1))
        m = len(members)
        d = len(state.query)
        if not pos_chunks:
            return np.zeros((0, m)), np.zeros((0, m, d))
        pos = np.concatenate(pos_chunks, axis=0)
        per_member = [state.prefix_arrays(l) for l in members]
        scores = np.stack(
            [col[1][pos[:, c]] for c, col in enumerate(per_member)], axis=1
        )
        vecs = np.stack(
            [col[0][pos[:, c]] for c, col in enumerate(per_member)], axis=1
        )
        return scores, vecs

    # -- distance access (Algorithm 2) ---------------------------------------

    def _update_distance(
        self,
        state: EngineState,
        subsets: list[_SubsetState],
        new_counts: list[int],
    ) -> float:
        scoring = state.scoring
        assert isinstance(scoring, QuadraticFormScoring)
        n = state.n
        deltas = [s.last_distance for s in state.streams]
        sigma_max = [s.sigma_max for s in state.streams]

        self._mark_dead_subsets(state, subsets)
        track_dominance = self.dominance_period is not None
        gathered = self.batch_kernel

        # Gather phase (batch kernel) / solve phase (scalar reference).
        # ``pending`` collects every subset's stale completion problems
        # so the flush makes exactly one masked-QP kernel call.
        pending: list[tuple[_SubsetState, np.ndarray]] = []
        for sub in subsets:
            if sub.dead:
                continue
            members = list(sub.members)
            unseen_delta = {j: deltas[j] for j in sub.others}
            unseen_sigma = {j: sigma_max[j] for j in sub.others}

            # New partial combinations (subsets intersecting the new
            # pulls), gathered columnar; the staleness scan below covers
            # only the pre-existing rows — fresh rows are solved with the
            # current deltas, so they can never be stale in this refresh.
            pre_count = sub.count
            new_scores, new_vecs = self._new_member_batch(state, sub, new_counts)
            e_new = len(new_scores)
            if e_new:
                lo = sub.append(new_scores, new_vecs)
                rows = np.arange(lo, lo + e_new)
                if gathered:
                    pending.append((sub, rows))
                else:
                    values, thetas = self._solve_subset_scalar(
                        scoring, n, state.query, members, new_scores,
                        new_vecs, unseen_delta, unseen_sigma,
                    )
                    sub.t[rows] = values
                    sub.theta[rows] = thetas
                if track_dominance:
                    bs, cs = dominance_coefficients_batch(
                        scoring, n, state.query, new_scores, new_vecs,
                        unseen_sigma,
                    )
                    sub.b[lo : lo + e_new] = bs
                    sub.c[lo : lo + e_new] = cs
                    if gathered and self.incremental:
                        # Canonical value-equality ids for the new rows:
                        # duplicate pulls (tie-heavy streams) produce
                        # byte-identical (b, c) rows, which share an id
                        # and make the pass's reuse keys cheap integers.
                        ids = sub.canon_ids
                        canon = sub.canon
                        for r in range(e_new):
                            kb = bs[r].tobytes() + cs[r].tobytes()
                            cid = ids.get(kb)
                            if cid is None:
                                cid = len(ids)
                                ids[kb] = cid
                            canon[lo + r] = cid
                self.counters.qp_solves += e_new
                self.counters.entries_created += e_new

            # Revalidate cached optima where an unseen delta grew
            # (Algorithm 2's "i not in M" branch, feasibility fast path:
            # a cached optimum that still satisfies the new, tighter
            # constraints remains optimal).  One array reduction over the
            # subset's theta columns replaces the per-entry scan.
            grown = [j for j in sub.others if new_counts[j] > 0]
            if grown and pre_count:
                lows = np.array([deltas[j] for j in grown]) - _EPS
                stale = ~sub.dominated[:pre_count] & (
                    sub.theta[:pre_count][:, grown] < lows
                ).any(axis=1)
                idx = np.flatnonzero(stale)
                if idx.size:
                    if gathered:
                        pending.append((sub, idx))
                    else:
                        values, thetas = self._solve_subset_scalar(
                            scoring, n, state.query, members,
                            sub.scores[idx], sub.vecs[idx],
                            unseen_delta, unseen_sigma,
                        )
                        sub.t[idx] = values
                        sub.theta[idx] = thetas
                    self.counters.qp_solves += idx.size
                    self.counters.entries_revalidated += idx.size
            if not gathered:
                sub.recompute_max()

        if gathered:
            self._flush_qp_gather(state, pending, deltas, sigma_max)
            for sub in subsets:
                if not sub.dead:
                    sub.recompute_max()

        if track_dominance and self.dominance_period is not None:
            if self._accesses % self.dominance_period == 0:
                if gathered:
                    self._dominance_pass_batched(scoring, n, state, subsets)
                else:
                    self._dominance_pass(scoring, n, subsets)
                for sub in subsets:
                    sub.recompute_max()

        return max((sub.t_max for sub in subsets if not sub.dead), default=NEG_INFINITY)

    def _solve_subset_scalar(
        self,
        scoring: QuadraticFormScoring,
        n: int,
        query: np.ndarray,
        members: list[int],
        scores: np.ndarray,
        vecs: np.ndarray,
        unseen_delta: dict[int, float],
        unseen_sigma: dict[int, float],
    ) -> tuple[np.ndarray, np.ndarray]:
        """Scalar-path :func:`solve_completion_batch` with the QP kernel
        time split out, so ``solver_seconds`` draws the bookkeeping /
        solver line in the same place for both execution strategies."""
        proj, residual_sq, score_term = completion_geometry(
            scoring, query, scores, vecs, unseen_sigma
        )
        lower_idx = sorted(unseen_delta)
        lower_vals = np.array([unseen_delta[j] for j in lower_idx])
        h = spread_matrix(n, scoring.w_q, scoring.w_mu)
        started = time.perf_counter()
        qp_vals, thetas = solve_bound_qp_batch(
            h, members, proj, lower_idx, lower_vals
        )
        self.counters.solver_seconds += time.perf_counter() - started
        values = score_term - qp_vals - (scoring.w_q + scoring.w_mu) * residual_sq
        return values, thetas

    def _flush_qp_gather(
        self,
        state: EngineState,
        pending: list[tuple[_SubsetState, np.ndarray]],
        deltas: list[float],
        sigma_max: list[float],
    ) -> None:
        """Solve every gathered completion problem of one refresh with a
        single masked batch-QP kernel call and scatter the results back
        into the subsets' columnar arrays."""
        if not pending:
            return
        scoring = state.scoring
        assert isinstance(scoring, QuadraticFormScoring)
        n = state.n
        query = state.query
        total = sum(len(rows) for _, rows in pending)
        ws = self._workspace(state)
        fixed_mask, fixed_vals, lower_mask, lower_vals = ws.qp_slabs(total, n)
        score_term = ws.array("qp_score_term", (total,))
        residual_sq = ws.array("qp_residual_sq", (total,))
        incremental = self.incremental
        hints = ws.array("qp_hints", (total,), np.int64) if incremental else None

        chunks: list[_QPChunk] = []
        offset = 0
        for sub, rows in pending:
            e = len(rows)
            span = slice(offset, offset + e)
            if hints is not None:
                hints[span] = sub.qp_active[rows]
            proj, res_sq, s_term = completion_geometry(
                scoring,
                query,
                sub.scores[rows],
                sub.vecs[rows],
                {j: sigma_max[j] for j in sub.others},
            )
            members = list(sub.members)
            others = list(sub.others)
            if members:
                fixed_mask[span, members] = True
                fixed_vals[span, members] = proj
            if others:
                lower_mask[span, others] = True
                lower_vals[span, others] = [deltas[j] for j in others]
            score_term[span] = s_term
            residual_sq[span] = res_sq
            chunks.append(_QPChunk(sub, rows, span))
            offset += e

        h = spread_matrix(n, scoring.w_q, scoring.w_mu)
        started = time.perf_counter()
        if incremental:
            qp_vals, thetas, active = solve_bound_qp_masked(
                h, fixed_mask, fixed_vals, lower_mask, lower_vals,
                hints=hints, return_active=True,
            )
        else:
            qp_vals, thetas = solve_bound_qp_masked(
                h, fixed_mask, fixed_vals, lower_mask, lower_vals
            )
        self.counters.solver_seconds += time.perf_counter() - started
        values = score_term - qp_vals - (scoring.w_q + scoring.w_mu) * residual_sq
        for chunk in chunks:
            chunk.sub.t[chunk.rows] = values[chunk.span]
            chunk.sub.theta[chunk.rows] = thetas[chunk.span]
            if incremental:
                chunk.sub.qp_active[chunk.rows] = active[chunk.span]

    def _dominance_pass(
        self, scoring: QuadraticFormScoring, n: int, subsets: list[_SubsetState]
    ) -> None:
        """Scalar reference dominance pass: one feasibility LP per
        uncertified candidate (scipy-accelerated when available).

        Structured as gather (witness pre-pass + constraint assembly,
        shared with the batched pass) followed by the per-candidate LP
        loop, so ``solver_seconds`` times exactly the feasibility solves
        — the same line the batched pass draws around its lockstep call.
        The flags and witnesses equal :func:`dominated_mask`'s.
        """
        start = time.perf_counter()
        for sub in subsets:
            if sub.dead or not sub.members:
                continue
            cnt = sub.count
            if cnt - int(sub.dominated[:cnt].sum()) < 2:
                continue
            m = len(sub.members)
            # Shared quadratic coefficient of eq. (24) for this subset.
            quad = scoring.w_q * (n - m) + scoring.w_mu * (m / n) * (n - m)
            before = sub.dominated[:cnt].copy()
            # The pre-pass updates the witness rows in place, so cached
            # non-emptiness certificates persist across passes.
            prep = prepare_dominance_pass(
                sub.b[:cnt], sub.c[:cnt], before,
                quad_coeff=quad, witnesses=sub.witness[:cnt],
            )
            self.counters.dominance_witness_hits += prep.witness_hits
            out = prep.out
            lp_started = time.perf_counter()
            for k, alpha in enumerate(prep.pending):
                g, h = prep.assemble(k)
                point = polyhedron_feasible_point(g, h)
                if point is None:
                    out[alpha] = True
                else:
                    sub.witness[alpha] = point
            self.counters.solver_seconds += time.perf_counter() - lp_started
            self.counters.lp_solves += len(prep.pending)
            newly = out & ~sub.dominated[:cnt]
            self.counters.entries_dominated += int(newly.sum())
            sub.dominated[:cnt] = out
        self.counters.dominance_seconds += time.perf_counter() - start

    def _dominance_pass_batched(
        self,
        scoring: QuadraticFormScoring,
        n: int,
        state: EngineState,
        subsets: list[_SubsetState],
    ) -> None:
        """Batched dominance pass: shared witness pre-pass per subset,
        then every subset's surviving feasibility LPs solved through one
        lockstep kernel call (the kernel groups and stacks the ``G/h``
        blocks by constraint count).

        With ``incremental`` (the default), four verdict-preserving
        reuse layers run in front of and inside the kernel call:

        * **subset skip** — a subset whose last pass saw the same entry
          count *and* flagged nothing new has a bit-identical candidate
          field (entries are append-only and their ``b``/``c`` rows
          immutable), so every verdict would repeat; the whole pass is
          skipped.  Count alone is not enough: a shrinking live set can
          pull weaker competitors into the capped LPs and flip verdicts.
        * **key reuse** — a pending candidate whose LP-problem key row
          (its canonical ``(b, c)`` class plus the ordered capped
          competitor classes) equals its cached ``lp_keys`` row would
          rebuild a bit-identical ``(G, h)`` system; the deterministic
          kernel would repeat last pass's (necessarily non-empty —
          empty means flagged forever) verdict, so the cached feasible
          point is restored without solving.  One array comparison per
          subset answers every candidate at once.
        * **key dedup** — within the pass, candidates of one subset with
          equal LP-problem key rows have byte-identical ``(G, h)``
          systems (every assembly operand is byte-identical — tie-heavy
          streams produce exact twins), so one row-unique call per
          subset picks the systems to assemble and solve, and the
          verdict is fanned out to every owner.
        * **warm starts + plans** — the LPs that remain are warm-started
          from cached optimal bases (stale bases fall back to the
          bit-identical cold start) and assembled through the
          workspace's :meth:`~repro.core.bounds.workspace.BoundWorkspace.lp_plan`
          slabs.
        """
        start = time.perf_counter()
        incremental = self.incremental
        ws = self._workspace(state) if incremental else None
        scatter: list[tuple[_SubsetState, int, np.ndarray]] = []
        gs: list[np.ndarray] = []
        hs: list[np.ndarray] = []
        owners: list[tuple[_SubsetState, int]] = []
        fanouts: list[tuple] = []
        warm_bases: list[np.ndarray | None] = []
        for sub in subsets:
            if sub.dead or not sub.members:
                continue
            cnt = sub.count
            if cnt - int(sub.dominated[:cnt].sum()) < 2:
                continue
            if incremental and sub.pass_count == cnt and sub.pass_newly == 0:
                self.counters.dominance_subset_skips += 1
                continue
            m = len(sub.members)
            quad = scoring.w_q * (n - m) + scoring.w_mu * (m / n) * (n - m)
            before = sub.dominated[:cnt].copy()
            prep = prepare_dominance_pass(
                sub.b[:cnt], sub.c[:cnt], before,
                quad_coeff=quad, witnesses=sub.witness[:cnt],
                canon=sub.canon[:cnt] if incremental else None,
            )
            self.counters.dominance_witness_hits += prep.witness_hits
            scatter.append((sub, cnt, prep.out))
            alpha = prep.alpha
            if alpha.size == 0:
                continue
            if not incremental:
                for k in range(alpha.size):
                    g, h = prep.assemble(k)
                    gs.append(g)
                    hs.append(h)
                    owners.append((sub, int(alpha[k])))
                    warm_bases.append(None)
                continue
            # Class-collapsed front end: ``prep.alpha``/``prep.comp``
            # hold one representative problem per value-equality class;
            # every pending candidate owns one class.  Key rows (own
            # class first, then the ordered capped competitor classes)
            # answer cross-pass reuse with one pad-aware array
            # comparison (pad/-2 rows can never match: classes are
            # >= 0, so one column past the key detects width drift).
            comp = prep.comp
            width = comp.shape[1]
            canon = sub.canon
            n_cls = alpha.size
            keys_u = np.empty((n_cls, width + 1), dtype=np.int64)
            keys_u[:, 0] = canon[alpha]
            keys_u[:, 1:] = canon[comp]
            own = prep.owners_alpha
            own_cls = prep.owners_class
            keys = keys_u[own_cls]
            cached = sub.lp_keys[own]
            reuse = (cached[:, : width + 1] == keys).all(axis=1)
            if width + 1 < cached.shape[1]:
                reuse &= cached[:, width + 1] == -1
            if reuse.any():
                hit = own[reuse]
                sub.witness[hit] = sub.lp_point[hit]
                self.counters.dominance_lp_reused += int(reuse.sum())
            rest = np.flatnonzero(~reuse)
            if rest.size == 0:
                continue
            # Solve each class still owed a verdict exactly once.
            need = np.zeros(n_cls, dtype=bool)
            need[own_cls[rest]] = True
            sel = np.flatnonzero(need)
            slot_of = np.full(n_cls, -1, dtype=np.int64)
            slot_of[sel] = len(gs) + np.arange(sel.size)
            for u in sel:
                g, h = prep.assemble(int(u))
                gs.append(g)
                hs.append(h)
                warm_bases.append(sub.lp_basis[int(alpha[u])])
            self.counters.dominance_lp_deduped += int(rest.size - sel.size)
            fanouts.append(
                (sub, own[rest], slot_of[own_cls[rest]], keys[rest], width)
            )

        if gs:
            # One ragged lockstep call for every subset's surviving LPs;
            # the kernel groups by constraint count and stacks the
            # blocks itself (into the workspace's plans when incremental).
            stats: dict[str, int] = {}
            started = time.perf_counter()
            if incremental:
                points, empty, bases_out = polyhedron_feasible_point_batch(
                    gs, hs, bases=warm_bases, return_bases=True,
                    stats=stats, workspace=ws,
                )
            else:
                points, empty = polyhedron_feasible_point_batch(gs, hs)
                bases_out = None
            self.counters.solver_seconds += time.perf_counter() - started
            self.counters.lp_solves += len(gs)
            self.counters.lp_warm_pivots += stats.get("lp_warm_pivots", 0)
            self.counters.lp_cold_pivots += stats.get("lp_cold_pivots", 0)
            out_of = {id(sub): out for sub, _, out in scatter}
            # Memoryless scatter: one owner per problem, in gs order.
            for slot, (sub, a) in enumerate(owners):
                if empty[slot]:
                    out_of[id(sub)][a] = True
                else:
                    sub.witness[a] = points[slot]
            # Incremental scatter: fan each solved system's verdict out
            # to every owner and refresh the per-entry caches, all with
            # array indexing (``slots`` maps owners to their unique
            # solved problem).
            for sub, own, slots, key_rows, width in fanouts:
                out = out_of[id(sub)]
                emptied = empty[slots]
                if emptied.any():
                    out[own[emptied]] = True
                    sub.lp_keys[own[emptied]] = -2
                ok = ~emptied
                if ok.any():
                    a_ok = own[ok]
                    p_ok = points[slots[ok]]
                    sub.witness[a_ok] = p_ok
                    sub.lp_point[a_ok] = p_ok
                    rows = np.full(
                        (a_ok.size, sub.lp_keys.shape[1]), -1, np.int64
                    )
                    rows[:, : width + 1] = key_rows[ok]
                    sub.lp_keys[a_ok] = rows
                    for a, s in zip(a_ok, slots[ok]):
                        sub.lp_basis[int(a)] = bases_out[int(s)]

        for sub, cnt, out in scatter:
            newly = out & ~sub.dominated[:cnt]
            n_newly = int(newly.sum())
            self.counters.entries_dominated += n_newly
            sub.dominated[:cnt] = out
            if incremental:
                sub.pass_count = cnt
                sub.pass_newly = n_newly
        self.counters.dominance_seconds += time.perf_counter() - start

    # -- score access (Algorithm 3) -------------------------------------------

    def _update_score(
        self,
        state: EngineState,
        subsets: list[_SubsetState],
        new_counts: list[int],
    ) -> float:
        scoring = state.scoring
        assert isinstance(scoring, QuadraticFormScoring)
        n = state.n
        last_scores = [s.last_score for s in state.streams]

        self._mark_dead_subsets(state, subsets)

        for sub in subsets:
            if sub.dead:
                continue
            members = list(sub.members)
            unseen_sigma = {j: last_scores[j] for j in sub.others}

            # Refresh the incumbent first (an unseen last-score may have
            # dropped), then challenge it with every new partial
            # combination; Algorithm 3 retains only the best entry per
            # subset (row 0).  Relative order inside PC(M) is unaffected
            # by the refresh (Appendix C), so a single incumbent is safe.
            if sub.count and any(new_counts[j] > 0 for j in sub.others):
                result = score_access_completion(
                    scoring, n, state.query,
                    self._row_dict(sub, 0), unseen_sigma,
                )
                sub.t[0] = result.value
                self.counters.closed_form_evals += 1
            # Challenge the incumbent with every new partial combination
            # in one vectorised closed-form evaluation (values only — the
            # single survivor per subset never needs the maximiser
            # geometry).  The sequential scalar loop kept the *first*
            # entry attaining the running maximum (strict-> replacement),
            # which is exactly ``argmax``; all other challengers are
            # immediately dominated, as is a beaten incumbent.
            new_scores, new_vecs = self._new_member_batch(state, sub, new_counts)
            e_new = len(new_scores)
            if e_new:
                values = score_access_completion_batch(
                    scoring, n, state.query, new_scores, new_vecs, unseen_sigma
                )
                self.counters.closed_form_evals += e_new
                self.counters.entries_created += e_new
                best = int(np.argmax(values))
                if sub.count == 0:
                    sub.append(
                        new_scores[best : best + 1], new_vecs[best : best + 1]
                    )
                    sub.t[0] = float(values[best])
                    self.counters.entries_dominated += e_new - 1
                else:
                    if values[best] > sub.t[0]:
                        sub.scores[0] = new_scores[best]
                        sub.vecs[0] = new_vecs[best]
                        sub.t[0] = float(values[best])
                    self.counters.entries_dominated += e_new
            sub.count = min(sub.count, 1)
            sub.recompute_max()

        return max((sub.t_max for sub in subsets if not sub.dead), default=NEG_INFINITY)

    @staticmethod
    def _row_dict(
        sub: _SubsetState, row: int
    ) -> dict[int, tuple[float, np.ndarray]]:
        """Entry row as the mapping the scalar geometry helpers expect."""
        return {
            j: (float(sub.scores[row, r]), sub.vecs[row, r])
            for r, j in enumerate(sub.members)
        }
