"""The corner bound (HRJN's bounding scheme), Section 3.1 / Appendix C.

Distance-based access (eq. 3):

    t_c = max_i t_i,   t_i = f(S-bar_1, ..., S_i, ..., S-bar_n)

where ``S-bar_j = g_j(sigma_j^max, delta(x(R_j[1]), q), 0)`` bounds any
tuple of ``R_j`` and ``S_i = g_i(sigma_i^max, delta(x(R_i[p_i]), q), 0)``
bounds an *unseen* tuple of ``R_i``.  Distances default to 0 while
``p_i = 0``.  The centroid distance is always taken as 0 — the corner
bound is oblivious to the mutual-proximity geometry, which is exactly why
it is not tight (Theorem 3.1) and why HRJN-style algorithms over-read.

Score-based access (eq. 36) replaces distances by first/last scores with
all distances at 0.
"""

from __future__ import annotations

import time

from repro.core.access import AccessKind
from repro.core.bounds.base import NEG_INFINITY, BoundingScheme, EngineState
from repro.core.relation import RankTuple

__all__ = ["CornerBound"]


class CornerBound(BoundingScheme):
    """HRJN's corner bound for both access kinds."""

    def __init__(self) -> None:
        super().__init__()
        self._pots: list[float] = []

    def update(self, state: EngineState, i: int, tau: RankTuple) -> float:
        start = time.perf_counter()
        self.counters.updates += 1
        self._pots = [self._t_i(state, j) for j in range(state.n)]
        self.counters.bound_seconds += time.perf_counter() - start
        return max(self._pots, default=NEG_INFINITY)

    def potentials(self, state: EngineState) -> list[float]:
        if len(self._pots) != state.n:
            self._pots = [self._t_i(state, j) for j in range(state.n)]
        return list(self._pots)

    def _t_i(self, state: EngineState, i: int) -> float:
        """The term ``t_i``: bound over combinations completed with an
        unseen tuple of ``R_i`` (other slots bounded by their best seen
        or best possible tuple)."""
        stream_i = state.streams[i]
        if stream_i.exhausted:
            return NEG_INFINITY
        scoring = state.scoring
        weighted = []
        # Streams are duck-typed (local sorted access, k-d access or the
        # service simulator); only the paper-visible statistics are used.
        for j, stream in enumerate(state.streams):
            if state.kind is AccessKind.DISTANCE:
                dist = stream.last_distance if j == i else stream.first_distance
                weighted.append(
                    scoring.weighted_score(j, stream.sigma_max, dist, 0.0)
                )
            else:
                score = stream.last_score if j == i else stream.first_score
                weighted.append(scoring.weighted_score(j, score, 0.0, 0.0))
        return scoring.aggregate(weighted)
