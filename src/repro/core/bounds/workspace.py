"""Per-run scratch arena and memoisation for the bound kernel.

One :class:`BoundWorkspace` lives for the duration of an engine run
(created by :class:`~repro.core.template.ProxRJ` and threaded through
:class:`~repro.core.bounds.base.EngineState`), and owns every reusable
slab the batched bound stack fills on each refresh:

* the stacked QP coefficient blocks — fixed/lower pattern masks and
  value arrays, per-entry score terms and residuals — that
  :class:`~repro.core.bounds.tight.TightBound` gathers across *all*
  stale subsets before its single
  :func:`~repro.optim.solve_bound_qp_masked` call;
* the LP gather plans (:meth:`BoundWorkspace.lp_plan`): one
  :class:`~repro.optim.simplex.ChebyGatherPlan` per constraint-count /
  dimensionality shape, built on first use and reused every dominance
  refresh, so the lockstep Chebyshev kernel's per-group ``G``/``h``
  stacks and 3-D tableaux live in grow-only slabs here instead of being
  allocated per pass;
* generic named scratch buffers (grow-only, doubling) that the batch
  scorer's candidate sieve borrows for its per-block temporaries;
* the per-relation potentials memo: ``pot_i`` depends only on the
  subsets' cached maxima, which change exactly when the bound updates,
  so :meth:`~repro.core.bounds.tight.TightBound.potentials` caches its
  answer per bound version and a mid-block strategy consultation becomes
  a list copy instead of a subset sweep.

Slabs grow by doubling and are never returned to the allocator: a
steady-state refresh performs no array allocation for its gather
buffers, which is the same append-only discipline the engine's columnar
slabs (:mod:`repro.core.columnar`, :mod:`repro.core.batchscore`) follow.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["BoundWorkspace"]


class BoundWorkspace:
    """Reusable slabs + memoisation shared by one engine run's bound stack.

    Not thread-safe; the engine owns one per run (bounding schemes
    lazily create a private one when driven without an engine, e.g. in
    unit tests that call ``update`` directly).
    """

    __slots__ = ("_buffers", "_lp_plans", "potentials_cache", "potentials_version")

    def __init__(self) -> None:
        self._buffers: dict[str, np.ndarray] = {}
        self._lp_plans: dict[tuple[int, int], object] = {}
        #: Cached per-relation potentials and the bound version they
        #: were computed at (-1 = nothing cached yet).
        self.potentials_cache: list[float] | None = None
        self.potentials_version: int = -1

    # -- scratch slabs -----------------------------------------------------

    def array(
        self,
        name: str,
        shape: tuple[int, ...],
        dtype=np.float64,
        *,
        zero: bool = False,
    ) -> np.ndarray:
        """A ``shape``-shaped view into the grow-only buffer ``name``.

        The backing buffer doubles when ``shape`` outgrows it and is
        reused across calls, so steady-state gathers allocate nothing.
        Contents are undefined unless ``zero`` is set.  Callers must not
        hold a view across two ``array`` calls for the same name.
        """
        size = math.prod(shape)
        buf = self._buffers.get(name)
        if buf is None or buf.size < size or buf.dtype != np.dtype(dtype):
            cap = max(16, buf.size if buf is not None else 0)
            while cap < size:
                cap *= 2
            buf = np.empty(cap, dtype=dtype)
            self._buffers[name] = buf
        view = buf[:size].reshape(shape)
        if zero:
            view[...] = 0
        return view

    def qp_slabs(
        self, rows: int, n: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """The stacked bound-QP coefficient blocks for one refresh:
        ``(fixed_mask, fixed_vals, lower_mask, lower_vals)``, each
        ``(rows, n)``; masks come back zeroed, value slabs are written
        only where their mask is set."""
        return (
            self.array("qp_fixed_mask", (rows, n), np.bool_, zero=True),
            self.array("qp_fixed_vals", (rows, n)),
            self.array("qp_lower_mask", (rows, n), np.bool_, zero=True),
            self.array("qp_lower_vals", (rows, n)),
        )

    def lp_plan(self, m: int, d: int):
        """The cached :class:`~repro.optim.simplex.ChebyGatherPlan` for
        ``m``-constraint, ``d``-dimensional Chebyshev groups.

        Built once per ``(m, d)`` shape and reused every refresh; the
        plan's stack and tableau buffers are slabs of this workspace, so
        steady-state dominance passes allocate nothing for LP assembly.
        """
        plan = self._lp_plans.get((m, d))
        if plan is None:
            from repro.optim.simplex import ChebyGatherPlan

            plan = ChebyGatherPlan(self, m, d)
            self._lp_plans[(m, d)] = plan
        return plan

    # -- potentials memo ---------------------------------------------------

    def potentials_if_fresh(self, version: int) -> list[float] | None:
        """The memoised potentials if they were computed at ``version``."""
        if self.potentials_version == version:
            return self.potentials_cache
        return None

    def cache_potentials(self, version: int, pots: list[float]) -> None:
        """Memoise ``pots`` as the potentials of bound ``version``."""
        self.potentials_cache = pots
        self.potentials_version = version
