"""Dominance pruning of partial combinations (Section 3.2.2).

Within one subset ``M``, every partial combination ``tau_alpha`` has an
unconstrained completion objective ``f_alpha(y) = -(a y'y + 2 b_a'y + c_a)``
with the *same* quadratic coefficient ``a`` for all alpha.  The region
where alpha beats beta is therefore the half-space

    2 (b_alpha - b_beta)' y  <=  c_beta - c_alpha          (eq. 16)

and alpha's dominance region is the intersection over all competitors
(eq. 17).  If that polyhedron is empty, ``t_M`` can never be realised by
alpha, so alpha is skipped by all future bound computations — permanently,
because new accesses only add competitors (shrinking regions further).

Emptiness is a feasibility LP (eq. 35), answered by the Chebyshev-centre
test of :mod:`repro.optim.simplex`.  Because the LP cost grows with both
the number of candidates and the number of constraints (the paper remarks
that "solving the LP might be too costly"), two *sound* accelerations
wrap it:

1. **Witness pre-pass** (vectorised): if alpha beats every competitor at
   its own unconstrained optimum ``y_alpha = -b_alpha / a``, that point
   witnesses ``D(alpha) != {}`` — no LP needed.  Most live combinations
   pass this test.
2. **Capped constraint sets**: for candidates that fail the witness test,
   the LP keeps only the strongest competitors (those with the best value
   at ``y_alpha``).  Dropping constraints only *enlarges* the region, so
   "empty under a subset of constraints" still proves real emptiness,
   while "non-empty" is treated as inconclusive and the candidate is
   conservatively kept.

The surviving LPs come in two execution strategies: the scalar loop of
:func:`dominated_mask` (one :func:`~repro.optim.polyhedron_feasible_point`
call per candidate — scipy-accelerated when available), and the batched
bound kernel, where :func:`dominance_lp_problems` only *assembles* the
per-candidate ``(G, h)`` blocks so the caller can stack every subset's
problems of a whole dominance pass into one
:func:`~repro.optim.polyhedron_feasible_point_batch` lockstep call
(:func:`dominated_mask_batch` is the single-subset convenience wrapper).
Both strategies share the pre-pass and the assembly, and the lockstep
kernel's emptiness verdicts agree with the scalar test's, so the masks
they produce are identical.

All directions preserve the invariant correctness depends on: a live
partial combination is never flagged dominated.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.optim.simplex import (
    polyhedron_feasible_point,
    polyhedron_feasible_point_batch,
)

__all__ = [
    "dominated_mask",
    "dominated_mask_batch",
    "dominance_lp_problems",
    "DominancePrep",
    "prepare_dominance_pass",
]

_MAX_LP_CONSTRAINTS = 64
_WITNESS_TOL = 1e-9


def _witness_prepass(
    bs: np.ndarray,
    cs: np.ndarray,
    already_dominated: np.ndarray,
    quad_coeff: float,
    witnesses: np.ndarray | None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray | None, int]:
    """Passes 0 and 1 (cached witnesses + unconstrained-optimum probes).

    Returns ``(out, live, survivors, vals, witness_hits)``: the copied
    dominated mask, the live candidate indices, the per-live-candidate
    survivor flags, the probe value matrix (``None`` when the pre-pass is
    disabled), and the number of candidates certified by a *cached*
    witness (pass 0 — the cross-pass reuse counter).  ``witnesses`` rows
    of certified survivors are updated in place.
    """
    out = np.asarray(already_dominated, dtype=bool).copy()
    live = np.flatnonzero(~out)
    survivors = np.zeros(len(live), dtype=bool)
    witness_hits = 0
    if len(live) < 2:
        return out, live, survivors, None, witness_hits

    b_live = bs[live]
    c_live = cs[live]

    # g_alpha(y) = 2 b_alpha' y + c_alpha; alpha beats beta at y iff
    # g_alpha(y) <= g_beta(y).

    # Pass 0: cached witnesses.  vals_w[i, j] = g_j(w_i); candidate i
    # survives if it still wins at its own stored witness.
    if witnesses is not None:
        w_live = witnesses[live]
        cached = ~np.isnan(w_live[:, 0])
        if cached.any():
            vals_w = 2.0 * w_live[cached] @ b_live.T + c_live[None, :]
            own = np.take_along_axis(
                vals_w, np.flatnonzero(cached)[:, None], axis=1
            )[:, 0]
            still_valid = own <= vals_w.min(axis=1) + _WITNESS_TOL
            survivors[np.flatnonzero(cached)[still_valid]] = True
            witness_hits = int(still_valid.sum())

    # Pass 1: probe every candidate's unconstrained optimum
    # y_alpha = -b_alpha / a.  Every *winner at any probed point* is
    # certainly non-dominated, so the full value matrix yields far more
    # witnesses than each candidate's own optimum alone.
    vals = None
    if quad_coeff > 0.0:
        ys = -b_live / quad_coeff  # (u_live, d)
        vals = 2.0 * ys @ b_live.T + c_live[None, :]  # vals[i, j] = g_j(y_i)
        row_min = vals.min(axis=1)
        diag_ok = np.diagonal(vals) <= row_min + _WITNESS_TOL
        if witnesses is not None:
            for pos in np.flatnonzero(diag_ok & ~survivors):
                witnesses[live[pos]] = ys[pos]
        survivors |= diag_ok
        winners = vals <= row_min[:, None] + _WITNESS_TOL
        win_rows = winners.argmax(axis=0)
        new_winners = winners.any(axis=0) & ~survivors
        if witnesses is not None:
            for pos in np.flatnonzero(new_winners):
                witnesses[live[pos]] = ys[win_rows[pos]]
        survivors |= new_winners
    return out, live, survivors, vals, witness_hits


def _empty_i64(shape: tuple[int, ...]) -> np.ndarray:
    return np.empty(shape, dtype=np.int64)


@dataclass
class DominancePrep:
    """One subset's prepared dominance pass: pre-pass verdicts plus the
    *identity* of every pending feasibility LP, assembly deferred.

    ``alpha[k]`` is the global candidate index of pending problem ``k``
    and ``comp[k]`` its ordered capped competitor row — together the
    full identity of the LP given the subset's (immutable) ``b``/``c``
    rows.  Because the subset's rows never change, any injective mapping
    of them — their indices, or value-equality class ids — turns
    ``(alpha, comp)`` rows into sound reuse keys: equal keys mean every
    operand of the assembly is byte-identical, hence a byte-identical
    ``(G, h)`` system and an identical verdict from the deterministic
    kernel.  :meth:`assemble` materialises the block lazily, so
    deduplicated and cache-answered candidates never pay assembly.
    """

    #: Copied dominated mask (pre-pass adds no new flags).
    out: np.ndarray
    #: Global candidate index per pending LP, shape ``(P,)``.
    alpha: np.ndarray = field(default_factory=lambda: _empty_i64((0,)))
    #: ``(P, width)`` ordered capped competitor rows (global indices).
    comp: np.ndarray = field(default_factory=lambda: _empty_i64((0, 0)))
    #: Class-collapsed mode only (``canon`` given): every pending
    #: candidate (``owners_alpha``) and the row of ``alpha``/``comp``
    #: holding its class's representative problem (``owners_class``).
    owners_alpha: np.ndarray | None = None
    owners_class: np.ndarray | None = None
    #: Candidates certified by a cached cross-pass witness (pass 0).
    witness_hits: int = 0
    _bs: np.ndarray | None = None
    _cs: np.ndarray | None = None

    @property
    def pending(self) -> list[int]:
        """``alpha`` as a plain int list (scalar-loop convenience)."""
        return self.alpha.tolist()

    def assemble(self, k: int) -> tuple[np.ndarray, np.ndarray]:
        """The ``(G, h)`` half-space block of pending problem ``k``."""
        a = self.alpha[k]
        competitors = self.comp[k]
        g = 2.0 * (self._bs[a] - self._bs[competitors])
        h = self._cs[competitors] - self._cs[a]
        return g, h


def prepare_dominance_pass(
    bs: np.ndarray,
    cs: np.ndarray,
    already_dominated: np.ndarray,
    *,
    quad_coeff: float,
    max_lp_constraints: int = _MAX_LP_CONSTRAINTS,
    witnesses: np.ndarray | None = None,
    canon: np.ndarray | None = None,
) -> DominancePrep:
    """Run the witness pre-pass and identify — without assembling — the
    pending feasibility LPs of one subset (see :class:`DominancePrep`).

    Shares the exact pre-pass of :func:`dominated_mask` (``witnesses``
    updated in place identically); every public entry point below is a
    thin wrapper over this.  The competitor extraction is one stable
    row-wise argsort over all pending candidates (identical, row for
    row, to the scalar loop's per-candidate sort).

    ``canon`` (per-row value-equality class ids of the immutable
    ``(b, c)`` rows) switches on *class collapse*: pending candidates of
    the same class have byte-identical probe rows, hence identical
    strength orderings, and their LP systems coincide up to the
    self/twin swap — which assembles to an all-zero vacuous half-space
    either way — plus, when a cross-class probe-value tie separates the
    twins in the stable order, a permutation of the tied rows.  Either
    way the representative's system is a capped subset of every owner's
    own competitor constraints, so its "empty" verdict soundly transfers
    (dropping or reordering constraints never flags a live candidate);
    with ties confined to classes the systems are byte-identical.  Only
    one representative per class is sorted and kept in
    ``alpha``/``comp``; ``owners_alpha``/``owners_class`` map every
    pending candidate back to its class's problem, so the caller solves
    each class once and fans the verdict out.
    """
    bs = np.atleast_2d(np.asarray(bs, dtype=float))
    cs = np.asarray(cs, dtype=float)
    out, live, survivors, vals, witness_hits = _witness_prepass(
        bs, cs, already_dominated, quad_coeff, witnesses
    )
    prep = DominancePrep(out=out, witness_hits=witness_hits, _bs=bs, _cs=cs)
    num_live = len(live)
    if num_live < 2:
        return prep
    pend = np.flatnonzero(~survivors)
    if pend.size == 0:
        return prep
    if canon is not None:
        owners = live[pend]
        _, rep, inv = np.unique(
            canon[owners], return_index=True, return_inverse=True
        )
        prep.owners_alpha = owners
        prep.owners_class = inv.reshape(-1)
        pend = pend[rep]
    # Strength ordering per pending candidate (rows of the probe matrix;
    # the c fallback when the pre-pass is disabled), self removed, capped.
    if vals is not None:
        at_opt = vals[pend]
    else:
        at_opt = np.broadcast_to(cs[live], (pend.size, num_live))
    order = np.argsort(at_opt, axis=1, kind="stable")
    cand = live[order]  # (P, num_live) global indices, strength order
    alpha = live[pend]
    self_col = (cand == alpha[:, None]).argmax(axis=1)
    width = min(num_live - 1, max_lp_constraints)
    cols = np.arange(width)
    take = cols[None, :] + (cols[None, :] >= self_col[:, None])
    prep.alpha = alpha
    prep.comp = np.take_along_axis(cand, take, axis=1)
    return prep


def dominated_mask(
    bs: np.ndarray,
    cs: np.ndarray,
    already_dominated: np.ndarray,
    *,
    quad_coeff: float,
    max_lp_constraints: int = _MAX_LP_CONSTRAINTS,
    witnesses: np.ndarray | None = None,
) -> tuple[np.ndarray, int]:
    """Flag newly dominated partial combinations within one subset ``M``.

    Parameters
    ----------
    bs:
        Array of shape ``(u, d)`` with the ``b`` coefficient of every
        partial combination of ``M``.
    cs:
        Array of shape ``(u,)`` with the ``c`` coefficients.
    already_dominated:
        Boolean array; those entries are excluded both as candidates and
        as competitors (the paper's constraint-discarding speed-up —
        removing constraints can only enlarge regions, so it never flags
        a live combination spuriously).
    quad_coeff:
        The shared quadratic coefficient ``a`` of eq. (24); needed to
        locate each candidate's unconstrained optimum for the witness
        pre-pass.  Non-positive values disable the pre-pass (flat
        objective: every point is an optimum).
    max_lp_constraints:
        Cap on competitors included in each feasibility LP.
    witnesses:
        Optional ``(u, d)`` array of cached non-emptiness witnesses (NaN
        rows = unknown), **updated in place**: a stored point at which a
        candidate beat every competitor on a previous pass is re-checked
        against the *current* competitor field first — an exact test that
        spares the candidate its LP while the witness stays valid.  LPs
        that prove non-emptiness store their Chebyshev centre here.

    Returns
    -------
    tuple[numpy.ndarray, int]
        Boolean array marking combinations whose dominance region is
        certainly empty (*including* those already flagged on input), and
        the number of feasibility LPs actually solved.
    """
    prep = prepare_dominance_pass(
        bs,
        cs,
        already_dominated,
        quad_coeff=quad_coeff,
        max_lp_constraints=max_lp_constraints,
        witnesses=witnesses,
    )
    # Pass 2: feasibility LP for the remaining candidates, against their
    # strongest competitors.
    for k, alpha in enumerate(prep.pending):
        g, h = prep.assemble(k)
        point = polyhedron_feasible_point(g, h)
        if point is None:
            prep.out[alpha] = True
        elif witnesses is not None:
            witnesses[alpha] = point
    return prep.out, len(prep.pending)


def dominance_lp_problems(
    bs: np.ndarray,
    cs: np.ndarray,
    already_dominated: np.ndarray,
    *,
    quad_coeff: float,
    max_lp_constraints: int = _MAX_LP_CONSTRAINTS,
    witnesses: np.ndarray | None = None,
) -> tuple[np.ndarray, list[tuple[int, np.ndarray, np.ndarray]]]:
    """The gather half of a batched dominance pass for one subset ``M``.

    Runs the witness pre-pass (updating ``witnesses`` in place exactly
    like :func:`dominated_mask`) and *assembles* — without solving — the
    feasibility-LP blocks of the candidates it could not certify.

    Returns
    -------
    (out, problems):
        The copied dominated mask (no new flags yet) and one
        ``(candidate_index, G, h)`` triple per pending LP.  The caller
        stacks the blocks of many subsets into one
        :func:`~repro.optim.polyhedron_feasible_point_batch` call and
        applies the verdicts: ``empty`` → ``out[candidate] = True``,
        non-empty → store the returned point in ``witnesses[candidate]``.
    """
    prep = prepare_dominance_pass(
        bs,
        cs,
        already_dominated,
        quad_coeff=quad_coeff,
        max_lp_constraints=max_lp_constraints,
        witnesses=witnesses,
    )
    problems = [
        (alpha, *prep.assemble(k)) for k, alpha in enumerate(prep.pending)
    ]
    return prep.out, problems


def dominated_mask_batch(
    bs: np.ndarray,
    cs: np.ndarray,
    already_dominated: np.ndarray,
    *,
    quad_coeff: float,
    max_lp_constraints: int = _MAX_LP_CONSTRAINTS,
    witnesses: np.ndarray | None = None,
) -> tuple[np.ndarray, int]:
    """Batched :func:`dominated_mask`: same pre-pass and constraint
    assembly, with the pending feasibility LPs solved in one lockstep
    :func:`~repro.optim.polyhedron_feasible_point_batch` call instead of
    a per-candidate loop.  The returned mask is identical to the scalar
    path's (the kernels' emptiness verdicts agree); only the cached
    witness *points* may differ when scipy answers the scalar LPs."""
    out, problems = dominance_lp_problems(
        bs,
        cs,
        already_dominated,
        quad_coeff=quad_coeff,
        max_lp_constraints=max_lp_constraints,
        witnesses=witnesses,
    )
    if not problems:
        return out, 0
    points, empty = polyhedron_feasible_point_batch(
        [g for _, g, _ in problems], [h for _, _, h in problems]
    )
    for k, (alpha, _, _) in enumerate(problems):
        if empty[k]:
            out[alpha] = True
        elif witnesses is not None:
            witnesses[alpha] = points[k]
    return out, len(problems)
