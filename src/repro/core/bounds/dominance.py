"""Dominance pruning of partial combinations (Section 3.2.2).

Within one subset ``M``, every partial combination ``tau_alpha`` has an
unconstrained completion objective ``f_alpha(y) = -(a y'y + 2 b_a'y + c_a)``
with the *same* quadratic coefficient ``a`` for all alpha.  The region
where alpha beats beta is therefore the half-space

    2 (b_alpha - b_beta)' y  <=  c_beta - c_alpha          (eq. 16)

and alpha's dominance region is the intersection over all competitors
(eq. 17).  If that polyhedron is empty, ``t_M`` can never be realised by
alpha, so alpha is skipped by all future bound computations — permanently,
because new accesses only add competitors (shrinking regions further).

Emptiness is a feasibility LP (eq. 35), answered here by the
Chebyshev-centre test of :mod:`repro.optim.simplex`.  Because the LP cost
grows with both the number of candidates and the number of constraints
(the paper remarks that "solving the LP might be too costly"), two *sound*
accelerations wrap it:

1. **Witness pre-pass** (vectorised): if alpha beats every competitor at
   its own unconstrained optimum ``y_alpha = -b_alpha / a``, that point
   witnesses ``D(alpha) != {}`` — no LP needed.  Most live combinations
   pass this test.
2. **Capped constraint sets**: for candidates that fail the witness test,
   the LP keeps only the strongest competitors (those with the best value
   at ``y_alpha``).  Dropping constraints only *enlarges* the region, so
   "empty under a subset of constraints" still proves real emptiness,
   while "non-empty" is treated as inconclusive and the candidate is
   conservatively kept.

Both directions preserve the invariant correctness depends on: a live
partial combination is never flagged dominated.
"""

from __future__ import annotations

import numpy as np

from repro.optim.simplex import polyhedron_feasible_point

__all__ = ["dominated_mask"]

_MAX_LP_CONSTRAINTS = 64
_WITNESS_TOL = 1e-9


def dominated_mask(
    bs: np.ndarray,
    cs: np.ndarray,
    already_dominated: np.ndarray,
    *,
    quad_coeff: float,
    max_lp_constraints: int = _MAX_LP_CONSTRAINTS,
    witnesses: np.ndarray | None = None,
) -> tuple[np.ndarray, int]:
    """Flag newly dominated partial combinations within one subset ``M``.

    Parameters
    ----------
    bs:
        Array of shape ``(u, d)`` with the ``b`` coefficient of every
        partial combination of ``M``.
    cs:
        Array of shape ``(u,)`` with the ``c`` coefficients.
    already_dominated:
        Boolean array; those entries are excluded both as candidates and
        as competitors (the paper's constraint-discarding speed-up —
        removing constraints can only enlarge regions, so it never flags
        a live combination spuriously).
    quad_coeff:
        The shared quadratic coefficient ``a`` of eq. (24); needed to
        locate each candidate's unconstrained optimum for the witness
        pre-pass.  Non-positive values disable the pre-pass (flat
        objective: every point is an optimum).
    max_lp_constraints:
        Cap on competitors included in each feasibility LP.
    witnesses:
        Optional ``(u, d)`` array of cached non-emptiness witnesses (NaN
        rows = unknown), **updated in place**: a stored point at which a
        candidate beat every competitor on a previous pass is re-checked
        against the *current* competitor field first — an exact test that
        spares the candidate its LP while the witness stays valid.  LPs
        that prove non-emptiness store their Chebyshev centre here.

    Returns
    -------
    tuple[numpy.ndarray, int]
        Boolean array marking combinations whose dominance region is
        certainly empty (*including* those already flagged on input), and
        the number of feasibility LPs actually solved.
    """
    bs = np.atleast_2d(np.asarray(bs, dtype=float))
    cs = np.asarray(cs, dtype=float)
    u = len(cs)
    out = np.asarray(already_dominated, dtype=bool).copy()
    live = np.flatnonzero(~out)
    if len(live) < 2:
        return out, 0

    b_live = bs[live]
    c_live = cs[live]
    survivors = np.zeros(len(live), dtype=bool)

    # g_alpha(y) = 2 b_alpha' y + c_alpha; alpha beats beta at y iff
    # g_alpha(y) <= g_beta(y).

    # Pass 0: cached witnesses.  vals_w[i, j] = g_j(w_i); candidate i
    # survives if it still wins at its own stored witness.
    if witnesses is not None:
        w_live = witnesses[live]
        cached = ~np.isnan(w_live[:, 0])
        if cached.any():
            vals_w = 2.0 * w_live[cached] @ b_live.T + c_live[None, :]
            own = np.take_along_axis(
                vals_w, np.flatnonzero(cached)[:, None], axis=1
            )[:, 0]
            still_valid = own <= vals_w.min(axis=1) + _WITNESS_TOL
            survivors[np.flatnonzero(cached)[still_valid]] = True

    # Pass 1: probe every candidate's unconstrained optimum
    # y_alpha = -b_alpha / a.  Every *winner at any probed point* is
    # certainly non-dominated, so the full value matrix yields far more
    # witnesses than each candidate's own optimum alone.
    vals = None
    if quad_coeff > 0.0:
        ys = -b_live / quad_coeff  # (u_live, d)
        vals = 2.0 * ys @ b_live.T + c_live[None, :]  # vals[i, j] = g_j(y_i)
        row_min = vals.min(axis=1)
        diag_ok = np.diagonal(vals) <= row_min + _WITNESS_TOL
        if witnesses is not None:
            for pos in np.flatnonzero(diag_ok & ~survivors):
                witnesses[live[pos]] = ys[pos]
        survivors |= diag_ok
        winners = vals <= row_min[:, None] + _WITNESS_TOL
        win_rows = winners.argmax(axis=0)
        new_winners = winners.any(axis=0) & ~survivors
        if witnesses is not None:
            for pos in np.flatnonzero(new_winners):
                witnesses[live[pos]] = ys[win_rows[pos]]
        survivors |= new_winners

    # Pass 2: feasibility LP for the remaining candidates, against their
    # strongest competitors.
    lp_count = 0
    for pos in np.flatnonzero(~survivors):
        alpha = live[pos]
        g_at_opt = vals[pos] if vals is not None else c_live
        order = np.argsort(g_at_opt, kind="stable")
        competitors = [live[q] for q in order if live[q] != alpha]
        competitors = competitors[:max_lp_constraints]
        if not competitors:
            continue
        g = 2.0 * (bs[alpha] - bs[competitors])
        h = cs[competitors] - cs[alpha]
        lp_count += 1
        point = polyhedron_feasible_point(g, h)
        if point is None:
            out[alpha] = True
        elif witnesses is not None:
            witnesses[alpha] = point
    return out, lp_count
