"""Dominance pruning of partial combinations (Section 3.2.2).

Within one subset ``M``, every partial combination ``tau_alpha`` has an
unconstrained completion objective ``f_alpha(y) = -(a y'y + 2 b_a'y + c_a)``
with the *same* quadratic coefficient ``a`` for all alpha.  The region
where alpha beats beta is therefore the half-space

    2 (b_alpha - b_beta)' y  <=  c_beta - c_alpha          (eq. 16)

and alpha's dominance region is the intersection over all competitors
(eq. 17).  If that polyhedron is empty, ``t_M`` can never be realised by
alpha, so alpha is skipped by all future bound computations — permanently,
because new accesses only add competitors (shrinking regions further).

Emptiness is a feasibility LP (eq. 35), answered by the Chebyshev-centre
test of :mod:`repro.optim.simplex`.  Because the LP cost grows with both
the number of candidates and the number of constraints (the paper remarks
that "solving the LP might be too costly"), two *sound* accelerations
wrap it:

1. **Witness pre-pass** (vectorised): if alpha beats every competitor at
   its own unconstrained optimum ``y_alpha = -b_alpha / a``, that point
   witnesses ``D(alpha) != {}`` — no LP needed.  Most live combinations
   pass this test.
2. **Capped constraint sets**: for candidates that fail the witness test,
   the LP keeps only the strongest competitors (those with the best value
   at ``y_alpha``).  Dropping constraints only *enlarges* the region, so
   "empty under a subset of constraints" still proves real emptiness,
   while "non-empty" is treated as inconclusive and the candidate is
   conservatively kept.

The surviving LPs come in two execution strategies: the scalar loop of
:func:`dominated_mask` (one :func:`~repro.optim.polyhedron_feasible_point`
call per candidate — scipy-accelerated when available), and the batched
bound kernel, where :func:`dominance_lp_problems` only *assembles* the
per-candidate ``(G, h)`` blocks so the caller can stack every subset's
problems of a whole dominance pass into one
:func:`~repro.optim.polyhedron_feasible_point_batch` lockstep call
(:func:`dominated_mask_batch` is the single-subset convenience wrapper).
Both strategies share the pre-pass and the assembly, and the lockstep
kernel's emptiness verdicts agree with the scalar test's, so the masks
they produce are identical.

All directions preserve the invariant correctness depends on: a live
partial combination is never flagged dominated.
"""

from __future__ import annotations

import numpy as np

from repro.optim.simplex import (
    polyhedron_feasible_point,
    polyhedron_feasible_point_batch,
)

__all__ = ["dominated_mask", "dominated_mask_batch", "dominance_lp_problems"]

_MAX_LP_CONSTRAINTS = 64
_WITNESS_TOL = 1e-9


def _witness_prepass(
    bs: np.ndarray,
    cs: np.ndarray,
    already_dominated: np.ndarray,
    quad_coeff: float,
    witnesses: np.ndarray | None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray | None]:
    """Passes 0 and 1 (cached witnesses + unconstrained-optimum probes).

    Returns ``(out, live, survivors, vals)``: the copied dominated mask,
    the live candidate indices, the per-live-candidate survivor flags,
    and the probe value matrix (``None`` when the pre-pass is disabled).
    ``witnesses`` rows of certified survivors are updated in place.
    """
    out = np.asarray(already_dominated, dtype=bool).copy()
    live = np.flatnonzero(~out)
    survivors = np.zeros(len(live), dtype=bool)
    if len(live) < 2:
        return out, live, survivors, None

    b_live = bs[live]
    c_live = cs[live]

    # g_alpha(y) = 2 b_alpha' y + c_alpha; alpha beats beta at y iff
    # g_alpha(y) <= g_beta(y).

    # Pass 0: cached witnesses.  vals_w[i, j] = g_j(w_i); candidate i
    # survives if it still wins at its own stored witness.
    if witnesses is not None:
        w_live = witnesses[live]
        cached = ~np.isnan(w_live[:, 0])
        if cached.any():
            vals_w = 2.0 * w_live[cached] @ b_live.T + c_live[None, :]
            own = np.take_along_axis(
                vals_w, np.flatnonzero(cached)[:, None], axis=1
            )[:, 0]
            still_valid = own <= vals_w.min(axis=1) + _WITNESS_TOL
            survivors[np.flatnonzero(cached)[still_valid]] = True

    # Pass 1: probe every candidate's unconstrained optimum
    # y_alpha = -b_alpha / a.  Every *winner at any probed point* is
    # certainly non-dominated, so the full value matrix yields far more
    # witnesses than each candidate's own optimum alone.
    vals = None
    if quad_coeff > 0.0:
        ys = -b_live / quad_coeff  # (u_live, d)
        vals = 2.0 * ys @ b_live.T + c_live[None, :]  # vals[i, j] = g_j(y_i)
        row_min = vals.min(axis=1)
        diag_ok = np.diagonal(vals) <= row_min + _WITNESS_TOL
        if witnesses is not None:
            for pos in np.flatnonzero(diag_ok & ~survivors):
                witnesses[live[pos]] = ys[pos]
        survivors |= diag_ok
        winners = vals <= row_min[:, None] + _WITNESS_TOL
        win_rows = winners.argmax(axis=0)
        new_winners = winners.any(axis=0) & ~survivors
        if witnesses is not None:
            for pos in np.flatnonzero(new_winners):
                witnesses[live[pos]] = ys[win_rows[pos]]
        survivors |= new_winners
    return out, live, survivors, vals


def _lp_problem(
    bs: np.ndarray,
    cs: np.ndarray,
    live: np.ndarray,
    vals: np.ndarray | None,
    pos: int,
    max_lp_constraints: int,
) -> tuple[np.ndarray, np.ndarray] | None:
    """The feasibility-LP block of live candidate ``pos``: half-space
    rows against its ``max_lp_constraints`` strongest competitors, or
    ``None`` when there is no competitor."""
    alpha = live[pos]
    g_at_opt = vals[pos] if vals is not None else cs[live]
    order = np.argsort(g_at_opt, kind="stable")
    competitors = [live[q] for q in order if live[q] != alpha]
    competitors = competitors[:max_lp_constraints]
    if not competitors:
        return None
    g = 2.0 * (bs[alpha] - bs[competitors])
    h = cs[competitors] - cs[alpha]
    return g, h


def dominated_mask(
    bs: np.ndarray,
    cs: np.ndarray,
    already_dominated: np.ndarray,
    *,
    quad_coeff: float,
    max_lp_constraints: int = _MAX_LP_CONSTRAINTS,
    witnesses: np.ndarray | None = None,
) -> tuple[np.ndarray, int]:
    """Flag newly dominated partial combinations within one subset ``M``.

    Parameters
    ----------
    bs:
        Array of shape ``(u, d)`` with the ``b`` coefficient of every
        partial combination of ``M``.
    cs:
        Array of shape ``(u,)`` with the ``c`` coefficients.
    already_dominated:
        Boolean array; those entries are excluded both as candidates and
        as competitors (the paper's constraint-discarding speed-up —
        removing constraints can only enlarge regions, so it never flags
        a live combination spuriously).
    quad_coeff:
        The shared quadratic coefficient ``a`` of eq. (24); needed to
        locate each candidate's unconstrained optimum for the witness
        pre-pass.  Non-positive values disable the pre-pass (flat
        objective: every point is an optimum).
    max_lp_constraints:
        Cap on competitors included in each feasibility LP.
    witnesses:
        Optional ``(u, d)`` array of cached non-emptiness witnesses (NaN
        rows = unknown), **updated in place**: a stored point at which a
        candidate beat every competitor on a previous pass is re-checked
        against the *current* competitor field first — an exact test that
        spares the candidate its LP while the witness stays valid.  LPs
        that prove non-emptiness store their Chebyshev centre here.

    Returns
    -------
    tuple[numpy.ndarray, int]
        Boolean array marking combinations whose dominance region is
        certainly empty (*including* those already flagged on input), and
        the number of feasibility LPs actually solved.
    """
    bs = np.atleast_2d(np.asarray(bs, dtype=float))
    cs = np.asarray(cs, dtype=float)
    out, live, survivors, vals = _witness_prepass(
        bs, cs, already_dominated, quad_coeff, witnesses
    )
    if len(live) < 2:
        return out, 0

    # Pass 2: feasibility LP for the remaining candidates, against their
    # strongest competitors.
    lp_count = 0
    for pos in np.flatnonzero(~survivors):
        problem = _lp_problem(bs, cs, live, vals, pos, max_lp_constraints)
        if problem is None:
            continue
        g, h = problem
        lp_count += 1
        point = polyhedron_feasible_point(g, h)
        if point is None:
            out[live[pos]] = True
        elif witnesses is not None:
            witnesses[live[pos]] = point
    return out, lp_count


def dominance_lp_problems(
    bs: np.ndarray,
    cs: np.ndarray,
    already_dominated: np.ndarray,
    *,
    quad_coeff: float,
    max_lp_constraints: int = _MAX_LP_CONSTRAINTS,
    witnesses: np.ndarray | None = None,
) -> tuple[np.ndarray, list[tuple[int, np.ndarray, np.ndarray]]]:
    """The gather half of a batched dominance pass for one subset ``M``.

    Runs the witness pre-pass (updating ``witnesses`` in place exactly
    like :func:`dominated_mask`) and *assembles* — without solving — the
    feasibility-LP blocks of the candidates it could not certify.

    Returns
    -------
    (out, problems):
        The copied dominated mask (no new flags yet) and one
        ``(candidate_index, G, h)`` triple per pending LP.  The caller
        stacks the blocks of many subsets into one
        :func:`~repro.optim.polyhedron_feasible_point_batch` call and
        applies the verdicts: ``empty`` → ``out[candidate] = True``,
        non-empty → store the returned point in ``witnesses[candidate]``.
    """
    bs = np.atleast_2d(np.asarray(bs, dtype=float))
    cs = np.asarray(cs, dtype=float)
    out, live, survivors, vals = _witness_prepass(
        bs, cs, already_dominated, quad_coeff, witnesses
    )
    problems: list[tuple[int, np.ndarray, np.ndarray]] = []
    if len(live) < 2:
        return out, problems
    for pos in np.flatnonzero(~survivors):
        problem = _lp_problem(bs, cs, live, vals, pos, max_lp_constraints)
        if problem is not None:
            problems.append((int(live[pos]), *problem))
    return out, problems


def dominated_mask_batch(
    bs: np.ndarray,
    cs: np.ndarray,
    already_dominated: np.ndarray,
    *,
    quad_coeff: float,
    max_lp_constraints: int = _MAX_LP_CONSTRAINTS,
    witnesses: np.ndarray | None = None,
) -> tuple[np.ndarray, int]:
    """Batched :func:`dominated_mask`: same pre-pass and constraint
    assembly, with the pending feasibility LPs solved in one lockstep
    :func:`~repro.optim.polyhedron_feasible_point_batch` call instead of
    a per-candidate loop.  The returned mask is identical to the scalar
    path's (the kernels' emptiness verdicts agree); only the cached
    witness *points* may differ when scipy answers the scalar LPs."""
    out, problems = dominance_lp_problems(
        bs,
        cs,
        already_dominated,
        quad_coeff=quad_coeff,
        max_lp_constraints=max_lp_constraints,
        witnesses=witnesses,
    )
    if not problems:
        return out, 0
    points, empty = polyhedron_feasible_point_batch(
        [g for _, g, _ in problems], [h for _, _, h in problems]
    )
    for k, (alpha, _, _) in enumerate(problems):
        if empty[k]:
            out[alpha] = True
        elif witnesses is not None:
            witnesses[alpha] = points[k]
    return out, len(problems)
