"""Budgeted approximation of the tight bound (cf. Finger & Polyzotis,
SIGMOD 2009, which the paper cites as the I/O-vs-CPU middle ground).

The exact tight bound solves the completion problem for *every* live
partial combination after every access.  This scheme spends a fixed
per-update budget instead:

1. For every partial combination, keep a **relaxed completion bound**
   that drops the mutual-proximity (centroid) coupling between seen and
   unseen tuples — a closed form, no QP:

       t_relax(tau) = sum_{i in M} g_i(sigma_i, d_q(x_i), d_{mu_M}(x_i))
                    + sum_{j not in M} [ w_s u(sigma_j^max) - w_q delta_j^2 ]

   where ``mu_M`` is the centroid of the *seen* members only.  Dropping
   non-negative penalty terms can only increase the value, so
   ``t_relax(tau) >= t(tau)``: a correct, if looser, upper bound.  It
   splits into a per-combination *seen part* (computed once, immutable)
   plus a per-subset *unseen part* (depends only on the current frontier
   distances), so maintaining it costs O(1) per combination per update.

2. Solve the exact QP only for the ``budget`` partial combinations with
   the largest relaxed bounds (batched per subset).  The reported bound
   is ``max(exact values of refined combinations, relaxed values of the
   rest)`` — still a correct upper bound, and equal to the exact tight
   bound whenever every relaxed value above the refined maximum was
   inside the budget (near the top the two orders almost always agree).

Correct always; instance-optimal only in the limit of a large budget.
Distance-based access only — under score access the exact bound is
already a closed form and needs no approximation (Algorithm 3).

Why ``t_relax >= t``: in the exact completion problem the unseen tuples
pay both their query distance (at least ``delta_j``) and their centroid
distance, and the seen tuples pay distances to the *full* centroid,
which the unseen placements drag away from the seen-only centroid
``mu_M``; the relaxation charges the seen tuples the distance to the
minimiser of their own spread (``mu_M`` minimises the seen spread sum)
and charges the unseen tuples nothing beyond the query term.  Every
dropped or substituted term is a lower bound of the exact one, and all
enter with a negative sign.
"""

from __future__ import annotations

import itertools
import time

import numpy as np

from repro.core.access import AccessKind
from repro.core.bounds.base import NEG_INFINITY, BoundingScheme, EngineState
from repro.core.bounds.geometry import solve_completion_batch
from repro.core.relation import RankTuple
from repro.core.scoring import QuadraticFormScoring

__all__ = ["ApproxTightBound"]

_MAX_RELATIONS = 10


class _Pool:
    """Columnar store of one subset's partial combinations."""

    __slots__ = ("members", "others", "scores", "vecs", "seen_part", "count")

    def __init__(self, members: tuple[int, ...], others: tuple[int, ...]):
        self.members = members
        self.others = others
        self.scores: list[np.ndarray] = []
        self.vecs: list[np.ndarray] = []
        self.seen_part: list[float] = []
        self.count = 0


class ApproxTightBound(BoundingScheme):
    """Tight-bound approximation with a per-update exact-solve budget.

    Parameters
    ----------
    budget:
        Number of partial combinations (across all subsets) receiving an
        exact completion solve per update; the rest contribute their
        relaxed closed-form bounds.  ``budget = 0`` degenerates to the
        pure relaxed scheme (still strictly sharper than the corner
        bound, which also zeroes the seen tuples' geometry); a large
        budget converges to the exact tight bound.
    """

    def __init__(self, budget: int = 32) -> None:
        super().__init__()
        if budget < 0:
            raise ValueError("budget must be >= 0")
        self.budget = budget
        self._pools: list[_Pool] | None = None
        self._synced: list[int] = []
        self._pots: list[float] = []

    @property
    def is_tight(self) -> bool:
        return False

    def _init(self, state: EngineState) -> list[_Pool]:
        if self._pools is None:
            n = state.n
            if n > _MAX_RELATIONS:
                raise ValueError(f"n={n} exceeds the supported maximum")
            if state.kind is not AccessKind.DISTANCE:
                raise ValueError(
                    "ApproxTightBound targets distance access; score access "
                    "already has a closed-form exact bound (Algorithm 3)"
                )
            if not isinstance(state.scoring, QuadraticFormScoring):
                raise TypeError("ApproxTightBound requires a QuadraticFormScoring")
            self._pools = [
                _Pool(
                    tuple(i for i in range(n) if mask >> i & 1),
                    tuple(i for i in range(n) if not mask >> i & 1),
                )
                for mask in range((1 << n) - 1)
            ]
            # M = {}: a single empty combination with zero seen part.
            empty = self._pools[0]
            empty.scores.append(np.zeros(0))
            empty.vecs.append(np.zeros((0, len(state.query))))
            empty.seen_part.append(0.0)
            empty.count = 1
            self._synced = [0] * n
        return self._pools

    def _seen_part(
        self,
        scoring: QuadraticFormScoring,
        query: np.ndarray,
        chosen: tuple[RankTuple, ...],
    ) -> float:
        pts = np.array([t.vector for t in chosen], dtype=float)
        mu = pts.mean(axis=0)
        total = 0.0
        for t, p in zip(chosen, pts):
            total += scoring.weighted_score(
                0,
                t.score,
                float(np.linalg.norm(p - query)),
                float(np.linalg.norm(p - mu)),
            )
        return total

    def _append_new_combinations(
        self, state: EngineState, pools: list[_Pool], new_counts: list[int]
    ) -> None:
        scoring = state.scoring
        assert isinstance(scoring, QuadraticFormScoring)
        for pool in pools:
            if not pool.members:
                continue
            for r, j in enumerate(pool.members):
                if new_counts[j] == 0:
                    continue
                sub_pools = []
                for r2, l in enumerate(pool.members):
                    seen = state.streams[l].seen
                    if r2 < r:
                        sub_pools.append(seen)
                    elif r2 == r:
                        sub_pools.append(seen[self._synced[l] :])
                    else:
                        sub_pools.append(seen[: self._synced[l]])
                if any(not p for p in sub_pools):
                    continue
                for chosen in itertools.product(*sub_pools):
                    pool.scores.append(np.array([t.score for t in chosen]))
                    pool.vecs.append(
                        np.array([t.vector for t in chosen], dtype=float)
                    )
                    pool.seen_part.append(
                        self._seen_part(scoring, state.query, chosen)
                    )
                    pool.count += 1
                    self.counters.entries_created += 1

    def update(self, state: EngineState, i: int, tau: RankTuple) -> float:
        start = time.perf_counter()
        self.counters.updates += 1
        pools = self._init(state)
        scoring = state.scoring
        assert isinstance(scoring, QuadraticFormScoring)
        n = state.n
        deltas = [s.last_distance for s in state.streams]
        sigma_max = [s.sigma_max for s in state.streams]
        new_counts = [s.depth - p for s, p in zip(state.streams, self._synced)]
        self._append_new_combinations(state, pools, new_counts)
        self._synced = [s.depth for s in state.streams]

        # Relaxed values: per-combination seen part + per-subset unseen
        # term under the *current* frontier distances.
        relaxed_by_pool: list[np.ndarray] = []
        pots = [NEG_INFINITY] * n
        bound = NEG_INFINITY
        for pool in pools:
            if any(state.streams[j].exhausted for j in pool.others) or not pool.count:
                relaxed_by_pool.append(np.zeros(0))
                continue
            unseen_term = sum(
                scoring.w_s * scoring.score_utility(sigma_max[j])
                - scoring.w_q * deltas[j] * deltas[j]
                for j in pool.others
            )
            values = np.array(pool.seen_part) + unseen_term
            relaxed_by_pool.append(values)
            pool_max = float(values.max())
            bound = max(bound, pool_max)
            for j in pool.others:
                pots[j] = max(pots[j], pool_max)

        # Budgeted exact refinement of the globally largest relaxed values.
        if self.budget > 0 and np.isfinite(bound):
            candidates: list[tuple[float, int, int]] = []
            for pi, values in enumerate(relaxed_by_pool):
                for row in range(len(values)):
                    candidates.append((float(values[row]), pi, row))
            candidates.sort(key=lambda c: -c[0])
            chosen = candidates[: self.budget]
            by_pool: dict[int, list[int]] = {}
            for _, pi, row in chosen:
                by_pool.setdefault(pi, []).append(row)
            refined_max = NEG_INFINITY
            for pi, rows in by_pool.items():
                pool = pools[pi]
                m = len(pool.members)
                scores = np.array([pool.scores[r] for r in rows]).reshape(
                    len(rows), m
                )
                vecs = np.array([pool.vecs[r] for r in rows]).reshape(
                    len(rows), m, len(state.query)
                )
                values, _ = solve_completion_batch(
                    scoring, n, state.query, list(pool.members), scores, vecs,
                    {j: deltas[j] for j in pool.others},
                    {j: sigma_max[j] for j in pool.others},
                )
                self.counters.qp_solves += len(rows)
                if len(values):
                    refined_max = max(refined_max, float(values.max()))
            # Relaxed values of everything outside the budget stay as-is
            # (they are sorted, so the first unrefined one is their max).
            unrefined_max = (
                candidates[len(chosen)][0]
                if len(candidates) > len(chosen)
                else NEG_INFINITY
            )
            bound = max(refined_max, unrefined_max)

        self._pots = pots
        self.counters.bound_seconds += time.perf_counter() - start
        return bound

    def potentials(self, state: EngineState) -> list[float]:
        if len(self._pots) != state.n:
            return [0.0] * state.n
        return list(self._pots)
