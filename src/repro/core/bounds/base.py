"""Bounding-scheme interface (the ``BS`` of the ProxRJ template).

A bounding scheme observes the engine state after every pull and returns
an upper bound on the aggregate score of every *unseen* combination (one
using at least one unread tuple).  It additionally exposes per-relation
potentials ``pot_i`` — the upper bound restricted to combinations that
would use an unseen tuple of ``R_i`` — which drive the potential-adaptive
pulling strategy of Section 3.3.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.core.access import AccessKind
from repro.core.buffers import TopKBuffer
from repro.core.bounds.workspace import BoundWorkspace
from repro.core.relation import RankTuple
from repro.core.scoring import Scoring

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.access import _BaseStream

__all__ = ["EngineState", "BoundingScheme", "BoundCounters"]

INFINITY = float("inf")
NEG_INFINITY = float("-inf")


@dataclass
class EngineState:
    """Everything a bounding scheme / pulling strategy may observe.

    This mirrors the information the paper grants the algorithm: the
    extracted prefixes (through the streams), the query, the scoring
    function, the result-size target and the output buffer.
    """

    scoring: Scoring
    kind: AccessKind
    query: np.ndarray
    streams: list["_BaseStream"]
    k: int
    output: TopKBuffer
    #: Per-run scratch arena + memoisation shared by the bound stack
    #: (see :mod:`repro.core.bounds.workspace`).  The engine creates one
    #: per run; schemes driven without an engine fall back to a private
    #: instance.
    workspace: BoundWorkspace | None = None

    @property
    def n(self) -> int:
        """Number of joined relations."""
        return len(self.streams)

    def prefix_arrays(
        self, i: int, lo: int = 0, hi: int | None = None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Columnar ``(vectors, scores, tids)`` of stream ``i``'s seen
        prefix rows ``[lo, hi)``, in access order.

        Zero-copy slices of the stream's
        :class:`~repro.core.columnar.ColumnarPrefix` when it has one;
        duck-typed streams without a columnar prefix fall back to
        materialising the arrays from their ``seen`` list.  Bounding
        schemes build their partial-combination batches from these
        instead of walking ``RankTuple`` objects.
        """
        stream = self.streams[i]
        prefix = getattr(stream, "prefix", None)
        if prefix is not None:
            return prefix.arrays(lo, hi)
        seen = stream.seen[lo : len(stream.seen) if hi is None else hi]
        d = len(self.query)
        return (
            np.array([t.vector for t in seen], dtype=float).reshape(len(seen), d),
            np.array([t.score for t in seen], dtype=float),
            np.array([t.tid for t in seen], dtype=np.int64),
        )

    def depths(self) -> list[int]:
        """Current depth ``p_i`` per relation."""
        return [s.depth for s in self.streams]

    def sum_depths(self) -> int:
        """The paper's sumDepths cost metric."""
        return sum(s.depth for s in self.streams)


@dataclass
class BoundCounters:
    """Work counters a bounding scheme accumulates (CPU-cost breakdown)."""

    updates: int = 0
    qp_solves: int = 0
    closed_form_evals: int = 0
    lp_solves: int = 0
    entries_created: int = 0
    entries_revalidated: int = 0
    entries_dominated: int = 0
    #: Strategy consultations of ``potentials`` vs. actual sweeps — the
    #: gap is the work the per-version memo saves (PA re-consults the
    #: bound once per block, the bound only changes once per refresh).
    potential_consults: int = 0
    potential_evals: int = 0
    #: Incremental-dominance reuse: candidates answered by a cached
    #: witness still satisfying every constraint, by an unchanged capped
    #: competitor set (LP skipped), or by within-pass byte-dedup; subsets
    #: whose whole pass was provably redundant; and the warm/cold pivot
    #: split of the LPs that did run (warm = started from a cached
    #: optimal basis).
    dominance_witness_hits: int = 0
    dominance_lp_reused: int = 0
    dominance_lp_deduped: int = 0
    dominance_subset_skips: int = 0
    lp_warm_pivots: int = 0
    lp_cold_pivots: int = 0
    bound_seconds: float = 0.0
    dominance_seconds: float = 0.0
    #: Wall-clock inside the LP/QP solver kernels proper — the share of
    #: ``bound_seconds`` a faster solver could still win back.
    solver_seconds: float = 0.0

    def as_dict(self) -> dict[str, float]:
        return {
            "updates": self.updates,
            "qp_solves": self.qp_solves,
            "closed_form_evals": self.closed_form_evals,
            "lp_solves": self.lp_solves,
            "entries_created": self.entries_created,
            "entries_revalidated": self.entries_revalidated,
            "entries_dominated": self.entries_dominated,
            "potential_consults": self.potential_consults,
            "potential_evals": self.potential_evals,
            "dominance_witness_hits": self.dominance_witness_hits,
            "dominance_lp_reused": self.dominance_lp_reused,
            "dominance_lp_deduped": self.dominance_lp_deduped,
            "dominance_subset_skips": self.dominance_subset_skips,
            "lp_warm_pivots": self.lp_warm_pivots,
            "lp_cold_pivots": self.lp_cold_pivots,
            "bound_seconds": self.bound_seconds,
            "dominance_seconds": self.dominance_seconds,
            "solver_seconds": self.solver_seconds,
        }


class BoundingScheme(ABC):
    """The ``BS`` interface of Algorithm 1."""

    def __init__(self) -> None:
        self.counters = BoundCounters()

    @abstractmethod
    def update(self, state: EngineState, i: int, tau: RankTuple) -> float:
        """Recompute the bound after ``tau`` was pulled from relation ``i``.

        Must return a correct upper bound on the aggregate score of every
        combination that uses at least one unseen tuple (``-inf`` when no
        such combination can exist).

        Engines may batch pulls (``bound_period`` > 1 or block-pull mode)
        and invoke this once per batch, with ``tau`` the *last* tuple
        pulled; schemes must therefore synchronise against the streams'
        seen prefixes rather than assume exactly one new tuple per call.
        """

    @abstractmethod
    def potentials(self, state: EngineState) -> list[float]:
        """``pot_i`` per relation: bound over combinations that would use
        an unseen tuple of ``R_i``.  Used by the PA pulling strategy."""

    @property
    def is_tight(self) -> bool:
        """Whether the scheme satisfies Definition 2.2 (documentation aid)."""
        return False
