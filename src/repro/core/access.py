"""Sequential access streams over relations (Definition 2.1).

The paper's algorithms never see a relation directly — only a stream that
returns tuples one at a time, either in increasing distance from the query
(access kind A) or in decreasing score (access kind B).  The stream also
exposes exactly the statistics the bounding schemes are allowed to use:
the distance/score of the first and last tuple retrieved so far, the
depth, and the relation's ``sigma_max``.

Streams are columnar inside.  Opening a pre-sorted stream vectorises the
ordering: one distance computation over the relation's stacked ``(N, d)``
vector matrix, one ``np.lexsort`` keyed by ``(rank, tid)`` (tid as the
tie-break keeps the stream deterministic, which instance-optimality
requires), and one fancy-index to materialise the order's columnar
arrays.  Every stream then maintains a :class:`~repro.core.columnar.
ColumnarPrefix` — the extracted prefix ``P_i`` as contiguous arrays in
access order, grown amortised-O(1) per pull — which is what the batch
scorer, the candidate pruner and the bounding schemes slice instead of
re-walking ``RankTuple`` lists.  Pre-sorted streams freeze the prefix
over the full order arrays (pulling just advances a cursor); the k-d
indexed path appends row by row as the traversal produces tuples.

``next_block`` on the pre-sorted streams slices the materialised order
directly — no per-tuple calls, bounds checks or exception handling —
which is the engine's block-pull fast path.

``DistanceAccess`` can traverse a k-d tree incrementally (the realistic
spatial-engine path) or pre-sort (simplest correct baseline); both produce
identical streams and are property-tested against each other.
"""

from __future__ import annotations

from enum import Enum
from typing import Callable, Iterator, Protocol

import numpy as np

from repro.core.columnar import ColumnarPrefix
from repro.core.relation import RankTuple, Relation
from repro.spatial.kdtree import KDTree

__all__ = [
    "AccessKind",
    "AccessStream",
    "DistanceAccess",
    "ScoreAccess",
    "open_streams",
]


class AccessKind(Enum):
    """The two access kinds of Definition 2.1."""

    DISTANCE = "distance"  # kind A: increasing delta(x, q)
    SCORE = "score"  # kind B: decreasing sigma


class AccessStream(Protocol):
    """What the ProxRJ engine and the bounding schemes may observe."""

    kind: AccessKind
    relation: Relation

    @property
    def depth(self) -> int: ...

    @property
    def exhausted(self) -> bool: ...

    def next(self) -> RankTuple | None: ...

    @property
    def sigma_max(self) -> float: ...

    def next_block(self, limit: int) -> list[RankTuple]:
        """Optional block pull; the engine falls back to repeated
        :meth:`next` calls for streams that do not provide it."""
        ...


class _BaseStream:
    """Shared depth/exhaustion bookkeeping plus the columnar prefix."""

    kind: AccessKind

    def __init__(self, relation: Relation) -> None:
        self.relation = relation
        self._seen: list[RankTuple] = []
        #: Columnar view of the seen prefix, in access order.  Subclasses
        #: that materialise their full order up-front replace this with a
        #: frozen (cursor-mode) prefix over the order arrays.
        self.prefix = ColumnarPrefix(relation.dim)

    @property
    def depth(self) -> int:
        """Number of tuples pulled so far (``p_i`` in the paper)."""
        return len(self._seen)

    @property
    def seen(self) -> list[RankTuple]:
        """The extracted prefix ``P_i`` in access order (object view)."""
        return self._seen

    @property
    def sigma_max(self) -> float:
        return self.relation.sigma_max

    @property
    def exhausted(self) -> bool:
        return self.depth >= len(self.relation)

    def next_block(self, limit: int) -> list[RankTuple]:
        """Pull up to ``limit`` tuples in access order (block pull).

        Returns fewer than ``limit`` tuples — possibly none — once the
        stream runs out.  Semantically identical to ``limit`` calls to
        :meth:`next`; pre-sorted streams override this with direct order
        slicing, and other implementations (e.g. the service simulator)
        amortise per-pull work such as whole-page fetches.
        """
        block: list[RankTuple] = []
        for _ in range(limit):
            tup = self.next()
            if tup is None:
                break
            block.append(tup)
        return block


class _SortedOrderMixin:
    """Shared fast path for streams whose full access order is
    materialised at open time as columnar arrays.

    Requires ``self._order_tuples`` (list of RankTuple), ``self._order_ranks``
    (the per-position distance or score array) and a frozen ``self.prefix``
    over the order's columnar arrays; provides cursor-based ``next`` and
    slicing ``next_block``.
    """

    _order_tuples: list[RankTuple]
    _order_ranks: np.ndarray

    def _attach_order(
        self,
        relation: Relation,
        order: np.ndarray,
        ranks: np.ndarray,
    ) -> None:
        """Materialise the access order ``order`` (tid permutation)."""
        self._order_tuples = [relation[int(i)] for i in order]
        self._order_ranks = ranks
        self.prefix = ColumnarPrefix.from_arrays(
            relation.vectors[order],
            relation.scores[order],
            relation.tids[order],
        )

    def next(self) -> RankTuple | None:
        """Pull the next tuple; ``None`` once the relation is exhausted."""
        pos = len(self._seen)
        if pos >= len(self._order_tuples):
            return None
        tup = self._order_tuples[pos]
        self._seen.append(tup)
        self.prefix.advance(1)
        return tup

    def next_block(self, limit: int) -> list[RankTuple]:
        """Slice the pre-computed order: one list slice, one cursor move."""
        pos = len(self._seen)
        take = min(limit, len(self._order_tuples) - pos)
        if take <= 0:
            return []
        block = self._order_tuples[pos : pos + take]
        self._seen.extend(block)
        self.prefix.advance(take)
        return block


class DistanceAccess(_SortedOrderMixin, _BaseStream):
    """Access kind A: tuples in non-decreasing distance from ``query``.

    Ties are broken by tuple id, making the stream deterministic (the
    paper requires deterministic algorithms for instance-optimality).

    Parameters
    ----------
    relation, query:
        The relation and the query vector ``q``.
    metric:
        Distance function; Euclidean by default.  The incremental k-d
        tree path is only valid for the Euclidean metric; other metrics
        fall back to pre-sorting (each distance computed exactly once).
    use_index:
        Traverse a k-d tree incrementally instead of sorting everything
        up-front.  Results are identical; this mirrors how a spatial
        service would lazily produce its output.
    """

    kind = AccessKind.DISTANCE

    def __init__(
        self,
        relation: Relation,
        query: np.ndarray,
        *,
        metric: Callable[[np.ndarray, np.ndarray], float] | None = None,
        use_index: bool = False,
    ) -> None:
        super().__init__(relation)
        self.query = np.asarray(query, dtype=float)
        if self.query.shape != (relation.dim,):
            raise ValueError(
                f"query shape {self.query.shape} does not match relation "
                f"dimension {relation.dim}"
            )
        self._indexed = bool(use_index and metric is None)
        if self._indexed:
            self._distances: list[float] = []
            tree = KDTree(relation.vectors, payloads=list(relation))
            self._iter = self._indexed_iter(tree)
        else:
            if metric is not None:
                # Custom metric: one evaluation per tuple, reused for both
                # the sort key and the reported distances.
                dists = np.fromiter(
                    (metric(v, self.query) for v in relation.vectors),
                    dtype=float,
                    count=len(relation),
                )
            else:
                diff = relation.vectors - self.query
                dists = np.sqrt(np.einsum("ij,ij->i", diff, diff))
            # One lexsort over the stacked distance column, tids as the
            # deterministic secondary key.
            order = np.lexsort((relation.tids, dists))
            self._attach_order(relation, order, dists[order])

    def _indexed_iter(self, tree: KDTree) -> Iterator[tuple[float, RankTuple]]:
        # The k-d stream is distance-sorted but breaks distance ties
        # arbitrarily; buffer runs of equal distance and emit by tid so the
        # indexed and sorted paths are bit-identical.
        run: list[tuple[float, RankTuple]] = []
        for dist, tup in tree.iter_nearest(self.query):
            if run and dist > run[-1][0] + 1e-12:
                yield from sorted(run, key=lambda p: p[1].tid)
                run = []
            run.append((dist, tup))
        yield from sorted(run, key=lambda p: p[1].tid)

    def next(self) -> RankTuple | None:
        """Pull the next tuple; ``None`` once the relation is exhausted."""
        if not self._indexed:
            return _SortedOrderMixin.next(self)
        try:
            dist, tup = next(self._iter)
        except StopIteration:
            return None
        self._seen.append(tup)
        self._distances.append(float(dist))
        self.prefix.append(tup.vector, tup.score, tup.tid)
        return tup

    def next_block(self, limit: int) -> list[RankTuple]:
        if not self._indexed:
            return _SortedOrderMixin.next_block(self, limit)
        return _BaseStream.next_block(self, limit)

    @property
    def distances(self) -> np.ndarray:
        """Distances of the seen prefix, aligned with access order."""
        if self._indexed:
            return np.asarray(self._distances, dtype=float)
        return self._order_ranks[: self.depth]

    @property
    def first_distance(self) -> float:
        """``delta(x(R_i[1]), q)``; 0 before any access (paper convention)."""
        if self.depth == 0:
            return 0.0
        return float(self._distances[0] if self._indexed else self._order_ranks[0])

    @property
    def last_distance(self) -> float:
        """``delta_i = delta(x(R_i[p_i]), q)``; 0 before any access."""
        p = self.depth
        if p == 0:
            return 0.0
        return float(
            self._distances[-1] if self._indexed else self._order_ranks[p - 1]
        )


class ScoreAccess(_SortedOrderMixin, _BaseStream):
    """Access kind B: tuples in non-increasing score, ties by tuple id."""

    kind = AccessKind.SCORE

    def __init__(self, relation: Relation) -> None:
        super().__init__(relation)
        # Negation is exact for floats, so (-score, tid) lexsort matches
        # the canonical sorted(key=(-score, tid)) order bit for bit.
        order = np.lexsort((relation.tids, -relation.scores))
        self._attach_order(relation, order, relation.scores[order])

    @property
    def first_score(self) -> float:
        """``sigma(R_i[1])``; ``sigma_max`` before any access."""
        return float(self._order_ranks[0]) if self.depth else self.sigma_max

    @property
    def last_score(self) -> float:
        """``sigma(R_i[p_i])``; ``sigma_max`` before any access."""
        p = self.depth
        return float(self._order_ranks[p - 1]) if p else self.sigma_max


def open_streams(
    relations: list[Relation],
    kind: AccessKind,
    query: np.ndarray | None = None,
    *,
    use_index: bool = False,
) -> list[_BaseStream]:
    """Open one access stream per relation with the given kind."""
    if kind is AccessKind.DISTANCE:
        if query is None:
            raise ValueError("distance-based access requires a query vector")
        return [DistanceAccess(r, query, use_index=use_index) for r in relations]
    return [ScoreAccess(r) for r in relations]
