"""Sequential access streams over relations (Definition 2.1).

The paper's algorithms never see a relation directly — only a stream that
returns tuples one at a time, either in increasing distance from the query
(access kind A) or in decreasing score (access kind B).  The stream also
exposes exactly the statistics the bounding schemes are allowed to use:
the distance/score of the first and last tuple retrieved so far, the
depth, and the relation's ``sigma_max``.

Streams are columnar inside.  Opening a pre-sorted stream vectorises the
ordering: one distance computation over the relation's stacked ``(N, d)``
vector matrix, one ``np.lexsort`` keyed by ``(rank, tid)`` (tid as the
tie-break keeps the stream deterministic, which instance-optimality
requires), and one fancy-index to materialise the order's columnar
arrays.  Every stream then maintains a :class:`~repro.core.columnar.
ColumnarPrefix` — the extracted prefix ``P_i`` as contiguous arrays in
access order, grown amortised-O(1) per pull — which is what the batch
scorer, the candidate pruner and the bounding schemes slice instead of
re-walking ``RankTuple`` lists.  Pre-sorted streams freeze the prefix
over the full order arrays (pulling just advances a cursor); the k-d
indexed path appends row by row as the traversal produces tuples.

``next_block`` on the pre-sorted streams slices the materialised order
directly — no per-tuple calls, bounds checks or exception handling —
which is the engine's block-pull fast path.

``DistanceAccess`` can traverse a k-d tree incrementally (the realistic
spatial-engine path) or pre-sort (simplest correct baseline); both produce
identical streams and are property-tested against each other.

Streams are opened through the relation's storage backend
(:mod:`repro.core.storage`): partitioned relations sort each shard
independently and :class:`MergeStream` k-way-merges the per-shard
cursors into one monotone stream, bit-identical to single-shard access.
"""

from __future__ import annotations

from enum import Enum
from typing import Callable, Iterator, Protocol, Sequence

import numpy as np

from repro.core.columnar import ColumnarPrefix
from repro.core.relation import RankTuple, Relation
from repro.spatial.kdtree import KDTree

__all__ = [
    "AccessKind",
    "AccessStream",
    "DistanceAccess",
    "MergeStream",
    "ScoreAccess",
    "ShardCursor",
    "StreamInterrupted",
    "open_streams",
]


class StreamInterrupted(RuntimeError):
    """A stream gave up mid-pull (deadline expired, query cancelled).

    Raised by streams whose data arrives asynchronously (remote shard
    cursors) when the query's budget runs out while waiting for rows.
    The engine treats it as a clean early stop: the run result carries
    everything pulled so far plus the current bound, so the partial
    top-K stays *certified* — never corrupt — exactly like a
    ``max_pulls`` cut-off.
    """


class AccessKind(Enum):
    """The two access kinds of Definition 2.1."""

    DISTANCE = "distance"  # kind A: increasing delta(x, q)
    SCORE = "score"  # kind B: decreasing sigma


class AccessStream(Protocol):
    """What the ProxRJ engine and the bounding schemes may observe."""

    kind: AccessKind
    relation: Relation

    @property
    def depth(self) -> int: ...

    @property
    def exhausted(self) -> bool: ...

    def next(self) -> RankTuple | None: ...

    @property
    def sigma_max(self) -> float: ...

    def next_block(self, limit: int) -> list[RankTuple]:
        """Optional block pull; the engine falls back to repeated
        :meth:`next` calls for streams that do not provide it."""
        ...


class _BaseStream:
    """Shared depth/exhaustion bookkeeping plus the columnar prefix."""

    kind: AccessKind

    def __init__(self, relation: Relation) -> None:
        self.relation = relation
        self._seen: list[RankTuple] = []
        #: Columnar view of the seen prefix, in access order.  Subclasses
        #: that materialise their full order up-front replace this with a
        #: frozen (cursor-mode) prefix over the order arrays.
        self.prefix = ColumnarPrefix(relation.dim)

    @property
    def depth(self) -> int:
        """Number of tuples pulled so far (``p_i`` in the paper)."""
        return len(self._seen)

    @property
    def seen(self) -> list[RankTuple]:
        """The extracted prefix ``P_i`` in access order (object view)."""
        return self._seen

    @property
    def sigma_max(self) -> float:
        return self.relation.sigma_max

    @property
    def exhausted(self) -> bool:
        return self.depth >= len(self.relation)

    def next_block(self, limit: int) -> list[RankTuple]:
        """Pull up to ``limit`` tuples in access order (block pull).

        Returns fewer than ``limit`` tuples — possibly none — once the
        stream runs out.  Semantically identical to ``limit`` calls to
        :meth:`next`; pre-sorted streams override this with direct order
        slicing, and other implementations (e.g. the service simulator)
        amortise per-pull work such as whole-page fetches.
        """
        block: list[RankTuple] = []
        for _ in range(limit):
            tup = self.next()
            if tup is None:
                break
            block.append(tup)
        return block


class _SortedOrderMixin:
    """Shared fast path for streams whose full access order is
    materialised at open time as columnar arrays.

    Requires ``self._order_tuples`` (list of RankTuple), ``self._order_ranks``
    (the per-position distance or score array) and a frozen ``self.prefix``
    over the order's columnar arrays; provides cursor-based ``next`` and
    slicing ``next_block``.
    """

    _order_tuples: list[RankTuple]
    _order_ranks: np.ndarray

    def _attach_order(
        self,
        relation: Relation,
        order: np.ndarray,
        ranks: np.ndarray,
    ) -> None:
        """Materialise the access order ``order`` (position permutation)."""
        self._order_tuples = [relation[int(i)] for i in order]
        self._order_ranks = ranks
        #: The sort permutation itself (base-data positions in access
        #: order) — what the durable catalog persists so a later process
        #: can replay this exact order with zero re-sorts.
        self.order_positions = np.asarray(order, dtype=np.int64)
        self._order_arrays = (
            relation.vectors[order],
            relation.scores[order],
            relation.tids[order],
        )
        self.prefix = ColumnarPrefix.from_arrays(*self._order_arrays)

    def order_cursor(self) -> "ShardCursor":
        """A detached cursor over this stream's materialised order.

        Shares the order's arrays and tuple list (nothing is copied);
        used by the sharded backend to hand per-shard orders to
        :class:`MergeStream` without threading stream state through it.
        """
        return ShardCursor(self._order_tuples, self._order_ranks, *self._order_arrays)

    def next(self) -> RankTuple | None:
        """Pull the next tuple; ``None`` once the relation is exhausted."""
        pos = len(self._seen)
        if pos >= len(self._order_tuples):
            return None
        tup = self._order_tuples[pos]
        self._seen.append(tup)
        self.prefix.advance(1)
        return tup

    def next_block(self, limit: int) -> list[RankTuple]:
        """Slice the pre-computed order: one list slice, one cursor move."""
        pos = len(self._seen)
        take = min(limit, len(self._order_tuples) - pos)
        if take <= 0:
            return []
        block = self._order_tuples[pos : pos + take]
        self._seen.extend(block)
        self.prefix.advance(take)
        return block


class DistanceAccess(_SortedOrderMixin, _BaseStream):
    """Access kind A: tuples in non-decreasing distance from ``query``.

    Ties are broken by tuple id, making the stream deterministic (the
    paper requires deterministic algorithms for instance-optimality).

    Parameters
    ----------
    relation, query:
        The relation and the query vector ``q``.
    metric:
        Distance function; Euclidean by default.  The incremental k-d
        tree path is only valid for the Euclidean metric; other metrics
        fall back to pre-sorting (each distance computed exactly once).
    use_index:
        Traverse a k-d tree incrementally instead of sorting everything
        up-front.  Results are identical; this mirrors how a spatial
        service would lazily produce its output.
    """

    kind = AccessKind.DISTANCE

    def __init__(
        self,
        relation: Relation,
        query: np.ndarray,
        *,
        metric: Callable[[np.ndarray, np.ndarray], float] | None = None,
        use_index: bool = False,
    ) -> None:
        super().__init__(relation)
        self.query = np.asarray(query, dtype=float)
        if self.query.shape != (relation.dim,):
            raise ValueError(
                f"query shape {self.query.shape} does not match relation "
                f"dimension {relation.dim}"
            )
        self._indexed = bool(use_index and metric is None)
        if self._indexed:
            self._distances: list[float] = []
            tree = KDTree(relation.vectors, payloads=list(relation))
            self._iter = self._indexed_iter(tree)
        else:
            if metric is not None:
                # Custom metric: one evaluation per tuple, reused for both
                # the sort key and the reported distances.
                dists = np.fromiter(
                    (metric(v, self.query) for v in relation.vectors),
                    dtype=float,
                    count=len(relation),
                )
            else:
                diff = relation.vectors - self.query
                dists = np.sqrt(np.einsum("ij,ij->i", diff, diff))
            # One lexsort over the stacked distance column, tids as the
            # deterministic secondary key.
            order = np.lexsort((relation.tids, dists))
            self._attach_order(relation, order, dists[order])

    def _indexed_iter(self, tree: KDTree) -> Iterator[tuple[float, RankTuple]]:
        # The k-d stream is distance-sorted but breaks distance ties
        # arbitrarily; buffer runs of equal distance and emit by tid so the
        # indexed and sorted paths are bit-identical.
        run: list[tuple[float, RankTuple]] = []
        for dist, tup in tree.iter_nearest(self.query):
            if run and dist > run[-1][0] + 1e-12:
                yield from sorted(run, key=lambda p: p[1].tid)
                run = []
            run.append((dist, tup))
        yield from sorted(run, key=lambda p: p[1].tid)

    def next(self) -> RankTuple | None:
        """Pull the next tuple; ``None`` once the relation is exhausted."""
        if not self._indexed:
            return _SortedOrderMixin.next(self)
        try:
            dist, tup = next(self._iter)
        except StopIteration:
            return None
        self._seen.append(tup)
        self._distances.append(float(dist))
        self.prefix.append(tup.vector, tup.score, tup.tid)
        return tup

    def next_block(self, limit: int) -> list[RankTuple]:
        if not self._indexed:
            return _SortedOrderMixin.next_block(self, limit)
        return _BaseStream.next_block(self, limit)

    @property
    def distances(self) -> np.ndarray:
        """Distances of the seen prefix, aligned with access order."""
        if self._indexed:
            return np.asarray(self._distances, dtype=float)
        return self._order_ranks[: self.depth]

    @property
    def first_distance(self) -> float:
        """``delta(x(R_i[1]), q)``; 0 before any access (paper convention)."""
        if self.depth == 0:
            return 0.0
        return float(self._distances[0] if self._indexed else self._order_ranks[0])

    @property
    def last_distance(self) -> float:
        """``delta_i = delta(x(R_i[p_i]), q)``; 0 before any access."""
        p = self.depth
        if p == 0:
            return 0.0
        return float(
            self._distances[-1] if self._indexed else self._order_ranks[p - 1]
        )


class ScoreAccess(_SortedOrderMixin, _BaseStream):
    """Access kind B: tuples in non-increasing score, ties by tuple id."""

    kind = AccessKind.SCORE

    def __init__(self, relation: Relation) -> None:
        super().__init__(relation)
        # Negation is exact for floats, so (-score, tid) lexsort matches
        # the canonical sorted(key=(-score, tid)) order bit for bit.
        order = np.lexsort((relation.tids, -relation.scores))
        self._attach_order(relation, order, relation.scores[order])

    @property
    def first_score(self) -> float:
        """``sigma(R_i[1])``; ``sigma_max`` before any access."""
        return float(self._order_ranks[0]) if self.depth else self.sigma_max

    @property
    def last_score(self) -> float:
        """``sigma(R_i[p_i])``; ``sigma_max`` before any access."""
        p = self.depth
        return float(self._order_ranks[p - 1]) if p else self.sigma_max


class ShardCursor:
    """A read cursor over one shard's fully materialised access order.

    Plain aligned data — the tuple list, the rank column (distance or
    score per position) and the order's columnar arrays — plus a
    position.  :class:`MergeStream` advances cursors as it merges;
    nothing here is stream state, so cursors can be built from live
    streams (:meth:`_SortedOrderMixin.order_cursor`) or from cached
    service orders alike.
    """

    __slots__ = ("tuples", "ranks", "vectors", "scores", "tids", "pos")

    def __init__(
        self,
        tuples: Sequence[RankTuple],
        ranks: np.ndarray,
        vectors: np.ndarray,
        scores: np.ndarray,
        tids: np.ndarray,
    ) -> None:
        if not len(ranks) == len(tuples) == len(vectors) == len(scores) == len(tids):
            raise ValueError("misaligned shard order columns")
        self.tuples = tuples
        self.ranks = ranks
        self.vectors = vectors
        self.scores = scores
        self.tids = tids
        self.pos = 0

    @property
    def remaining(self) -> int:
        return len(self.ranks) - self.pos

    def window(
        self, limit: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """``(ranks, tids, vectors, scores)`` of the next <= ``limit``
        unread rows (no advance).  This is the per-shard pull the service
        fans out to its pool: for in-memory shards it is four array
        slices, for remote shards it would be the page fetch."""
        lo = self.pos
        hi = min(lo + max(limit, 0), len(self.ranks))
        return self.ranks[lo:hi], self.tids[lo:hi], self.vectors[lo:hi], self.scores[lo:hi]


class MergeStream:
    """K-way merge of per-shard sorted cursors into one monotone stream.

    The engine-facing contract is exactly :class:`AccessStream`: depth,
    exhaustion, ``sigma_max``, block pulls and the first/last rank
    statistics behave as if the relation had a single sorted access.
    Because every shard order is ``(rank, tid)``-sorted with globally
    unique tids, the merged sequence is the single-shard access order bit
    for bit — completed sharded runs return identical top-K, depths and
    bounds (the differential suite pins this for S in {1, 2, 4, 7}).

    The merge runs *ahead of* the pulls: a refill merges the next
    ``max(B, readahead)`` rows in one vectorised pass — each live shard
    exposes a window of that many rows (the top-R of the merge can only
    come from those), one ``np.lexsort`` over the stacked ``(rank, tid)``
    candidates fixes their global order, and each cursor advances by how
    many of its rows were taken.  Pulls then serve array slices of the
    staged merge, so the per-numpy-call overhead of merging amortises
    across blocks and block pulls stay within noise of the single-shard
    slicing fast path (the staging is invisible: staged rows do not count
    toward ``depth`` or the rank statistics until actually pulled).  With
    an ``executor`` the per-shard window fetches of a refill are
    dispatched as one task per shard and merged when all return (the
    service passes its shard pool here, which is what "shard-parallel
    block pulls" means operationally — and read-ahead means fewer, larger
    per-shard fetches, exactly what a remote shard wants).

    The merged prefix is a *growing* :class:`~repro.core.columnar.
    ColumnarPrefix` (like the k-d indexed path): rows are appended in
    merged order, one block-sized ``extend`` per pull, so the columnar
    batch scorer and the tight bound run over sharded streams unchanged.
    """

    #: Minimum rows merged per refill; amortises the vectorised merge
    #: over several engine blocks (the merged order is deterministic, so
    #: merging ahead can never change what a later pull returns).
    READAHEAD = 64

    def __init__(
        self,
        relation: Relation,
        kind: AccessKind,
        cursors: Sequence[ShardCursor],
        *,
        sigma_max: float | None = None,
        executor=None,
    ) -> None:
        if not cursors:
            raise ValueError("MergeStream needs at least one shard cursor")
        self.relation = relation
        self.kind = kind
        self._cursors = list(cursors)
        self._total = sum(len(c.ranks) for c in self._cursors)
        # Max-combination over the shards' score ceilings (each shard
        # inherits the parent's sigma_max, so this equals the parent's).
        self._sigma_max = (
            float(sigma_max) if sigma_max is not None else relation.sigma_max
        )
        self._executor = executor
        self._seen: list[RankTuple] = []
        self.prefix = ColumnarPrefix(relation.dim)
        # Staged merge: rows [._stage_pos:] are merged but not yet pulled.
        self._stage_tuples: list[RankTuple] = []
        self._stage_ranks = np.empty(0)
        self._stage_vecs = np.empty((0, relation.dim))
        self._stage_scores = np.empty(0)
        self._stage_tids = np.empty(0, dtype=np.int64)
        self._stage_pos = 0
        #: Whether the stage arrays live in the reusable slabs below
        #: (multi-shard refills) or are views of immutable cursor arrays
        #: (single-live fast path) — decides whether escaping rank
        #: chunks must be copied out of the stage.
        self._stage_is_slab = False
        # Grow-by-doubling merge scratch, reused across refills: the
        # stacked candidate columns fed to the lexsort and the staged
        # payload rows.  S-way merges refill thousands of times per
        # query; reallocating these per refill is the "S=8 merge tax".
        self._scratch_cap = 0
        self._scr_ranks = self._scr_keys = np.empty(0)
        self._scr_tids = np.empty(0, dtype=np.int64)
        self._scr_shards = np.empty(0, dtype=np.intp)
        self._stage_cap = 0
        self._stage_ranks_buf = self._stage_scores_buf = np.empty(0)
        self._stage_tids_buf = np.empty(0, dtype=np.int64)
        self._stage_vecs_buf = np.empty((0, relation.dim))
        # Rank statistics of the *pulled* prefix only.
        self._first_rank: float | None = None
        self._last_rank: float | None = None
        self._rank_chunks: list[np.ndarray] = []

    # -- AccessStream interface -------------------------------------------

    @property
    def depth(self) -> int:
        return len(self._seen)

    @property
    def seen(self) -> list[RankTuple]:
        return self._seen

    @property
    def sigma_max(self) -> float:
        return self._sigma_max

    @property
    def exhausted(self) -> bool:
        return self.depth >= self._total

    @property
    def shard_count(self) -> int:
        return len(self._cursors)

    def next(self) -> RankTuple | None:
        block = self.next_block(1)
        return block[0] if block else None

    def next_block(self, limit: int) -> list[RankTuple]:
        """Merge up to ``limit`` tuples from the shard cursors.

        Returns fewer than ``limit`` tuples — possibly none — once every
        shard runs out; ``limit`` past the remaining total never raises
        and exhaustion flips exactly at depletion.
        """
        if limit <= 0:
            return []
        block: list[RankTuple] = []
        while len(block) < limit:
            staged = len(self._stage_tuples) - self._stage_pos
            if staged == 0:
                try:
                    refilled = self._refill(limit - len(block))
                except StreamInterrupted:
                    # Keep the object view consistent with the columnar
                    # prefix (rows already served this call) before the
                    # interrupt unwinds to the engine.
                    self._seen.extend(block)
                    raise
                if not refilled:
                    break
                staged = len(self._stage_tuples) - self._stage_pos
            take = min(limit - len(block), staged)
            lo = self._stage_pos
            hi = lo + take
            block.extend(self._stage_tuples[lo:hi])
            self.prefix.extend(
                self._stage_vecs[lo:hi],
                self._stage_scores[lo:hi],
                self._stage_tids[lo:hi],
            )
            chunk = self._stage_ranks[lo:hi]
            if self._stage_is_slab:
                # The slab is overwritten by the next refill; rank
                # chunks outlive it (``distances`` concatenates them),
                # so they must leave the slab by copy.
                chunk = chunk.copy()
            self._rank_chunks.append(chunk)
            if self._first_rank is None:
                self._first_rank = float(self._stage_ranks[lo])
            self._last_rank = float(self._stage_ranks[hi - 1])
            self._stage_pos = hi
        self._seen.extend(block)
        return block

    def _refill(self, needed: int) -> bool:
        """Merge the next ``max(needed, READAHEAD)`` rows of the shard
        cursors into the stage; False when every cursor is drained."""
        live = [c for c in self._cursors if c.remaining > 0]
        if not live:
            return False
        span = max(needed, self.READAHEAD)
        # Read-ahead hook for asynchronously fed cursors (remote shard
        # streams): issue every shard's window request before blocking on
        # any of them, so in-flight fetches overlap across shards.  A
        # cursor's ``ensure`` must return only once its next
        # ``min(span, remaining)`` rows are locally available (or raise
        # :class:`StreamInterrupted`); in-memory cursors define neither
        # method and skip both loops.
        for c in live:
            request = getattr(c, "request", None)
            if request is not None:
                request(span)
        for c in live:
            ensure = getattr(c, "ensure", None)
            if ensure is not None:
                ensure(span)
        if len(live) == 1:
            # Every other shard is drained: the merge degenerates to the
            # single-shard slicing fast path.
            c = live[0]
            ranks, tids, vecs, scores = c.window(span)
            take = len(ranks)
            self._stage_tuples = list(c.tuples[c.pos : c.pos + take])
            self._stage_ranks = ranks
            self._stage_vecs = vecs
            self._stage_scores = scores
            self._stage_tids = tids
            self._stage_pos = 0
            self._stage_is_slab = False
            c.pos += take
            return True
        if self._executor is not None:
            try:
                windows = list(self._executor.map(lambda c: c.window(span), live))
            except RuntimeError:
                # Pool shut down under a live stream (service close()
                # racing an in-flight query): degrade to serial fetches.
                self._executor = None
                windows = [c.window(span) for c in live]
        else:
            windows = [c.window(span) for c in live]
        sizes = [len(w[0]) for w in windows]
        total = sum(sizes)
        self._ensure_scratch(total)
        ranks = self._scr_ranks[:total]
        tids = self._scr_tids[:total]
        shard_of = self._scr_shards[:total]
        off = 0
        for s, w in enumerate(windows):
            k = len(w[0])
            ranks[off : off + k] = w[0]
            tids[off : off + k] = w[1]
            shard_of[off : off + k] = s
            off += k
        # Merge key mirrors the single-shard lexsort: (distance, tid)
        # ascending, or (-score, tid) — cursors carry raw score ranks.
        if self.kind is AccessKind.DISTANCE:
            keys = ranks
        else:
            keys = np.negative(ranks, out=self._scr_keys[:total])
        order = np.lexsort((tids, keys))
        sel = order[: min(span, len(order))]
        sel_shards = shard_of[sel]
        counts = np.bincount(sel_shards, minlength=len(live))
        # Rows taken from a shard are always a prefix of its (sorted)
        # window, and within ``sel`` they appear in window order, so the
        # payload gather is one prefix-slice scatter per shard — the wide
        # vector windows themselves are views and never copied whole.
        offsets = np.concatenate(([0], np.cumsum(sizes[:-1])))
        starts = np.array([c.pos for c in live])
        local = sel - offsets[sel_shards] + starts[sel_shards]
        self._stage_tuples = [
            live[s].tuples[p]
            for s, p in zip(sel_shards.tolist(), local.tolist())
        ]
        take = len(sel)
        self._ensure_stage(take)
        vecs = self._stage_vecs_buf[:take]
        scores = self._stage_scores_buf[:take]
        for s, w in enumerate(windows):
            k = int(counts[s])
            if k:
                mask = sel_shards == s
                vecs[mask] = w[2][:k]
                scores[mask] = w[3][:k]
        self._stage_ranks = np.take(ranks, sel, out=self._stage_ranks_buf[:take])
        self._stage_vecs = vecs
        self._stage_scores = scores
        self._stage_tids = np.take(tids, sel, out=self._stage_tids_buf[:take])
        self._stage_pos = 0
        self._stage_is_slab = True
        for s, c in enumerate(live):
            c.pos += int(counts[s])
        return True

    def _ensure_scratch(self, need: int) -> None:
        """Candidate-column slabs (ranks/tids/shard ids/negated keys)
        big enough for ``need`` stacked rows, growing by doubling."""
        if self._scratch_cap >= need:
            return
        cap = max(need, 2 * self._scratch_cap, self.READAHEAD)
        self._scr_ranks = np.empty(cap)
        self._scr_keys = np.empty(cap)
        self._scr_tids = np.empty(cap, dtype=np.int64)
        self._scr_shards = np.empty(cap, dtype=np.intp)
        self._scratch_cap = cap

    def _ensure_stage(self, need: int) -> None:
        """Staged-payload slabs for ``need`` merged rows (same growth)."""
        if self._stage_cap >= need:
            return
        cap = max(need, 2 * self._stage_cap, self.READAHEAD)
        self._stage_ranks_buf = np.empty(cap)
        self._stage_scores_buf = np.empty(cap)
        self._stage_tids_buf = np.empty(cap, dtype=np.int64)
        self._stage_vecs_buf = np.empty((cap, self.relation.dim))
        self._stage_cap = cap

    # -- distance-kind statistics -----------------------------------------

    @property
    def distances(self) -> np.ndarray:
        """Ranks of the *pulled* prefix (distance access), in merge order."""
        if not self._rank_chunks:
            return np.empty(0)
        return np.concatenate(self._rank_chunks)

    @property
    def first_distance(self) -> float:
        return self._first_rank if self._first_rank is not None else 0.0

    @property
    def last_distance(self) -> float:
        return self._last_rank if self._last_rank is not None else 0.0

    # -- score-kind statistics --------------------------------------------

    @property
    def first_score(self) -> float:
        return self._first_rank if self._first_rank is not None else self._sigma_max

    @property
    def last_score(self) -> float:
        return self._last_rank if self._last_rank is not None else self._sigma_max

    def __repr__(self) -> str:
        return (
            f"MergeStream({self.relation.name!r}, {self.kind.value}, "
            f"shards={self.shard_count}, depth={self.depth}/{self._total})"
        )


def open_streams(
    relations: list[Relation],
    kind: AccessKind,
    query: np.ndarray | None = None,
    *,
    use_index: bool = False,
) -> list[_BaseStream]:
    """Open one access stream per relation with the given kind.

    Streams are opened through each relation's
    :class:`~repro.core.storage.StorageBackend` — single-shard relations
    yield plain :class:`DistanceAccess`/:class:`ScoreAccess` streams,
    sharded relations yield a :class:`MergeStream` over their per-shard
    orders.  The engine sees one monotone stream per relation either way.
    """
    if kind is AccessKind.DISTANCE and query is None:
        raise ValueError("distance-based access requires a query vector")
    return [
        r.storage.open_stream(kind, query, use_index=use_index) for r in relations
    ]
