"""Sequential access streams over relations (Definition 2.1).

The paper's algorithms never see a relation directly — only a stream that
returns tuples one at a time, either in increasing distance from the query
(access kind A) or in decreasing score (access kind B).  The stream also
exposes exactly the statistics the bounding schemes are allowed to use:
the distance/score of the first and last tuple retrieved so far, the
depth, and the relation's ``sigma_max``.

``DistanceAccess`` can traverse a k-d tree incrementally (the realistic
spatial-engine path) or pre-sort (simplest correct baseline); both produce
identical streams and are property-tested against each other.
"""

from __future__ import annotations

from enum import Enum
from typing import Callable, Iterator, Protocol

import numpy as np

from repro.core.relation import RankTuple, Relation
from repro.spatial.kdtree import KDTree

__all__ = [
    "AccessKind",
    "AccessStream",
    "DistanceAccess",
    "ScoreAccess",
    "open_streams",
]


class AccessKind(Enum):
    """The two access kinds of Definition 2.1."""

    DISTANCE = "distance"  # kind A: increasing delta(x, q)
    SCORE = "score"  # kind B: decreasing sigma


class AccessStream(Protocol):
    """What the ProxRJ engine and the bounding schemes may observe."""

    kind: AccessKind
    relation: Relation

    @property
    def depth(self) -> int: ...

    @property
    def exhausted(self) -> bool: ...

    def next(self) -> RankTuple | None: ...

    @property
    def sigma_max(self) -> float: ...

    def next_block(self, limit: int) -> list[RankTuple]:
        """Optional block pull; the engine falls back to repeated
        :meth:`next` calls for streams that do not provide it."""
        ...


class _BaseStream:
    """Shared depth/exhaustion bookkeeping."""

    kind: AccessKind

    def __init__(self, relation: Relation) -> None:
        self.relation = relation
        self._seen: list[RankTuple] = []

    @property
    def depth(self) -> int:
        """Number of tuples pulled so far (``p_i`` in the paper)."""
        return len(self._seen)

    @property
    def seen(self) -> list[RankTuple]:
        """The extracted prefix ``P_i`` in access order."""
        return self._seen

    @property
    def sigma_max(self) -> float:
        return self.relation.sigma_max

    @property
    def exhausted(self) -> bool:
        return self.depth >= len(self.relation)

    def next_block(self, limit: int) -> list[RankTuple]:
        """Pull up to ``limit`` tuples in access order (block pull).

        Returns fewer than ``limit`` tuples — possibly none — once the
        stream runs out.  Semantically identical to ``limit`` calls to
        :meth:`next`; the engine's block-pull mode uses it so stream
        implementations can amortise per-pull work (e.g. the service
        simulator serves whole pages).
        """
        block: list[RankTuple] = []
        for _ in range(limit):
            tup = self.next()
            if tup is None:
                break
            block.append(tup)
        return block


class DistanceAccess(_BaseStream):
    """Access kind A: tuples in non-decreasing distance from ``query``.

    Ties are broken by tuple id, making the stream deterministic (the
    paper requires deterministic algorithms for instance-optimality).

    Parameters
    ----------
    relation, query:
        The relation and the query vector ``q``.
    metric:
        Distance function; Euclidean by default.  The incremental k-d
        tree path is only valid for the Euclidean metric; other metrics
        fall back to pre-sorting.
    use_index:
        Traverse a k-d tree incrementally instead of sorting everything
        up-front.  Results are identical; this mirrors how a spatial
        service would lazily produce its output.
    """

    kind = AccessKind.DISTANCE

    def __init__(
        self,
        relation: Relation,
        query: np.ndarray,
        *,
        metric: Callable[[np.ndarray, np.ndarray], float] | None = None,
        use_index: bool = False,
    ) -> None:
        super().__init__(relation)
        self.query = np.asarray(query, dtype=float)
        if self.query.shape != (relation.dim,):
            raise ValueError(
                f"query shape {self.query.shape} does not match relation "
                f"dimension {relation.dim}"
            )
        self._distances: list[float] = []
        if use_index and metric is None:
            tree = KDTree(
                np.array([t.vector for t in relation], dtype=float),
                payloads=list(relation),
            )
            self._iter = self._indexed_iter(tree)
        else:
            dist = metric if metric is not None else _euclid
            order = sorted(
                relation, key=lambda t: (dist(t.vector, self.query), t.tid)
            )
            self._iter = iter(
                [(dist(t.vector, self.query), t) for t in order]
            )

    def _indexed_iter(self, tree: KDTree) -> Iterator[tuple[float, RankTuple]]:
        # The k-d stream is distance-sorted but breaks distance ties
        # arbitrarily; buffer runs of equal distance and emit by tid so the
        # indexed and sorted paths are bit-identical.
        run: list[tuple[float, RankTuple]] = []
        for dist, tup in tree.iter_nearest(self.query):
            if run and dist > run[-1][0] + 1e-12:
                yield from sorted(run, key=lambda p: p[1].tid)
                run = []
            run.append((dist, tup))
        yield from sorted(run, key=lambda p: p[1].tid)

    def next(self) -> RankTuple | None:
        """Pull the next tuple; ``None`` once the relation is exhausted."""
        try:
            dist, tup = next(self._iter)
        except StopIteration:
            return None
        self._seen.append(tup)
        self._distances.append(float(dist))
        return tup

    @property
    def first_distance(self) -> float:
        """``delta(x(R_i[1]), q)``; 0 before any access (paper convention)."""
        return self._distances[0] if self._distances else 0.0

    @property
    def last_distance(self) -> float:
        """``delta_i = delta(x(R_i[p_i]), q)``; 0 before any access."""
        return self._distances[-1] if self._distances else 0.0


class ScoreAccess(_BaseStream):
    """Access kind B: tuples in non-increasing score, ties by tuple id."""

    kind = AccessKind.SCORE

    def __init__(self, relation: Relation) -> None:
        super().__init__(relation)
        self._order = sorted(relation, key=lambda t: (-t.score, t.tid))
        self._pos = 0

    def next(self) -> RankTuple | None:
        """Pull the next tuple; ``None`` once the relation is exhausted."""
        if self._pos >= len(self._order):
            return None
        tup = self._order[self._pos]
        self._pos += 1
        self._seen.append(tup)
        return tup

    @property
    def first_score(self) -> float:
        """``sigma(R_i[1])``; ``sigma_max`` before any access."""
        return self._seen[0].score if self._seen else self.sigma_max

    @property
    def last_score(self) -> float:
        """``sigma(R_i[p_i])``; ``sigma_max`` before any access."""
        return self._seen[-1].score if self._seen else self.sigma_max


def _euclid(x: np.ndarray, y: np.ndarray) -> float:
    d = x - y
    return float(np.sqrt(d @ d))


def open_streams(
    relations: list[Relation],
    kind: AccessKind,
    query: np.ndarray | None = None,
    *,
    use_index: bool = False,
) -> list[_BaseStream]:
    """Open one access stream per relation with the given kind."""
    if kind is AccessKind.DISTANCE:
        if query is None:
            raise ValueError("distance-based access requires a query vector")
        return [DistanceAccess(r, query, use_index=use_index) for r in relations]
    return [ScoreAccess(r) for r in relations]
