"""Random-access extension: sorted access plus region probes.

Section 6 of the paper: "We plan to extend proximity rank join to the
case of relations that can be accessed not only by sorted access but
also by random access."  For proximity rank join the natural random
access is a *region probe* — ask a relation for every tuple within a
ball (spatial services expose exactly this; locally the k-d tree answers
it) — the access pattern of the incremental distance joins the paper
cites as related work (Hjaltason & Samet).

:class:`ProbeRankJoin` implements one clean instantiation:

1. Pull tuples from the *anchor* relation (the first one) in distance
   order, as usual.
2. For each anchor tuple ``tau_1``, *probe* every other relation for all
   tuples within radius ``r(tau_1)`` of the anchor position, where the
   radius is derived from the quadratic scoring: a completing tuple
   farther than ``r`` from the anchor cannot lift the combination above
   the current K-th score, whatever its own score (see
   :meth:`_probe_radius`).
3. Stop pulling anchors when even a *perfect* unseen anchor (at the
   current frontier distance, with ``sigma_max``, and perfectly
   co-located completions) cannot beat the K-th score — the single-M
   specialisation of the paper's tight bound.

Cost accounting charges one sorted access per anchor pull and one
random access per probed tuple, so results are comparable to sumDepths.
This trades anchor-side depth for targeted probes, and wins when the
anchor relation is selective (the usual rationale for random access in
rank join).  Correctness does not depend on probe efficiency: the
stopping bound is the same tight single-subset completion bound used by
``TightBound``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.core.buffers import TopKBuffer
from repro.core.bounds.geometry import solve_completion
from repro.core.relation import Combination, Relation
from repro.core.scoring import QuadraticFormScoring
from repro.spatial.kdtree import KDTree

__all__ = ["ProbeRankJoin", "ProbeRunResult"]


@dataclass
class ProbeRunResult:
    """Outcome of a probe-join run.

    ``sorted_accesses`` counts anchor pulls; ``random_accesses`` counts
    tuples returned by region probes; ``total_accesses`` is their sum —
    the random-access analogue of sumDepths.
    """

    combinations: list[Combination]
    sorted_accesses: int
    random_accesses: int
    probes: int
    total_seconds: float

    @property
    def total_accesses(self) -> int:
        return self.sorted_accesses + self.random_accesses


class ProbeRankJoin:
    """Anchor-and-probe proximity rank join for quadratic scorings."""

    def __init__(
        self,
        relations: list[Relation],
        scoring: QuadraticFormScoring,
        query: np.ndarray,
        k: int,
    ) -> None:
        if len(relations) < 2:
            raise ValueError("probe join needs at least two relations")
        if not isinstance(scoring, QuadraticFormScoring):
            raise TypeError("probe join requires a QuadraticFormScoring")
        if k < 1:
            raise ValueError("K must be >= 1")
        self.relations = relations
        self.scoring = scoring
        self.query = np.asarray(query, dtype=float)
        self.k = k
        self._trees = [
            KDTree(np.array([t.vector for t in rel]), payloads=list(rel))
            for rel in relations[1:]
        ]

    # -- bounding helpers ---------------------------------------------------

    def _probe_radius(self, kth_score: float, anchor) -> float:
        """Radius around the anchor beyond which no completion helps.

        For the quadratic family, a combination's score is at most

            B(r) = sum_i w_s u(sigma_max_i)  -  w_mu * r^2 / 2

        for any pair of members at mutual distance ``r``: the centroid
        penalty of two points ``r`` apart is at least ``2 (r/2)^2``
        whatever the other members do, and every other term is bounded by
        its best case (query distances >= 0 dropped).  Solving
        ``B(r) <= kth`` for ``r`` gives the pruning radius.  Infinite
        while the buffer is not full or ``w_mu = 0``.
        """
        if kth_score == float("-inf") or self.scoring.w_mu <= 0.0:
            return float("inf")
        best_scores = self.scoring.w_s * sum(
            self.scoring.score_utility(rel.sigma_max) for rel in self.relations
        )
        slack = best_scores - kth_score
        if slack <= 0.0:
            return 0.0
        return float(np.sqrt(2.0 * slack / self.scoring.w_mu))

    def _anchor_bound(self, frontier: float) -> float:
        """Tight bound on combinations whose anchor tuple is unseen.

        This is the paper's completion problem for ``M = {}`` restricted
        to the anchor's frontier: every member constrained to distance
        >= 0 except the anchor at >= ``frontier``.
        """
        n = len(self.relations)
        unseen_delta = {0: frontier}
        unseen_sigma = {0: self.relations[0].sigma_max}
        for j in range(1, n):
            unseen_delta[j] = 0.0
            unseen_sigma[j] = self.relations[j].sigma_max
        return solve_completion(
            self.scoring, n, self.query, {}, unseen_delta, unseen_sigma
        ).value

    # -- main loop -------------------------------------------------------------

    def run(self) -> ProbeRunResult:
        start = time.perf_counter()
        scoring = self.scoring
        query = self.query
        output = TopKBuffer(self.k)
        anchors = sorted(
            self.relations[0],
            key=lambda t: (float(np.linalg.norm(t.vector - query)), t.tid),
        )
        sorted_accesses = 0
        random_accesses = 0
        probes = 0

        for anchor in anchors:
            frontier = float(np.linalg.norm(anchor.vector - query))
            if output.full and self._anchor_bound(frontier) <= output.kth_score:
                break
            sorted_accesses += 1

            radius = self._probe_radius(output.kth_score, anchor)
            pools = []
            feasible = True
            for tree in self._trees:
                if np.isinf(radius):
                    pool = [payload for _, payload in tree.iter_nearest(anchor.vector)]
                else:
                    pool = [
                        payload
                        for _, payload in tree.range_query(anchor.vector, radius)
                    ]
                probes += 1
                random_accesses += len(pool)
                if not pool:
                    feasible = False
                    break
                pools.append(pool)
            if not feasible:
                continue
            # Score anchor x probe results exhaustively (pools are small
            # by construction of the pruning radius).
            idx = [0] * len(pools)
            sizes = [len(p) for p in pools]
            while True:
                members = (anchor, *(pools[j][idx[j]] for j in range(len(pools))))
                output.add(scoring.make_combination(members, query))
                j = len(pools) - 1
                while j >= 0:
                    idx[j] += 1
                    if idx[j] < sizes[j]:
                        break
                    idx[j] = 0
                    j -= 1
                if j < 0:
                    break

        return ProbeRunResult(
            combinations=output.ranked(),
            sorted_accesses=sorted_accesses,
            random_accesses=random_accesses,
            probes=probes,
            total_seconds=time.perf_counter() - start,
        )
