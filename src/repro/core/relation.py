"""Tuple and relation model.

A :class:`RankTuple` is the paper's tuple ``tau``: named attributes, a
real-valued feature vector ``x(tau)`` and a score ``sigma(tau)``.  A
:class:`Relation` is an in-memory bag of such tuples plus the metadata the
bounding schemes need (``sigma_max``, dimensionality).  A
:class:`Combination` is an element of the cross product with its aggregate
score.

Relations are stored columnar-first: the constructor keeps one contiguous
``(N, d)`` vector matrix and ``(N,)`` score/tid arrays (the
structure-of-arrays views the access streams lexsort and slice), and the
``RankTuple`` objects are row views over them — the object layer for
display, canonical scoring and provenance, not the hot path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping, Sequence

import numpy as np

__all__ = ["RankTuple", "Relation", "Combination"]


@dataclass(frozen=True)
class RankTuple:
    """One tuple of a ranked relation.

    Attributes
    ----------
    relation:
        Name of the owning relation (for display / provenance).
    tid:
        Stable identifier within the relation (its position in the base
        data, not the access order).
    score:
        The tuple's score ``sigma(tau)``.
    vector:
        Feature vector ``x(tau)`` as a read-only numpy array.
    attrs:
        Optional named attributes (e.g. a restaurant's name).
    """

    relation: str
    tid: int
    score: float
    vector: np.ndarray
    attrs: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        vec = np.asarray(self.vector, dtype=float)
        vec.setflags(write=False)
        object.__setattr__(self, "vector", vec)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RankTuple):
            return NotImplemented
        return self.relation == other.relation and self.tid == other.tid

    def __hash__(self) -> int:
        return hash((self.relation, self.tid))

    def __repr__(self) -> str:  # concise, example-friendly
        vec = np.array2string(self.vector, precision=3, separator=",")
        return f"RankTuple({self.relation}#{self.tid}, score={self.score:.3g}, x={vec})"


class Relation:
    """An in-memory relation of scored, vector-equipped tuples.

    Parameters
    ----------
    name:
        Relation name (must be unique within a join).
    scores:
        Sequence of ``N`` scores.
    vectors:
        Array-like of shape ``(N, d)``.
    attrs:
        Optional sequence of ``N`` attribute mappings.
    sigma_max:
        Upper bound on the score of *any* tuple of the relation, including
        unseen ones (``sigma_i^max`` in the paper).  Defaults to the
        maximum score present, which is correct for materialised
        relations; services with known rating scales should pass e.g. 1.0.
    tids:
        Explicit tuple ids.  Defaults to ``0..N-1`` (a base relation);
        storage backends pass the parent relation's ids when carving a
        shard out of it, so shard tuples stay identical — by id, equality
        and hash — to the parent's and combination keys are
        partition-invariant.
    """

    def __init__(
        self,
        name: str,
        scores: Sequence[float],
        vectors: np.ndarray,
        *,
        attrs: Sequence[Mapping[str, Any]] | None = None,
        sigma_max: float | None = None,
        tids: Sequence[int] | None = None,
    ) -> None:
        vecs = np.atleast_2d(np.array(vectors, dtype=float))
        if len(scores) != len(vecs):
            raise ValueError(
                f"relation {name!r}: {len(scores)} scores but {len(vecs)} vectors"
            )
        if attrs is not None and len(attrs) != len(vecs):
            raise ValueError(
                f"relation {name!r}: {len(attrs)} attrs but {len(vecs)} vectors"
            )
        if len(vecs) == 0:
            raise ValueError(f"relation {name!r} must contain at least one tuple")
        self.name = name
        # Contiguous columnar views; frozen so the RankTuple row views
        # (and any stream slices of these) are immutable too.
        vecs.setflags(write=False)
        score_col = np.array([float(s) for s in scores], dtype=float)
        score_col.setflags(write=False)
        if tids is None:
            tid_col = np.arange(len(vecs), dtype=np.int64)
        else:
            tid_col = np.array([int(t) for t in tids], dtype=np.int64)
            if len(tid_col) != len(vecs):
                raise ValueError(
                    f"relation {name!r}: {len(tid_col)} tids but {len(vecs)} vectors"
                )
            if len(np.unique(tid_col)) != len(tid_col):
                raise ValueError(f"relation {name!r}: tids must be unique")
        tid_col.setflags(write=False)
        self._vectors = vecs
        self._scores = score_col
        self._tids = tid_col
        self._tuples = [
            RankTuple(
                relation=name,
                tid=int(tid_col[i]),
                score=float(score_col[i]),
                vector=vecs[i],
                attrs=dict(attrs[i]) if attrs is not None else {},
            )
            for i in range(len(vecs))
        ]
        observed_max = float(score_col.max())
        if sigma_max is not None and sigma_max < observed_max - 1e-12:
            raise ValueError(
                f"relation {name!r}: sigma_max={sigma_max} below observed "
                f"maximum score {observed_max}"
            )
        self.sigma_max = float(sigma_max) if sigma_max is not None else observed_max

    @property
    def dim(self) -> int:
        """Dimensionality ``d`` of the feature space."""
        return int(self._vectors.shape[1])

    @property
    def vectors(self) -> np.ndarray:
        """All feature vectors as one read-only ``(N, d)`` matrix."""
        return self._vectors

    @property
    def scores(self) -> np.ndarray:
        """All scores as one read-only ``(N,)`` array."""
        return self._scores

    @property
    def tids(self) -> np.ndarray:
        """Tuple ids as one read-only ``(N,)`` array (``0..N-1`` for base
        relations; a parent relation's ids for shard relations)."""
        return self._tids

    @property
    def storage(self):
        """The relation's :class:`~repro.core.storage.StorageBackend`.

        Base relations are a single in-memory shard;
        :class:`~repro.core.storage.ShardedRelation` overrides this with
        its partitioned backend.  The access layer opens streams through
        this boundary only, never against the relation directly.
        """
        from repro.core.storage import SingleShardBackend

        return SingleShardBackend(self)

    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[RankTuple]:
        return iter(self._tuples)

    def __getitem__(self, i: int) -> RankTuple:
        """The tuple at *position* ``i`` of the base data (equal to tid
        ``i`` for base relations; shard relations keep parent tids)."""
        return self._tuples[i]

    def __repr__(self) -> str:
        return f"Relation({self.name!r}, n={len(self)}, d={self.dim})"

    @classmethod
    def _from_rows(
        cls,
        name: str,
        scores: np.ndarray,
        vectors: np.ndarray,
        tids: np.ndarray,
        tuples: list[RankTuple],
        sigma_max: float,
    ) -> "Relation":
        """Internal: wrap pre-built columnar columns and *shared*
        ``RankTuple`` row objects (the storage layer's shard carve-out).

        Skips tuple re-materialisation: a shard's tuples ARE the parent's
        tuple objects, so sharding adds per-shard columnar copies but no
        second set of Python rows or attrs dicts."""
        self = cls.__new__(cls)
        vecs = np.atleast_2d(np.asarray(vectors, dtype=float))
        scores = np.asarray(scores, dtype=float)
        tids = np.asarray(tids, dtype=np.int64)
        if not len(vecs) == len(scores) == len(tids) == len(tuples) or not len(vecs):
            raise ValueError(f"relation {name!r}: misaligned or empty row columns")
        for col in (vecs, scores, tids):
            col.setflags(write=False)
        self.name = name
        self._vectors = vecs
        self._scores = scores
        self._tids = tids
        self._tuples = list(tuples)
        self.sigma_max = float(sigma_max)
        return self

    @classmethod
    def _from_columns(
        cls,
        name: str,
        scores: np.ndarray,
        vectors: np.ndarray,
        tids: np.ndarray,
        sigma_max: float,
        tuples: Sequence[RankTuple],
    ) -> "Relation":
        """Internal: wrap pre-built columnar columns and a *lazy* tuple
        sequence (the durable tier's hot-shard path).

        Unlike :meth:`_from_rows` the tuple sequence is kept as-is — a
        memmap-backed shard passes a pay-as-you-go row view, so opening
        a shard materialises zero ``RankTuple`` objects up front."""
        self = cls.__new__(cls)
        vecs = np.atleast_2d(np.asarray(vectors, dtype=float))
        scores = np.asarray(scores, dtype=float)
        tids = np.asarray(tids, dtype=np.int64)
        if not len(vecs) == len(scores) == len(tids) == len(tuples) or not len(vecs):
            raise ValueError(f"relation {name!r}: misaligned or empty columns")
        self.name = name
        self._vectors = vecs
        self._scores = scores
        self._tids = tids
        self._tuples = tuples
        self.sigma_max = float(sigma_max)
        return self

    @classmethod
    def from_tuples(
        cls,
        name: str,
        rows: Sequence[tuple[float, Sequence[float]]],
        *,
        sigma_max: float | None = None,
    ) -> "Relation":
        """Build a relation from ``(score, vector)`` pairs."""
        scores = [r[0] for r in rows]
        vectors = np.array([r[1] for r in rows], dtype=float)
        return cls(name, scores, vectors, sigma_max=sigma_max)

    def persist(self, path) -> "Relation":
        """Persist this relation into the durable store at ``path``.

        Writes one immutable columnar shard file per storage shard plus
        an atomic catalog generation flip (see
        :mod:`repro.core.durable`); returns ``self`` for chaining.  The
        same store directory can hold several relations — they share one
        catalog.
        """
        from repro.core.durable import persist_relation

        persist_relation(self, path)
        return self

    @classmethod
    def open(
        cls,
        path,
        name: str | None = None,
        *,
        memory_budget: int | None = None,
        verify: bool = False,
    ) -> "Relation":
        """Open a persisted relation from the durable store at ``path``.

        Returns a :class:`~repro.core.durable.DurableRelation` whose
        shard columns are ``np.memmap`` views and whose storage backend
        manages the hot/evicted tier; ``name`` may be omitted when the
        store holds exactly one relation.  ``memory_budget`` (bytes)
        caps hot-shard residency; ``verify`` checks segment checksums at
        open time.
        """
        from repro.core.durable import open_relation

        return open_relation(
            path, name, memory_budget=memory_budget, verify=verify
        )


@dataclass(frozen=True)
class Combination:
    """A join result: one tuple per relation plus the aggregate score."""

    tuples: tuple[RankTuple, ...]
    score: float

    @property
    def key(self) -> tuple[int, ...]:
        """Deterministic identity: the per-relation tuple ids."""
        return tuple(t.tid for t in self.tuples)

    def __repr__(self) -> str:
        members = " x ".join(f"{t.relation}#{t.tid}" for t in self.tuples)
        return f"Combination({members}, S={self.score:.4g})"
