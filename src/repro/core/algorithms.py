"""The four evaluated algorithm variants (Section 4.1, "Methods").

Bounding scheme x pulling strategy:

* ``CBRR`` — corner bound + round-robin  (= HRJN  of Ilyas et al.)
* ``CBPA`` — corner bound + potential-adaptive  (= HRJN*)
* ``TBRR`` — tight bound + round-robin (instance-optimal, Thm. 3.3)
* ``TBPA`` — tight bound + potential-adaptive (instance-optimal and
  never deeper than TBRR on any relation, Thm. 3.5 / Cor. 3.6)

Each helper builds a ready-to-run :class:`~repro.core.template.ProxRJ`.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.access import AccessKind
from repro.core.bounds.corner import CornerBound
from repro.core.bounds.tight import TightBound
from repro.core.pulling import PotentialAdaptive, RoundRobin
from repro.core.relation import Relation
from repro.core.scoring import Scoring
from repro.core.template import ProxRJ

__all__ = ["cbrr", "cbpa", "tbrr", "tbpa", "ALGORITHMS", "make_algorithm"]


def _build(
    relations: list[Relation],
    scoring: Scoring,
    query: np.ndarray,
    k: int,
    *,
    kind: AccessKind,
    tight: bool,
    adaptive: bool,
    dominance_period: int | None,
    batch_kernel: bool,
    incremental: bool,
    bound_period: int,
    pull_block: int,
    use_index: bool,
    vectorise: bool,
    stream_factory,
    max_pulls: int | None,
    should_stop,
) -> ProxRJ:
    bound = (
        TightBound(
            dominance_period=dominance_period,
            batch_kernel=batch_kernel,
            incremental=incremental,
        )
        if tight
        else CornerBound()
    )
    pull = PotentialAdaptive() if adaptive else RoundRobin()
    return ProxRJ(
        relations,
        scoring,
        kind=kind,
        query=query,
        bound=bound,
        pull=pull,
        k=k,
        bound_period=bound_period,
        pull_block=pull_block,
        use_index=use_index,
        vectorise=vectorise,
        stream_factory=stream_factory,
        max_pulls=max_pulls,
        should_stop=should_stop,
    )


def cbrr(
    relations: list[Relation],
    scoring: Scoring,
    query: np.ndarray,
    k: int,
    *,
    kind: AccessKind = AccessKind.DISTANCE,
    bound_period: int = 1,
    pull_block: int = 1,
    use_index: bool = False,
    vectorise: bool = True,
    stream_factory=None,
    max_pulls: int | None = None,
    should_stop=None,
) -> ProxRJ:
    """Corner bound + round-robin: the HRJN baseline."""
    return _build(
        relations, scoring, query, k,
        kind=kind, tight=False, adaptive=False,
        dominance_period=None, batch_kernel=True, incremental=True,
        bound_period=bound_period, pull_block=pull_block,
        use_index=use_index, vectorise=vectorise,
        stream_factory=stream_factory, max_pulls=max_pulls,
        should_stop=should_stop,
    )


def cbpa(
    relations: list[Relation],
    scoring: Scoring,
    query: np.ndarray,
    k: int,
    *,
    kind: AccessKind = AccessKind.DISTANCE,
    bound_period: int = 1,
    pull_block: int = 1,
    use_index: bool = False,
    vectorise: bool = True,
    stream_factory=None,
    max_pulls: int | None = None,
    should_stop=None,
) -> ProxRJ:
    """Corner bound + potential-adaptive: the HRJN* baseline."""
    return _build(
        relations, scoring, query, k,
        kind=kind, tight=False, adaptive=True,
        dominance_period=None, batch_kernel=True, incremental=True,
        bound_period=bound_period, pull_block=pull_block,
        use_index=use_index, vectorise=vectorise,
        stream_factory=stream_factory, max_pulls=max_pulls,
        should_stop=should_stop,
    )


def tbrr(
    relations: list[Relation],
    scoring: Scoring,
    query: np.ndarray,
    k: int,
    *,
    kind: AccessKind = AccessKind.DISTANCE,
    dominance_period: int | None = None,
    batch_kernel: bool = True,
    incremental: bool = True,
    bound_period: int = 1,
    pull_block: int = 1,
    use_index: bool = False,
    vectorise: bool = True,
    stream_factory=None,
    max_pulls: int | None = None,
    should_stop=None,
) -> ProxRJ:
    """Tight bound + round-robin (instance-optimal).

    ``batch_kernel=False`` pins the scalar per-subset/per-candidate bound
    path — the reference the batched bound kernel is differenced against;
    ``incremental=False`` keeps the batched kernel memoryless across
    refreshes (results are bit-identical in all three modes).
    """
    return _build(
        relations, scoring, query, k,
        kind=kind, tight=True, adaptive=False,
        dominance_period=dominance_period, batch_kernel=batch_kernel,
        incremental=incremental, bound_period=bound_period,
        pull_block=pull_block, use_index=use_index, vectorise=vectorise,
        stream_factory=stream_factory, max_pulls=max_pulls,
        should_stop=should_stop,
    )


def tbpa(
    relations: list[Relation],
    scoring: Scoring,
    query: np.ndarray,
    k: int,
    *,
    kind: AccessKind = AccessKind.DISTANCE,
    dominance_period: int | None = None,
    batch_kernel: bool = True,
    incremental: bool = True,
    bound_period: int = 1,
    pull_block: int = 1,
    use_index: bool = False,
    vectorise: bool = True,
    stream_factory=None,
    max_pulls: int | None = None,
    should_stop=None,
) -> ProxRJ:
    """Tight bound + potential-adaptive (the paper's best algorithm).

    ``batch_kernel=False`` pins the scalar per-subset/per-candidate bound
    path — the reference the batched bound kernel is differenced against;
    ``incremental=False`` keeps the batched kernel memoryless across
    refreshes (results are bit-identical in all three modes).
    """
    return _build(
        relations, scoring, query, k,
        kind=kind, tight=True, adaptive=True,
        dominance_period=dominance_period, batch_kernel=batch_kernel,
        incremental=incremental, bound_period=bound_period,
        pull_block=pull_block, use_index=use_index, vectorise=vectorise,
        stream_factory=stream_factory, max_pulls=max_pulls,
        should_stop=should_stop,
    )


ALGORITHMS: dict[str, Callable[..., ProxRJ]] = {
    "CBRR": cbrr,
    "CBPA": cbpa,
    "TBRR": tbrr,
    "TBPA": tbpa,
}


def make_algorithm(name: str, *args, **kwargs) -> ProxRJ:
    """Build an algorithm by its paper name (CBRR/CBPA/TBRR/TBPA)."""
    try:
        factory = ALGORITHMS[name.upper()]
    except KeyError:
        raise KeyError(
            f"unknown algorithm {name!r}; choose from {sorted(ALGORITHMS)}"
        ) from None
    return factory(*args, **kwargs)
