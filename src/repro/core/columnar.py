"""Columnar prefix store: structure-of-arrays views of access prefixes.

The engine's hot path is dominated by re-walking Python ``RankTuple``
lists: every pull re-submits the full seen prefixes to the scorer, the
pruner and the bounds, so per-query CPU grows quadratically with access
depth.  This module provides the contiguous-array layer underneath:

* :class:`ColumnarPrefix` — one stream's extracted prefix ``P_i`` in
  access order as three aligned numpy arrays (``vectors (p, d)``,
  ``scores (p,)``, ``tids (p,)``).  Two backing modes share the API:

  - **growing** (k-d / remote streams): rows are appended as tuples
    arrive, with doubling reallocation, so a pull costs amortised O(1);
  - **frozen** (pre-sorted local streams, cached service orders): the
    full access order is already materialised as arrays, and the prefix
    is just a cursor into it — ``advance`` is O(1) and nothing is ever
    copied, which is what makes an LRU hit on a cached order free.

Consumers index by *access position*, never by ``(relation, tid)`` dict
keys: the scorer's slabs, the pruner's running maxima and the tight
bound's entry batches are all built from ``arrays(lo, hi)`` slices.
"""

from __future__ import annotations

import numpy as np

__all__ = ["ColumnarPrefix"]

_MIN_CAPACITY = 16


class ColumnarPrefix:
    """Append-only columnar view of one access stream's seen prefix.

    ``length`` is the number of valid rows (the stream's depth); rows
    beyond it are uninitialised (growing mode) or not-yet-pulled order
    entries (frozen mode).
    """

    __slots__ = ("dim", "length", "_vecs", "_scores", "_tids", "_frozen")

    def __init__(self, dim: int, capacity: int = _MIN_CAPACITY) -> None:
        if dim < 0:
            raise ValueError("dim must be >= 0")
        capacity = max(int(capacity), _MIN_CAPACITY)
        self.dim = int(dim)
        self.length = 0
        self._vecs = np.empty((capacity, self.dim), dtype=float)
        self._scores = np.empty(capacity, dtype=float)
        self._tids = np.empty(capacity, dtype=np.int64)
        self._frozen = False

    @classmethod
    def from_arrays(
        cls,
        vectors: np.ndarray,
        scores: np.ndarray,
        tids: np.ndarray,
        *,
        length: int = 0,
    ) -> "ColumnarPrefix":
        """Wrap a fully materialised access order (frozen mode).

        The arrays are shared, not copied; :meth:`advance` moves the
        prefix cursor over them.  Used by pre-sorted local streams and
        the service's cached orders, where the whole order exists before
        the first pull.
        """
        vectors = np.atleast_2d(np.asarray(vectors, dtype=float))
        scores = np.asarray(scores, dtype=float)
        tids = np.asarray(tids, dtype=np.int64)
        n = len(vectors)
        if len(scores) != n or len(tids) != n:
            raise ValueError(
                f"misaligned columns: {n} vectors, {len(scores)} scores, "
                f"{len(tids)} tids"
            )
        if not 0 <= length <= n:
            raise ValueError(f"length {length} outside [0, {n}]")
        self = cls.__new__(cls)
        self.dim = int(vectors.shape[1])
        self.length = int(length)
        self._vecs = vectors
        self._scores = scores
        self._tids = tids
        self._frozen = True
        return self

    @property
    def capacity(self) -> int:
        """Rows the current backing arrays can hold."""
        return len(self._scores)

    @property
    def frozen(self) -> bool:
        """Whether the full order is pre-materialised (cursor mode)."""
        return self._frozen

    def _grow(self, needed: int) -> None:
        cap = self.capacity
        while cap < needed:
            cap *= 2
        vecs = np.empty((cap, self.dim), dtype=float)
        scores = np.empty(cap, dtype=float)
        tids = np.empty(cap, dtype=np.int64)
        p = self.length
        vecs[:p] = self._vecs[:p]
        scores[:p] = self._scores[:p]
        tids[:p] = self._tids[:p]
        self._vecs, self._scores, self._tids = vecs, scores, tids

    def append(self, vector: np.ndarray, score: float, tid: int) -> None:
        """Record one pulled tuple (amortised O(1))."""
        if self._frozen:
            raise ValueError("frozen prefix: use advance(), not append()")
        p = self.length
        if p + 1 > self.capacity:
            self._grow(p + 1)
        self._vecs[p] = vector
        self._scores[p] = score
        self._tids[p] = tid
        self.length = p + 1

    def extend(
        self, vectors: np.ndarray, scores: np.ndarray, tids: np.ndarray
    ) -> None:
        """Record a block of pulled tuples in one copy."""
        if self._frozen:
            raise ValueError("frozen prefix: use advance(), not extend()")
        b = len(scores)
        if b == 0:
            return
        p = self.length
        if p + b > self.capacity:
            self._grow(p + b)
        self._vecs[p : p + b] = vectors
        self._scores[p : p + b] = scores
        self._tids[p : p + b] = tids
        self.length = p + b

    def extend_tuples(self, block) -> None:
        """Record a block of :class:`~repro.core.relation.RankTuple`."""
        if not block:
            return
        self.extend(
            np.array([t.vector for t in block], dtype=float).reshape(
                len(block), self.dim
            ),
            np.array([t.score for t in block], dtype=float),
            np.array([t.tid for t in block], dtype=np.int64),
        )

    def advance(self, count: int) -> None:
        """Move the cursor of a frozen prefix past ``count`` pulled rows."""
        if not self._frozen:
            raise ValueError("growing prefix: rows arrive via append/extend")
        new_len = self.length + int(count)
        if not 0 <= new_len <= len(self._scores):
            raise ValueError(
                f"advance({count}) leaves length {new_len} outside "
                f"[0, {len(self._scores)}]"
            )
        self.length = new_len

    def arrays(
        self, lo: int = 0, hi: int | None = None
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(vectors, scores, tids)`` views of prefix rows ``[lo, hi)``.

        Views alias the current backing arrays: valid until the next
        growth reallocation, so derive what you need before appending
        more rows (the slabs in :mod:`repro.core.batchscore` copy-derive
        on sync, which satisfies this).
        """
        if hi is None:
            hi = self.length
        if not 0 <= lo <= hi <= self.length:
            raise ValueError(
                f"rows [{lo}, {hi}) outside the filled prefix "
                f"[0, {self.length})"
            )
        return self._vecs[lo:hi], self._scores[lo:hi], self._tids[lo:hi]

    def __len__(self) -> int:
        return self.length

    def __repr__(self) -> str:
        mode = "frozen" if self._frozen else "growing"
        return (
            f"ColumnarPrefix(length={self.length}, dim={self.dim}, "
            f"capacity={self.capacity}, {mode})"
        )
