"""repro — Proximity Rank Join.

A from-scratch reproduction of Martinenghi & Tagliasacchi, "Proximity
Rank Join", PVLDB 3(1), 2010: top-K combinations of scored, vector-valued
tuples from multiple ranked relations, close to a query point and to each
other.  See README.md for a quickstart and DESIGN.md for the system map.
"""

from repro.core import (
    AccessKind,
    Combination,
    CornerBound,
    CosineProximityScoring,
    EuclideanLogScoring,
    LinearScoring,
    PotentialAdaptive,
    ProbeRankJoin,
    ProxRJ,
    QuadraticFormScoring,
    RankTuple,
    Relation,
    RoundRobin,
    RunResult,
    Scoring,
    ShardedRelation,
    TightBound,
    TopKBuffer,
    brute_force_topk,
    cbpa,
    cbrr,
    make_algorithm,
    tbpa,
    tbrr,
)

__version__ = "1.0.0"

__all__ = [
    "AccessKind",
    "Combination",
    "CornerBound",
    "CosineProximityScoring",
    "EuclideanLogScoring",
    "LinearScoring",
    "PotentialAdaptive",
    "ProbeRankJoin",
    "ProxRJ",
    "QuadraticFormScoring",
    "RankTuple",
    "Relation",
    "RoundRobin",
    "RunResult",
    "Scoring",
    "ShardedRelation",
    "TightBound",
    "TopKBuffer",
    "brute_force_topk",
    "cbpa",
    "cbrr",
    "make_algorithm",
    "tbpa",
    "tbrr",
    "__version__",
]
