"""Worker-process side of the process-pool serving tier.

Each worker is a real OS process that opens the durable store
**read-only** — the shard memmaps are shared with every sibling through
the OS page cache (one physical copy of the data no matter how many
workers map it) and the WAL catalog is probed without ever taking the
writer lock — and then runs queries *end-to-end in-process*: its own
:class:`~repro.service.rankjoin.RankJoinService` (order LRU, catalog
warm start, engine) with no threads, no shared Python state and
therefore no GIL contention with its siblings.

The loop is a plain request/response pump over one pipe: the parent
sends :data:`~repro.service.wire.OP_QUERY` payloads, the worker answers
with the compact :data:`~repro.service.wire.OP_RESULT` wire format plus
the *delta* of its ``ServiceStats`` counters since the previous reply
(the parent folds those into the pool-wide stats through the ordinary
atomic ``record()`` path).  Workers hold no durable write access and no
queue state, so a SIGKILL at any instant loses at most the single
in-flight query — which the parent re-dispatches, and which re-executes
bit-identically because every input is immutable.
"""

from __future__ import annotations

import os
import signal
from dataclasses import dataclass, field

from repro.core.access import AccessKind
from repro.core.scoring import Scoring
from repro.service import wire
from repro.service.rankjoin import RankJoinService

__all__ = ["WorkerSpec", "worker_main"]


@dataclass
class WorkerSpec:
    """Everything a worker needs to build its serving stack.

    Crosses the process boundary exactly once (at spawn); deliberately
    holds only paths, names and scalar knobs — never relations, arrays
    or open handles.
    """

    store_path: str
    relation_names: list[str]
    scoring: Scoring
    kind_value: str
    algorithm: str
    k: int
    pull_block: int
    bound_period: int
    cache_size: int
    bucket_decimals: int
    max_pulls: int | None
    warm_start: bool
    #: Test failpoint: SIGKILL self while handling the Nth query (1-based,
    #: before replying) — how the crash-recovery suite murders a worker
    #: mid-batch deterministically.
    crash_at_task: int | None = None
    #: Engine keyword overrides forwarded verbatim to the in-worker
    #: service (must stay picklable scalars).
    extra: dict = field(default_factory=dict)


def _build_service(spec: WorkerSpec) -> RankJoinService:
    from repro.core.durable import open_relation

    relations = [
        open_relation(spec.store_path, name, read_only=True)
        for name in spec.relation_names
    ]
    return RankJoinService(
        relations,
        spec.scoring,
        kind=AccessKind(spec.kind_value),
        algorithm=spec.algorithm,
        k=spec.k,
        pull_block=spec.pull_block,
        bound_period=spec.bound_period,
        cache_size=spec.cache_size,
        # The parent owns the shared result cache; worker-side result
        # caching would only mask the affinity accounting.
        result_cache_size=0,
        bucket_decimals=spec.bucket_decimals,
        max_workers=1,
        max_pulls=spec.max_pulls,
        # One process per core is the parallelism model — nested
        # shard-pull threads inside a worker would just re-introduce
        # GIL slicing.
        shard_workers=0,
        warm_start=spec.warm_start,
        **spec.extra,
    )


def _stats_delta(snapshot: dict, previous: dict) -> dict:
    return {
        name: value - previous.get(name, 0)
        for name, value in snapshot.items()
        if value != previous.get(name, 0)
    }


def worker_main(conn, parent_conn, spec: WorkerSpec) -> None:
    """Run the worker pump until ``OP_SHUTDOWN`` or pipe EOF.

    ``parent_conn`` is the parent's end of the pipe when it leaked into
    this process (fork start method); closing it here is what lets the
    parent observe EOF — rather than a hang — if this process dies.
    """
    if parent_conn is not None:
        parent_conn.close()
    service = _build_service(spec)
    previous: dict = {}
    handled = 0
    try:
        while True:
            try:
                payload = conn.recv_bytes()
            except (EOFError, OSError):
                break  # parent went away; die quietly
            op = payload[:1]
            if op == wire.OP_SHUTDOWN:
                break
            if op == wire.OP_PING:
                conn.send_bytes(wire.OP_PONG + payload[1:])
                continue
            seq, k, query = wire.decode_query(payload)
            handled += 1
            if spec.crash_at_task is not None and handled >= spec.crash_at_task:
                os.kill(os.getpid(), signal.SIGKILL)
            try:
                result = service.submit(query, k)
                snapshot = service.stats.snapshot()
                deltas = _stats_delta(snapshot, previous)
                previous = snapshot
                conn.send_bytes(wire.encode_result(seq, result, deltas))
            except Exception as exc:  # noqa: BLE001 - forwarded to parent
                conn.send_bytes(wire.encode_error(seq, exc))
    finally:
        for rel in service.relations:
            close = getattr(rel, "close", None)
            if close is not None:
                close()
        service.close()
        conn.close()
