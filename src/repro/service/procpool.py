"""Multi-process rank-join serving over shared memmap shards.

The thread-pool service (:class:`~repro.service.rankjoin.
RankJoinService`) shares caches beautifully but shares the GIL too: the
engine's bound solvers are pure-Python/numpy CPU work, so on multi-core
hardware a thread pool serialises exactly what needs parallelising.
This module is the process-level counterpart:

* **N worker processes**, each opening the durable store *read-only*
  (:mod:`repro.service.procworker`).  The shard files are ``np.memmap``
  views — every worker maps the same bytes, the OS page cache keeps ONE
  physical copy — and the WAL catalog is opened without write access,
  so worker readers never take (or queue on) the writer lock.
* The **parent owns admission and the shared result cache** (the LRU it
  inherits from :class:`RankJoinService`), plus **bucket-affinity
  dispatch**: a query's canonical bucket hashes (crc32, stable across
  processes and runs) to a preferred worker, so repeats of a bucket
  land where the order LRU is already hot.  When the preferred worker's
  backlog is ``steal_threshold`` deeper than the emptiest worker's, the
  task is stolen by the least-loaded worker instead — affinity is a
  preference, not a queueing discipline.
* Results cross the pipe in the compact :mod:`~repro.service.wire`
  format — top-K tid/score/depth arrays and counter deltas, no pickled
  object graphs — and the parent folds every worker's ``ServiceStats``
  deltas into one pool-wide stats object through the ordinary atomic
  ``record()`` path.
* **Lifecycle**: workers are recycled after ``max_tasks_per_worker``
  replies (bounding any slow leak in a long-lived serving process) and
  respawned on crash, with the in-flight query re-dispatched.  Each
  query is sent to at most one *live* worker at a time, and a retry is
  bit-identical to the lost attempt because every input — shard files,
  catalog generation, canonical query — is immutable.

In-memory relations are served by **spooling**: the parent persists
them into a private durable store directory once at construction
(removed again at :meth:`close`), which is exactly the write-once
read-many shape the durable tier was built for.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import queue
import shutil
import tempfile
import threading
import warnings
import zlib
from concurrent.futures import Future
from dataclasses import dataclass, replace

import numpy as np

from repro.core.access import AccessKind
from repro.core.relation import Relation
from repro.core.scoring import Scoring
from repro.core.template import RunResult
from repro.service import wire
from repro.service.procworker import WorkerSpec, worker_main
from repro.service.rankjoin import RankJoinService, ServiceStats

__all__ = ["ProcPoolRankJoinService", "ProcPoolServiceStats"]

_SHUTDOWN_JOIN_SECONDS = 5.0


@dataclass
class ProcPoolServiceStats(ServiceStats):
    """Pool-wide meters: the base counters are *aggregated worker
    deltas* (folded in reply by reply), except ``queries`` and
    ``result_cache_hits`` which the parent records at admission.
    ``worker_queries`` is the workers' own executed-query count — it
    trails ``queries`` by exactly the result-cache hits."""

    worker_queries: int = 0
    #: Crash-driven worker respawns (SIGKILL, OOM, pipe loss).
    worker_restarts: int = 0
    #: Planned retirements after ``max_tasks_per_worker`` replies.
    worker_recycles: int = 0
    #: Queries dispatched to their bucket's preferred worker.
    affinity_hits: int = 0
    #: Queries diverted to the least-loaded worker (work stealing).
    affinity_steals: int = 0
    #: Queries re-dispatched after a worker died holding them.
    retried_queries: int = 0


class _Task:
    __slots__ = ("seq", "payload", "future", "retries", "is_ping")

    def __init__(self, seq: int, payload: bytes, *, is_ping: bool = False) -> None:
        self.seq = seq
        self.payload = payload
        self.future: Future = Future()
        self.retries = 0
        self.is_ping = is_ping


class _WorkerSlot:
    """Parent-side state of one worker: its queue, pipe, process and
    accumulated stats snapshot.  Exactly one runner thread drains the
    queue, so at most one task is in flight per worker."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.queue: "queue.Queue[_Task | None]" = queue.Queue()
        self.process = None
        self.conn = None
        self.busy = False
        self.tasks_done = 0
        self.stats_totals: dict[str, int] = {}
        self.thread: threading.Thread | None = None

    @property
    def backlog(self) -> int:
        return self.queue.qsize() + (1 if self.busy else 0)


class ProcPoolRankJoinService(RankJoinService):
    """Serve rank-join queries from a pool of worker *processes*.

    Accepts the same construction surface as
    :class:`~repro.service.rankjoin.RankJoinService` (the engine knobs
    travel to the workers in the spawn spec) plus:

    Parameters
    ----------
    workers:
        Worker process count.
    max_tasks_per_worker:
        Recycle a worker after this many query replies (``None``
        disables recycling).
    steal_threshold:
        How much deeper than the emptiest worker the preferred worker's
        backlog may be before a query is stolen.
    mp_context:
        Multiprocessing start method (``"fork"``/``"spawn"``/
        ``"forkserver"`` or a context object).  Defaults to ``fork``
        where available — workers re-open the store from scratch, so
        they depend on nothing forked except the pipe.
    store_path:
        Serve from this existing durable store instead of spooling.
        The given relations are still used for result rehydration and
        must match the store's contents.
    worker_warm_start:
        Whether workers preload persisted orders from the (read-only)
        catalog at spawn.
    """

    _stats_cls = ProcPoolServiceStats
    stats: ProcPoolServiceStats

    #: Crash-driven retry budget per query before its future errors.
    max_retries = 3

    def __init__(
        self,
        relations: list[Relation],
        scoring: Scoring,
        *,
        workers: int = 4,
        max_tasks_per_worker: int | None = None,
        steal_threshold: int = 2,
        mp_context=None,
        store_path=None,
        worker_warm_start: bool = True,
        kind: AccessKind = AccessKind.DISTANCE,
        algorithm: str = "TBPA",
        k: int = 10,
        pull_block: int = 8,
        bound_period: int = 1,
        cache_size: int = 64,
        result_cache_size: int = 256,
        bucket_decimals: int = 6,
        max_pulls: int | None = None,
        _failpoints: dict[int, int] | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be >= 1")
        super().__init__(
            relations,
            scoring,
            kind=kind,
            algorithm=algorithm,
            k=k,
            pull_block=pull_block,
            bound_period=bound_period,
            cache_size=cache_size,
            result_cache_size=result_cache_size,
            bucket_decimals=bucket_decimals,
            max_workers=workers,
            max_pulls=max_pulls,
            # The parent never runs engines: no shard pulls, no order
            # warm start — those live in the workers.
            shard_workers=0,
            warm_start=False,
        )
        self.workers = workers
        self.max_tasks_per_worker = max_tasks_per_worker
        self.steal_threshold = steal_threshold
        if mp_context is None or isinstance(mp_context, str):
            methods = multiprocessing.get_all_start_methods()
            name = mp_context or ("fork" if "fork" in methods else "spawn")
            mp_context = multiprocessing.get_context(name)
        self._ctx = mp_context
        self._failpoints = dict(_failpoints or {})
        self._spool_dir, resolved_store = self._resolve_store(store_path)
        self._spec = WorkerSpec(
            store_path=str(resolved_store),
            relation_names=[r.name for r in relations],
            scoring=scoring,
            kind_value=kind.value,
            algorithm=algorithm,
            k=k,
            pull_block=pull_block,
            bound_period=bound_period,
            cache_size=cache_size,
            bucket_decimals=bucket_decimals,
            max_pulls=max_pulls,
            warm_start=worker_warm_start,
        )
        self._seq = 0
        self._tid_indexes: dict = {}
        self._closed = False
        self._slots = [_WorkerSlot(i) for i in range(workers)]
        for slot in self._slots:
            slot.thread = threading.Thread(
                target=self._slot_loop,
                args=(slot,),
                name=f"procpool-runner-{slot.index}",
                daemon=True,
            )
            slot.thread.start()

    # -- store resolution ---------------------------------------------------

    def _resolve_store(self, store_path):
        """``(owned_spool_dir_or_None, store_path)`` for the workers.

        A store path is used as-is; relations already served from one
        common durable store reuse it read-only; anything else is
        spooled into a private store directory (one write, N mapped
        readers)."""
        if store_path is not None:
            return None, store_path
        paths = {getattr(r, "path", None) for r in self.relations}
        if len(paths) == 1 and None not in paths and self._durable:
            return None, paths.pop()
        from repro.core.durable import persist_relation

        spool = tempfile.mkdtemp(prefix="proxrj-procpool-")
        for rel in self.relations:
            persist_relation(rel, spool)
        return spool, spool

    # -- worker lifecycle ---------------------------------------------------

    def _spawn_worker(self, slot: _WorkerSlot) -> None:
        spec = self._spec
        crash_at = self._failpoints.pop(slot.index, None)
        if crash_at is not None:
            spec = replace(spec, crash_at_task=crash_at)
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=worker_main,
            args=(child_conn, parent_conn, spec),
            name=f"procpool-worker-{slot.index}",
            daemon=True,
        )
        with warnings.catch_warnings():
            # Python >= 3.12 warns on fork() from a multi-threaded
            # parent; the workers rebuild all state from the store and
            # touch nothing forked but their pipe end.
            warnings.simplefilter("ignore", DeprecationWarning)
            process.start()
        # Parent must not hold the child end open, or a dead worker
        # would read as a silent hang instead of pipe EOF.
        child_conn.close()
        slot.process = process
        slot.conn = parent_conn
        slot.tasks_done = 0

    def _ensure_worker(self, slot: _WorkerSlot):
        if slot.process is not None and not slot.process.is_alive():
            # Died idle (between tasks) — same accounting as an
            # in-flight crash.
            self._reap_worker(slot)
            self.stats.record(worker_restarts=1)
        if slot.process is None:
            self._spawn_worker(slot)
        return slot.conn

    def _reap_worker(self, slot: _WorkerSlot) -> None:
        if slot.conn is not None:
            with contextlib.suppress(OSError):
                slot.conn.close()
        if slot.process is not None:
            slot.process.join(timeout=_SHUTDOWN_JOIN_SECONDS)
            if slot.process.is_alive():
                slot.process.kill()
                slot.process.join(timeout=_SHUTDOWN_JOIN_SECONDS)
        slot.process = None
        slot.conn = None

    def _retire_worker(self, slot: _WorkerSlot) -> None:
        """Planned, clean worker shutdown (recycling / close)."""
        if slot.conn is not None:
            with contextlib.suppress(OSError, BrokenPipeError):
                slot.conn.send_bytes(wire.OP_SHUTDOWN)
        self._reap_worker(slot)

    # -- dispatch -----------------------------------------------------------

    def _preferred_slot(self, bucket: bytes) -> int:
        return zlib.crc32(bucket) % len(self._slots)

    def _pick_slot(self, bucket: bytes) -> _WorkerSlot:
        preferred = self._slots[self._preferred_slot(bucket)]
        lightest = min(self._slots, key=lambda s: s.backlog)
        if preferred.backlog - lightest.backlog > self.steal_threshold:
            self.stats.record(affinity_steals=1)
            return lightest
        self.stats.record(affinity_hits=1)
        return preferred

    def _dispatch(self, canonical: np.ndarray, bucket: bytes, k: int) -> _Task:
        if self._closed:
            raise RuntimeError("service is closed")
        with self._lock:
            self._seq += 1
            seq = self._seq
        task = _Task(seq, wire.encode_query(seq, canonical, k))
        self._pick_slot(bucket).queue.put(task)
        return task

    # -- per-slot runner ----------------------------------------------------

    def _slot_loop(self, slot: _WorkerSlot) -> None:
        while True:
            task = slot.queue.get()
            if task is None:
                return
            slot.busy = True
            try:
                self._run_task(slot, task)
            except BaseException as exc:  # pragma: no cover - defensive
                if not task.future.done():
                    task.future.set_exception(exc)
            finally:
                slot.busy = False

    def _run_task(self, slot: _WorkerSlot, task: _Task) -> None:
        while True:
            try:
                conn = self._ensure_worker(slot)
                conn.send_bytes(task.payload)
                reply = conn.recv_bytes()
                break
            except (EOFError, OSError):
                # The worker died holding this task: at-most-once per
                # worker, so re-dispatching to the respawned worker
                # cannot double-execute anywhere — and the retry is
                # bit-identical because every input is immutable.
                self._reap_worker(slot)
                if self._closed:
                    task.future.set_exception(
                        RuntimeError("service closed while query was in flight")
                    )
                    return
                task.retries += 1
                self.stats.record(worker_restarts=1, retried_queries=1)
                if task.retries > self.max_retries:
                    task.future.set_exception(
                        RuntimeError(
                            f"query seq={task.seq} lost {task.retries} workers; "
                            "giving up"
                        )
                    )
                    return
        op = reply[:1]
        if op == wire.OP_PONG:
            task.future.set_result(None)
            return
        failure: RuntimeError | None = None
        fields: dict | None = None
        if op == wire.OP_ERROR:
            seq, message = wire.decode_error(reply)
            failure = RuntimeError(message)
        else:
            seq, fields = wire.decode_result(reply)
            if seq != task.seq:
                failure = RuntimeError(
                    f"wire desync: sent seq={task.seq}, got {seq}"
                )
            else:
                deltas = fields.get("stats", {})
                for name, value in deltas.items():
                    slot.stats_totals[name] = (
                        slot.stats_totals.get(name, 0) + value
                    )
                mapped = {
                    ("worker_queries" if name == "queries" else name): value
                    for name, value in deltas.items()
                    if name != "result_cache_hits"
                }
                if mapped:
                    self.stats.record(**mapped)
        # All bookkeeping — including a due recycle — lands before the
        # future resolves, so a caller that just got its result observes
        # consistent pool counters.
        slot.tasks_done += 1
        if (
            self.max_tasks_per_worker is not None
            and slot.tasks_done >= self.max_tasks_per_worker
        ):
            self._retire_worker(slot)
            self.stats.record(worker_recycles=1)
        if failure is not None:
            task.future.set_exception(failure)
        else:
            task.future.set_result(fields)

    # -- submission ---------------------------------------------------------

    def submit(self, query: np.ndarray, k: int | None = None) -> RunResult:
        """Run one query on the pool and return its result.

        Admission, canonicalisation and the result cache live here in
        the parent; execution happens in whichever worker the bucket's
        affinity (or stealing) picked."""
        k = self.k if k is None else k
        canonical = self.canonical_query(query)
        bucket = self._bucket_key(canonical)
        result_key = (bucket, k)
        self.stats.record(queries=1)
        hit = self._lookup_result(result_key)
        if hit is not None:
            return hit
        task = self._dispatch(canonical, bucket, k)
        return self._finish(task, result_key)

    def _finish(self, task: _Task, result_key) -> RunResult:
        fields = task.future.result()
        result = wire.rehydrate_result(fields, self.relations, self._tid_indexes)
        if self._results is not None:
            with self._lock:
                self._results.put(result_key, result)
        return result

    def submit_many(
        self, queries: list[np.ndarray], k: int | None = None
    ) -> list[RunResult]:
        """Run a batch across the pool; results align with ``queries``.

        All queries are dispatched up front (each to its affine worker's
        queue), then collected in order — the pool overlaps execution
        across processes, not threads, so the engines run GIL-free."""
        if not queries:
            return []
        kk = self.k if k is None else k
        pending: list[tuple[_Task | None, RunResult | None, tuple]] = []
        for query in queries:
            canonical = self.canonical_query(query)
            bucket = self._bucket_key(canonical)
            result_key = (bucket, kk)
            self.stats.record(queries=1)
            hit = self._lookup_result(result_key)
            if hit is not None:
                pending.append((None, hit, result_key))
            else:
                pending.append((self._dispatch(canonical, bucket, kk), None, result_key))
        return [
            hit if task is None else self._finish(task, result_key)
            for task, hit, result_key in pending
        ]

    # -- introspection ------------------------------------------------------

    def per_worker_stats(self) -> list[dict[str, int]]:
        """Each worker slot's accumulated ``ServiceStats`` deltas (the
        evidence trail for affinity: a hot slot shows the hits)."""
        return [dict(slot.stats_totals) for slot in self._slots]

    def warm_up(self) -> None:
        """Block until every worker process has built its serving stack
        (one ping per slot) — useful before timing anything."""
        tasks = []
        for slot in self._slots:
            with self._lock:
                self._seq += 1
                seq = self._seq
            task = _Task(seq, wire.OP_PING + seq.to_bytes(8, "little"), is_ping=True)
            slot.queue.put(task)
            tasks.append(task)
        for task in tasks:
            task.future.result()

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Drain queues, retire every worker, remove the spool (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for slot in self._slots:
            slot.queue.put(None)
        for slot in self._slots:
            if slot.thread is not None:
                slot.thread.join(timeout=_SHUTDOWN_JOIN_SECONDS * 2)
        for slot in self._slots:
            self._retire_worker(slot)
        super().close()
        if self._spool_dir is not None:
            shutil.rmtree(self._spool_dir, ignore_errors=True)
            self._spool_dir = None
