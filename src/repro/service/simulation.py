"""Simulated remote search services.

The paper motivates proximity rank join with "search computing": the
relations are remote services (Yahoo! Local, IMDB, ...) invoked over the
Web, where fetching tuples dominates every other cost — which is exactly
why sumDepths is the metric that matters.  This module models that
deployment so the examples and benchmarks can report *latency-weighted*
costs, not only access counts:

* :class:`ServiceEndpoint` wraps a relation behind a paged API: each
  *call* returns one page of tuples (distance- or score-ordered) and
  charges a latency sampled from a configurable model.  Latency is
  *simulated time*, accumulated in the endpoint's meter — no real
  sleeping — so tests stay fast and deterministic.
* :class:`ServiceStream` adapts an endpoint to the
  :class:`~repro.core.access.AccessStream` interface, letting the ProxRJ
  engine run unchanged against "remote" data.  Page size > 1 models
  services that return blocks (the paper's block-fetch trade-off).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.access import AccessKind, DistanceAccess, ScoreAccess
from repro.core.columnar import ColumnarPrefix
from repro.core.relation import RankTuple, Relation

__all__ = ["LatencyModel", "ServiceEndpoint", "ServiceStream", "make_service_streams"]


@dataclass(frozen=True)
class LatencyModel:
    """Per-call latency: ``base + uniform(0, jitter)`` simulated seconds."""

    base: float = 0.05
    jitter: float = 0.02

    def sample(self, rng: np.random.Generator) -> float:
        if self.base < 0 or self.jitter < 0:
            raise ValueError("latency parameters must be non-negative")
        return self.base + (rng.uniform(0.0, self.jitter) if self.jitter else 0.0)


class ServiceEndpoint:
    """A paged, ordered view of a relation behind a simulated network.

    Parameters
    ----------
    relation, kind, query:
        What the service serves and in which order.
    page_size:
        Tuples returned per call.
    latency:
        Latency model; each *call* (not each tuple) charges one sample.
    seed:
        Seed for the latency jitter.
    """

    def __init__(
        self,
        relation: Relation,
        *,
        kind: AccessKind,
        query: np.ndarray | None = None,
        page_size: int = 10,
        latency: LatencyModel | None = None,
        seed: int = 0,
    ) -> None:
        if page_size < 1:
            raise ValueError("page_size must be >= 1")
        if kind is AccessKind.DISTANCE:
            if query is None:
                raise ValueError("distance-ordered services need a query")
            self._inner = DistanceAccess(relation, query)
        else:
            self._inner = ScoreAccess(relation)
        self.relation = relation
        self.kind = kind
        self.page_size = page_size
        self.latency = latency or LatencyModel()
        self._rng = np.random.default_rng(seed)
        self.calls = 0
        self.tuples_served = 0
        self.simulated_seconds = 0.0

    def fetch_page(self) -> list[RankTuple]:
        """One service invocation: up to ``page_size`` ordered tuples.

        An empty page signals exhaustion.  Every call — including the one
        that discovers exhaustion — pays the latency.
        """
        self.calls += 1
        self.simulated_seconds += self.latency.sample(self._rng)
        page: list[RankTuple] = []
        for _ in range(self.page_size):
            tup = self._inner.next()
            if tup is None:
                break
            page.append(tup)
        self.tuples_served += len(page)
        return page


class ServiceStream:
    """Adapts a :class:`ServiceEndpoint` to the engine's stream interface.

    Buffers pages locally; the endpoint's meters keep the remote-cost
    accounting (calls, simulated seconds) while this object keeps the
    paper-visible state (depth, first/last distance or score).
    """

    def __init__(self, endpoint: ServiceEndpoint) -> None:
        self.endpoint = endpoint
        self.kind = endpoint.kind
        self.relation = endpoint.relation
        self._seen: list[RankTuple] = []
        self._buffer: list[RankTuple] = []
        self._distances: list[float] = []
        #: Columnar prefix in arrival order, so the engine's range-based
        #: scorer works over "remote" data too.
        self.prefix = ColumnarPrefix(endpoint.relation.dim)
        self._remote_exhausted = False
        if self.kind is AccessKind.DISTANCE:
            self._query = np.asarray(endpoint._inner.query, dtype=float)

    # -- AccessStream interface -------------------------------------------

    @property
    def depth(self) -> int:
        return len(self._seen)

    @property
    def seen(self) -> list[RankTuple]:
        return self._seen

    @property
    def sigma_max(self) -> float:
        return self.relation.sigma_max

    @property
    def exhausted(self) -> bool:
        return self._remote_exhausted and not self._buffer

    def next(self) -> RankTuple | None:
        if not self._buffer and not self._remote_exhausted:
            page = self.endpoint.fetch_page()
            if len(page) < self.endpoint.page_size:
                self._remote_exhausted = True
            self._buffer.extend(page)
        if not self._buffer:
            return None
        tup = self._buffer.pop(0)
        self._record(tup)
        return tup

    def next_block(self, limit: int) -> list[RankTuple]:
        """Pull up to ``limit`` tuples, fetching whole pages as needed.

        Block pulls align naturally with the paged endpoint: one remote
        call can satisfy many engine pulls, so a block-pull engine pays
        ``ceil(limit / page_size)`` latencies instead of up to ``limit``.
        """
        block: list[RankTuple] = []
        while len(block) < limit:
            if not self._buffer and not self._remote_exhausted:
                page = self.endpoint.fetch_page()
                if len(page) < self.endpoint.page_size:
                    self._remote_exhausted = True
                self._buffer.extend(page)
            if not self._buffer:
                break
            take = min(limit - len(block), len(self._buffer))
            chunk = self._buffer[:take]
            del self._buffer[:take]
            for tup in chunk:
                self._record(tup)
            block.extend(chunk)
        return block

    def _record(self, tup: RankTuple) -> None:
        self._seen.append(tup)
        self.prefix.append(tup.vector, tup.score, tup.tid)
        if self.kind is AccessKind.DISTANCE:
            self._distances.append(float(np.linalg.norm(tup.vector - self._query)))

    # -- distance-kind statistics -------------------------------------------

    @property
    def first_distance(self) -> float:
        return self._distances[0] if self._distances else 0.0

    @property
    def last_distance(self) -> float:
        return self._distances[-1] if self._distances else 0.0

    # -- score-kind statistics ------------------------------------------------

    @property
    def first_score(self) -> float:
        return self._seen[0].score if self._seen else self.sigma_max

    @property
    def last_score(self) -> float:
        return self._seen[-1].score if self._seen else self.sigma_max


def make_service_streams(
    relations: list[Relation],
    *,
    kind: AccessKind,
    query: np.ndarray | None = None,
    page_size: int = 10,
    latency: LatencyModel | None = None,
    seed: int = 0,
) -> list[ServiceStream]:
    """One service-backed stream per relation (shared latency model)."""
    streams = []
    for idx, rel in enumerate(relations):
        endpoint = ServiceEndpoint(
            rel,
            kind=kind,
            query=query,
            page_size=page_size,
            latency=latency,
            seed=seed + idx,
        )
        streams.append(ServiceStream(endpoint))
    return streams
