"""Simulated remote search services.

The paper motivates proximity rank join with "search computing": the
relations are remote services (Yahoo! Local, IMDB, ...) invoked over the
Web, where fetching tuples dominates every other cost — which is exactly
why sumDepths is the metric that matters.  This module models that
deployment so the examples and benchmarks can report *latency-weighted*
costs, not only access counts:

* :class:`ServiceEndpoint` wraps a relation behind a paged API: each
  *call* returns one page of tuples (distance- or score-ordered) and
  charges a latency sampled from a configurable model.  Latency is
  *simulated time*, accumulated in the endpoint's meter — no real
  sleeping — so tests stay fast and deterministic.
* :class:`ServiceStream` adapts an endpoint to the
  :class:`~repro.core.access.AccessStream` interface, letting the ProxRJ
  engine run unchanged against "remote" data.  Page size > 1 models
  services that return blocks (the paper's block-fetch trade-off).
* :class:`RemoteShardEndpoint` is the per-shard flavour the async
  serving subsystem talks to: one shard's fully sorted access order
  behind an *offset-addressed*, paginated window API, with a per-shard
  latency model and both blocking and awaitable fetches.  The awaitable
  path really sleeps (``asyncio.sleep``), which is what lets the async
  service overlap in-flight windows across shards and against engine
  compute — wall-clock improves by *overlapping* latency, while the
  simulated-seconds meter still records the full serial cost.

Determinism: every latency sample is drawn from a generator owned by the
endpoint and threaded through :meth:`LatencyModel.sample` — there is no
module-level RNG anywhere in the service layer, so a fixed seed pins the
exact latency sequence of a run (the regression tests assert the values).
"""

from __future__ import annotations

import asyncio
import threading
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.access import AccessKind, DistanceAccess, ScoreAccess
from repro.core.columnar import ColumnarPrefix
from repro.core.relation import RankTuple, Relation

__all__ = [
    "LatencyModel",
    "RemoteShardEndpoint",
    "ServiceEndpoint",
    "ServiceStream",
    "make_service_streams",
]


@dataclass(frozen=True)
class LatencyModel:
    """Per-call latency: ``base + uniform(0, jitter)`` simulated seconds."""

    base: float = 0.05
    jitter: float = 0.02

    def sample(self, rng: np.random.Generator) -> float:
        if self.base < 0 or self.jitter < 0:
            raise ValueError("latency parameters must be non-negative")
        return self.base + (rng.uniform(0.0, self.jitter) if self.jitter else 0.0)


class ServiceEndpoint:
    """A paged, ordered view of a relation behind a simulated network.

    Parameters
    ----------
    relation, kind, query:
        What the service serves and in which order.
    page_size:
        Tuples returned per call.
    latency:
        Latency model; each *call* (not each tuple) charges one sample.
    seed:
        Seed for the latency jitter.
    """

    def __init__(
        self,
        relation: Relation,
        *,
        kind: AccessKind,
        query: np.ndarray | None = None,
        page_size: int = 10,
        latency: LatencyModel | None = None,
        seed: int = 0,
    ) -> None:
        if page_size < 1:
            raise ValueError("page_size must be >= 1")
        if kind is AccessKind.DISTANCE:
            if query is None:
                raise ValueError("distance-ordered services need a query")
            self._inner = DistanceAccess(relation, query)
        else:
            self._inner = ScoreAccess(relation)
        self.relation = relation
        self.kind = kind
        self.page_size = page_size
        self.latency = latency or LatencyModel()
        self._rng = np.random.default_rng(seed)
        self.calls = 0
        self.tuples_served = 0
        self.simulated_seconds = 0.0

    def fetch_page(self) -> list[RankTuple]:
        """One service invocation: up to ``page_size`` ordered tuples.

        An empty page signals exhaustion.  Every call — including the one
        that discovers exhaustion — pays the latency.
        """
        self.calls += 1
        self.simulated_seconds += self.latency.sample(self._rng)
        page: list[RankTuple] = []
        for _ in range(self.page_size):
            tup = self._inner.next()
            if tup is None:
                break
            page.append(tup)
        self.tuples_served += len(page)
        return page

    def fetch_window(self, limit: int) -> list[RankTuple]:
        """One bulk request for up to ``limit`` tuples.

        The service still paginates internally — ``ceil(limit /
        page_size)`` pages, one latency charge each — but the caller
        issues a single window request instead of interleaving per-page
        round-trips with its own buffering.  Stops early at exhaustion
        (a short or empty page); an exhaustion-discovering page pays its
        latency like any other call.
        """
        if limit < 1:
            raise ValueError("limit must be >= 1")
        window: list[RankTuple] = []
        pages = -(-limit // self.page_size)
        for _ in range(pages):
            page = self.fetch_page()
            window.extend(page)
            if len(page) < self.page_size:
                break
        return window


class ServiceStream:
    """Adapts a :class:`ServiceEndpoint` to the engine's stream interface.

    Buffers pages locally; the endpoint's meters keep the remote-cost
    accounting (calls, simulated seconds) while this object keeps the
    paper-visible state (depth, first/last distance or score).
    """

    def __init__(self, endpoint: ServiceEndpoint) -> None:
        self.endpoint = endpoint
        self.kind = endpoint.kind
        self.relation = endpoint.relation
        self._seen: list[RankTuple] = []
        self._buffer: list[RankTuple] = []
        self._distances: list[float] = []
        #: Columnar prefix in arrival order, so the engine's range-based
        #: scorer works over "remote" data too.
        self.prefix = ColumnarPrefix(endpoint.relation.dim)
        self._remote_exhausted = False
        if self.kind is AccessKind.DISTANCE:
            self._query = np.asarray(endpoint._inner.query, dtype=float)

    # -- AccessStream interface -------------------------------------------

    @property
    def depth(self) -> int:
        return len(self._seen)

    @property
    def seen(self) -> list[RankTuple]:
        return self._seen

    @property
    def sigma_max(self) -> float:
        return self.relation.sigma_max

    @property
    def exhausted(self) -> bool:
        return self._remote_exhausted and not self._buffer

    def next(self) -> RankTuple | None:
        if not self._buffer and not self._remote_exhausted:
            page = self.endpoint.fetch_page()
            if len(page) < self.endpoint.page_size:
                self._remote_exhausted = True
            self._buffer.extend(page)
        if not self._buffer:
            return None
        tup = self._buffer.pop(0)
        self._record(tup)
        return tup

    def next_block(self, limit: int) -> list[RankTuple]:
        """Pull up to ``limit`` tuples, fetching the deficit in bulk.

        Block pulls align naturally with the paged endpoint: one remote
        call can satisfy many engine pulls, so a block-pull engine pays
        ``ceil(limit / page_size)`` latencies instead of up to ``limit``.
        The whole deficit is requested as one
        :meth:`ServiceEndpoint.fetch_window` bulk call up front — not a
        buffer-refill loop of single-page round-trips — so a ``limit``
        beyond the page size costs exactly one window request.
        """
        if limit <= 0:
            return []
        deficit = limit - len(self._buffer)
        if deficit > 0 and not self._remote_exhausted:
            window = self.endpoint.fetch_window(deficit)
            if len(window) < deficit:
                self._remote_exhausted = True
            self._buffer.extend(window)
        take = min(limit, len(self._buffer))
        block = self._buffer[:take]
        del self._buffer[:take]
        for tup in block:
            self._record(tup)
        return block

    def _record(self, tup: RankTuple) -> None:
        self._seen.append(tup)
        self.prefix.append(tup.vector, tup.score, tup.tid)
        if self.kind is AccessKind.DISTANCE:
            self._distances.append(float(np.linalg.norm(tup.vector - self._query)))

    # -- distance-kind statistics -------------------------------------------

    @property
    def first_distance(self) -> float:
        return self._distances[0] if self._distances else 0.0

    @property
    def last_distance(self) -> float:
        return self._distances[-1] if self._distances else 0.0

    # -- score-kind statistics ------------------------------------------------

    @property
    def first_score(self) -> float:
        return self._seen[0].score if self._seen else self.sigma_max

    @property
    def last_score(self) -> float:
        return self._seen[-1].score if self._seen else self.sigma_max


class RemoteShardEndpoint:
    """One shard's sorted access order behind a paged remote API.

    Where :class:`ServiceEndpoint` models a *sequential* service (each
    call returns the next page), this models the per-shard window API
    the async serving subsystem fetches through: the shard's order is
    fully materialised service-side (ranks, columnar arrays and tuple
    objects, exactly one pre-agreed order per endpoint) and clients ask
    for **offset-addressed windows** — ``fetch_window(start, limit)`` —
    which the service serves as ``ceil(rows / page_size)`` sequential
    pages, one latency charge each.

    Latency is metered in ``simulated_seconds`` either way; the
    awaitable :meth:`afetch_window` additionally *sleeps* the window's
    total latency on the event loop, so concurrently awaited windows of
    different shards overlap in real wall-clock — the physical effect
    the pipelined-prefetch subsystem exists to exploit — while the
    blocking :meth:`fetch_window` only meters it.  (The serial
    comparator is the async service's non-pipelined mode, which awaits
    windows one at a time.)

    One endpoint may serve many concurrent queries (it is stateless
    between calls apart from the meters, which a lock protects); the
    latency generator is owned by the endpoint, so a fixed seed pins the
    sample sequence of any deterministic call order.
    """

    def __init__(
        self,
        name: str,
        shard_index: int,
        tuples: Sequence[RankTuple],
        ranks: np.ndarray,
        vectors: np.ndarray,
        scores: np.ndarray,
        tids: np.ndarray,
        *,
        page_size: int = 25,
        latency: LatencyModel | None = None,
        rng: np.random.Generator | int | None = None,
        sink=None,
    ) -> None:
        if page_size < 1:
            raise ValueError("page_size must be >= 1")
        if not len(ranks) == len(tuples) == len(vectors) == len(scores) == len(tids):
            raise ValueError("misaligned shard order columns")
        #: Optional shared meter: an object with an ``add(windows=...,
        #: pages=..., tuples=..., seconds=...)`` method that outlives the
        #: endpoint (services aggregate traffic across endpoint eviction
        #: through this).
        self.sink = sink
        self.name = name
        self.shard_index = shard_index
        self.page_size = page_size
        self.latency = latency or LatencyModel()
        self._rng = (
            rng
            if isinstance(rng, np.random.Generator)
            else np.random.default_rng(rng)
        )
        self._tuples = list(tuples)
        self._ranks = np.asarray(ranks, dtype=float)
        self._vectors = np.asarray(vectors, dtype=float)
        self._scores = np.asarray(scores, dtype=float)
        self._tids = np.asarray(tids)
        self._lock = threading.Lock()
        self.windows = 0
        self.pages = 0
        self.tuples_served = 0
        self.simulated_seconds = 0.0

    @property
    def total(self) -> int:
        """Rows in the shard's order (clients may not read past this)."""
        return len(self._ranks)

    @classmethod
    def from_relation(
        cls,
        relation: Relation,
        *,
        kind: AccessKind,
        query: np.ndarray | None = None,
        shard_index: int = 0,
        page_size: int = 25,
        latency: LatencyModel | None = None,
        rng: np.random.Generator | int | None = None,
    ) -> "RemoteShardEndpoint":
        """Sort ``relation`` once and expose the order as an endpoint."""
        if kind is AccessKind.DISTANCE:
            if query is None:
                raise ValueError("distance-ordered endpoints need a query")
            inner: DistanceAccess | ScoreAccess = DistanceAccess(relation, query)
            tuples = inner.next_block(len(relation))
            ranks = inner.distances
        else:
            inner = ScoreAccess(relation)
            tuples = inner.next_block(len(relation))
            ranks = inner.prefix.arrays()[1]
        vectors, scores, tids = inner.prefix.arrays()
        return cls(
            relation.name,
            shard_index,
            tuples,
            np.asarray(ranks, dtype=float),
            vectors,
            scores,
            tids,
            page_size=page_size,
            latency=latency,
            rng=rng,
        )

    def _charge(self, rows: int) -> float:
        """Meter one window of ``rows`` rows; returns its total latency.

        Every window — including an empty exhaustion probe — costs at
        least one page round-trip.
        """
        pages = max(1, -(-rows // self.page_size))
        with self._lock:
            lat = float(
                sum(self.latency.sample(self._rng) for _ in range(pages))
            )
            self.windows += 1
            self.pages += pages
            self.tuples_served += rows
            self.simulated_seconds += lat
        if self.sink is not None:
            self.sink.add(windows=1, pages=pages, tuples=rows, seconds=lat)
        return lat

    def _slice(
        self, start: int, limit: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, list[RankTuple]]:
        if start < 0 or limit < 0:
            raise ValueError("start and limit must be non-negative")
        hi = min(start + limit, self.total)
        lo = min(start, hi)
        return (
            self._ranks[lo:hi],
            self._tids[lo:hi],
            self._vectors[lo:hi],
            self._scores[lo:hi],
            self._tuples[lo:hi],
        )

    def fetch_window(
        self, start: int, limit: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, list[RankTuple]]:
        """Rows ``[start, start + limit)`` of the order, clamped to the
        end: ``(ranks, tids, vectors, scores, tuples)``.

        Blocking flavour: meters the window's latency without waiting it
        out (tests and tooling read the order synchronously; the serial
        comparator is the async service's non-pipelined mode, which
        awaits :meth:`afetch_window` one window at a time).
        """
        window = self._slice(start, limit)
        self._charge(len(window[0]))
        return window

    async def afetch_window(
        self, start: int, limit: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, list[RankTuple]]:
        """Awaitable :meth:`fetch_window`: sleeps the window's latency on
        the event loop (pages of one window are sequential round-trips;
        windows of *different* shards overlap freely)."""
        window = self._slice(start, limit)
        lat = self._charge(len(window[0]))
        if lat > 0.0:
            await asyncio.sleep(lat)
        return window

    def __repr__(self) -> str:
        return (
            f"RemoteShardEndpoint({self.name!r}, shard={self.shard_index}, "
            f"rows={self.total}, page_size={self.page_size})"
        )


def make_service_streams(
    relations: list[Relation],
    *,
    kind: AccessKind,
    query: np.ndarray | None = None,
    page_size: int = 10,
    latency: LatencyModel | None = None,
    seed: int = 0,
) -> list[ServiceStream]:
    """One service-backed stream per relation (shared latency model)."""
    streams = []
    for idx, rel in enumerate(relations):
        endpoint = ServiceEndpoint(
            rel,
            kind=kind,
            query=query,
            page_size=page_size,
            latency=latency,
            seed=seed + idx,
        )
        streams.append(ServiceStream(endpoint))
    return streams
