"""Service layer: the deployment models (search computing) the paper
motivates.

* :mod:`repro.service.simulation` — paged *remote* endpoints with
  latency meters (the relations live behind a simulated network).
* :mod:`repro.service.rankjoin` — a *local* multi-query
  :class:`RankJoinService` that runs many queries against shared
  relations with LRU-cached access orders and the block-pull engine.
"""

from repro.service.rankjoin import (
    CachedOrder,
    CachedOrderStream,
    RankJoinService,
    ServiceStats,
)
from repro.service.simulation import (
    LatencyModel,
    ServiceEndpoint,
    ServiceStream,
    make_service_streams,
)

__all__ = [
    "CachedOrder",
    "CachedOrderStream",
    "RankJoinService",
    "ServiceStats",
    "LatencyModel",
    "ServiceEndpoint",
    "ServiceStream",
    "make_service_streams",
]
