"""Service layer: the deployment models (search computing) the paper
motivates.

* :mod:`repro.service.simulation` — paged *remote* endpoints with
  latency meters (the relations live behind a simulated network),
  including the per-shard :class:`RemoteShardEndpoint` window API.
* :mod:`repro.service.rankjoin` — a *local* multi-query
  :class:`RankJoinService` that runs many queries against shared
  relations with LRU-cached access orders and the block-pull engine.
* :mod:`repro.service.procpool` — the multi-process serving tier:
  :class:`ProcPoolRankJoinService` fans queries out to worker processes
  that each map the durable store read-only (shared page cache, no GIL
  sharing), with bucket-affinity dispatch, crash recovery and worker
  recycling in the parent.
* :mod:`repro.service.async_service` — the async serving subsystem:
  :class:`AsyncRankJoinService` with awaitable ``submit``, bounded
  admission (backpressure), per-query deadlines/cancellation, and
  pipelined-prefetch remote shard streams that overlap simulated
  network latency across shards and against engine compute.
"""

from repro.service.async_service import (
    AsyncRankJoinService,
    AsyncServiceStats,
    QueryRejected,
    RemoteShardStream,
)
from repro.service.procpool import (
    ProcPoolRankJoinService,
    ProcPoolServiceStats,
)
from repro.service.rankjoin import (
    CachedOrder,
    CachedOrderStream,
    RankJoinService,
    ServiceStats,
)
from repro.service.simulation import (
    LatencyModel,
    RemoteShardEndpoint,
    ServiceEndpoint,
    ServiceStream,
    make_service_streams,
)

__all__ = [
    "AsyncRankJoinService",
    "AsyncServiceStats",
    "QueryRejected",
    "RemoteShardStream",
    "ProcPoolRankJoinService",
    "ProcPoolServiceStats",
    "CachedOrder",
    "CachedOrderStream",
    "RankJoinService",
    "ServiceStats",
    "LatencyModel",
    "RemoteShardEndpoint",
    "ServiceEndpoint",
    "ServiceStream",
    "make_service_streams",
]
