"""Remote-service simulation: paged endpoints with latency meters, the
deployment model (search computing) the paper motivates."""

from repro.service.simulation import (
    LatencyModel,
    ServiceEndpoint,
    ServiceStream,
    make_service_streams,
)

__all__ = [
    "LatencyModel",
    "ServiceEndpoint",
    "ServiceStream",
    "make_service_streams",
]
