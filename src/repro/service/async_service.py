"""Async serving subsystem: awaitable rank join over remote shard endpoints.

The sync :class:`~repro.service.rankjoin.RankJoinService` multiplexes
queries with a thread pool over *in-memory* streams; this module is the
serving front-end for the deployment the paper actually describes —
relations living behind remote, paged, latency-bearing services — where
the dominant cost is I/O round-trips, not compute.  Three layers:

* :class:`~repro.service.simulation.RemoteShardEndpoint` (one per
  relation shard per query bucket) holds a shard's sorted access order
  behind an offset-addressed, paginated window API with a per-shard
  latency model.
* :class:`RemoteShardStream` is the client-side cursor over one
  endpoint: a merge-ready :class:`~repro.core.access.ShardCursor` whose
  rows arrive through **pipelined prefetch** — a per-shard feeder task
  on the event loop keeps window fetches in flight ahead of the engine,
  so while the engine scores block ``B``, the per-shard fetches for
  block ``B+1`` are already sleeping out their simulated latency.
  :class:`~repro.core.access.MergeStream`'s read-ahead hook issues every
  shard's window request before blocking on any of them, so one refill
  overlaps its fetches *across* shards too.
* :class:`AsyncRankJoinService` is the front-end: an awaitable
  ``submit(query, k, deadline=...)``, a **bounded admission queue** with
  a reject-or-wait backpressure policy, per-query deadlines and
  cancellation that return *certified partial* top-K results (current
  buffer plus the bound in force — never a corrupt answer), and one
  asyncio event loop multiplexing every in-flight query's remote I/O
  over the LRU-shared cached orders of the sync service.

Engines themselves run unchanged (and synchronously) on a small thread
pool; what the event loop owns is admission and the remote windows.
Completed async runs are bit-identical to the in-memory sharded path —
same ranked top-K, depths and bounds — because the endpoints serve the
very same per-shard ``(rank, tid)``-sorted orders the local
:class:`~repro.core.storage.ShardedBackend` merges.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import threading
import time
import zlib
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.access import AccessKind, ShardCursor, StreamInterrupted
from repro.core.algorithms import make_algorithm
from repro.core.relation import RankTuple, Relation
from repro.core.scoring import Scoring
from repro.core.storage import EndpointBackend
from repro.core.template import RunResult
from repro.service.rankjoin import RankJoinService, ServiceStats, _LRU
from repro.service.simulation import LatencyModel, RemoteShardEndpoint

__all__ = [
    "AsyncRankJoinService",
    "AsyncServiceStats",
    "QueryRejected",
    "RemoteShardStream",
]


class QueryRejected(RuntimeError):
    """Raised by :meth:`AsyncRankJoinService.submit` under the
    ``"reject"`` admission policy when the bounded queue is full."""


@dataclass
class AsyncServiceStats(ServiceStats):
    """Sync-service counters plus the async front-end's outcomes.

    Same single atomic :meth:`~ServiceStats.record` update path; the
    extra fields count admission rejections and how queries ended.
    """

    rejected: int = 0
    expired: int = 0
    cancelled: int = 0


class _RemoteMeter:
    """Service-wide remote-traffic totals, robust to endpoint eviction
    (every endpoint reports into this sink as it serves windows)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.endpoints = 0
        self.windows = 0
        self.pages = 0
        self.tuples = 0
        self.seconds = 0.0

    def add(
        self,
        *,
        endpoints: int = 0,
        windows: int = 0,
        pages: int = 0,
        tuples: int = 0,
        seconds: float = 0.0,
    ) -> None:
        with self._lock:
            self.endpoints += endpoints
            self.windows += windows
            self.pages += pages
            self.tuples += tuples
            self.seconds += seconds


class _QueryContext:
    """Per-query deadline/cancellation state shared between the event
    loop (which owns time) and the engine thread (which polls it)."""

    def __init__(self, loop: asyncio.AbstractEventLoop, deadline: float | None) -> None:
        self.loop = loop
        self.deadline_ts = (
            None if deadline is None else time.monotonic() + float(deadline)
        )
        self.cancel = threading.Event()
        self.expired = False
        self.cancelled = False
        self.closed = False
        self.cursors: list[RemoteShardStream] = []

    def should_stop(self) -> bool:
        """Engine/stream hook: True once the query is out of budget."""
        if self.cancel.is_set():
            self.cancelled = True
            return True
        if self.deadline_ts is not None and time.monotonic() >= self.deadline_ts:
            self.expired = True
            return True
        return False

    def add_cursor(self, cursor: "RemoteShardStream") -> None:
        """Track a cursor for cleanup.  A cursor registered after
        :meth:`close` (the engine thread racing a cancellation through
        stream setup) is closed on the spot, so its feeder can never
        outlive the query."""
        self.cursors.append(cursor)
        if self.closed:
            cursor.close()

    def close(self) -> None:
        """Stop every feeder still in flight (idempotent)."""
        self.closed = True
        for cursor in list(self.cursors):
            cursor.close()


class RemoteShardStream(ShardCursor):
    """A merge-ready cursor whose rows arrive from a remote endpoint.

    Subclasses :class:`~repro.core.access.ShardCursor` so
    :class:`~repro.core.access.MergeStream` treats it exactly like an
    in-memory shard order: the rank/vector/score/tid columns are
    preallocated at full shard size and filled window by window as
    fetches land, and ``window()``/``pos`` behave identically.  Two
    extra methods implement the merge's read-ahead hook:

    ``request(n)``
        Non-blocking: raise the fetch target to cover the next ``n``
        rows *plus one window of prefetch*, and wake the feeder task.
        The feeder (a coroutine on the service's event loop) keeps
        issuing ``afetch_window`` calls until the target is reached —
        this is the pipeline: by the time the engine finishes scoring
        the rows ``ensure`` handed over, the next window is already in
        flight or landed.
    ``ensure(n)``
        Blocking: return once the next ``min(n, remaining)`` rows are
        locally available.  Raises
        :class:`~repro.core.access.StreamInterrupted` if the query's
        deadline expires or it is cancelled while waiting — the engine
        converts that into a certified partial result.

    ``pipelined=False`` degrades to the serial comparator: ``request``
    is a no-op and ``ensure`` performs exactly the fetch it needs,
    blocking the engine for the full latency of every window with no
    overlap across shards or with compute — the baseline the
    pipelined-speedup benchmark measures against.
    """

    __slots__ = (
        "endpoint",
        "total",
        "_filled",
        "_target",
        "_cond",
        "_wake",
        "_loop",
        "_expired",
        "_error",
        "_pipelined",
        "_prefetch_rows",
        "_feeder",
        "_closed",
    )

    def __init__(
        self,
        endpoint: RemoteShardEndpoint,
        *,
        loop: asyncio.AbstractEventLoop,
        expired=None,
        pipelined: bool = True,
        prefetch_rows: int | None = None,
    ) -> None:
        total = endpoint.total
        dim = endpoint._vectors.shape[1] if endpoint._vectors.ndim == 2 else 0
        # Deliberately no super().__init__: the columns are preallocated
        # at full size and filled as windows land, so the aligned-length
        # invariant holds by construction while ``tuples`` grows.
        self.tuples: list[RankTuple] = []
        self.ranks = np.empty(total, dtype=float)
        self.vectors = np.empty((total, dim), dtype=float)
        self.scores = np.empty(total, dtype=float)
        self.tids = np.empty(total, dtype=endpoint._tids.dtype)
        self.pos = 0
        self.endpoint = endpoint
        self.total = total
        self._filled = 0
        self._target = 0
        self._cond = threading.Condition()
        self._wake = asyncio.Event()
        self._loop = loop
        self._expired = expired
        self._error: BaseException | None = None
        self._pipelined = pipelined
        self._prefetch_rows = prefetch_rows
        self._feeder: concurrent.futures.Future | None = None
        self._closed = False

    # -- read-ahead hook (called from the engine thread) --------------------

    def request(self, n: int) -> None:
        """Raise the fetch target to ``pos + n`` rows plus prefetch and
        wake the feeder; returns immediately."""
        if not self._pipelined or self._closed:
            return
        prefetch = self._prefetch_rows if self._prefetch_rows is not None else n
        target = min(self.pos + n + prefetch, self.total)
        with self._cond:
            if target <= self._target:
                return
            self._target = target
        if self._feeder is None:
            self._feeder = asyncio.run_coroutine_threadsafe(
                self._feed(), self._loop
            )
        else:
            self._loop.call_soon_threadsafe(self._wake.set)

    def ensure(self, n: int) -> None:
        """Block until the next ``min(n, remaining)`` rows are local."""
        need = min(self.pos + n, self.total)
        if self._filled >= need:
            return
        if not self._pipelined:
            self._ensure_serial(need)
            return
        self.request(n)
        with self._cond:
            while self._filled < need:
                if self._error is not None:
                    # A genuine remote failure is an error, not a clean
                    # early stop: let it propagate out of the engine.
                    raise self._error
                if self._closed or (self._expired is not None and self._expired()):
                    raise StreamInterrupted(
                        f"deadline expired waiting on {self.endpoint!r}"
                    )
                self._cond.wait(timeout=0.02)

    def _ensure_serial(self, need: int) -> None:
        """Non-overlapped comparator: fetch exactly what is needed, one
        blocking window at a time."""
        while self._filled < need:
            if self._closed or (self._expired is not None and self._expired()):
                raise StreamInterrupted(
                    f"deadline expired waiting on {self.endpoint!r}"
                )
            start = self._filled
            future = asyncio.run_coroutine_threadsafe(
                self.endpoint.afetch_window(start, need - start), self._loop
            )
            while True:
                try:
                    window = future.result(timeout=0.05)
                    break
                except concurrent.futures.TimeoutError:
                    if self._closed or (
                        self._expired is not None and self._expired()
                    ):
                        future.cancel()
                        raise StreamInterrupted(
                            f"deadline expired waiting on {self.endpoint!r}"
                        ) from None
            self._ingest(start, window)

    # -- feeder (runs on the event loop) ------------------------------------

    async def _feed(self) -> None:
        try:
            while True:
                with self._cond:
                    target = min(self._target, self.total)
                    filled = self._filled
                if filled >= target:
                    if filled >= self.total:
                        return
                    await self._wake.wait()
                    self._wake.clear()
                    continue
                window = await self.endpoint.afetch_window(filled, target - filled)
                self._ingest(filled, window)
        except asyncio.CancelledError:
            raise
        except BaseException as exc:  # surface remote failures to ensure()
            with self._cond:
                self._error = exc
                self._cond.notify_all()

    def _ingest(self, start: int, window) -> None:
        ranks, tids, vectors, scores, tuples = window
        hi = start + len(ranks)
        self.ranks[start:hi] = ranks
        self.tids[start:hi] = tids
        if hi > start:
            self.vectors[start:hi] = vectors
            self.scores[start:hi] = scores
        self.tuples.extend(tuples)
        with self._cond:
            self._filled = hi
            self._cond.notify_all()

    @property
    def filled(self) -> int:
        """Rows fetched so far (engine-side availability watermark)."""
        return self._filled

    def close(self) -> None:
        """Cancel the feeder and unblock any waiting ``ensure``."""
        self._closed = True
        if self._feeder is not None:
            self._feeder.cancel()
            self._feeder = None
        with self._cond:
            self._cond.notify_all()


class AsyncRankJoinService(RankJoinService):
    """Awaitable rank-join serving over simulated remote shard endpoints.

    Inherits the sync service's canonicalisation, per-shard access-order
    LRU and result cache; replaces its execution path with remote,
    latency-bearing endpoint fetches multiplexed on one asyncio event
    loop.  Use from a running loop::

        service = AsyncRankJoinService(relations, scoring, k=5)
        result = await service.submit(query, deadline=0.05)

    or synchronously via :meth:`serve` (which runs its own loop).

    Parameters beyond :class:`~repro.service.rankjoin.RankJoinService`'s
    (``shard_workers`` is forced to 0 — the event loop, not a thread
    pool, owns shard parallelism here):

    page_size / latency / seed:
        Shape of the simulated remote API: rows per page, the per-shard
        latency model (a single model, or one per shard index — cycled —
        for heterogeneous shards) and the seed every endpoint's
        deterministic latency generator derives from.
    max_inflight:
        Queries running concurrently (engine threads + live remote
        windows).
    queue_limit:
        Admitted-but-waiting queries beyond ``max_inflight`` the bounded
        admission queue holds.
    admission:
        ``"wait"`` (default): a submit past the queue bound suspends
        until space frees — backpressure propagates to the caller.
        ``"reject"``: it raises :class:`QueryRejected` immediately.
    pipelined:
        ``False`` disables prefetch and fetch overlap (the serial
        comparator used by benchmarks); answers are identical either
        way.
    prefetch_rows:
        Rows each shard keeps in flight beyond the engine's current
        window (default: one full window).
    engine_workers:
        Threads running engine loops; defaults to ``max_inflight``.
    executor:
        ``"thread"`` (default) runs engines on the thread pool over the
        simulated remote endpoints.  ``"process"`` offloads each
        admitted query to a :class:`~repro.service.procpool.
        ProcPoolRankJoinService` — real cores instead of GIL-sharing
        threads; the event-loop thread pool then only *waits* on worker
        pipes (GIL released).  Process mode serves the relations
        directly (no simulated network latency), and a dispatched query
        runs to completion in its worker: deadlines are still enforced
        while queued and at dispatch time, but cannot interrupt a run
        mid-flight across the process boundary.
    proc_workers:
        Worker-process count for ``executor="process"`` (default 4).
    proc_options:
        Extra :class:`ProcPoolRankJoinService` keyword arguments
        (``max_tasks_per_worker``, ``mp_context``, ``store_path``, ...).
    """

    #: The base constructor instantiates this, so warm-start counters
    #: recorded during ``super().__init__`` land on the async stats
    #: object instead of being discarded by a post-hoc replacement.
    _stats_cls = AsyncServiceStats

    def __init__(
        self,
        relations: list[Relation],
        scoring: Scoring,
        *,
        page_size: int = 25,
        latency: LatencyModel | Sequence[LatencyModel] | None = None,
        seed: int = 0,
        max_inflight: int = 8,
        queue_limit: int = 32,
        admission: str = "wait",
        pipelined: bool = True,
        prefetch_rows: int | None = None,
        engine_workers: int | None = None,
        executor: str = "thread",
        proc_workers: int | None = None,
        proc_options: dict | None = None,
        **kwargs,
    ) -> None:
        if executor not in ("thread", "process"):
            raise ValueError("executor must be 'thread' or 'process'")
        if page_size < 1:
            raise ValueError("page_size must be >= 1")
        if max_inflight < 1:
            raise ValueError("max_inflight must be >= 1")
        if queue_limit < 0:
            raise ValueError("queue_limit must be >= 0")
        if admission not in ("wait", "reject"):
            raise ValueError("admission must be 'wait' or 'reject'")
        if engine_workers is not None and engine_workers < 1:
            raise ValueError("engine_workers must be >= 1 (or None for auto)")
        kwargs.setdefault("cache_size", 64)
        kwargs.pop("shard_workers", None)  # the event loop owns shard fan-out
        super().__init__(relations, scoring, shard_workers=0, **kwargs)
        self.page_size = page_size
        if latency is None:
            latency = LatencyModel(base=0.002, jitter=0.0005)
        self._latencies = (
            tuple(latency) if isinstance(latency, (list, tuple)) else (latency,)
        )
        self.seed = seed
        self.max_inflight = max_inflight
        self.queue_limit = queue_limit
        self.admission = admission
        self.pipelined = pipelined
        self.prefetch_rows = prefetch_rows
        self._engine_pool = ThreadPoolExecutor(
            max_workers=engine_workers or max_inflight,
            thread_name_prefix="async-rankjoin",
        )
        self.executor = executor
        self._procpool = None
        if executor == "process":
            from repro.service.procpool import ProcPoolRankJoinService

            options = dict(proc_options or {})
            options.setdefault("workers", proc_workers or 4)
            # The async front-end owns the shared result cache; caching
            # again inside the child pool would just shadow it.
            options.setdefault("result_cache_size", 0)
            self._procpool = ProcPoolRankJoinService(
                relations,
                scoring,
                kind=self.kind,
                algorithm=self.algorithm,
                k=self.k,
                pull_block=self.pull_block,
                bound_period=self.bound_period,
                bucket_decimals=self.bucket_decimals,
                max_pulls=self.max_pulls,
                **options,
            )
        self._endpoints = _LRU(kwargs["cache_size"])
        self._remote_meter = _RemoteMeter()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._run_sem: asyncio.Semaphore | None = None
        self._space: asyncio.Condition | None = None
        self._pending = 0
        self._active: set[_QueryContext] = set()

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Shut down the engine pool (idempotent).

        Queries still in flight are cancelled first — their contexts are
        flagged and their cursors closed, so blocked engine threads
        unwind with a certified partial instead of waiting on an event
        loop that :meth:`close` may itself be blocking.
        """
        with self._lock:
            active = list(self._active)
        for ctx in active:
            ctx.cancel.set()
            ctx.close()
        self._engine_pool.shutdown(wait=True)
        if self._procpool is not None:
            self._procpool.close()
        super().close()

    async def __aenter__(self) -> "AsyncRankJoinService":
        return self

    async def __aexit__(self, *exc) -> None:
        self.close()

    def _bind_loop(self, loop: asyncio.AbstractEventLoop) -> None:
        """Attach the admission primitives to the caller's running loop
        (rebinding is allowed once the previous loop has drained)."""
        if self._loop is loop:
            return
        if self._loop is not None and self._pending > 0:
            raise RuntimeError(
                "AsyncRankJoinService is already serving on another event loop"
            )
        self._loop = loop
        self._run_sem = asyncio.Semaphore(self.max_inflight)
        self._space = asyncio.Condition()
        self._pending = 0

    # -- remote endpoints over the shared cached orders ---------------------

    def _latency_for(self, shard_index: int) -> LatencyModel:
        return self._latencies[shard_index % len(self._latencies)]

    def _endpoint_for(
        self,
        rel_index: int,
        relation: Relation,
        shard_index: int,
        shard: Relation,
        bucket: bytes,
        canonical: np.ndarray,
    ) -> RemoteShardEndpoint:
        """One shard's remote endpoint for one query bucket (cached).

        Wraps the LRU-shared :class:`CachedOrder` — concurrent queries
        on the same bucket hit the same endpoint, whose meters then
        aggregate the bucket's remote traffic.
        """
        order_bucket = bucket if self.kind is AccessKind.DISTANCE else b""
        key = (relation.name, shard_index, order_bucket)
        with self._lock:
            endpoint = self._endpoints.get(key)
        if endpoint is not None:
            return endpoint
        order = self._order_for(shard, shard_index, bucket, canonical)
        endpoint = RemoteShardEndpoint(
            relation.name,
            shard_index,
            order.tuples,
            order.ranks,
            order.vectors,
            order.scores,
            order.tids,
            page_size=self.page_size,
            latency=self._latency_for(shard_index),
            # One deterministic generator per endpoint, derived from the
            # service seed and the endpoint's identity (the same bucket
            # normalisation as the cache key, so score-kind endpoints get
            # one well-defined sequence regardless of which query created
            # them) — reproducible latencies without any module-level RNG.
            rng=np.random.default_rng(
                [self.seed, rel_index, shard_index, zlib.crc32(order_bucket)]
            ),
            sink=self._remote_meter,
        )
        with self._lock:
            existing = self._endpoints.get(key)
            if existing is not None:
                return existing
            self._endpoints.put(key, endpoint)
        self._remote_meter.add(endpoints=1)
        return endpoint

    def remote_meters(self) -> dict[str, float]:
        """Service-lifetime remote traffic totals: endpoints created,
        windows, pages (= simulated round-trips) and total simulated
        latency — the *serial* remote wall-clock an unoverlapped
        execution pays.  Survives endpoint cache eviction."""
        m = self._remote_meter
        with m._lock:
            return {
                "endpoints": m.endpoints,
                "windows": m.windows,
                "pages": m.pages,
                "tuples": m.tuples,
                "simulated_seconds": float(m.seconds),
            }

    def _remote_factory(self, bucket: bytes, canonical: np.ndarray, ctx: _QueryContext):
        """Stream factory: per relation, an endpoint-backed storage
        boundary whose cursors prefetch through the query's context."""

        def open_cursors(relation, rel_index, shards, kind, query):
            cursors = []
            for shard_index, shard in enumerate(shards):
                endpoint = self._endpoint_for(
                    rel_index, relation, shard_index, shard, bucket, canonical
                )
                cursor = RemoteShardStream(
                    endpoint,
                    loop=ctx.loop,
                    expired=ctx.should_stop,
                    pipelined=self.pipelined,
                    prefetch_rows=self.prefetch_rows,
                )
                ctx.add_cursor(cursor)
                cursors.append(cursor)
            return cursors

        def factory() -> list:
            streams = []
            for rel_index, relation in enumerate(self.relations):
                shards = relation.storage.shards
                backend = EndpointBackend(
                    relation,
                    shards,
                    lambda kind, query, r=relation, i=rel_index, s=shards: (
                        open_cursors(r, i, s, kind, query)
                    ),
                    sigma_max=max(s.sigma_max for s in shards),
                )
                streams.append(backend.open_stream(self.kind, canonical))
            return streams

        return factory

    def _run_remote(
        self, canonical: np.ndarray, bucket: bytes, k: int, ctx: _QueryContext
    ) -> RunResult:
        """Engine-thread body: one query end to end over remote streams."""
        if ctx.should_stop():
            # Expired (or cancelled) while queued: don't pay for stream
            # setup — an empty certified partial is the honest answer.
            from repro.core.bounds.base import INFINITY

            return RunResult(
                combinations=[],
                depths=[0] * len(self.relations),
                bound=INFINITY,
                total_seconds=0.0,
                bound_seconds=0.0,
                dominance_seconds=0.0,
                combinations_formed=0,
                completed=False,
            )
        engine = make_algorithm(
            self.algorithm,
            self.relations,
            self.scoring,
            canonical,
            k,
            kind=self.kind,
            pull_block=self.pull_block,
            bound_period=self.bound_period,
            stream_factory=self._remote_factory(bucket, canonical, ctx),
            max_pulls=self.max_pulls,
            should_stop=ctx.should_stop,
        )
        return engine.run()

    def _run_process(
        self, canonical: np.ndarray, bucket: bytes, k: int, ctx: _QueryContext
    ) -> RunResult:
        """Engine-thread body under ``executor="process"``: hand the
        query to the process pool and block (GIL released in the pipe
        read) until its worker answers.  The expiry check happens at
        dispatch time — a query that spent its deadline in the admission
        queue returns the empty certified partial without ever crossing
        a process boundary."""
        if ctx.should_stop():
            from repro.core.bounds.base import INFINITY

            return RunResult(
                combinations=[],
                depths=[0] * len(self.relations),
                bound=INFINITY,
                total_seconds=0.0,
                bound_seconds=0.0,
                dominance_seconds=0.0,
                combinations_formed=0,
                completed=False,
            )
        return self._procpool.submit(canonical, k)

    @property
    def proc_stats(self):
        """The process pool's own stats (None under thread executor)."""
        return None if self._procpool is None else self._procpool.stats

    # -- submission ---------------------------------------------------------

    async def submit(
        self,
        query: np.ndarray,
        k: int | None = None,
        *,
        deadline: float | None = None,
    ) -> RunResult:
        """Run one query over the remote shards and await its result.

        ``deadline`` (seconds, from now) bounds the query's wall-clock:
        past it, the run stops at the next pull — or mid-wait on a
        remote window — and returns a *certified partial* result
        (``completed=False``; ``certified_count`` leading combinations
        provably final, ``bound`` capping everything unseen).
        Cancelling the awaiting task stops the engine the same way and
        re-raises ``CancelledError``.

        Backpressure: past ``max_inflight`` running plus ``queue_limit``
        waiting queries, ``"wait"`` admission suspends the caller,
        ``"reject"`` raises :class:`QueryRejected`.  Result-cache hits
        bypass admission (completed runs only are ever cached).
        """
        if deadline is not None and deadline <= 0:
            raise ValueError("deadline must be positive (seconds from now)")
        loop = asyncio.get_running_loop()
        self._bind_loop(loop)
        k = self.k if k is None else k
        canonical = self.canonical_query(query)
        bucket = self._bucket_key(canonical)
        self.stats.record(queries=1)
        result_key = (bucket, k)
        hit = self._lookup_result(result_key)
        if hit is not None:
            return hit
        # The deadline clock starts at submission: time spent waiting in
        # the admission queue counts against the query's budget, so an
        # overloaded service expires queued queries instead of running
        # them pointlessly late.
        ctx = _QueryContext(loop, deadline)
        # -- bounded admission ---------------------------------------------
        capacity = self.max_inflight + self.queue_limit
        if self._pending >= capacity:
            if self.admission == "reject":
                self.stats.record(rejected=1)
                raise QueryRejected(
                    f"admission queue full ({self._pending} pending, "
                    f"capacity {capacity})"
                )
            async with self._space:
                await self._space.wait_for(lambda: self._pending < capacity)
        self._pending += 1
        try:
            async with self._run_sem:
                with self._lock:
                    self._active.add(ctx)
                runner = (
                    self._run_process
                    if self._procpool is not None
                    else self._run_remote
                )
                future = loop.run_in_executor(
                    self._engine_pool, runner, canonical, bucket, k, ctx
                )
                try:
                    result = await future
                except asyncio.CancelledError:
                    # The engine thread keeps running briefly; the cancel
                    # flag (and the cursor close below) stops it at its
                    # next pull or window wait.
                    ctx.cancel.set()
                    self.stats.record(cancelled=1)
                    raise
                finally:
                    ctx.close()
                    with self._lock:
                        self._active.discard(ctx)
                if ctx.expired:
                    self.stats.record(expired=1)
                if result.completed and self._results is not None:
                    with self._lock:
                        self._results.put(result_key, result)
                return result
        finally:
            self._pending -= 1
            async with self._space:
                self._space.notify(1)

    def serve(
        self,
        queries: Sequence[np.ndarray],
        k: int | None = None,
        *,
        deadline: float | None = None,
    ) -> list:
        """Synchronous convenience: submit every query concurrently on a
        fresh event loop and return results in order (rejections appear
        as the :class:`QueryRejected` instance in their slot)."""

        async def _main():
            return await asyncio.gather(
                *(self.submit(q, k, deadline=deadline) for q in queries),
                return_exceptions=True,
            )

        outcomes = asyncio.run(_main())
        for outcome in outcomes:
            if isinstance(outcome, BaseException) and not isinstance(
                outcome, QueryRejected
            ):
                raise outcome
        return outcomes

    def submit_many(self, queries, k=None):  # pragma: no cover - guidance only
        raise NotImplementedError(
            "AsyncRankJoinService.submit is awaitable; gather submit() "
            "coroutines (or use serve()) instead of submit_many"
        )
