"""Shared-stream multi-query rank-join service.

The paper's deployment model is "search computing": many users issue
proximity rank-join queries against the *same* backing relations.  The
dominant per-query setup cost is producing each relation's sorted access
order (distance access re-sorts every relation for every query).  This
module amortises that cost across queries:

* Queries are **canonicalised** to a bucket grid (coordinates rounded to
  ``bucket_decimals``); queries identical after rounding share one
  executed query, one set of cached access orders and — optionally — one
  cached result.  The engine runs against the canonicalised query, so
  every answer is exact *for the query it executed*.
* A thread-safe **LRU cache** maps ``(relation, query-bucket)`` to the
  relation's full sorted access order (the limit of the "sorted
  prefixes" a stream reveals), stored **columnar**: the order's stacked
  vector/score/tid/rank arrays alongside the tuple objects.  A cache hit
  turns stream opening into O(1) bookkeeping; :class:`CachedOrderStream`
  replays the shared order as a frozen
  :class:`~repro.core.columnar.ColumnarPrefix` cursor, so the engine's
  columnar scorer runs over the cached arrays without re-materialising
  or copying anything.
* :meth:`RankJoinService.submit` runs one query to completion and
  returns its :class:`~repro.core.template.RunResult`;
  :meth:`RankJoinService.submit_many` drives a batch through a thread
  pool (engine runs are independent; only the caches are shared, under a
  lock).
* **Sharded relations** (:class:`~repro.core.storage.ShardedRelation`)
  are served through the same caches, keyed *per shard*: the LRU maps
  ``(relation, shard, query-bucket)`` to that shard's sorted order, so a
  shard's order is computed once per bucket, evicted independently, and
  shared by every merge stream replaying it.  Queries over sharded
  relations run against a :class:`~repro.core.access.MergeStream` whose
  per-shard block pulls are fanned out to a dedicated shard pool (one
  task per shard per pull, merged before scoring) — the shard-parallel
  execution path that a distributed deployment would put network fetches
  behind.

The service defaults to the engine's block-pull mode (``pull_block=8``),
which is where the throughput benchmark shows the vectorised engine
beating per-tuple pulling; see ``benchmarks/test_bench_service_
throughput.py``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.access import (
    AccessKind,
    DistanceAccess,
    MergeStream,
    ScoreAccess,
    ShardCursor,
)
from repro.core.algorithms import make_algorithm
from repro.core.columnar import ColumnarPrefix
from repro.core.relation import RankTuple, Relation
from repro.core.scoring import Scoring
from repro.core.template import RunResult

__all__ = ["CachedOrder", "CachedOrderStream", "RankJoinService", "ServiceStats"]


@dataclass(frozen=True)
class CachedOrder:
    """One relation's full access order for one query bucket (immutable).

    ``ranks`` holds the distance per tuple under distance access and the
    score per tuple under score access, aligned with ``tuples``.
    ``vectors``/``scores``/``tids`` are the order's columnar arrays
    (shared with every stream replaying this order — LRU hits never
    re-materialise them).  ``tuples`` may be any aligned sequence:
    freshly sorted orders carry a plain tuple, durable warm-loaded
    orders a lazy row view that materialises ``RankTuple`` objects only
    for pulled positions.  ``positions`` is the sort permutation (base
    positions in access order) when known — what the durable catalog
    persists for zero-re-sort restarts.
    """

    kind: AccessKind
    tuples: Sequence[RankTuple]
    ranks: np.ndarray
    vectors: np.ndarray
    scores: np.ndarray
    tids: np.ndarray
    sigma_max: float
    positions: np.ndarray | None = None


class CachedOrderStream:
    """Replays a :class:`CachedOrder` through the engine's stream API.

    Each run gets its own stream (streams are stateful cursors), but all
    runs over the same ``(relation, query-bucket)`` share the underlying
    sorted order — the expensive part.  The stream's columnar ``prefix``
    is a frozen cursor over the order's shared arrays, so pulls cost O(1)
    bookkeeping and the engine's range-based scorer slices the cached
    arrays directly.
    """

    def __init__(self, order: CachedOrder, relation: Relation) -> None:
        self.kind = order.kind
        self.relation = relation
        self._order = order
        self._pos = 0
        # Live append-only prefix, as the engine and bounds expect from
        # ``seen`` (no per-access copying).
        self._seen: list[RankTuple] = []
        self.prefix = ColumnarPrefix.from_arrays(
            order.vectors, order.scores, order.tids
        )

    # -- AccessStream interface -------------------------------------------

    @property
    def depth(self) -> int:
        return self._pos

    @property
    def seen(self) -> list[RankTuple]:
        return self._seen

    @property
    def sigma_max(self) -> float:
        return self._order.sigma_max

    @property
    def exhausted(self) -> bool:
        return self._pos >= len(self._order.tuples)

    def next(self) -> RankTuple | None:
        if self.exhausted:
            return None
        tup = self._order.tuples[self._pos]
        self._pos += 1
        self._seen.append(tup)
        self.prefix.advance(1)
        return tup

    def next_block(self, limit: int) -> list[RankTuple]:
        take = min(limit, len(self._order.tuples) - self._pos)
        if take <= 0:
            return []
        block = list(self._order.tuples[self._pos : self._pos + take])
        self._pos += take
        self._seen.extend(block)
        self.prefix.advance(take)
        return block

    # -- distance-kind statistics -----------------------------------------

    @property
    def first_distance(self) -> float:
        return float(self._order.ranks[0]) if self._pos else 0.0

    @property
    def last_distance(self) -> float:
        return float(self._order.ranks[self._pos - 1]) if self._pos else 0.0

    # -- score-kind statistics --------------------------------------------

    @property
    def first_score(self) -> float:
        return float(self._order.ranks[0]) if self._pos else self.sigma_max

    @property
    def last_score(self) -> float:
        return float(self._order.ranks[self._pos - 1]) if self._pos else self.sigma_max


@dataclass
class ServiceStats:
    """Meters the service accumulates across submissions.

    Independently thread-safe: every mutation goes through the single
    :meth:`record` path, which applies all of a call's deltas atomically
    under the stats object's own lock — concurrent ``submit`` calls can
    never interleave half of one update with half of another, and
    services never need to widen their own critical sections just to
    count.  Subclasses may add counter fields; :meth:`record` accepts
    any of them by name.
    """

    queries: int = 0
    stream_cache_hits: int = 0
    stream_cache_misses: int = 0
    result_cache_hits: int = 0
    #: Orders actually sorted by this process (LRU miss + catalog miss).
    order_sorts: int = 0
    #: Orders served from the durable catalog instead of a re-sort.
    catalog_order_hits: int = 0
    #: Computed orders written back to the durable catalog.
    catalog_order_writes: int = 0
    #: Orders preloaded into the LRU at construction (warm start).
    orders_warm_loaded: int = 0

    def __post_init__(self) -> None:
        self._lock = threading.Lock()

    def record(self, **deltas: int) -> None:
        """Atomically add ``deltas`` to the named counters."""
        with self._lock:
            for name, delta in deltas.items():
                setattr(self, name, getattr(self, name) + delta)

    def snapshot(self) -> dict[str, int]:
        """A consistent point-in-time copy of every counter."""
        with self._lock:
            return {
                name: value
                for name, value in vars(self).items()
                if not name.startswith("_")
            }

    def as_dict(self) -> dict[str, int]:
        return self.snapshot()


class _LRU:
    """Minimal bounded LRU mapping (caller holds the lock)."""

    def __init__(self, maxsize: int) -> None:
        self.maxsize = maxsize
        self._data: OrderedDict = OrderedDict()

    def get(self, key):
        value = self._data.get(key)
        if value is not None:
            self._data.move_to_end(key)
        return value

    def put(self, key, value) -> None:
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)

    def __len__(self) -> int:
        return len(self._data)


class RankJoinService:
    """Serve many proximity rank-join queries over shared relations.

    Parameters
    ----------
    relations, scoring:
        The shared backing relations and the aggregation function.
    kind:
        Access kind served to every query.
    algorithm:
        Paper algorithm name (CBRR/CBPA/TBRR/TBPA) each query runs.
    k:
        Default result size (overridable per :meth:`submit`).
    pull_block / bound_period:
        Engine execution knobs, shared by all queries.  The default
        ``pull_block=8`` runs the block-pull vectorised engine.
    cache_size:
        Entries in the ``(relation, query-bucket)`` access-order LRU.
    result_cache_size:
        Entries in the ``(query-bucket, k)`` result LRU; 0 disables
        result caching (stream orders are still shared).
    bucket_decimals:
        Queries are rounded to this many decimals before execution;
        queries identical after rounding share cache entries *and*
        results.  The default (6) collapses only floating-point noise.
    max_workers:
        Thread-pool width for :meth:`submit_many`.
    max_pulls:
        Optional per-query pull budget (admission control for hostile
        queries); cut-off runs report ``completed=False``.
    shard_workers:
        Width of the dedicated pool that fans out per-shard block pulls
        when any relation is sharded.  ``None`` (default) sizes it to the
        widest relation (capped at 8); ``0`` disables the pool and merges
        serially.  This pool is separate from the :meth:`submit_many`
        pool on purpose — shard pulls are leaf tasks, so sharing a pool
        with the query runners could deadlock under full load.
    warm_start:
        When any relation is durable
        (:class:`~repro.core.durable.DurableRelation`), preload the
        most-recently-used persisted access orders from its catalog into
        the order LRU at construction (up to ``cache_size`` per
        relation) and write every freshly computed order back.  A
        restarted service then answers its first hot-bucket query with
        **zero re-sorts** — ``stats.order_sorts`` stays 0 and the
        catalog's hit counters record the replay.  On by default; orders
        are still written back when disabled.
    """

    #: Stats class instantiated by ``__init__``; subclasses override to
    #: extend the counter set without replacing the live object (warm
    #: start records counters *during* construction).
    _stats_cls = ServiceStats

    def __init__(
        self,
        relations: list[Relation],
        scoring: Scoring,
        *,
        kind: AccessKind = AccessKind.DISTANCE,
        algorithm: str = "TBPA",
        k: int = 10,
        pull_block: int = 8,
        bound_period: int = 1,
        cache_size: int = 64,
        result_cache_size: int = 256,
        bucket_decimals: int = 6,
        max_workers: int = 4,
        max_pulls: int | None = None,
        shard_workers: int | None = None,
        warm_start: bool = True,
    ) -> None:
        if not relations:
            raise ValueError("need at least one relation")
        if cache_size < 1:
            raise ValueError("cache_size must be >= 1")
        if result_cache_size < 0:
            raise ValueError("result_cache_size must be >= 0")
        if bucket_decimals < 0:
            raise ValueError("bucket_decimals must be >= 0")
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        if shard_workers is not None and shard_workers < 0:
            raise ValueError("shard_workers must be >= 0 (or None for auto)")
        self.relations = relations
        self.scoring = scoring
        self.kind = kind
        self.algorithm = algorithm
        self.k = k
        self.pull_block = pull_block
        self.bound_period = bound_period
        self.bucket_decimals = bucket_decimals
        self.max_workers = max_workers
        self.max_pulls = max_pulls
        self.stats = self._stats_cls()
        self._lock = threading.Lock()
        self._orders = _LRU(cache_size)
        self._results = _LRU(result_cache_size) if result_cache_size else None
        # Durable relations expose a stable tier-managing backend; plain
        # relations build a fresh single-shard backend per access, so
        # only durable backends are pinned here.
        self._durable = {}
        backends = [r.storage for r in relations]
        for backend in backends:
            if getattr(backend, "is_durable", False):
                self._durable[backend.relation.name] = backend
        max_shards = max(b.shard_count for b in backends)
        if shard_workers is None:
            shard_workers = min(8, max_shards) if max_shards > 1 else 0
        self._shard_pool = (
            ThreadPoolExecutor(
                max_workers=shard_workers, thread_name_prefix="shard-pull"
            )
            if shard_workers
            else None
        )
        # Persistent submit_many pool, created lazily on the first batch
        # (single-query services never pay for it) and reused across
        # batches — spinning a fresh pool per call costs thread start-up
        # and tears down warm stacks between batches.
        self._query_pool: ThreadPoolExecutor | None = None

        if warm_start and self._durable:
            self._warm_start(cache_size)

    def _ensure_query_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._query_pool is None:
                self._query_pool = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix="query-runner",
                )
            return self._query_pool

    def close(self) -> None:
        """Shut down the shard-pull and batch pools (idempotent).  The
        service stays usable afterwards; sharded pulls merge serially and
        the next :meth:`submit_many` lazily rebuilds its pool."""
        if self._shard_pool is not None:
            self._shard_pool.shutdown(wait=True)
            self._shard_pool = None
        with self._lock:
            pool, self._query_pool = self._query_pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "RankJoinService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- query canonicalisation -------------------------------------------

    def canonical_query(self, query: np.ndarray) -> np.ndarray:
        """The query the engine actually executes (bucket representative)."""
        q = np.round(np.asarray(query, dtype=float), self.bucket_decimals)
        q = q + 0.0  # collapse -0.0 so buckets straddling zero coincide
        q.setflags(write=False)
        return q

    def _bucket_key(self, canonical: np.ndarray) -> bytes:
        return canonical.tobytes()

    # -- shared access orders ---------------------------------------------

    def _warm_start(self, cache_size: int) -> None:
        """Preload the order LRU from every durable relation's catalog.

        Loads the most recently used persisted orders of this service's
        access kind — up to ``cache_size`` per relation, newest last so
        LRU recency mirrors catalog recency.  Nothing is sorted: the
        permutation and rank column come back as the exact bytes a
        previous process computed, and the columnar arrays are one
        fancy-index gather from the shard memmaps.
        """
        loaded = 0
        for backend in self._durable.values():
            entries = list(
                backend.load_recent_orders(self.kind, limit=cache_size)
            )
            for shard_index, bucket, order in reversed(entries):
                key = (
                    backend.relation.name,
                    shard_index,
                    bucket if self.kind is AccessKind.DISTANCE else b"",
                )
                cached = CachedOrder(
                    kind=self.kind,
                    tuples=order.tuples,
                    ranks=order.ranks,
                    vectors=order.vectors,
                    scores=order.scores,
                    tids=order.tids,
                    sigma_max=order.sigma_max,
                    positions=order.positions,
                )
                with self._lock:
                    self._orders.put(key, cached)
                loaded += 1
        if loaded:
            self.stats.record(orders_warm_loaded=loaded)

    def _order_for(
        self,
        shard: Relation,
        shard_idx: int,
        bucket: bytes,
        canonical: np.ndarray,
    ) -> CachedOrder:
        """One shard's full sorted order for one query bucket (cached).

        The LRU key is ``(relation, shard, bucket)``: sharded relations
        get one independently evictable entry per shard, unsharded
        relations use shard index 0.  Score access is query-independent:
        one cache entry per (relation, shard).
        """
        key_bucket = bucket if self.kind is AccessKind.DISTANCE else b""
        key = (shard.name, shard_idx, key_bucket)
        with self._lock:
            cached = self._orders.get(key)
        if cached is not None:
            self.stats.record(stream_cache_hits=1)
            return cached
        self.stats.record(stream_cache_misses=1)
        backend = self._durable.get(shard.name)
        if backend is not None:
            # Durable relation: probe the catalog before sorting — a hit
            # replays the exact persisted permutation (zero re-sorts).
            durable_order = backend.load_order(shard_idx, self.kind, key_bucket)
            if durable_order is not None:
                self.stats.record(catalog_order_hits=1)
                order = CachedOrder(
                    kind=self.kind,
                    tuples=durable_order.tuples,
                    ranks=durable_order.ranks,
                    vectors=durable_order.vectors,
                    scores=durable_order.scores,
                    tids=durable_order.tids,
                    sigma_max=durable_order.sigma_max,
                    positions=durable_order.positions,
                )
                with self._lock:
                    self._orders.put(key, order)
                return order
        # Sort outside the lock: concurrent misses may duplicate work but
        # never block each other; last writer wins with an equal order.
        # The sorted streams materialise their order columnar at open
        # time; drain in one block pull and share those arrays.
        self.stats.record(order_sorts=1)
        if self.kind is AccessKind.DISTANCE:
            inner: DistanceAccess | ScoreAccess = DistanceAccess(shard, canonical)
            tuples = inner.next_block(len(shard))
            ranks = inner.distances
        else:
            inner = ScoreAccess(shard)
            tuples = inner.next_block(len(shard))
            ranks = inner.prefix.arrays()[1]
        vectors, scores, tids = inner.prefix.arrays()
        order = CachedOrder(
            kind=self.kind,
            tuples=tuple(tuples),
            ranks=np.asarray(ranks, dtype=float),
            vectors=vectors,
            scores=scores,
            tids=tids,
            sigma_max=shard.sigma_max,
            positions=inner.order_positions,
        )
        with self._lock:
            self._orders.put(key, order)
        if backend is not None:
            # Write the computed order back so the next process warm
            # starts from it (no-op on read-only stores: pool workers
            # keep their sorts local rather than fight for the WAL
            # writer lock).
            if backend.store_order(
                shard_idx, self.kind, key_bucket, order.positions, order.ranks
            ):
                self.stats.record(catalog_order_writes=1)
        return order

    def _open_cached_stream(
        self, relation: Relation, bucket: bytes, canonical: np.ndarray
    ):
        """One engine-facing stream for ``relation``, replaying cached
        per-shard orders: a :class:`CachedOrderStream` for single-shard
        relations, a shard-parallel
        :class:`~repro.core.access.MergeStream` otherwise.  Durable
        relations with evicted shards keep those shards on disk: their
        persisted orders stream back window by window through paged
        cursors while hot shards replay cached orders — same merge, same
        bit-identical stream."""
        backend = self._durable.get(relation.name)
        if backend is not None and backend.evicted_count:
            key_bucket = bucket if self.kind is AccessKind.DISTANCE else b""
            cursors = []
            sigma = relation.sigma_max
            for handle in backend.handles:
                if handle.evicted:
                    cursors.append(
                        backend.paged_cursor(
                            handle.index, self.kind, key_bucket, canonical
                        )
                    )
                else:
                    o = self._order_for(
                        backend.shard_relation(handle.index),
                        handle.index,
                        bucket,
                        canonical,
                    )
                    cursors.append(
                        ShardCursor(o.tuples, o.ranks, o.vectors, o.scores, o.tids)
                    )
                    sigma = max(sigma, o.sigma_max)
            return MergeStream(
                relation,
                self.kind,
                cursors,
                sigma_max=sigma,
                executor=self._shard_pool,
            )
        shards = relation.storage.shards
        if len(shards) == 1:
            return CachedOrderStream(
                self._order_for(shards[0], 0, bucket, canonical), relation
            )
        orders = [
            self._order_for(shard, si, bucket, canonical)
            for si, shard in enumerate(shards)
        ]
        cursors = [
            ShardCursor(o.tuples, o.ranks, o.vectors, o.scores, o.tids)
            for o in orders
        ]
        return MergeStream(
            relation,
            self.kind,
            cursors,
            sigma_max=max(o.sigma_max for o in orders),
            executor=self._shard_pool,
        )

    def _stream_factory(self, bucket: bytes, canonical: np.ndarray):
        def factory() -> list:
            return [
                self._open_cached_stream(r, bucket, canonical)
                for r in self.relations
            ]

        return factory

    # -- submission --------------------------------------------------------

    def _lookup_result(self, result_key) -> RunResult | None:
        """Result-cache probe (and hit accounting) shared by the sync
        and async front-ends; None on miss or with caching disabled."""
        if self._results is None:
            return None
        with self._lock:
            hit = self._results.get(result_key)
        if hit is not None:
            self.stats.record(result_cache_hits=1)
        return hit

    def submit(self, query: np.ndarray, k: int | None = None) -> RunResult:
        """Run one query to completion and return its result.

        Results for the same ``(query-bucket, k)`` may be served from the
        result cache; :class:`RunResult` is treated as immutable.
        """
        k = self.k if k is None else k
        canonical = self.canonical_query(query)
        bucket = self._bucket_key(canonical)
        result_key = (bucket, k)
        self.stats.record(queries=1)
        hit = self._lookup_result(result_key)
        if hit is not None:
            return hit
        engine = make_algorithm(
            self.algorithm,
            self.relations,
            self.scoring,
            canonical,
            k,
            kind=self.kind,
            pull_block=self.pull_block,
            bound_period=self.bound_period,
            stream_factory=self._stream_factory(bucket, canonical),
            max_pulls=self.max_pulls,
        )
        result = engine.run()
        if self._results is not None:
            with self._lock:
                self._results.put(result_key, result)
        return result

    def submit_many(
        self, queries: list[np.ndarray], k: int | None = None
    ) -> list[RunResult]:
        """Run a batch of queries through a thread pool.

        One persistent pool of ``max_workers`` threads serves every
        batch (created lazily on the first call, shut down in
        :meth:`close`); what is shared across workers are the service's
        caches and meters.  Results align with ``queries``.
        """
        if not queries:
            return []
        pool = self._ensure_query_pool()
        return list(pool.map(lambda q: self.submit(q, k), queries))
