"""Compact wire format for the process-pool serving tier.

Worker processes answer queries end-to-end; what crosses the pipe back
to the parent is NOT a pickled ``RunResult`` object graph (tuples,
relations, numpy views — arbitrarily large and full of duplicated
state) but a fixed, minimal encoding:

* the top-K **tid matrix** (``K x n_relations`` int64 — combination
  identity),
* the top-K **scores**, the per-relation **depths** and the final
  **bound** as raw little-endian float64/int64 bytes — floats travel as
  their exact bit patterns, which is what makes the parent-side
  reassembled answers *bit-identical* to in-process runs,
* engine timing, the ``BoundCounters`` dict and the worker's
  ``ServiceStats`` **deltas** as a JSON tail of plain ints/floats
  (Python's ``json`` round-trips floats through ``repr``, which is
  exact for IEEE doubles).

Requests are tiny: an opcode byte, a sequence number, ``k`` and the
canonical query vector's float64 bytes.  Framing is handled by
``multiprocessing.Connection.send_bytes``/``recv_bytes``; this module
only defines payloads.

The parent rehydrates :class:`~repro.core.relation.Combination` objects
from the tid matrix against its own relations (tuple identity is
``(relation, tid)``), attaching the worker-computed scores verbatim —
nothing is re-derived, so a retried query re-encodes to the same bytes.
"""

from __future__ import annotations

import json
import struct
from typing import TYPE_CHECKING

import numpy as np

from repro.core.relation import Combination
from repro.core.template import RunResult

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.relation import Relation

__all__ = [
    "OP_QUERY",
    "OP_PING",
    "OP_SHUTDOWN",
    "OP_RESULT",
    "OP_PONG",
    "OP_ERROR",
    "encode_query",
    "decode_query",
    "encode_result",
    "decode_result",
    "encode_error",
    "decode_error",
    "rehydrate_result",
]

# Parent -> worker opcodes.
OP_QUERY = b"Q"
OP_PING = b"G"
OP_SHUTDOWN = b"S"
# Worker -> parent opcodes.
OP_RESULT = b"R"
OP_PONG = b"P"
OP_ERROR = b"E"

_QUERY_HEAD = struct.Struct("<qqq")  # seq, k, dim
_RESULT_HEAD = struct.Struct("<qqqqB")  # seq, K, n_relations, json_len, completed


def encode_query(seq: int, query: np.ndarray, k: int) -> bytes:
    q = np.ascontiguousarray(query, dtype=np.float64)
    return OP_QUERY + _QUERY_HEAD.pack(seq, k, q.shape[0]) + q.tobytes()


def decode_query(payload: bytes) -> tuple[int, int, np.ndarray]:
    """``(seq, k, query)`` from an ``OP_QUERY`` payload."""
    seq, k, dim = _QUERY_HEAD.unpack_from(payload, 1)
    off = 1 + _QUERY_HEAD.size
    query = np.frombuffer(payload, dtype=np.float64, count=dim, offset=off)
    return int(seq), int(k), query


def encode_result(seq: int, result: RunResult, stats_deltas: dict) -> bytes:
    """Flatten one finished run into the binary + JSON-tail layout."""
    n = len(result.depths)
    kk = len(result.combinations)
    tids = np.empty((kk, n), dtype=np.int64)
    scores = np.empty(kk, dtype=np.float64)
    for i, combo in enumerate(result.combinations):
        tids[i] = combo.key
        scores[i] = combo.score
    depths = np.asarray(result.depths, dtype=np.int64)
    tail = json.dumps(
        {
            "timing": {
                "total_seconds": result.total_seconds,
                "bound_seconds": result.bound_seconds,
                "dominance_seconds": result.dominance_seconds,
                "solver_seconds": result.solver_seconds,
            },
            "combinations_formed": result.combinations_formed,
            "counters": result.counters,
            "stats": stats_deltas,
        }
    ).encode("utf-8")
    head = _RESULT_HEAD.pack(seq, kk, n, len(tail), 1 if result.completed else 0)
    return b"".join(
        (
            OP_RESULT,
            head,
            tids.tobytes(),
            scores.tobytes(),
            depths.tobytes(),
            struct.pack("<d", float(result.bound)),
            tail,
        )
    )


def decode_result(payload: bytes) -> tuple[int, dict]:
    """``(seq, fields)`` from an ``OP_RESULT`` payload.

    ``fields`` carries the raw arrays (``tids``/``scores``/``depths``/
    ``bound``) plus the decoded JSON tail; pair it with the serving
    relations via :func:`rehydrate_result` to get a ``RunResult``.
    """
    seq, kk, n, tail_len, completed = _RESULT_HEAD.unpack_from(payload, 1)
    off = 1 + _RESULT_HEAD.size
    tids = np.frombuffer(payload, dtype=np.int64, count=kk * n, offset=off)
    off += tids.nbytes
    scores = np.frombuffer(payload, dtype=np.float64, count=kk, offset=off)
    off += scores.nbytes
    depths = np.frombuffer(payload, dtype=np.int64, count=n, offset=off)
    off += depths.nbytes
    (bound,) = struct.unpack_from("<d", payload, off)
    off += 8
    tail = json.loads(payload[off : off + tail_len].decode("utf-8"))
    fields = {
        "tids": tids.reshape(kk, n),
        "scores": scores,
        "depths": depths,
        "bound": float(bound),
        "completed": bool(completed),
        **tail,
    }
    return int(seq), fields


def encode_error(seq: int, exc: BaseException) -> bytes:
    tail = json.dumps(
        {"type": type(exc).__name__, "message": str(exc)}
    ).encode("utf-8")
    return OP_ERROR + struct.pack("<q", seq) + tail


def decode_error(payload: bytes) -> tuple[int, str]:
    (seq,) = struct.unpack_from("<q", payload, 1)
    tail = json.loads(payload[9:].decode("utf-8"))
    return int(seq), f"{tail['type']}: {tail['message']}"


class _TidIndex:
    """Vectorised tid -> row-position lookup for one relation."""

    def __init__(self, relation: "Relation") -> None:
        tids = np.asarray(relation.tids, dtype=np.int64)
        self._sorter = np.argsort(tids, kind="stable")
        self._sorted = tids[self._sorter]

    def positions(self, tids: np.ndarray) -> np.ndarray:
        idx = np.searchsorted(self._sorted, tids)
        return self._sorter[idx]


def rehydrate_result(fields: dict, relations: list["Relation"],
                     index_cache: dict | None = None) -> RunResult:
    """Reassemble a :class:`RunResult` from decoded wire fields.

    Combination tuples are looked up in the parent's ``relations`` by
    tid (identity — scores travel on the wire and are attached
    verbatim).  ``index_cache`` maps relation name to a reusable
    :class:`_TidIndex` so batch decodes pay the argsort once.
    """
    tids = fields["tids"]
    combos = []
    if len(tids):
        rows = []
        for j, rel in enumerate(relations):
            if index_cache is not None:
                index = index_cache.get(rel.name)
                if index is None:
                    index = index_cache[rel.name] = _TidIndex(rel)
            else:
                index = _TidIndex(rel)
            positions = index.positions(tids[:, j])
            rows.append([rel[int(p)] for p in positions])
        scores = fields["scores"]
        combos = [
            Combination(tuple(rows[j][i] for j in range(len(relations))),
                        float(scores[i]))
            for i in range(tids.shape[0])
        ]
    timing = fields["timing"]
    return RunResult(
        combinations=combos,
        depths=[int(d) for d in fields["depths"]],
        bound=fields["bound"],
        total_seconds=float(timing["total_seconds"]),
        bound_seconds=float(timing["bound_seconds"]),
        dominance_seconds=float(timing["dominance_seconds"]),
        combinations_formed=int(fields["combinations_formed"]),
        counters=dict(fields["counters"]),
        completed=fields["completed"],
        solver_seconds=float(timing["solver_seconds"]),
    )
