"""Ablation experiments beyond the paper's Figure 3.

Five studies probing this reproduction's design space:

* ``workload`` — the four algorithms across data regimes the paper does
  not test (clustered, correlated, anti-correlated): where does the
  tight bound's advantage grow or vanish?
* ``bound-period`` — the I/O-vs-CPU trade-off of recomputing the tight
  bound only every N pulls (the paper suggests the trade-off in
  Section 4.2 but does not measure it).
* ``probe`` — sorted-only TBPA vs the anchor-and-probe random-access
  extension, as the mutual-proximity weight w_mu grows (random access
  pays off exactly when co-location dominates the score).
* ``score-access`` — the Appendix C machinery under the Table 2
  defaults (the paper proves it but never measures it).
* ``approx-budget`` — the Finger-Polyzotis-style budgeted bound between
  corner and tight.
"""

from __future__ import annotations

import io
import time

import numpy as np

from repro.core import AccessKind, EuclideanLogScoring, ProbeRankJoin, make_algorithm
from repro.data import (
    anticorrelated_problem,
    clustered_problem,
    correlated_problem,
    generate_problem,
    SyntheticConfig,
)

__all__ = [
    "ablation_workload",
    "ablation_bound_period",
    "ablation_probe",
    "ablation_score_access",
    "ablation_approx_budget",
    "ABLATIONS",
]

_ALGOS = ("CBRR", "CBPA", "TBRR", "TBPA")


def _uniform_problem(seed: int):
    return generate_problem(SyntheticConfig(n_tuples=300, seed=seed))


_WORKLOADS = {
    "uniform": _uniform_problem,
    "clustered": lambda seed: clustered_problem(n_tuples=300, seed=seed),
    "correlated": lambda seed: correlated_problem(n_tuples=300, seed=seed),
    "anticorrelated": lambda seed: anticorrelated_problem(n_tuples=300, seed=seed),
}


def ablation_workload(*, k: int = 10, seeds: int = 5) -> str:
    """Mean sumDepths of every algorithm per workload regime."""
    scoring = EuclideanLogScoring()
    out = io.StringIO()
    out.write("Workload ablation: mean sumDepths (distance access)\n")
    out.write(f"{'workload':>16} " + " ".join(f"{a:>8}" for a in _ALGOS) + "\n")
    for name, factory in _WORKLOADS.items():
        means = []
        for algo in _ALGOS:
            total = 0
            for seed in range(seeds):
                relations, query = factory(seed)
                result = make_algorithm(
                    algo, relations, scoring, query, k, kind=AccessKind.DISTANCE
                ).run()
                total += result.sum_depths
            means.append(total / seeds)
        out.write(f"{name:>16} " + " ".join(f"{m:8.1f}" for m in means) + "\n")
    return out.getvalue()


def ablation_bound_period(
    *, k: int = 10, seeds: int = 5, periods: tuple[int, ...] = (1, 2, 4, 8, 16)
) -> str:
    """sumDepths and CPU of TBPA as the bound is recomputed less often."""
    scoring = EuclideanLogScoring()
    out = io.StringIO()
    out.write("Bound-period ablation (TBPA): stale bounds trade I/O for CPU\n")
    out.write(f"{'period':>8} {'sumDepths':>10} {'cpu_s':>8} {'bound_s':>8}\n")
    for period in periods:
        depths, cpus, bounds = [], [], []
        for seed in range(seeds):
            relations, query = _uniform_problem(seed)
            result = make_algorithm(
                "TBPA", relations, scoring, query, k,
                kind=AccessKind.DISTANCE, bound_period=period,
            ).run()
            depths.append(result.sum_depths)
            cpus.append(result.total_seconds)
            bounds.append(result.bound_seconds)
        out.write(
            f"{period:>8} {np.mean(depths):10.1f} {np.mean(cpus):8.4f} "
            f"{np.mean(bounds):8.4f}\n"
        )
    return out.getvalue()


def ablation_probe(
    *, k: int = 5, seeds: int = 3, w_mus: tuple[float, ...] = (0.5, 1.0, 2.0, 4.0)
) -> str:
    """Sorted-only TBPA vs anchor-and-probe as w_mu grows (clustered data).

    Accesses are compared on a common scale: sumDepths for TBPA, sorted
    anchors + probed tuples for the probe join.
    """
    out = io.StringIO()
    out.write("Random-access ablation on clustered data\n")
    out.write(
        f"{'w_mu':>6} {'TBPA sumDepths':>15} {'probe accesses':>15} "
        f"{'(anchors+probed)':>18}\n"
    )
    for w_mu in w_mus:
        scoring = EuclideanLogScoring(1.0, 1.0, w_mu)
        sorted_total, probe_total, anchors, probed = [], [], [], []
        for seed in range(seeds):
            relations, query = clustered_problem(n_tuples=250, seed=seed)
            tb = make_algorithm(
                "TBPA", relations, scoring, query, k, kind=AccessKind.DISTANCE
            ).run()
            pr = ProbeRankJoin(relations, scoring, query, k).run()
            assert [c.score for c in tb.combinations] == [
                c.score for c in pr.combinations
            ] or np.allclose(
                [c.score for c in tb.combinations],
                [c.score for c in pr.combinations],
            )
            sorted_total.append(tb.sum_depths)
            probe_total.append(pr.total_accesses)
            anchors.append(pr.sorted_accesses)
            probed.append(pr.random_accesses)
        out.write(
            f"{w_mu:>6.1f} {np.mean(sorted_total):15.1f} "
            f"{np.mean(probe_total):15.1f} "
            f"{np.mean(anchors):9.1f}+{np.mean(probed):<8.1f}\n"
        )
    return out.getvalue()


def ablation_score_access(*, seeds: int = 5, ks: tuple[int, ...] = (1, 10, 50)) -> str:
    """All four algorithms under score-based access (Appendix C).

    The paper implements and proves the score-access machinery but only
    evaluates distance access; this ablation fills that gap with the
    same Table 2 defaults.
    """
    scoring = EuclideanLogScoring()
    algos = _ALGOS
    out = io.StringIO()
    out.write("Score-based access (Appendix C): mean sumDepths\n")
    out.write(f"{'K':>6} " + " ".join(f"{a:>8}" for a in algos) + "\n")
    for k in ks:
        means = []
        for algo in algos:
            total = 0
            for seed in range(seeds):
                relations, query = _uniform_problem(seed)
                result = make_algorithm(
                    algo, relations, scoring, query, k, kind=AccessKind.SCORE
                ).run()
                total += result.sum_depths
            means.append(total / seeds)
        out.write(f"{k:>6} " + " ".join(f"{m:8.1f}" for m in means) + "\n")
    return out.getvalue()


def ablation_approx_budget(
    *, k: int = 10, seeds: int = 5, budgets: tuple[int, ...] = (0, 4, 16, 64, 256)
) -> str:
    """The Finger-Polyzotis-style budgeted bound: I/O and CPU vs budget.

    Budget 0 is the pure relaxed bound; large budgets converge to the
    exact tight bound (shown as the last row for reference).
    """
    from repro.core import ProxRJ, RoundRobin
    from repro.core.bounds.approximate import ApproxTightBound
    from repro.core.bounds.tight import TightBound

    scoring = EuclideanLogScoring()
    out = io.StringIO()
    out.write("Approximate-bound ablation (round-robin pulling)\n")
    out.write(f"{'budget':>8} {'sumDepths':>10} {'cpu_s':>8}\n")

    def run_rows(label, bound_factory):
        depths, cpus = [], []
        for seed in range(seeds):
            relations, query = _uniform_problem(seed)
            engine = ProxRJ(
                relations, scoring, kind=AccessKind.DISTANCE, query=query,
                bound=bound_factory(), pull=RoundRobin(), k=k,
            )
            result = engine.run()
            depths.append(result.sum_depths)
            cpus.append(result.total_seconds)
        out.write(f"{label:>8} {np.mean(depths):10.1f} {np.mean(cpus):8.4f}\n")

    for budget in budgets:
        run_rows(str(budget), lambda b=budget: ApproxTightBound(budget=b))
    run_rows("exact", TightBound)
    return out.getvalue()


ABLATIONS = {
    "workload": ablation_workload,
    "bound-period": ablation_bound_period,
    "probe": ablation_probe,
    "score-access": ablation_score_access,
    "approx-budget": ablation_approx_budget,
}
