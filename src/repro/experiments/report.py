"""Text and CSV rendering of experiment results.

The paper shows bar charts; we print the same series as aligned text
tables (one row per parameter value, one column per algorithm) plus the
stacked-bar decomposition for CPU figures (bound share, dominance share),
and optionally write CSV for downstream plotting.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path

from repro.experiments.harness import CellResult

__all__ = ["render_table", "render_bars", "write_csv", "summarise_gain"]


def _fmt(value: float, metric: str) -> str:
    if value != value:  # NaN
        return "-"
    if metric == "sumDepths":
        return f"{value:8.1f}"
    return f"{value:8.4f}"


def render_table(
    cells: list[CellResult],
    metric: str,
    *,
    title: str = "",
) -> str:
    """Aligned text table for one figure.

    ``metric`` is ``sumDepths``, ``cpu`` or ``cpu_split`` (the latter adds
    bound/dominance share columns per tight algorithm).
    """
    if not cells:
        return "(no data)\n"
    algos = cells[0].algorithms()
    out = io.StringIO()
    if title:
        out.write(f"{title}\n")
    if metric in ("sumDepths", "cpu"):
        header = f"{'point':>12} " + " ".join(f"{a:>9}" for a in algos)
        out.write(header + "\n")
        out.write("-" * len(header) + "\n")
        for cell in cells:
            row = [f"{cell.label:>12}"]
            for a in algos:
                if metric == "sumDepths":
                    v = cell.mean_sum_depths(a)
                else:
                    v = cell.mean_total_seconds(a)
                marker = "" if cell.all_completed(a) else "*"
                row.append(_fmt(v, metric) + marker)
            out.write(" ".join(row) + "\n")
        if any(not cell.all_completed(a) for cell in cells for a in algos):
            out.write("* = cut off by the pull cap before completion (DNF)\n")
    elif metric == "cpu_split":
        header = (
            f"{'point':>12} "
            + " ".join(f"{a + suffix:>12}" for a in algos for suffix in ("", ":bound", ":dom"))
        )
        out.write(header + "\n")
        out.write("-" * len(header) + "\n")
        for cell in cells:
            row = [f"{cell.label:>12}"]
            for a in algos:
                row.append(f"{cell.mean_total_seconds(a):12.4f}")
                row.append(f"{cell.mean_bound_seconds(a):12.4f}")
                row.append(f"{cell.mean_dominance_seconds(a):12.4f}")
            out.write(" ".join(row) + "\n")
    else:
        raise ValueError(f"unknown metric {metric!r}")
    return out.getvalue()


def render_bars(
    cells: list[CellResult],
    metric: str,
    *,
    width: int = 46,
    title: str = "",
) -> str:
    """ASCII bar-chart rendition of a figure (the paper uses bar charts).

    One group of bars per parameter point, one bar per algorithm, scaled
    to the global maximum.  ``metric`` is ``sumDepths`` or ``cpu``.
    """
    if not cells:
        return "(no data)\n"
    if metric not in ("sumDepths", "cpu"):
        raise ValueError(f"unknown metric {metric!r}")

    def value(cell: CellResult, algo: str) -> float:
        if metric == "sumDepths":
            return cell.mean_sum_depths(algo)
        return cell.mean_total_seconds(algo)

    algos = cells[0].algorithms()
    peak = max(
        (value(c, a) for c in cells for a in algos if value(c, a) == value(c, a)),
        default=0.0,
    )
    out = io.StringIO()
    if title:
        out.write(f"{title}\n")
    unit = "tuples" if metric == "sumDepths" else "s"
    for cell in cells:
        out.write(f"{cell.label}\n")
        for algo in algos:
            v = value(cell, algo)
            if v != v:
                bar, shown = "", "-"
            else:
                bar = "#" * max(1, int(round(width * v / peak))) if peak else ""
                shown = f"{v:.3g}"
            out.write(f"  {algo:>5} |{bar:<{width}} {shown} {unit}\n")
    return out.getvalue()


def write_csv(cells: list[CellResult], path: Path) -> None:
    """Raw per-cell averages for every metric, one row per (point, algo)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(
            [
                "point",
                "algorithm",
                "mean_sum_depths",
                "mean_total_seconds",
                "mean_bound_seconds",
                "mean_dominance_seconds",
                "mean_combinations_formed",
                "all_completed",
            ]
        )
        for cell in cells:
            for algo in cell.algorithms():
                writer.writerow(
                    [
                        cell.label,
                        algo,
                        f"{cell.mean_sum_depths(algo):.3f}",
                        f"{cell.mean_total_seconds(algo):.6f}",
                        f"{cell.mean_bound_seconds(algo):.6f}",
                        f"{cell.mean_dominance_seconds(algo):.6f}",
                        f"{cell.mean_combinations(algo):.1f}",
                        cell.all_completed(algo),
                    ]
                )


def summarise_gain(cells: list[CellResult], better: str, worse: str) -> list[float]:
    """Relative sumDepths gain of ``better`` over ``worse`` per cell,
    e.g. TBPA over CBPA (the percentages quoted in Section 4.2)."""
    gains = []
    for cell in cells:
        w = cell.mean_sum_depths(worse)
        b = cell.mean_sum_depths(better)
        if w > 0:
            gains.append(1.0 - b / w)
    return gains
