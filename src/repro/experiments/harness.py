"""Experiment harness: run algorithm grids over generated datasets and
aggregate the paper's metrics (sumDepths, total CPU time, bound share,
dominance share), averaged over seeds as in Section 4.1."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

import numpy as np

from repro.core import AccessKind, EuclideanLogScoring, make_algorithm
from repro.core.relation import Relation
from repro.data.synthetic import SyntheticConfig, generate_problem
from repro.experiments.config import ExperimentSettings

__all__ = ["Measurement", "CellResult", "run_cell", "run_synthetic_cell"]


@dataclass(frozen=True)
class Measurement:
    """One (algorithm, dataset) run reduced to the paper's metrics.

    ``remote_seconds`` is the *simulated* network latency the run's
    accesses would have paid against remote services (0 for local
    cells) — the latency-weighted cost the paper's sumDepths metric is
    a proxy for.  ``solver_seconds`` is the wall-clock spent inside the
    LP/QP kernels proper (a sub-share of ``bound_seconds +
    dominance_seconds``), so perf PRs can diff engine bookkeeping
    against solver time straight from ``BENCH_core.json``.
    """

    algorithm: str
    sum_depths: int
    depths: tuple[int, ...]
    total_seconds: float
    bound_seconds: float
    dominance_seconds: float
    combinations_formed: int
    completed: bool
    remote_seconds: float = 0.0
    solver_seconds: float = 0.0


@dataclass
class CellResult:
    """All runs of one parameter point, with per-algorithm averages."""

    label: str
    measurements: list[Measurement] = field(default_factory=list)

    def algorithms(self) -> list[str]:
        seen: list[str] = []
        for m in self.measurements:
            if m.algorithm not in seen:
                seen.append(m.algorithm)
        return seen

    def _per_algo(self, algo: str) -> list[Measurement]:
        return [m for m in self.measurements if m.algorithm == algo]

    def mean_sum_depths(self, algo: str) -> float:
        runs = self._per_algo(algo)
        return float(np.mean([m.sum_depths for m in runs])) if runs else float("nan")

    def mean_total_seconds(self, algo: str) -> float:
        runs = self._per_algo(algo)
        return float(np.mean([m.total_seconds for m in runs])) if runs else float("nan")

    def mean_bound_seconds(self, algo: str) -> float:
        runs = self._per_algo(algo)
        return float(np.mean([m.bound_seconds for m in runs])) if runs else float("nan")

    def mean_dominance_seconds(self, algo: str) -> float:
        runs = self._per_algo(algo)
        return (
            float(np.mean([m.dominance_seconds for m in runs])) if runs else float("nan")
        )

    def mean_combinations(self, algo: str) -> float:
        runs = self._per_algo(algo)
        return (
            float(np.mean([m.combinations_formed for m in runs]))
            if runs
            else float("nan")
        )

    def all_completed(self, algo: str) -> bool:
        return all(m.completed for m in self._per_algo(algo))

    def mean_remote_seconds(self, algo: str) -> float:
        runs = self._per_algo(algo)
        return float(np.mean([m.remote_seconds for m in runs])) if runs else float("nan")

    def mean_solver_seconds(self, algo: str) -> float:
        runs = self._per_algo(algo)
        return float(np.mean([m.solver_seconds for m in runs])) if runs else float("nan")


def run_cell(
    label: str,
    problems: Iterable[tuple[list[Relation], np.ndarray]],
    *,
    k: int,
    settings: ExperimentSettings,
    kind: AccessKind = AccessKind.DISTANCE,
    dominance_period: int | None = None,
    pull_block: int = 1,
    vectorise: bool = True,
    algorithms: tuple[str, ...] | None = None,
    remote_latency: float = 0.0,
    remote_jitter: float = 0.0,
    remote_page_size: int = 10,
) -> CellResult:
    """Run every algorithm on every problem instance of one cell.

    ``pull_block > 1`` runs every algorithm in the engine's block-pull
    mode (same ranked top-K on completed runs; amortised bound updates
    and vectorised block scoring).  ``vectorise=False`` pins the scalar
    object-per-tuple path, the ablation baseline for the columnar engine.

    ``remote_latency > 0`` serves every stream through the simulated
    remote endpoints (:func:`repro.service.make_service_streams`) with
    per-call latency ``remote_latency + U(0, remote_jitter)`` and pages
    of ``remote_page_size`` tuples; each measurement then reports the
    accumulated simulated network time as ``remote_seconds``.  Answers
    are identical to local streams — only the cost model changes.
    """
    scoring = EuclideanLogScoring(settings.w_s, settings.w_q, settings.w_mu)
    cell = CellResult(label=label)
    algos = algorithms if algorithms is not None else settings.algorithms
    latency_model = None
    if remote_latency > 0 or remote_jitter > 0:
        from repro.service.simulation import LatencyModel

        latency_model = LatencyModel(base=remote_latency, jitter=remote_jitter)
    for problem_index, (relations, query) in enumerate(problems):
        for algo in algos:
            kwargs: dict = {
                "kind": kind,
                "max_pulls": settings.max_pulls,
                "pull_block": pull_block,
                "vectorise": vectorise,
            }
            if algo.upper().startswith("TB"):
                kwargs["dominance_period"] = dominance_period
            opened: list = []
            if latency_model is not None:
                from repro.service.simulation import make_service_streams

                def factory(
                    _relations=relations, _query=query, _sink=opened
                ) -> list:
                    streams = make_service_streams(
                        _relations,
                        kind=kind,
                        query=_query,
                        page_size=remote_page_size,
                        latency=latency_model,
                        seed=problem_index,
                    )
                    _sink.extend(streams)
                    return streams

                kwargs["stream_factory"] = factory
            engine = make_algorithm(algo, relations, scoring, query, k, **kwargs)
            result = engine.run()
            cell.measurements.append(
                Measurement(
                    algorithm=algo.upper(),
                    sum_depths=result.sum_depths,
                    depths=tuple(result.depths),
                    total_seconds=result.total_seconds,
                    bound_seconds=result.bound_seconds,
                    dominance_seconds=result.dominance_seconds,
                    combinations_formed=result.combinations_formed,
                    completed=result.completed,
                    remote_seconds=float(
                        sum(s.endpoint.simulated_seconds for s in opened)
                    ),
                    solver_seconds=result.solver_seconds,
                )
            )
    return cell


def run_synthetic_cell(
    label: str,
    *,
    k: int,
    n_relations: int,
    dims: int,
    density: float,
    skew: float,
    settings: ExperimentSettings,
    kind: AccessKind = AccessKind.DISTANCE,
    dominance_period: int | None = None,
    pull_block: int = 1,
    vectorise: bool = True,
    algorithms: tuple[str, ...] | None = None,
    shards: int = 1,
    partition: str = "hash",
    remote_latency: float = 0.0,
    remote_jitter: float = 0.0,
    remote_page_size: int = 10,
) -> CellResult:
    """One Table 2 parameter point over ``settings.seeds`` fresh datasets.

    ``shards > 1`` serves every relation through the sharded storage
    backend (same sampled tuples, per-shard sorted orders merged at
    access time) — completed runs report identical results and depths to
    ``shards=1``, so the cell isolates the storage layer's CPU cost.

    ``remote_latency > 0`` (with optional ``remote_jitter`` /
    ``remote_page_size``, matching the :class:`~repro.data.
    SyntheticConfig` knobs) serves the cell through simulated remote
    endpoints and reports the simulated network time per run.
    """
    problems = (
        generate_problem(
            SyntheticConfig(
                n_relations=n_relations,
                dims=dims,
                density=density,
                skew=skew,
                n_tuples=settings.n_tuples,
                seed=seed,
                shards=shards,
                partition=partition,
                remote_latency=remote_latency,
                remote_jitter=remote_jitter,
                remote_page_size=remote_page_size,
            )
        )
        for seed in range(settings.seeds)
    )
    return run_cell(
        label,
        problems,
        k=k,
        settings=settings,
        kind=kind,
        dominance_period=dominance_period,
        pull_block=pull_block,
        vectorise=vectorise,
        algorithms=algorithms,
        remote_latency=remote_latency,
        remote_jitter=remote_jitter,
        remote_page_size=remote_page_size,
    )
