"""Experiment harness: parameter sweeps, per-figure definitions and text/
CSV reporting for every table and figure of the paper's Section 4."""

from repro.experiments.config import DEFAULTS, TESTED, ExperimentSettings
from repro.experiments.figures import FIGURES, figure_cells
from repro.experiments.harness import CellResult, Measurement, run_cell, run_synthetic_cell
from repro.experiments.report import render_bars, render_table, summarise_gain, write_csv

__all__ = [
    "DEFAULTS",
    "TESTED",
    "ExperimentSettings",
    "FIGURES",
    "figure_cells",
    "CellResult",
    "Measurement",
    "run_cell",
    "run_synthetic_cell",
    "render_bars",
    "render_table",
    "summarise_gain",
    "write_csv",
]
