"""Sampling-based depth estimation (cf. Schnaitter et al., VLDB 2007).

The paper's related work motivates *depth estimation* — predicting how
many tuples a rank join will pull — as the input a query optimiser needs
to cost a plan.  This module provides the standard sampling-based
estimator for proximity rank join: run the operator on a few cheap
calibration points, fit a log-log linear (power-law) model

    sumDepths  ~=  a * K^b1 * rho^b2 * n^b3 ...

and predict unseen parameter points.  Power laws are the right family
here: the paper observes sublinear growth in K and polynomial growth in
density, which are straight lines in log-log space.

Usage::

    model = DepthModel(features=("k", "density"))
    model.fit(observations)          # [(params dict, sumDepths), ...]
    model.predict({"k": 20, "density": 80.0})
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["DepthModel", "calibration_observations"]


@dataclass
class DepthModel:
    """Log-log linear regression over named positive features."""

    features: tuple[str, ...]
    coef_: np.ndarray | None = field(default=None, repr=False)
    intercept_: float = 0.0
    residual_: float = 0.0

    def _design(self, params_list: list[dict]) -> np.ndarray:
        rows = []
        for params in params_list:
            row = []
            for f in self.features:
                value = float(params[f])
                if value <= 0:
                    raise ValueError(f"feature {f!r} must be positive, got {value}")
                row.append(np.log(value))
            rows.append(row)
        return np.array(rows, dtype=float)

    def fit(self, observations: list[tuple[dict, float]]) -> "DepthModel":
        """Fit on ``(params, sum_depths)`` pairs; returns self."""
        if len(observations) < len(self.features) + 1:
            raise ValueError(
                f"need at least {len(self.features) + 1} observations to fit "
                f"{len(self.features)} exponents plus an intercept"
            )
        params_list = [p for p, _ in observations]
        depths = np.array([float(d) for _, d in observations])
        if (depths <= 0).any():
            raise ValueError("sumDepths observations must be positive")
        x = self._design(params_list)
        x1 = np.hstack([x, np.ones((len(x), 1))])
        y = np.log(depths)
        sol, *_ = np.linalg.lstsq(x1, y, rcond=None)
        self.coef_ = sol[:-1]
        self.intercept_ = float(sol[-1])
        self.residual_ = float(np.sqrt(np.mean((x1 @ sol - y) ** 2)))
        return self

    def predict(self, params: dict) -> float:
        """Predicted sumDepths at ``params`` (must contain all features)."""
        if self.coef_ is None:
            raise RuntimeError("model is not fitted")
        x = self._design([params])[0]
        return float(np.exp(x @ self.coef_ + self.intercept_))

    def exponent(self, feature: str) -> float:
        """Fitted power-law exponent of one feature."""
        if self.coef_ is None:
            raise RuntimeError("model is not fitted")
        return float(self.coef_[self.features.index(feature)])


def calibration_observations(
    *,
    algorithm: str = "TBPA",
    ks: tuple[int, ...] = (1, 5, 20),
    densities: tuple[float, ...] = (20.0, 50.0),
    seeds: int = 2,
    n_tuples: int = 300,
) -> list[tuple[dict, float]]:
    """Cheap calibration runs over a small (K, density) grid.

    Returns ``(params, mean sumDepths)`` observations ready for
    :meth:`DepthModel.fit`.
    """
    from repro.core import AccessKind, EuclideanLogScoring, make_algorithm
    from repro.data import SyntheticConfig, generate_problem

    scoring = EuclideanLogScoring()
    observations = []
    for k in ks:
        for rho in densities:
            depths = []
            for seed in range(seeds):
                relations, query = generate_problem(
                    SyntheticConfig(density=rho, n_tuples=n_tuples, seed=seed)
                )
                result = make_algorithm(
                    algorithm, relations, scoring, query, k,
                    kind=AccessKind.DISTANCE,
                ).run()
                depths.append(result.sum_depths)
            observations.append(({"k": k, "density": rho}, float(np.mean(depths))))
    return observations
