"""Regenerate the paper's worked tables (Table 1 and Table 3).

These are not benchmark figures but the fully worked examples of
Sections 2-3: the three-relation instance, its eight combination scores,
and the fifteen partial-combination upper bounds.  Regenerating them
end-to-end is the sharpest correctness check the paper offers, and the
same numbers are asserted in ``tests/core/test_paper_examples.py``.
"""

from __future__ import annotations

import io

import numpy as np

from repro.core import EuclideanLogScoring, Relation, brute_force_topk
from repro.core.bounds.geometry import solve_completion

__all__ = ["paper_instance", "render_table1", "render_table3"]

_SCORING = EuclideanLogScoring(1.0, 1.0, 1.0)
_QUERY = np.zeros(2)


def paper_instance() -> list[Relation]:
    """The three relations of Table 1 (the tuples the paper shows)."""
    return [
        Relation("R1", [0.5, 1.0], [[0.0, -0.5], [0.0, 1.0]], sigma_max=1.0),
        Relation("R2", [1.0, 0.8], [[1.0, 1.0], [-2.0, 2.0]], sigma_max=1.0),
        Relation("R3", [1.0, 0.4], [[-1.0, 1.0], [-2.0, -2.0]], sigma_max=1.0),
    ]


def render_table1() -> str:
    """Table 1: all eight combinations sorted by aggregate score."""
    relations = paper_instance()
    combos = brute_force_topk(relations, _SCORING, _QUERY, k=8)
    out = io.StringIO()
    out.write("Table 1 — combinations of the worked example, S as in eq. (2)\n")
    out.write(f"{'combination':>30} {'S(tau)':>8}\n")
    for combo in combos:
        label = " x ".join(f"tau_{i+1}^({t.tid+1})" for i, t in enumerate(combo.tuples))
        out.write(f"{label:>30} {combo.score:8.1f}\n")
    return out.getvalue()


def render_table3() -> str:
    """Table 3: t(tau) for every partial combination and the subset maxima.

    Distances delta_i are those after the two pulls per relation the
    paper assumes (delta_1 = 1, delta_2 = delta_3 = 2 sqrt 2).
    """
    relations = paper_instance()
    deltas = {0: 1.0, 1: 2 * np.sqrt(2.0), 2: 2 * np.sqrt(2.0)}
    out = io.StringIO()
    out.write("Table 3 — partial combinations and their upper bounds\n")
    out.write(f"{'M':>10} {'tau':>22} {'t(tau)':>8} {'t_M':>8}\n")
    subsets: list[tuple[int, ...]] = [
        (), (0,), (1,), (2,), (0, 1), (0, 2), (1, 2),
    ]
    overall = -np.inf
    for members in subsets:
        rows = []
        choices = [(i,) for i in range(2)]
        keys = [()]
        for _ in members:
            keys = [k + c for k in keys for c in choices]
        for key in keys:
            seen = {
                rel: (relations[rel][tid].score, np.asarray(relations[rel][tid].vector))
                for rel, tid in zip(members, key)
            }
            unseen = {j: deltas[j] for j in range(3) if j not in members}
            sigma = {j: 1.0 for j in unseen}
            value = solve_completion(_SCORING, 3, _QUERY, seen, unseen, sigma).value
            label = (
                " x ".join(f"tau_{r+1}^({t+1})" for r, t in zip(members, key))
                or "<empty>"
            )
            rows.append((label, value))
        t_m = max(v for _, v in rows)
        overall = max(overall, t_m)
        m_label = "{" + ",".join(str(r + 1) for r in members) + "}"
        for idx, (label, value) in enumerate(rows):
            tm_cell = f"{t_m:8.1f}" if idx == 0 else " " * 8
            out.write(f"{m_label if idx == 0 else '':>10} {label:>22} {value:8.1f} {tm_cell}\n")
    out.write(f"\nTight bound t = {overall:.1f} (paper: -7.0); ")
    out.write("corner bound on the same state: -5.0 (Example 3.1).\n")
    return out.getvalue()
