"""One experiment definition per figure of the paper's Section 4.

Each ``fig3x`` function sweeps the parameter its figure varies (all others
at Table 2 defaults) and returns the list of :class:`CellResult` points.
sumDepths figures and CPU figures share cells — Figure 3(a)/(d) are two
views of the same runs — so the sweep functions return everything and the
report layer picks the metric.
"""

from __future__ import annotations

from typing import Callable

from repro.core import AccessKind
from repro.data.cities import city_names, city_problem
from repro.experiments.config import DEFAULTS, TESTED, ExperimentSettings
from repro.experiments.harness import CellResult, run_cell, run_synthetic_cell

__all__ = [
    "sweep_k",
    "sweep_dims",
    "sweep_density",
    "sweep_skew",
    "sweep_n_relations",
    "sweep_cities",
    "sweep_dominance_period",
    "FIGURES",
    "figure_cells",
]


def sweep_k(settings: ExperimentSettings) -> list[CellResult]:
    """Figure 3(a)/(d): number of results K in {1, 10, 50}."""
    return [
        run_synthetic_cell(
            f"K={k}",
            k=k,
            n_relations=DEFAULTS["n_relations"],
            dims=DEFAULTS["dims"],
            density=DEFAULTS["density"],
            skew=DEFAULTS["skew"],
            settings=settings,
        )
        for k in TESTED["k"]
    ]


def sweep_dims(settings: ExperimentSettings) -> list[CellResult]:
    """Figure 3(b)/(e): dimensionality d in {1, 2, 4, 8, 16}."""
    return [
        run_synthetic_cell(
            f"d={d}",
            k=DEFAULTS["k"],
            n_relations=DEFAULTS["n_relations"],
            dims=d,
            density=DEFAULTS["density"],
            skew=DEFAULTS["skew"],
            settings=settings,
        )
        for d in TESTED["dims"]
    ]


def sweep_density(settings: ExperimentSettings) -> list[CellResult]:
    """Figure 3(c)/(f): density rho in {20, 50, 100, 200}."""
    return [
        run_synthetic_cell(
            f"rho={int(rho)}",
            k=DEFAULTS["k"],
            n_relations=DEFAULTS["n_relations"],
            dims=DEFAULTS["dims"],
            density=rho,
            skew=DEFAULTS["skew"],
            settings=settings,
        )
        for rho in TESTED["density"]
    ]


def sweep_skew(settings: ExperimentSettings) -> list[CellResult]:
    """Figure 3(g)/(j): skewness rho1/rho2 in {1, 2, 4, 8}."""
    return [
        run_synthetic_cell(
            f"skew={int(s)}",
            k=DEFAULTS["k"],
            n_relations=DEFAULTS["n_relations"],
            dims=DEFAULTS["dims"],
            density=DEFAULTS["density"],
            skew=s,
            settings=settings,
        )
        for s in TESTED["skew"]
    ]


def sweep_n_relations(settings: ExperimentSettings) -> list[CellResult]:
    """Figure 3(h)/(k): number of relations n in {2, 3, 4}.

    The paper reports CBPA unable to finish n = 4 within five minutes;
    ``settings.max_pulls`` reproduces that cut-off (runs are flagged
    incomplete rather than silently truncated).
    """
    return [
        run_synthetic_cell(
            f"n={n}",
            k=DEFAULTS["k"],
            n_relations=n,
            dims=DEFAULTS["dims"],
            density=DEFAULTS["density"],
            skew=DEFAULTS["skew"],
            settings=settings,
        )
        for n in TESTED["n_relations"]
    ]


def sweep_cities(settings: ExperimentSettings) -> list[CellResult]:
    """Figure 3(i)/(l): the five city datasets, K = 10 (Appendix D.2).

    City datasets are fixed snapshots, so the averaging dimension is the
    single dataset (the paper also runs one query per city).
    """
    cells = []
    for code in city_names():
        cells.append(
            run_cell(
                code,
                [city_problem(code)],
                k=10,
                settings=settings,
            )
        )
    return cells


def sweep_dominance_period(
    settings: ExperimentSettings, n_relations: int
) -> list[CellResult]:
    """Figures 3(m)/(n): dominance period for n = 2 and n = 3.

    Only the tight-bound algorithms participate (dominance is a tight-
    bound refinement); period None is the paper's "infinity" bar.
    """
    cells = []
    for period in TESTED["dominance_period"]:
        label = "inf" if period is None else str(period)
        cells.append(
            run_synthetic_cell(
                f"period={label}",
                k=DEFAULTS["k"],
                n_relations=n_relations,
                dims=DEFAULTS["dims"],
                density=DEFAULTS["density"],
                skew=DEFAULTS["skew"],
                settings=settings,
                dominance_period=period,
                algorithms=("TBRR", "TBPA"),
            )
        )
    return cells


#: Figure id -> (sweep callable, metric, description).
FIGURES: dict[str, tuple[Callable[..., list[CellResult]], str, str]] = {
    "fig3a": (sweep_k, "sumDepths", "sumDepths vs number of results K"),
    "fig3b": (sweep_dims, "sumDepths", "sumDepths vs dimensionality d"),
    "fig3c": (sweep_density, "sumDepths", "sumDepths vs density rho"),
    "fig3d": (sweep_k, "cpu", "total CPU time vs number of results K"),
    "fig3e": (sweep_dims, "cpu", "total CPU time vs dimensionality d"),
    "fig3f": (sweep_density, "cpu", "total CPU time vs density rho"),
    "fig3g": (sweep_skew, "sumDepths", "sumDepths vs skewness rho1/rho2"),
    "fig3h": (sweep_n_relations, "sumDepths", "sumDepths vs number of relations n"),
    "fig3i": (sweep_cities, "sumDepths", "sumDepths on the five city datasets"),
    "fig3j": (sweep_skew, "cpu", "total CPU time vs skewness rho1/rho2"),
    "fig3k": (sweep_n_relations, "cpu", "total CPU time vs number of relations n"),
    "fig3l": (sweep_cities, "cpu", "total CPU time on the five city datasets"),
    "fig3m": (
        lambda settings: sweep_dominance_period(settings, 2),
        "cpu_split",
        "CPU split vs dominance period, n = 2",
    ),
    "fig3n": (
        lambda settings: sweep_dominance_period(settings, 3),
        "cpu_split",
        "CPU split vs dominance period, n = 3",
    ),
}

# Sweeps shared by a sumDepths/cpu figure pair: run once, report twice.
_SHARED = {
    "fig3d": "fig3a",
    "fig3e": "fig3b",
    "fig3f": "fig3c",
    "fig3j": "fig3g",
    "fig3k": "fig3h",
    "fig3l": "fig3i",
}


def figure_cells(
    figure: str,
    settings: ExperimentSettings,
    cache: dict[str, list[CellResult]] | None = None,
) -> list[CellResult]:
    """Run (or fetch from ``cache``) the sweep behind one figure id."""
    if figure not in FIGURES:
        raise KeyError(f"unknown figure {figure!r}; known: {sorted(FIGURES)}")
    canonical = _SHARED.get(figure, figure)
    if cache is not None and canonical in cache:
        return cache[canonical]
    sweep, _, _ = FIGURES[canonical]
    cells = sweep(settings)
    if cache is not None:
        cache[canonical] = cells
    return cells
