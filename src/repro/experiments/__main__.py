"""Command-line entry point: regenerate any figure of the paper.

Examples
--------
Regenerate Figure 3(a) with 5 seeds::

    python -m repro.experiments run --figure fig3a --seeds 5

Everything (writes text + CSV under results/)::

    python -m repro.experiments run --all --seeds 3 --out results
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.experiments.config import ExperimentSettings
from repro.experiments.figures import FIGURES, figure_cells
from repro.experiments.report import render_bars, render_table, summarise_gain, write_csv

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="proxrj",
        description="Proximity Rank Join experiment runner (VLDB 2010 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one figure or all of them")
    run.add_argument("--figure", choices=sorted(FIGURES), help="figure id (fig3a..fig3n)")
    run.add_argument("--all", action="store_true", help="run every figure")
    run.add_argument("--seeds", type=int, default=5, help="datasets per point")
    run.add_argument(
        "--max-pulls",
        type=int,
        default=600,
        help="per-run pull cap (reproduces the paper's n=4 CBPA timeout); 0 disables",
    )
    run.add_argument("--out", type=Path, default=None, help="directory for CSV output")
    run.add_argument(
        "--bars", action="store_true",
        help="also print ASCII bar charts (the paper's figures are bar charts)",
    )

    sub.add_parser("list", help="list available figures")
    sub.add_parser("table1", help="regenerate the paper's Table 1")
    sub.add_parser("table3", help="regenerate the paper's Table 3")

    ablation = sub.add_parser("ablation", help="run a beyond-the-paper ablation")
    ablation.add_argument(
        "name",
        choices=[
            "workload", "bound-period", "probe", "score-access",
            "approx-budget", "all",
        ],
        help="which ablation study to run",
    )
    ablation.add_argument("--seeds", type=int, default=5)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    if args.command == "ablation":
        from repro.experiments.ablations import ABLATIONS

        names = sorted(ABLATIONS) if args.name == "all" else [args.name]
        for name in names:
            print(ABLATIONS[name](seeds=args.seeds))
        return 0
    if args.command in ("table1", "table3"):
        from repro.experiments.paper_tables import render_table1, render_table3

        print(render_table1() if args.command == "table1" else render_table3())
        return 0
    if args.command == "list":
        for fig, (_, metric, desc) in sorted(FIGURES.items()):
            print(f"{fig}  [{metric:>9}]  {desc}")
        return 0

    if not args.all and not args.figure:
        print("error: pass --figure <id> or --all", file=sys.stderr)
        return 2
    figures = sorted(FIGURES) if args.all else [args.figure]
    settings = ExperimentSettings(
        seeds=args.seeds,
        max_pulls=args.max_pulls if args.max_pulls > 0 else None,
    )
    cache: dict = {}
    for fig in figures:
        _, metric, desc = FIGURES[fig]
        start = time.perf_counter()
        cells = figure_cells(fig, settings, cache)
        elapsed = time.perf_counter() - start
        print(render_table(cells, metric, title=f"{fig}: {desc}  ({elapsed:.1f}s)"))
        if args.bars and metric in ("sumDepths", "cpu"):
            print(render_bars(cells, metric))
        if metric == "sumDepths" and all(
            {"TBPA", "CBPA"} <= set(c.algorithms()) for c in cells
        ):
            gains = summarise_gain(cells, "TBPA", "CBPA")
            if gains:
                lo, hi = min(gains), max(gains)
                print(f"  TBPA gain over CBPA: {lo:.0%} .. {hi:.0%}\n")
        if args.out is not None:
            write_csv(cells, args.out / f"{fig}.csv")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
