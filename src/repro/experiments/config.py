"""Operating parameters of the experimental study (Table 2).

Defaults are the bold entries; ``TESTED`` holds the sweep values of each
figure.  ``ExperimentSettings`` collects the harness-level knobs that the
paper fixes implicitly (number of averaged datasets, relation depth,
aggregation weights).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["DEFAULTS", "TESTED", "ExperimentSettings"]

#: Table 2 defaults (bold entries).
DEFAULTS = {
    "k": 10,
    "dims": 2,
    "density": 50.0,
    "skew": 1.0,
    "n_relations": 2,
}

#: Table 2 tested values.
TESTED = {
    "k": (1, 10, 50),
    "dims": (1, 2, 4, 8, 16),
    "density": (20.0, 50.0, 100.0, 200.0),
    "skew": (1.0, 2.0, 4.0, 8.0),
    "n_relations": (2, 3, 4),
    "dominance_period": (1, 2, 4, 8, 12, 16, None),  # None = infinity
}


@dataclass(frozen=True)
class ExperimentSettings:
    """Harness-level configuration shared by all figures.

    Attributes
    ----------
    seeds:
        Number of independently generated datasets to average over (the
        paper uses ten).
    n_tuples:
        Relation depth of the synthetic generator — large enough that no
        run exhausts a relation, irrelevant otherwise (Appendix D.1 notes
        the data-set size is not an operating parameter).
    w_s, w_q, w_mu:
        Aggregation-function weights (paper examples use 1, 1, 1).
    max_pulls:
        Per-run safety cap reproducing the paper's five-minute timeout
        for CBPA at n = 4; ``None`` disables.
    algorithms:
        Which of CBRR/CBPA/TBRR/TBPA to run.
    """

    seeds: int = 10
    n_tuples: int = 400
    w_s: float = 1.0
    w_q: float = 1.0
    w_mu: float = 1.0
    max_pulls: int | None = None
    algorithms: tuple[str, ...] = ("CBRR", "CBPA", "TBRR", "TBPA")

    def __post_init__(self) -> None:
        if self.seeds < 1:
            raise ValueError("seeds must be >= 1")
        if self.n_tuples < 1:
            raise ValueError("n_tuples must be >= 1")
