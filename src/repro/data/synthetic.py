"""Synthetic workload generator (Appendix D.1).

Tuples get a score sampled uniformly and a feature vector sampled from a
d-dimensional uniform distribution centred at 0.  The operative parameter
is the *density* ``rho`` — tuples per unit of volume — not the relation
size: solving a top-K problem only ever reads a prefix, so we size the
sampling cube to hold ``n_tuples`` at exactly density ``rho`` (side
``L = (n_tuples / rho) ** (1/d)``), giving the paper's density semantics
while keeping relations deep enough that no run exhausts them.

Skewness ``rho_1 / rho_2`` (Figure 3(g)/(j)) is produced by scaling the
two relations' densities to ``rho * sqrt(skew)`` and ``rho / sqrt(skew)``,
preserving the geometric-mean density.

Scores are uniform on ``[score_floor, 1]``; the floor (default 0.05)
keeps ``ln(sigma)`` finite for the paper's aggregation function (2) —
the paper's own example assumes ``sigma in (0, 1]``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.relation import Relation
from repro.core.storage import PARTITIONERS, ShardedRelation

__all__ = ["SyntheticConfig", "generate_relation", "generate_problem"]


@dataclass(frozen=True)
class SyntheticConfig:
    """Parameters of one synthetic proximity-rank-join instance.

    Defaults are the bold entries of the paper's Table 2.  ``shards > 1``
    produces :class:`~repro.core.storage.ShardedRelation` instances
    (identical tuples, partitioned storage) — the sampled data is the
    same for every shard count, so sharded and single-shard runs over one
    config are directly comparable.
    """

    n_relations: int = 2
    dims: int = 2
    density: float = 50.0
    skew: float = 1.0
    n_tuples: int = 400
    score_floor: float = 0.05
    seed: int = 0
    shards: int = 1
    partition: str = "hash"
    #: Serving-layer knobs: when ``remote_latency > 0`` the experiment
    #: harness serves the generated relations through simulated remote
    #: endpoints (per-call latency ``remote_latency + U(0,
    #: remote_jitter)`` simulated seconds, ``remote_page_size`` tuples
    #: per page).  The sampled data itself is identical for every
    #: setting, so remote and local cells are directly comparable.
    remote_latency: float = 0.0
    remote_jitter: float = 0.0
    remote_page_size: int = 10

    def __post_init__(self) -> None:
        if self.n_relations < 1:
            raise ValueError("n_relations must be >= 1")
        if self.dims < 1:
            raise ValueError("dims must be >= 1")
        if self.density <= 0:
            raise ValueError("density must be positive")
        if self.skew < 1:
            raise ValueError("skew is a ratio rho_1/rho_2 >= 1")
        if self.n_tuples < 1:
            raise ValueError("n_tuples must be >= 1")
        if not 0 < self.score_floor < 1:
            raise ValueError("score_floor must be in (0, 1)")
        if self.shards < 1:
            raise ValueError("shards must be >= 1")
        if self.partition not in PARTITIONERS:
            raise ValueError(
                f"unknown partition scheme {self.partition!r}; "
                f"choose from {PARTITIONERS}"
            )
        if self.remote_latency < 0 or self.remote_jitter < 0:
            raise ValueError("remote latency parameters must be non-negative")
        if self.remote_page_size < 1:
            raise ValueError("remote_page_size must be >= 1")

    def densities(self) -> list[float]:
        """Per-relation densities implementing the skew parameter.

        Relations beyond the second use the base density, matching the
        paper (skew is only exercised for ``n = 2``).
        """
        out = [self.density] * self.n_relations
        if self.skew > 1 and self.n_relations >= 2:
            s = float(np.sqrt(self.skew))
            out[0] = self.density * s
            out[1] = self.density / s
        return out


def generate_relation(
    name: str,
    rng: np.random.Generator,
    *,
    dims: int,
    density: float,
    n_tuples: int,
    score_floor: float,
    shards: int = 1,
    partition: str = "hash",
) -> Relation:
    """One relation with ``n_tuples`` points at uniform density
    ``density`` in a cube centred at the origin.

    ``shards > 1`` partitions the same sampled tuples across shards (the
    rng draw is shard-count independent)."""
    side = (n_tuples / density) ** (1.0 / dims)
    vectors = rng.uniform(-side / 2.0, side / 2.0, size=(n_tuples, dims))
    scores = rng.uniform(score_floor, 1.0, size=n_tuples)
    if shards > 1:
        return ShardedRelation(
            name, scores, vectors, sigma_max=1.0, shards=shards, partition=partition
        )
    return Relation(name, scores, vectors, sigma_max=1.0)


def generate_problem(config: SyntheticConfig) -> tuple[list[Relation], np.ndarray]:
    """Relations plus the query vector (the origin, as in Appendix D.1)."""
    rng = np.random.default_rng(config.seed)
    relations = []
    for i, rho in enumerate(config.densities()):
        relations.append(
            generate_relation(
                f"R{i+1}",
                rng,
                dims=config.dims,
                density=rho,
                n_tuples=config.n_tuples,
                score_floor=config.score_floor,
                shards=config.shards,
                partition=config.partition,
            )
        )
    query = np.zeros(config.dims)
    return relations, query
