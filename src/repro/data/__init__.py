"""Data substrate: the Appendix D.1 synthetic generator, the Appendix
D.2 city POI datasets (deterministic substitute for the YQL crawls),
adversarial workload generators and dataset persistence."""

from repro.data.cities import CITIES, CityLayout, city_names, city_problem
from repro.data.generators import (
    anticorrelated_problem,
    clustered_problem,
    correlated_problem,
)
from repro.data.io import (
    load_problem_durable,
    load_problem_npz,
    load_relation_csv,
    save_problem_durable,
    save_problem_npz,
    save_relation_csv,
)
from repro.data.synthetic import SyntheticConfig, generate_problem, generate_relation

__all__ = [
    "CITIES",
    "CityLayout",
    "city_names",
    "city_problem",
    "anticorrelated_problem",
    "clustered_problem",
    "correlated_problem",
    "load_problem_durable",
    "load_problem_npz",
    "load_relation_csv",
    "save_problem_durable",
    "save_problem_npz",
    "save_relation_csv",
    "SyntheticConfig",
    "generate_problem",
    "generate_relation",
]
