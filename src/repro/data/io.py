"""Dataset persistence: save and load relations as CSV or NPZ.

A reproduction package is only usable if the exact datasets behind a
result can be checked in and reloaded.  Two formats are supported:

* **CSV** — one file per relation, human-diffable: a ``#`` header records
  the relation name and ``sigma_max``; columns are ``score, x0..x{d-1}``
  plus optional attribute columns (stringified).
* **NPZ** — one file per *problem* (all relations + the query vector),
  compact and lossless; the format the experiment harness uses for
  snapshotting.
* **Durable store** — one *directory* per problem: every relation
  persisted through :mod:`repro.core.durable` (immutable columnar shard
  files behind a shared WAL-mode catalog) plus the query vector.
  Unlike CSV/NPZ this format is also the live serving tier — relations
  loaded from it are memmap-backed :class:`~repro.core.durable.
  DurableRelation` objects with persisted access orders, not in-memory
  copies.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path

import numpy as np

from repro.core.relation import Relation

__all__ = [
    "save_relation_csv",
    "load_relation_csv",
    "save_problem_npz",
    "load_problem_npz",
    "save_problem_durable",
    "load_problem_durable",
]

QUERY_FILENAME = "query.npy"


def save_relation_csv(relation: Relation, path: Path | str) -> None:
    """Write one relation to ``path`` (CSV with a ``#``-comment header)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    attr_keys = sorted({k for t in relation for k in t.attrs})
    with open(path, "w", newline="") as fh:
        fh.write(f"# relation={relation.name} sigma_max={relation.sigma_max!r}\n")
        writer = csv.writer(fh)
        writer.writerow(
            ["score"] + [f"x{i}" for i in range(relation.dim)] + attr_keys
        )
        for t in relation:
            writer.writerow(
                [repr(t.score)]
                + [repr(float(v)) for v in t.vector]
                + [json.dumps(t.attrs.get(k)) for k in attr_keys]
            )


def load_relation_csv(path: Path | str) -> Relation:
    """Load a relation written by :func:`save_relation_csv`."""
    path = Path(path)
    with open(path, newline="") as fh:
        header = fh.readline()
        if not header.startswith("# relation="):
            raise ValueError(f"{path}: missing relation header line")
        meta = dict(
            part.split("=", 1) for part in header[2:].strip().split(" ") if "=" in part
        )
        name = meta["relation"]
        sigma_max = float(meta["sigma_max"])
        reader = csv.reader(fh)
        columns = next(reader)
        dim = sum(1 for c in columns if c.startswith("x") and c[1:].isdigit())
        attr_keys = columns[1 + dim :]
        scores: list[float] = []
        vectors: list[list[float]] = []
        attrs: list[dict] = []
        for row in reader:
            if not row:
                continue
            scores.append(float(row[0]))
            vectors.append([float(v) for v in row[1 : 1 + dim]])
            attrs.append(
                {
                    k: json.loads(raw)
                    for k, raw in zip(attr_keys, row[1 + dim :])
                    if raw != "null"
                }
            )
    return Relation(
        name, scores, np.array(vectors, dtype=float),
        attrs=attrs, sigma_max=sigma_max,
    )


def save_problem_npz(
    relations: list[Relation], query: np.ndarray, path: Path | str
) -> None:
    """Write a whole join problem (relations + query) to one NPZ file.

    Attribute dictionaries are JSON-encoded per relation so round trips
    are lossless for JSON-representable values.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload: dict[str, np.ndarray] = {
        "query": np.asarray(query, dtype=float),
        "names": np.array([r.name for r in relations]),
        "sigma_max": np.array([r.sigma_max for r in relations]),
    }
    for idx, rel in enumerate(relations):
        payload[f"scores_{idx}"] = np.array([t.score for t in rel])
        payload[f"vectors_{idx}"] = np.array([t.vector for t in rel])
        payload[f"attrs_{idx}"] = np.array(
            [json.dumps(t.attrs) for t in rel]
        )
    np.savez_compressed(path, **payload)


def save_problem_durable(
    relations: list[Relation], query: np.ndarray, path: Path | str
) -> Path:
    """Persist a whole join problem into a durable store directory.

    Every relation is persisted through :func:`~repro.core.durable.
    persist_relation` (they share the directory's catalog); the query
    vector lands next to it as ``query.npy``.  Re-persisting into an
    existing store bumps each relation's generation atomically.
    """
    path = Path(path)
    path.mkdir(parents=True, exist_ok=True)
    from repro.core.durable import persist_relation

    for rel in relations:
        persist_relation(rel, path)
    np.save(path / QUERY_FILENAME, np.asarray(query, dtype=float))
    return path


def load_problem_durable(
    path: Path | str,
    *,
    memory_budget: int | None = None,
    verify: bool = False,
    read_only: bool = False,
) -> tuple[list[Relation], np.ndarray]:
    """Open a problem written by :func:`save_problem_durable`.

    Relations come back as memmap-backed
    :class:`~repro.core.durable.DurableRelation` objects, in the order
    they were first persisted — ready to serve queries (or warm-start a
    service) without loading the columns into RAM.  ``read_only=True``
    opens every catalog connection without write access (the pool-worker
    contract: shard memmaps shared through the page cache, no writer
    lock ever taken).
    """
    path = Path(path)
    from repro.core.durable import CATALOG_FILENAME, ShardCatalog, open_relation

    with ShardCatalog(path / CATALOG_FILENAME, read_only=read_only) as catalog:
        names = catalog.relation_names()
    relations: list[Relation] = [
        open_relation(
            path, name, memory_budget=memory_budget, verify=verify,
            read_only=read_only,
        )
        for name in names
    ]
    query = np.load(path / QUERY_FILENAME)
    return relations, query


def load_problem_npz(path: Path | str) -> tuple[list[Relation], np.ndarray]:
    """Load a problem written by :func:`save_problem_npz`."""
    with np.load(Path(path), allow_pickle=False) as data:
        names = [str(n) for n in data["names"]]
        sigma_max = data["sigma_max"]
        relations = []
        for idx, name in enumerate(names):
            attrs = [json.loads(str(a)) for a in data[f"attrs_{idx}"]]
            relations.append(
                Relation(
                    name,
                    data[f"scores_{idx}"].tolist(),
                    data[f"vectors_{idx}"],
                    attrs=attrs,
                    sigma_max=float(sigma_max[idx]),
                )
            )
        query = data["query"]
    return relations, query
