"""Additional workload generators beyond Appendix D.1.

The paper's synthetic study samples feature vectors uniformly and scores
independently.  Real services violate both assumptions, and the relative
behaviour of the bounding schemes shifts when they do.  These generators
produce the standard adversarial workloads of the top-k literature so
the ablation experiments (EXPERIMENTS.md, "beyond the paper") can probe
them:

* :func:`clustered_problem` — Gaussian-mixture geometry: tuples clump,
  so centroid distances within a cluster are tiny and across clusters
  huge; the corner bound's zero-centroid assumption is at its worst.
* :func:`correlated_problem` — score correlated with distance from the
  query (the good stuff is nearby); both access orders agree, making
  every algorithm cheap.
* :func:`anticorrelated_problem` — score *anti*-correlated with distance
  (the good stuff is far away): distance access keeps surfacing
  low-score tuples, the classic hard regime for threshold algorithms.
"""

from __future__ import annotations

import numpy as np

from repro.core.relation import Relation
from repro.core.storage import ShardedRelation

__all__ = [
    "clustered_problem",
    "correlated_problem",
    "anticorrelated_problem",
]

_SCORE_FLOOR = 0.05


def _finish_scores(raw: np.ndarray) -> np.ndarray:
    return np.clip(raw, _SCORE_FLOOR, 1.0)


def _make_relation(
    name: str,
    scores: np.ndarray,
    vectors: np.ndarray,
    *,
    shards: int,
    partition: str,
) -> Relation:
    """Plain relation, or a sharded one when ``shards > 1`` (same tuples
    either way, so sharded and single-shard workloads stay comparable)."""
    if shards > 1:
        return ShardedRelation(
            name, scores, vectors, sigma_max=1.0, shards=shards, partition=partition
        )
    return Relation(name, scores, vectors, sigma_max=1.0)


def clustered_problem(
    *,
    n_relations: int = 2,
    dims: int = 2,
    n_tuples: int = 300,
    n_clusters: int = 5,
    cluster_spread: float = 0.15,
    region: float = 4.0,
    seed: int = 0,
    shards: int = 1,
    partition: str = "hash",
) -> tuple[list[Relation], np.ndarray]:
    """Gaussian-mixture geometry shared across relations.

    All relations draw from the *same* cluster centres (as co-located
    POI types do), so high-scoring combinations exist inside clusters
    and the mutual-proximity term dominates the ranking.
    """
    rng = np.random.default_rng(seed)
    centres = rng.uniform(-region / 2, region / 2, size=(n_clusters, dims))
    relations = []
    for i in range(n_relations):
        assignment = rng.integers(0, n_clusters, size=n_tuples)
        vectors = centres[assignment] + rng.normal(
            scale=cluster_spread, size=(n_tuples, dims)
        )
        scores = _finish_scores(rng.uniform(0.0, 1.0, n_tuples))
        relations.append(
            _make_relation(
                f"R{i+1}", scores, vectors, shards=shards, partition=partition
            )
        )
    return relations, np.zeros(dims)


def correlated_problem(
    *,
    n_relations: int = 2,
    dims: int = 2,
    n_tuples: int = 300,
    region: float = 4.0,
    noise: float = 0.1,
    seed: int = 0,
    shards: int = 1,
    partition: str = "hash",
) -> tuple[list[Relation], np.ndarray]:
    """Scores decay with distance from the query (correlated regime)."""
    rng = np.random.default_rng(seed)
    half_diag = region / 2 * np.sqrt(dims)
    relations = []
    for i in range(n_relations):
        vectors = rng.uniform(-region / 2, region / 2, size=(n_tuples, dims))
        dist = np.linalg.norm(vectors, axis=1)
        scores = _finish_scores(
            1.0 - dist / half_diag + rng.normal(scale=noise, size=n_tuples)
        )
        relations.append(
            _make_relation(
                f"R{i+1}", scores, vectors, shards=shards, partition=partition
            )
        )
    return relations, np.zeros(dims)


def anticorrelated_problem(
    *,
    n_relations: int = 2,
    dims: int = 2,
    n_tuples: int = 300,
    region: float = 4.0,
    noise: float = 0.1,
    seed: int = 0,
    shards: int = 1,
    partition: str = "hash",
) -> tuple[list[Relation], np.ndarray]:
    """Scores *grow* with distance from the query (adversarial regime).

    Distance-based access yields poor scores first and score-based access
    yields far-away tuples first, so no prefix is good on both axes —
    the regime where a tight bound pays off most.
    """
    rng = np.random.default_rng(seed)
    half_diag = region / 2 * np.sqrt(dims)
    relations = []
    for i in range(n_relations):
        vectors = rng.uniform(-region / 2, region / 2, size=(n_tuples, dims))
        dist = np.linalg.norm(vectors, axis=1)
        scores = _finish_scores(
            dist / half_diag + rng.normal(scale=noise, size=n_tuples)
        )
        relations.append(
            _make_relation(
                f"R{i+1}", scores, vectors, shards=shards, partition=partition
            )
        )
    return relations, np.zeros(dims)
