"""City POI datasets (the Appendix D.2 substitute).

The paper fed its real-data experiment with hotels, restaurants and
theaters crawled through the YQL console from Yahoo! Local for five US
cities, querying from a landmark in each.  That service was shut down
years ago and this environment is offline, so we substitute a
deterministic synthetic generator that preserves what the experiment
actually exercises:

* ``d = 2`` geographic feature vectors (kilometres east/north of the city
  centre — a local tangent-plane projection of lat/lon, which is what any
  distance-based service effectively serves);
* three relations of different *types* with realistic, different sizes
  and densities (restaurants outnumber theaters roughly 10:1);
* clustered, non-uniform geometry: each POI type concentrates around a
  handful of districts (downtown, waterfront, ...), with type-dependent
  spread — the skewed-density regime where the adaptive pulling strategy
  shines in the paper's Figure 3(i);
* bounded ratings in (0, 1] used as scores (customer ratings in the
  paper), denser near the top of the scale as real rating data is.

City layouts (district centres, counts, seeds) are fixed constants, so
"San Francisco" is the same dataset in every run — like a crawl snapshot
checked into a repository.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.relation import Relation

__all__ = ["CITIES", "CityLayout", "city_problem", "city_names"]

_TYPES = ("hotels", "restaurants", "theaters")


@dataclass(frozen=True)
class CityLayout:
    """Deterministic description of one city's POI geography.

    ``districts`` are (east_km, north_km, spread_km, weight) clusters;
    ``counts`` are the number of POIs per type; ``landmark`` is the query
    point (e.g. Fisherman's Wharf for San Francisco).
    """

    name: str
    code: str
    districts: tuple[tuple[float, float, float, float], ...]
    counts: dict[str, int]
    landmark: tuple[float, float]
    seed: int


CITIES: dict[str, CityLayout] = {
    "SF": CityLayout(
        name="San Francisco",
        code="SF",
        districts=(
            (0.0, 0.0, 1.2, 0.4),     # Union Square / downtown
            (-1.5, 2.5, 0.9, 0.3),    # Fisherman's Wharf / North Beach
            (2.5, -1.0, 1.5, 0.2),    # Mission
            (-3.0, -0.5, 1.8, 0.1),   # Sunset
        ),
        counts={"hotels": 120, "restaurants": 600, "theaters": 45},
        landmark=(-1.6, 2.7),  # Fisherman's Wharf
        seed=101,
    ),
    "NY": CityLayout(
        name="New York",
        code="NY",
        districts=(
            (0.0, 0.0, 1.0, 0.35),    # Midtown
            (0.5, -4.0, 1.2, 0.35),   # Downtown / Battery
            (-1.0, 3.5, 1.5, 0.2),    # Upper West Side
            (3.0, -2.0, 2.0, 0.1),    # Brooklyn fringe
        ),
        counts={"hotels": 220, "restaurants": 900, "theaters": 80},
        landmark=(0.4, -4.2),  # Battery Park
        seed=102,
    ),
    "BO": CityLayout(
        name="Boston",
        code="BO",
        districts=(
            (0.0, 0.0, 0.8, 0.5),     # Downtown / Faneuil Hall
            (-1.2, 0.8, 0.7, 0.3),    # Back Bay
            (1.5, 1.5, 1.2, 0.2),     # Cambridge side
        ),
        counts={"hotels": 90, "restaurants": 420, "theaters": 30},
        landmark=(0.1, 0.2),  # Faneuil Hall
        seed=103,
    ),
    "DA": CityLayout(
        name="Dallas",
        code="DA",
        districts=(
            (0.0, 0.0, 1.5, 0.4),     # Downtown
            (2.0, 3.0, 2.0, 0.3),     # Uptown sprawl
            (-4.0, 1.0, 2.5, 0.3),    # West
        ),
        counts={"hotels": 110, "restaurants": 380, "theaters": 25},
        landmark=(0.3, -0.2),  # Dealey Plaza
        seed=104,
    ),
    "HO": CityLayout(
        name="Honolulu",
        code="HO",
        districts=(
            (0.0, 0.0, 0.7, 0.6),     # Waikiki
            (-2.5, 0.5, 1.0, 0.3),    # Downtown
            (2.0, 1.0, 1.5, 0.1),     # Diamond Head side
        ),
        counts={"hotels": 140, "restaurants": 320, "theaters": 15},
        landmark=(0.0, 0.1),  # Waikiki Beach
        seed=105,
    ),
}

# Per-type geometry adjustments: hotels hug the districts, restaurants
# spill wider, theaters are few and central.
_TYPE_SPREAD = {"hotels": 0.8, "restaurants": 1.3, "theaters": 0.6}
_TYPE_NAMES = {
    "hotels": ("Grand", "Plaza", "Harbor", "Park", "Royal", "Bay"),
    "restaurants": ("Trattoria", "Bistro", "Diner", "Sushi", "Grill", "Cantina"),
    "theaters": ("Odeon", "Rialto", "Majestic", "Orpheum", "Lyric", "Cine"),
}


def city_names() -> list[str]:
    """City codes in the paper's display order (Figure 3(i)/(l))."""
    return ["SF", "NY", "BO", "DA", "HO"]


def _sample_ratings(rng: np.random.Generator, n: int) -> np.ndarray:
    """Ratings in (0, 1], skewed towards the top like real review data
    (a Beta(5, 2) shape, floored away from 0 to keep ln finite)."""
    raw = rng.beta(5.0, 2.0, size=n)
    return np.clip(raw, 0.05, 1.0)


def _sample_positions(
    rng: np.random.Generator, layout: CityLayout, n: int, spread_factor: float
) -> np.ndarray:
    weights = np.array([d[3] for d in layout.districts], dtype=float)
    weights = weights / weights.sum()
    choices = rng.choice(len(layout.districts), size=n, p=weights)
    out = np.zeros((n, 2))
    for idx, (cx, cy, sd, _) in enumerate(layout.districts):
        mask = choices == idx
        count = int(mask.sum())
        if count:
            out[mask] = rng.normal(
                loc=(cx, cy), scale=sd * spread_factor, size=(count, 2)
            )
    return out


def city_problem(code: str) -> tuple[list[Relation], np.ndarray]:
    """Hotels/restaurants/theaters relations and the landmark query.

    Raises ``KeyError`` for unknown city codes; see :func:`city_names`.
    """
    try:
        layout = CITIES[code.upper()]
    except KeyError:
        raise KeyError(
            f"unknown city {code!r}; known cities: {city_names()}"
        ) from None
    rng = np.random.default_rng(layout.seed)
    relations = []
    for poi_type in _TYPES:
        n = layout.counts[poi_type]
        positions = _sample_positions(rng, layout, n, _TYPE_SPREAD[poi_type])
        ratings = _sample_ratings(rng, n)
        names = _TYPE_NAMES[poi_type]
        attrs = [
            {"name": f"{names[i % len(names)]} {layout.code}-{i:03d}", "type": poi_type}
            for i in range(n)
        ]
        relations.append(
            Relation(poi_type, ratings, positions, attrs=attrs, sigma_max=1.0)
        )
    return relations, np.array(layout.landmark, dtype=float)
