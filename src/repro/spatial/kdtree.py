"""A k-d tree with best-first incremental nearest-neighbour traversal.

The paper's distance-based access kind returns tuples in increasing order
of distance from the query.  A remote service does this natively; locally
we either pre-sort (fine for small relations) or, as real spatial engines
do, walk a spatial index incrementally.  The related work the paper cites
(Hjaltason & Samet's incremental distance joins) uses R-trees; offline we
implement the same *incremental best-first* traversal over a k-d tree,
which offers the identical access interface: a stream of (distance, item)
pairs in non-decreasing distance order, produced lazily.

The tree stores points with opaque payloads and supports:

* :meth:`KDTree.nearest` — classic k-NN queries,
* :meth:`KDTree.iter_nearest` — the incremental generator used by
  :class:`repro.core.access.DistanceAccess`,
* :meth:`KDTree.range_query` — all points within a radius.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any, Iterator, Sequence

import numpy as np

__all__ = ["KDTree", "KDNode"]

_LEAF_SIZE = 8


@dataclass
class KDNode:
    """A node of the k-d tree.

    Internal nodes split on ``axis`` at ``threshold``; leaves hold row
    indices into the tree's point array.  ``lo``/``hi`` give the node's
    bounding box, used to lower-bound distances during best-first search.
    """

    lo: np.ndarray
    hi: np.ndarray
    axis: int = -1
    threshold: float = 0.0
    left: "KDNode | None" = None
    right: "KDNode | None" = None
    indices: np.ndarray | None = None

    @property
    def is_leaf(self) -> bool:
        return self.indices is not None

    def min_sqdist(self, query: np.ndarray) -> float:
        """Squared distance from ``query`` to this node's bounding box."""
        clipped = np.clip(query, self.lo, self.hi)
        d = query - clipped
        return float(d @ d)


class KDTree:
    """Static k-d tree over a set of d-dimensional points.

    Parameters
    ----------
    points:
        Array-like of shape ``(n, d)``.
    payloads:
        Optional sequence of ``n`` opaque objects returned alongside each
        point.  Defaults to the row index.
    leaf_size:
        Maximum number of points stored in a leaf.
    """

    def __init__(
        self,
        points: np.ndarray,
        payloads: Sequence[Any] | None = None,
        *,
        leaf_size: int = _LEAF_SIZE,
    ) -> None:
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        if pts.ndim != 2:
            raise ValueError(f"points must be 2-D, got shape {pts.shape}")
        if payloads is not None and len(payloads) != len(pts):
            raise ValueError(
                f"got {len(pts)} points but {len(payloads)} payloads"
            )
        if leaf_size < 1:
            raise ValueError("leaf_size must be >= 1")
        self._points = pts
        self._payloads = list(payloads) if payloads is not None else list(range(len(pts)))
        self._leaf_size = leaf_size
        self._root: KDNode | None = None
        if len(pts) > 0:
            self._root = self._build(np.arange(len(pts)))

    # -- construction ---------------------------------------------------

    def _build(self, idx: np.ndarray) -> KDNode:
        pts = self._points[idx]
        lo = pts.min(axis=0)
        hi = pts.max(axis=0)
        if len(idx) <= self._leaf_size:
            return KDNode(lo=lo, hi=hi, indices=idx)
        spans = hi - lo
        axis = int(np.argmax(spans))
        if spans[axis] <= 0.0:
            # All points coincide; keep them in one leaf to avoid an
            # unbounded recursion on duplicate data.
            return KDNode(lo=lo, hi=hi, indices=idx)
        order = np.argsort(pts[:, axis], kind="stable")
        half = len(idx) // 2
        left_idx = idx[order[:half]]
        right_idx = idx[order[half:]]
        threshold = float(pts[order[half], axis])
        node = KDNode(lo=lo, hi=hi, axis=axis, threshold=threshold)
        node.left = self._build(left_idx)
        node.right = self._build(right_idx)
        return node

    # -- basic introspection ---------------------------------------------

    def __len__(self) -> int:
        return len(self._points)

    @property
    def points(self) -> np.ndarray:
        """The ``(n, d)`` array the tree was built over (do not mutate)."""
        return self._points

    # -- queries ----------------------------------------------------------

    def iter_nearest(self, query: np.ndarray) -> Iterator[tuple[float, Any]]:
        """Yield ``(distance, payload)`` in non-decreasing distance order.

        This is the incremental best-first traversal of Hjaltason & Samet:
        a single priority queue holds both unexpanded nodes (keyed by the
        distance to their bounding box) and individual points (keyed by
        their true distance).  Points are emitted exactly when they reach
        the front of the queue, which guarantees global ordering while
        expanding only the parts of the tree the consumer actually needs.
        """
        if self._root is None:
            return
        q = np.asarray(query, dtype=float)
        if q.shape != (self._points.shape[1],):
            raise ValueError(
                f"query has shape {q.shape}, expected ({self._points.shape[1]},)"
            )
        counter = itertools.count()
        # Entries: (sqdist, tiebreak, kind, object); kind 0 = point, 1 = node,
        # so coincident point/node keys emit the point first.
        heap: list[tuple[float, int, int, Any]] = [
            (self._root.min_sqdist(q), next(counter), 1, self._root)
        ]
        while heap:
            sqdist, _, kind, obj = heapq.heappop(heap)
            if kind == 0:
                yield float(np.sqrt(sqdist)), self._payloads[obj]
                continue
            node: KDNode = obj
            if node.is_leaf:
                assert node.indices is not None
                diffs = self._points[node.indices] - q
                sq = np.einsum("ij,ij->i", diffs, diffs)
                for i, s in zip(node.indices, sq):
                    heapq.heappush(heap, (float(s), next(counter), 0, int(i)))
            else:
                for child in (node.left, node.right):
                    assert child is not None
                    heapq.heappush(
                        heap, (child.min_sqdist(q), next(counter), 1, child)
                    )

    def nearest(self, query: np.ndarray, k: int = 1) -> list[tuple[float, Any]]:
        """Return the ``k`` nearest ``(distance, payload)`` pairs."""
        if k < 1:
            raise ValueError("k must be >= 1")
        out = []
        for item in self.iter_nearest(query):
            out.append(item)
            if len(out) == k:
                break
        return out

    def range_query(self, query: np.ndarray, radius: float) -> list[tuple[float, Any]]:
        """All ``(distance, payload)`` with distance <= radius, sorted."""
        if radius < 0:
            raise ValueError("radius must be non-negative")
        out = []
        for dist, payload in self.iter_nearest(query):
            if dist > radius:
                break
            out.append((dist, payload))
        return out
