"""Uniform grid index with incremental nearest-neighbour traversal.

The second classic spatial index after trees: space is cut into
equal-sided cells and queries expand outward ring by ring.  Grids beat
trees on uniformly dense, low-dimensional data (exactly the paper's
synthetic workload) and degrade gracefully elsewhere; having two
independently implemented indexes with the *same* streaming interface
also gives the test suite a strong cross-check for the distance-access
substrate.

The incremental traversal mirrors :meth:`repro.spatial.kdtree.KDTree.
iter_nearest`: a priority queue holds whole cells keyed by the distance
to their box and individual points keyed by true distance; a cell's
points are only materialised when the cell reaches the front, so the
stream is lazy and globally ordered.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Iterator, Sequence

import numpy as np

__all__ = ["GridIndex"]

_TARGET_POINTS_PER_CELL = 4.0


class GridIndex:
    """Static uniform grid over ``(n, d)`` points.

    Parameters
    ----------
    points:
        Array-like of shape ``(n, d)``.
    payloads:
        Optional per-point payloads (defaults to row indices).
    cell_size:
        Side length of the cells; derived from the data density when
        omitted (aiming at ~4 points per occupied cell).
    """

    def __init__(
        self,
        points: np.ndarray,
        payloads: Sequence[Any] | None = None,
        *,
        cell_size: float | None = None,
    ) -> None:
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        if pts.ndim != 2:
            raise ValueError(f"points must be 2-D, got shape {pts.shape}")
        if payloads is not None and len(payloads) != len(pts):
            raise ValueError(f"got {len(pts)} points but {len(payloads)} payloads")
        self._points = pts
        self._payloads = list(payloads) if payloads is not None else list(range(len(pts)))
        n, d = pts.shape if pts.size else (0, pts.shape[1] if pts.ndim == 2 else 0)
        if cell_size is None:
            if n > 0:
                spans = np.ptp(pts, axis=0)
                volume = float(np.prod(np.maximum(spans, 1e-12)))
                cell_size = (volume * _TARGET_POINTS_PER_CELL / max(n, 1)) ** (
                    1.0 / max(d, 1)
                )
                cell_size = max(cell_size, 1e-9)
            else:
                cell_size = 1.0
        if cell_size <= 0:
            raise ValueError("cell_size must be positive")
        self._cell = float(cell_size)
        self._cells: dict[tuple[int, ...], list[int]] = {}
        for idx, p in enumerate(pts):
            key = tuple(int(np.floor(v / self._cell)) for v in p)
            self._cells.setdefault(key, []).append(idx)

    def __len__(self) -> int:
        return len(self._points)

    @property
    def cell_size(self) -> float:
        return self._cell

    def _cell_min_sqdist(self, key: tuple[int, ...], query: np.ndarray) -> float:
        lo = np.array(key, dtype=float) * self._cell
        hi = lo + self._cell
        clipped = np.clip(query, lo, hi)
        delta = query - clipped
        return float(delta @ delta)

    def iter_nearest(self, query: np.ndarray) -> Iterator[tuple[float, Any]]:
        """Yield ``(distance, payload)`` in non-decreasing distance order."""
        if len(self._points) == 0:
            return
        q = np.asarray(query, dtype=float)
        if q.shape != (self._points.shape[1],):
            raise ValueError(
                f"query has shape {q.shape}, expected ({self._points.shape[1]},)"
            )
        counter = itertools.count()
        heap: list[tuple[float, int, int, Any]] = []
        for key in self._cells:
            heapq.heappush(
                heap, (self._cell_min_sqdist(key, q), next(counter), 1, key)
            )
        while heap:
            sqdist, _, kind, obj = heapq.heappop(heap)
            if kind == 0:
                yield float(np.sqrt(sqdist)), self._payloads[obj]
                continue
            for idx in self._cells[obj]:
                delta = self._points[idx] - q
                heapq.heappush(
                    heap, (float(delta @ delta), next(counter), 0, int(idx))
                )

    def nearest(self, query: np.ndarray, k: int = 1) -> list[tuple[float, Any]]:
        """The ``k`` nearest ``(distance, payload)`` pairs."""
        if k < 1:
            raise ValueError("k must be >= 1")
        out = []
        for item in self.iter_nearest(query):
            out.append(item)
            if len(out) == k:
                break
        return out

    def range_query(self, query: np.ndarray, radius: float) -> list[tuple[float, Any]]:
        """All ``(distance, payload)`` with distance <= radius, sorted."""
        if radius < 0:
            raise ValueError("radius must be non-negative")
        out = []
        for dist, payload in self.iter_nearest(query):
            if dist > radius:
                break
            out.append((dist, payload))
        return out
