"""Spatial substrate: metrics, centroids and a k-d tree with incremental
nearest-neighbour access (the offline stand-in for the R-tree-family
indexes cited in the paper's related work)."""

from repro.spatial.grid import GridIndex
from repro.spatial.kdtree import KDNode, KDTree
from repro.spatial.metrics import (
    METRICS,
    chebyshev,
    cosine_distance,
    euclidean,
    geometric_median,
    get_metric,
    manhattan,
    mean_centroid,
    squared_euclidean,
)

__all__ = [
    "GridIndex",
    "KDNode",
    "KDTree",
    "METRICS",
    "chebyshev",
    "cosine_distance",
    "euclidean",
    "geometric_median",
    "get_metric",
    "manhattan",
    "mean_centroid",
    "squared_euclidean",
]
