"""Distance metrics and centroid computations.

The paper works with a metric distance ``delta(x, q)`` between feature
vectors and defines the centroid of a combination as the point minimising
the sum of distances to its members.  For the Euclidean-quadratic
aggregation function (paper eq. 2) the relevant centroid is the arithmetic
mean (minimiser of the sum of *squared* Euclidean distances); the general
sum-of-distances minimiser (geometric median) is also provided for
completeness and for the cosine/extension scorings.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

__all__ = [
    "euclidean",
    "squared_euclidean",
    "manhattan",
    "chebyshev",
    "cosine_distance",
    "mean_centroid",
    "geometric_median",
    "METRICS",
    "get_metric",
]


def euclidean(x: np.ndarray, y: np.ndarray) -> float:
    """Euclidean (L2) distance between two vectors."""
    return float(np.linalg.norm(np.asarray(x, dtype=float) - np.asarray(y, dtype=float)))


def squared_euclidean(x: np.ndarray, y: np.ndarray) -> float:
    """Squared Euclidean distance; not a metric but used inside scorings."""
    d = np.asarray(x, dtype=float) - np.asarray(y, dtype=float)
    return float(d @ d)


def manhattan(x: np.ndarray, y: np.ndarray) -> float:
    """Manhattan (L1) distance."""
    return float(np.abs(np.asarray(x, dtype=float) - np.asarray(y, dtype=float)).sum())


def chebyshev(x: np.ndarray, y: np.ndarray) -> float:
    """Chebyshev (L-infinity) distance."""
    return float(np.abs(np.asarray(x, dtype=float) - np.asarray(y, dtype=float)).max())


def cosine_distance(x: np.ndarray, y: np.ndarray) -> float:
    """Cosine distance ``1 - cos(x, y)`` in ``[0, 2]``.

    Zero vectors are conventionally at distance 1 from everything (they
    carry no directional information).
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    nx = np.linalg.norm(x)
    ny = np.linalg.norm(y)
    if nx == 0.0 or ny == 0.0:
        return 1.0
    cos = float(np.clip((x @ y) / (nx * ny), -1.0, 1.0))
    return 1.0 - cos


METRICS: dict[str, Callable[[np.ndarray, np.ndarray], float]] = {
    "euclidean": euclidean,
    "squared_euclidean": squared_euclidean,
    "manhattan": manhattan,
    "chebyshev": chebyshev,
    "cosine": cosine_distance,
}


def get_metric(name: str) -> Callable[[np.ndarray, np.ndarray], float]:
    """Look up a metric by name, raising ``KeyError`` with guidance."""
    try:
        return METRICS[name]
    except KeyError:
        known = ", ".join(sorted(METRICS))
        raise KeyError(f"unknown metric {name!r}; known metrics: {known}") from None


def mean_centroid(points: np.ndarray) -> np.ndarray:
    """Arithmetic mean of the rows of ``points``.

    This is the minimiser of the sum of squared Euclidean distances and is
    the centroid used by the paper's Euclidean aggregation function (2)
    (see Appendix B.3, where ``mu`` is expanded as the arithmetic mean).
    """
    pts = np.atleast_2d(np.asarray(points, dtype=float))
    if pts.size == 0:
        raise ValueError("cannot take the centroid of an empty point set")
    return pts.mean(axis=0)


def geometric_median(
    points: np.ndarray,
    *,
    tol: float = 1e-10,
    max_iter: int = 200,
) -> np.ndarray:
    """Weiszfeld's algorithm for the sum-of-Euclidean-distances minimiser.

    This is the centroid ``arg min_w  sum_i delta(x_i, w)`` of the paper's
    Section 2 for a plain (non-squared) Euclidean ``delta``.  The iteration
    handles the classical degeneracy of landing exactly on an input point
    by nudging along the subgradient.
    """
    pts = np.atleast_2d(np.asarray(points, dtype=float))
    if pts.size == 0:
        raise ValueError("cannot take the geometric median of an empty point set")
    if len(pts) == 1:
        return pts[0].copy()
    y = pts.mean(axis=0)
    for _ in range(max_iter):
        diffs = pts - y
        dists = np.linalg.norm(diffs, axis=1)
        coincident = dists < 1e-14
        if coincident.any():
            # Vardi-Zhang correction: stay put if the pull of the other
            # points is weaker than the multiplicity of the coincident one.
            others = ~coincident
            if not others.any():
                return y
            w = 1.0 / dists[others]
            t = (pts[others] * w[:, None]).sum(axis=0) / w.sum()
            r = np.linalg.norm(((pts[others] - y) / dists[others][:, None]).sum(axis=0))
            eta = coincident.sum()
            if r <= eta:
                return y
            step = max(0.0, 1.0 - eta / r)
            y_next = step * t + (1.0 - step) * y
        else:
            w = 1.0 / dists
            y_next = (pts * w[:, None]).sum(axis=0) / w.sum()
        if np.linalg.norm(y_next - y) <= tol * (1.0 + np.linalg.norm(y)):
            return y_next
        y = y_next
    return y
