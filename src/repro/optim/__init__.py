"""Numerical optimisation substrate: dense active-set QP and two-phase
simplex LP, the two solvers the paper's tight bound and dominance test
rely on ("off-the-shelf solvers" in the paper; built from scratch here).

Each solver family ships a batched kernel (``*_batch`` /
:func:`solve_bound_qp_masked`) that stacks many tiny problems into one
vectorised call — lockstep simplex tableaus for the LPs, active-set
enumeration with per-entry termination masks for the QPs — with every
entry bit-identical to a loop over its scalar counterpart (see the
module docstrings for the row-stability contract)."""

from repro.optim.qp import (
    QPResult,
    solve_bound_qp,
    solve_bound_qp_batch,
    solve_bound_qp_masked,
    solve_qp,
    spread_matrix,
)
from repro.optim.simplex import (
    LPResult,
    LPStatus,
    chebyshev_center,
    chebyshev_center_batch,
    polyhedron_feasible_point,
    polyhedron_feasible_point_batch,
    polyhedron_is_empty,
    polyhedron_is_empty_batch,
    simplex_standard_form,
    solve_lp,
)

__all__ = [
    "QPResult",
    "solve_bound_qp",
    "solve_bound_qp_batch",
    "solve_bound_qp_masked",
    "solve_qp",
    "spread_matrix",
    "LPResult",
    "LPStatus",
    "chebyshev_center",
    "chebyshev_center_batch",
    "polyhedron_feasible_point",
    "polyhedron_feasible_point_batch",
    "polyhedron_is_empty",
    "polyhedron_is_empty_batch",
    "simplex_standard_form",
    "solve_lp",
]
