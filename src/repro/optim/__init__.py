"""Numerical optimisation substrate: dense active-set QP and two-phase
simplex LP, the two solvers the paper's tight bound and dominance test
rely on ("off-the-shelf solvers" in the paper; built from scratch here)."""

from repro.optim.qp import QPResult, solve_bound_qp, solve_qp, spread_matrix
from repro.optim.simplex import (
    LPResult,
    LPStatus,
    chebyshev_center,
    polyhedron_feasible_point,
    polyhedron_is_empty,
    simplex_standard_form,
    solve_lp,
)

__all__ = [
    "QPResult",
    "solve_bound_qp",
    "solve_qp",
    "spread_matrix",
    "LPResult",
    "LPStatus",
    "chebyshev_center",
    "polyhedron_feasible_point",
    "polyhedron_is_empty",
    "simplex_standard_form",
    "solve_lp",
]
