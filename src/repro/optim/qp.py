"""Convex quadratic programming for the tight-bound inner problem.

The paper reduces the tight-bound computation (problem 12) to the convex
QP (14)/(30):

    minimize    theta' H theta
    subject to  theta_i  =  e_i   for i in a fixed set E (seen tuples)
                theta_i  >= l_i   for i in a set L (unseen tuples)

with ``H = w_q I + w_mu (I - 11'/n)' (I - 11'/n)`` positive semidefinite
(positive definite whenever ``w_q > 0``).  The dimension equals the number
of joined relations (tiny), so a dense primal active-set method is exact,
allocation-free in spirit, and dependency-free.

Entry points:

* :func:`solve_bound_qp` — the specialised fixed-plus-lower-bound QP used
  by the bounding scheme (scalar reference path).
* :func:`solve_bound_qp_batch` — many entries of *one* fixed/lower
  pattern (one subset ``M``) in a single vectorised call.
* :func:`solve_bound_qp_masked` — the batched bound kernel: entries of
  *arbitrary mixed* fixed/lower patterns (every subset ``M`` of a bound
  refresh) stacked into one call, resolved by a vectorised active-set
  enumeration with per-entry termination masks.
* :func:`solve_qp` — a generic small convex QP with linear inequality
  constraints ``A theta <= b``, used by tests to cross-check and by the
  cosine extension.

Bit-identity contract (the batched bound kernel's acceptance bar): every
batch entry must be bit-identical to a scalar :func:`solve_bound_qp` call
on the same data.  BLAS-backed primitives (``np.linalg.solve``, ``@``,
``einsum``) do **not** satisfy this — their reassociation depends on how
many rows/right-hand sides share the call — so the scalar and batched
solvers both route their linear algebra through the same *row-stable*
helpers (:func:`_gauss_solve`, :func:`_accum_cols`, :func:`_row_matvec`,
:func:`_quad_values`): only elementwise numpy operations touch the batch
axes, making each entry's arithmetic independent of its batch-mates.
(The one exception is a singular free block, ``w_q = 0`` patterns, where
both fall back to least squares and only the optimal *value* is pinned.)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = [
    "QPResult",
    "solve_bound_qp",
    "solve_bound_qp_batch",
    "solve_bound_qp_masked",
    "solve_qp",
    "spread_matrix",
]

_TOL = 1e-9
_PIVOT_TOL = 1e-12


@dataclass(frozen=True)
class QPResult:
    """Solution of a QP.

    Attributes
    ----------
    x:
        Optimal point.
    value:
        Objective value at ``x`` (including any constant term passed in).
    active:
        Indices of inequality constraints active at the optimum.
    iterations:
        Number of active-set iterations performed.
    """

    x: np.ndarray
    value: float
    active: tuple[int, ...]
    iterations: int


def spread_matrix(n: int, w_q: float, w_mu: float) -> np.ndarray:
    """The Hessian ``H`` of paper eq. (31) for ``n`` relations.

    ``I - 11'/n`` is symmetric idempotent, so
    ``H = w_q I + w_mu (I - 11'/n) = (w_q + w_mu) I - (w_mu / n) 11'``.
    """
    if n < 1:
        raise ValueError("n must be >= 1")
    if w_q < 0 or w_mu < 0:
        raise ValueError("weights must be non-negative")
    return (w_q + w_mu) * np.eye(n) - (w_mu / n) * np.ones((n, n))


def _solve_psd(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Solve ``a x = b`` for symmetric PSD ``a``, tolerating singularity."""
    try:
        return np.linalg.solve(a, b)
    except np.linalg.LinAlgError:
        return np.linalg.lstsq(a, b, rcond=None)[0]


# -- row-stable linear algebra ---------------------------------------------
#
# Shared by the scalar and the batched bound solvers; ``rhs``/``vals`` may
# carry leading batch dimensions, and only elementwise operations touch
# them, so per-entry results are independent of the batch size.


def _gauss_solve(a: np.ndarray, rhs: np.ndarray) -> np.ndarray | None:
    """Solve ``a x = rhs`` by Gaussian elimination with partial pivoting.

    ``a`` is a tiny shared ``(k, k)`` system; ``rhs`` is ``(..., k)``.
    Returns ``None`` when a pivot collapses (singular system); callers
    fall back to least squares.
    """
    k = a.shape[0]
    x = np.array(rhs, dtype=float, copy=True)
    if k == 0:
        return x
    a = np.array(a, dtype=float, copy=True)
    for i in range(k):
        p = i + int(np.argmax(np.abs(a[i:, i])))
        if abs(float(a[p, i])) <= _PIVOT_TOL:
            return None
        if p != i:
            a[[i, p]] = a[[p, i]]
            tmp = x[..., i].copy()
            x[..., i] = x[..., p]
            x[..., p] = tmp
        for j in range(i + 1, k):
            f = float(a[j, i] / a[i, i])
            if f != 0.0:
                a[j, i:] -= f * a[i, i:]
                x[..., j] = x[..., j] - f * x[..., i]
    for i in range(k - 1, -1, -1):
        acc = x[..., i]
        for j in range(i + 1, k):
            acc = acc - float(a[i, j]) * x[..., j]
        x[..., i] = acc / float(a[i, i])
    return x


def _accum_cols(mat: np.ndarray, vals: np.ndarray) -> np.ndarray:
    """``sum_k mat[:, k] * vals[..., k]`` accumulated strictly in ``k``
    order (the row-stable replacement for ``vals @ mat.T``)."""
    out = np.zeros(vals.shape[:-1] + (mat.shape[0],))
    for k in range(mat.shape[1]):
        out = out + vals[..., k, None] * mat[:, k]
    return out


def _row_matvec(q: np.ndarray, z: np.ndarray) -> np.ndarray:
    """``out[..., j] = sum_k q[j, k] z[..., k]`` accumulated in ``k``
    order for symmetric ``q`` (row-stable replacement for ``z @ q.T``)."""
    out = np.zeros(z.shape[:-1] + (q.shape[0],))
    for k in range(q.shape[1]):
        out = out + z[..., k, None] * q[:, k]
    return out


def _quad_values(h: np.ndarray, thetas: np.ndarray) -> np.ndarray:
    """``theta' H theta`` per entry, accumulated in fixed index order."""
    ht = _row_matvec(h, thetas)
    out = np.zeros(thetas.shape[:-1])
    for j in range(h.shape[0]):
        out = out + thetas[..., j] * ht[..., j]
    return out


def solve_bound_qp(
    h: np.ndarray,
    fixed: dict[int, float],
    lower: dict[int, float],
    *,
    linear: np.ndarray | None = None,
    constant: float = 0.0,
    max_iter: int = 64,
) -> QPResult:
    """Minimise ``theta' H theta + linear' theta + constant`` subject to
    ``theta_i = fixed[i]`` and ``theta_j >= lower[j]``.

    Parameters
    ----------
    h:
        Symmetric PSD matrix of shape ``(n, n)``.
    fixed:
        Equality-pinned coordinates (the projections of seen tuples).
    lower:
        Lower-bounded coordinates (distance constraints of unseen tuples).
        ``fixed`` and ``lower`` must partition disjoint index sets; any
        coordinate in neither set is unconstrained.
    linear, constant:
        Optional linear and constant terms of the objective.

    Returns
    -------
    QPResult
        With ``active`` indexing into the *sorted list of lower-bound
        keys* (which lower bounds are tight at the optimum).

    Notes
    -----
    Primal active-set method on the free coordinates.  Because the
    objective is convex and the constraints are simple bounds, each
    iteration either moves to the constrained minimiser of the current
    working set or adds a newly-hit bound; a bound is removed when its
    KKT multiplier is negative.  With ``f`` free coordinates the loop
    terminates in at most ``2^f`` iterations; in this library ``f`` is the
    number of relations minus the partial-combination size (<= 4).

    This is the scalar reference of the batched bound kernel: all linear
    algebra runs through the module's row-stable helpers, so
    :func:`solve_bound_qp_masked` reproduces it bit for bit (see the
    module docstring for the contract and its singular-Hessian caveat).
    """
    h = np.asarray(h, dtype=float)
    n = h.shape[0]
    if h.shape != (n, n):
        raise ValueError("h must be square")
    if set(fixed) & set(lower):
        raise ValueError("fixed and lower index sets must be disjoint")
    for idx in (*fixed, *lower):
        if not 0 <= idx < n:
            raise ValueError(f"index {idx} out of range for n={n}")
    lin = np.zeros(n) if linear is None else np.asarray(linear, dtype=float)

    free = sorted(set(range(n)) - set(fixed))
    theta = np.zeros(n)
    for i, v in fixed.items():
        theta[i] = v

    def objective(t: np.ndarray) -> float:
        return float(_quad_values(h, t) + float(lin @ t) + constant)

    if not free:
        return QPResult(x=theta, value=objective(theta), active=(), iterations=0)

    lower_keys = sorted(lower)
    # Objective restricted to the free block:
    #   z' Q z + 2 r' z + const',  Q = H[free,free],
    #   r = H[free,fixed] @ theta_fixed + lin[free]/2
    q = h[np.ix_(free, free)]
    fixed_idx = sorted(fixed)
    if fixed_idx:
        r = _accum_cols(
            h[np.ix_(free, fixed_idx)], np.array([fixed[i] for i in fixed_idx])
        )
    else:
        r = np.zeros(len(free))
    r = r + lin[free] / 2.0
    lb = np.full(len(free), -np.inf)
    pos_of = {g: k for k, g in enumerate(free)}
    for g, v in lower.items():
        lb[pos_of[g]] = v

    bounded = [k for k in range(len(free)) if np.isfinite(lb[k])]
    # Start from the fully clamped point (feasible by construction).
    z = np.where(np.isfinite(lb), lb, 0.0)
    active = set(bounded)

    iterations = 0
    for iterations in range(1, max_iter + 1):
        inactive = [k for k in range(len(free)) if k not in active]
        z_new = z.copy()
        if inactive:
            # Minimise over inactive coords with active ones clamped.
            qi = q[np.ix_(inactive, inactive)]
            rhs = -(r[inactive])
            if active:
                act = sorted(active)
                rhs = rhs - _accum_cols(q[np.ix_(inactive, act)], z[act])
            sol = _gauss_solve(qi, rhs)
            if sol is None:
                sol = np.linalg.lstsq(qi, rhs, rcond=None)[0]
            z_new[inactive] = sol

        # Step from z towards z_new, stopping at the first violated bound.
        step = 1.0
        blocker = -1
        for k in bounded:
            if k in active:
                continue
            delta = z_new[k] - z[k]
            if delta < -_TOL and z_new[k] < lb[k] - _TOL:
                alpha = (lb[k] - z[k]) / delta
                if alpha < step:
                    step = alpha
                    blocker = k
        if blocker >= 0:
            z = z + step * (z_new - z)
            z[blocker] = lb[blocker]
            active.add(blocker)
            continue
        # Full step: adopt the solve's result exactly (``z + 1.0 * (z_new
        # - z)`` would round differently and break the batch/scalar
        # bit-identity contract).
        z = z_new

        # Full step taken: check KKT multipliers of active bounds.
        # Gradient of the free-block objective: 2 Q z + 2 r ; multiplier of
        # z_k >= l_k is grad_k (must be >= 0 at a minimum).
        grad = 2.0 * (_row_matvec(q, z) + r)
        worst = None
        worst_val = -_TOL
        for k in sorted(active):
            if grad[k] < worst_val:
                worst_val = grad[k]
                worst = k
        if worst is None:
            break
        active.remove(worst)
    theta[free] = z
    active_out = tuple(
        j for j, g in enumerate(lower_keys) if pos_of[g] in active
    )
    return QPResult(
        x=theta, value=objective(theta), active=active_out, iterations=iterations
    )


def _solve_pattern(
    h: np.ndarray,
    fixed_idx: list[int],
    fixed_vals: np.ndarray,
    lower_idx: list[int],
    lower_vals: np.ndarray,
    uncon_idx: list[int],
    hint_masks: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Solve every entry of one fixed/lower *pattern* group.

    All entries pin the coordinates ``fixed_idx`` (values per entry, rows
    of ``fixed_vals``), lower-bound the coordinates ``lower_idx`` (bounds
    per entry, rows of ``lower_vals``) and leave ``uncon_idx`` free.

    Strategy: with ``f = len(lower_idx)`` bounded coordinates there are
    only ``2^f`` candidate active sets.  For each candidate, the
    stationarity system is solved for *all* unresolved entries at once;
    the unique optimum of each convex QP is the candidate that is both
    primal and dual feasible (KKT), tracked by a per-entry resolution
    mask.  ``f`` equals the number of unseen relations, so ``2^f <= 16``
    for any join this library targets.  All arithmetic is row-stable
    (module docstring), so each entry reproduces the scalar
    :func:`solve_bound_qp` bit for bit.

    ``hint_masks`` (optional, per entry; ``-1`` = no hint) reorders the
    candidate enumeration to try the most common hinted active sets
    first — the cross-pass carry of the incremental dominance front end,
    where most entries re-resolve to last refresh's active set on the
    first try.  The KKT acceptance test is unchanged, and the strictly
    convex QP has a unique optimum, so the answer does not depend on the
    enumeration order.

    Returns ``(values, thetas, resolved_masks)`` — the third array holds
    each entry's resolving active-set bitmask over the *sorted*
    ``lower_idx`` (entries never resolved keep the safe fully-clamped
    default, whose mask is all-active).
    """
    n = h.shape[0]
    fixed_idx = sorted(fixed_idx)
    lower_idx = sorted(lower_idx)
    num_entries = fixed_vals.shape[0]
    f = len(lower_idx)
    free = sorted(set(lower_idx) | set(uncon_idx))

    thetas = np.zeros((num_entries, n))
    if fixed_idx:
        thetas[:, fixed_idx] = fixed_vals
    if not free:
        return _quad_values(h, thetas), thetas, np.zeros(num_entries, np.int64)

    q = h[np.ix_(free, free)]
    if fixed_idx:
        r = _accum_cols(h[np.ix_(free, fixed_idx)], fixed_vals)  # (E, F)
    else:
        r = np.zeros((num_entries, len(free)))
    pos_of = {g: k for k, g in enumerate(free)}
    bounded = [pos_of[g] for g in lower_idx]

    # Safe feasible default: the fully clamped point.
    best_z = np.zeros((num_entries, len(free)))
    if bounded:
        best_z[:, bounded] = lower_vals
    resolved = np.zeros(num_entries, dtype=bool)
    resolved_masks = np.full(num_entries, (1 << f) - 1, dtype=np.int64)
    order = range(1 << f)
    if hint_masks is not None and f:
        valid = hint_masks[(hint_masks >= 0) & (hint_masks < (1 << f))]
        if valid.size:
            uniq, counts = np.unique(valid, return_counts=True)
            preferred = [int(m) for m in uniq[np.argsort(-counts, kind="stable")]]
            hinted = set(preferred)
            order = preferred + [m for m in range(1 << f) if m not in hinted]
    for mask in order:
        act_cols = [k for k in range(f) if mask >> k & 1]
        active = [bounded[k] for k in act_cols]
        solve_pos = [p for p in range(len(free)) if p not in set(active)]
        act_vals = lower_vals[:, act_cols]
        z = np.zeros((num_entries, len(free)))
        if active:
            z[:, active] = act_vals
        if solve_pos:
            qi = q[np.ix_(solve_pos, solve_pos)]
            rhs = -r[:, solve_pos]
            if active:
                rhs = rhs - _accum_cols(q[np.ix_(solve_pos, active)], act_vals)
            sol = _gauss_solve(qi, rhs)
            if sol is None:
                sol = np.linalg.lstsq(qi, rhs.T, rcond=None)[0].T
            z[:, solve_pos] = sol
        # Primal feasibility on inactive bounds; dual feasibility on
        # active ones (KKT).
        ok = ~resolved
        inact_cols = [k for k in range(f) if not mask >> k & 1]
        if inact_cols:
            inact = [bounded[k] for k in inact_cols]
            ok &= (z[:, inact] >= lower_vals[:, inact_cols] - _TOL).all(axis=1)
        if active:
            grad = 2.0 * (_row_matvec(q, z) + r)
            ok &= (grad[:, active] >= -_TOL).all(axis=1)
        if ok.any():
            best_z[ok] = z[ok]
            resolved_masks[ok] = mask
            resolved |= ok
        if resolved.all():
            break
    thetas[:, free] = best_z
    return _quad_values(h, thetas), thetas, resolved_masks


def solve_bound_qp_batch(
    h: np.ndarray,
    fixed_idx: list[int],
    fixed_vals: np.ndarray,
    lower_idx: list[int],
    lower_vals: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised :func:`solve_bound_qp` over many entries at once.

    All entries share the Hessian ``h``, the equality-pinned coordinate
    *positions* ``fixed_idx`` and the lower-bounded coordinates
    ``(lower_idx, lower_vals)``; only the pinned *values* differ per entry
    (rows of ``fixed_vals``, shape ``(E, len(fixed_idx))``).  This is
    exactly the structure of the tight bound within one subset ``M``: the
    spread matrix, the member relations and the distance constraints are
    per-subset, the seen-tuple projections are per-partial-combination.
    For mixed patterns (entries of *different* subsets) see
    :func:`solve_bound_qp_masked`.

    Returns
    -------
    (values, thetas):
        ``values[e]`` is the optimal objective ``theta' H theta``;
        ``thetas[e]`` the optimal point (shape ``(E, n)``).
    """
    h = np.asarray(h, dtype=float)
    n = h.shape[0]
    fixed_vals = np.atleast_2d(np.asarray(fixed_vals, dtype=float))
    num_entries = fixed_vals.shape[0]
    lower_vals = np.asarray(lower_vals, dtype=float)
    f = len(lower_idx)
    if sorted(set(fixed_idx) | set(lower_idx)) != list(range(n)) or set(
        fixed_idx
    ) & set(lower_idx):
        raise ValueError("fixed_idx and lower_idx must partition range(n)")
    if fixed_vals.shape[1] != len(fixed_idx):
        raise ValueError("fixed_vals width must match fixed_idx")
    values, thetas, _ = _solve_pattern(
        h,
        list(fixed_idx),
        fixed_vals,
        list(lower_idx),
        np.broadcast_to(lower_vals, (num_entries, f)),
        [],
    )
    return values, thetas


def solve_bound_qp_masked(
    h: np.ndarray,
    fixed_mask: np.ndarray,
    fixed_vals: np.ndarray,
    lower_mask: np.ndarray,
    lower_vals: np.ndarray,
    *,
    hints: np.ndarray | None = None,
    return_active: bool = False,
):
    """The batched bound kernel: stacked bound QPs of *mixed* patterns.

    One call solves ``B`` instances of the :func:`solve_bound_qp` problem
    family, each with its own equality/lower-bound pattern — the shape of
    a whole tight-bound refresh, where every subset ``M`` contributes its
    stale partial combinations with ``M``'s fixed pattern and the unseen
    relations' distance bounds.

    Parameters
    ----------
    h:
        Shared Hessian ``(n, n)`` (the spread matrix depends only on the
        number of relations, never on ``M``).
    fixed_mask / fixed_vals:
        ``(B, n)`` boolean pattern and values; ``fixed_vals`` is read
        only where ``fixed_mask`` is set.
    lower_mask / lower_vals:
        ``(B, n)`` boolean pattern and per-entry lower bounds, read only
        where ``lower_mask`` is set.  Coordinates in neither mask are
        unconstrained.
    hints:
        Optional ``(B,)`` int64 active-set hints: bit ``j`` set means
        coordinate ``j``'s lower bound was active when this entry was
        last solved; ``-1`` = no hint.  Hints only reorder each group's
        candidate enumeration (most common hinted sets first) — the
        unique KKT-certified optimum is unchanged.
    return_active:
        Also return the per-entry resolving active sets in the same
        coordinate-bitmask encoding, for caching into a later ``hints``.

    Returns
    -------
    (values, thetas) or (values, thetas, active):
        ``values[b] = theta_b' H theta_b`` and the optima ``(B, n)``.

    Notes
    -----
    Entries are grouped by their ``(fixed, lower)`` bit pattern and each
    group runs the vectorised active-set enumeration of
    :func:`_solve_pattern`; the row-stable arithmetic contract (module
    docstring) makes every entry bit-identical to its scalar
    :func:`solve_bound_qp` counterpart regardless of how entries are
    grouped or ordered.
    """
    h = np.asarray(h, dtype=float)
    n = h.shape[0]
    fixed_mask = np.atleast_2d(np.asarray(fixed_mask, dtype=bool))
    lower_mask = np.atleast_2d(np.asarray(lower_mask, dtype=bool))
    fixed_vals = np.atleast_2d(np.asarray(fixed_vals, dtype=float))
    lower_vals = np.atleast_2d(np.asarray(lower_vals, dtype=float))
    num_entries = fixed_mask.shape[0]
    for name, arr in (
        ("fixed_mask", fixed_mask),
        ("fixed_vals", fixed_vals),
        ("lower_mask", lower_mask),
        ("lower_vals", lower_vals),
    ):
        if arr.shape != (num_entries, n):
            raise ValueError(f"{name} must have shape (B, n)={num_entries, n}")
    if (fixed_mask & lower_mask).any():
        raise ValueError("fixed and lower masks must be disjoint")

    values = np.empty(num_entries)
    thetas = np.empty((num_entries, n))
    active_out = np.zeros(num_entries, dtype=np.int64) if return_active else None
    weights = 1 << np.arange(n, dtype=np.int64)
    keys = (fixed_mask @ weights) << n | (lower_mask @ weights)
    for key in np.unique(keys):
        rows = np.flatnonzero(keys == key)
        fidx = np.flatnonzero(fixed_mask[rows[0]])
        lidx = np.flatnonzero(lower_mask[rows[0]])
        uidx = np.flatnonzero(~fixed_mask[rows[0]] & ~lower_mask[rows[0]])
        hint_masks = None
        if hints is not None and len(lidx):
            # Coordinate bitmasks -> this group's local masks over the
            # sorted lower positions (bit k of the local mask is
            # coordinate lidx[k]); -1 stays "no hint".
            hrows = np.asarray(hints, dtype=np.int64)[rows]
            local = np.zeros(len(rows), dtype=np.int64)
            for k, j in enumerate(lidx):
                local |= ((hrows >> int(j)) & 1) << k
            hint_masks = np.where(hrows >= 0, local, -1)
        vals, th, act = _solve_pattern(
            h,
            [int(i) for i in fidx],
            fixed_vals[np.ix_(rows, fidx)],
            [int(i) for i in lidx],
            lower_vals[np.ix_(rows, lidx)],
            [int(i) for i in uidx],
            hint_masks=hint_masks,
        )
        values[rows] = vals
        thetas[rows] = th
        if return_active:
            rel = np.zeros(len(rows), dtype=np.int64)
            for k, j in enumerate(lidx):
                rel |= ((act >> k) & 1) << int(j)
            active_out[rows] = rel
    if return_active:
        return values, thetas, active_out
    return values, thetas


def solve_qp(
    q: np.ndarray,
    c: np.ndarray,
    a: np.ndarray | None = None,
    b: np.ndarray | None = None,
    *,
    x0: np.ndarray | None = None,
    max_iter: int = 200,
) -> QPResult:
    """Minimise ``1/2 x' Q x + c' x`` subject to ``A x <= b``.

    A generic dense primal active-set method for small convex QPs.  Used
    for cross-checking :func:`solve_bound_qp` and by extension scorings.
    ``x0`` must be feasible; if omitted, an unconstrained minimiser is
    tried and, failing feasibility, a simple phase-1 push is applied.
    """
    q = np.asarray(q, dtype=float)
    c = np.asarray(c, dtype=float)
    n = len(c)
    if a is None or len(a) == 0:
        x = _solve_psd(q, -c)
        return QPResult(x=x, value=float(0.5 * x @ q @ x + c @ x), active=(), iterations=0)
    a = np.atleast_2d(np.asarray(a, dtype=float))
    b = np.asarray(b, dtype=float)
    m = len(b)

    if x0 is None:
        x = _solve_psd(q, -c)
        if (a @ x > b + _TOL).any():
            # Phase 1: move towards feasibility by solving a least-squares
            # projection onto the violated constraints, iterating a few
            # times.  Adequate for the well-conditioned systems in this
            # library; callers with tricky geometry should pass x0.
            for _ in range(50):
                viol = a @ x - b
                bad = viol > _TOL
                if not bad.any():
                    break
                corr = np.linalg.lstsq(a[bad], viol[bad], rcond=None)[0]
                x = x - corr
            if (a @ x > b + 1e-6).any():
                raise ValueError("could not find a feasible starting point; pass x0")
    else:
        x = np.asarray(x0, dtype=float).copy()
        if (a @ x > b + 1e-7).any():
            raise ValueError("x0 is infeasible")

    active: set[int] = set(i for i in range(m) if abs(a[i] @ x - b[i]) <= _TOL)
    iterations = 0
    for iterations in range(1, max_iter + 1):
        act = sorted(active)
        # Solve the equality-constrained subproblem via KKT system.
        if act:
            aa = a[act]
            kkt = np.block(
                [[q, aa.T], [aa, np.zeros((len(act), len(act)))]]
            )
            rhs = np.concatenate([-c, b[act]])
            sol = np.linalg.lstsq(kkt, rhs, rcond=None)[0]
            x_eq = sol[:n]
            lam = sol[n:]
        else:
            x_eq = _solve_psd(q, -c)
            lam = np.zeros(0)

        direction = x_eq - x
        if np.linalg.norm(direction) <= _TOL * (1.0 + np.linalg.norm(x)):
            # At the working-set minimiser; check multipliers.
            if len(lam) == 0 or lam.min() >= -_TOL:
                break
            active.remove(act[int(np.argmin(lam))])
            continue

        # Line search to the nearest violated inactive constraint.
        step = 1.0
        blocker = -1
        for i in range(m):
            if i in active:
                continue
            ad = a[i] @ direction
            if ad > _TOL:
                alpha = (b[i] - a[i] @ x) / ad
                if alpha < step - _TOL:
                    step = max(alpha, 0.0)
                    blocker = i
        x = x + step * direction
        if blocker >= 0:
            active.add(blocker)
    return QPResult(
        x=x,
        value=float(0.5 * x @ q @ x + c @ x),
        active=tuple(sorted(active)),
        iterations=iterations,
    )
