"""Dense linear programming: two-phase simplex and feasibility testing.

The dominance test of Section 3.2.2 asks whether the polyhedron

    { y in R^d :  G y <= h }            (paper eq. 35)

is empty.  We answer it with a Chebyshev-centre LP:

    maximize   r
    subject to g_i' y + ||g_i|| r <= h_i      for all i
               r <= R_CAP

whose optimum ``r*`` is the radius of the largest ball inscribed in the
polyhedron (capped so unbounded regions stay bounded).  ``r* < 0`` iff the
polyhedron is empty — exactly the signal dominance needs, and a strictly
negative optimum also certifies emptiness robustly under floating point.

The general solver is a textbook two-phase primal simplex on the standard
form ``min c' x  s.t.  A x = b, x >= 0`` with Bland's rule to prevent
cycling.  Problem sizes here are tiny (d <= 16 variables, a few hundred
constraints), so dense numpy tableaus are the right tool.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

__all__ = [
    "LPStatus",
    "LPResult",
    "simplex_standard_form",
    "solve_lp",
    "chebyshev_center",
    "polyhedron_feasible_point",
    "polyhedron_is_empty",
]

_TOL = 1e-9
_R_CAP = 1e3


class LPStatus(Enum):
    """Termination status of an LP solve."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"


@dataclass(frozen=True)
class LPResult:
    """Outcome of an LP: status, optimal point and objective value."""

    status: LPStatus
    x: np.ndarray | None
    value: float | None


def _pivot(tableau: np.ndarray, basis: list[int], row: int, col: int) -> None:
    """In-place Gauss-Jordan pivot of ``tableau`` on (row, col)."""
    tableau[row] /= tableau[row, col]
    for r in range(len(tableau)):
        if r != row and abs(tableau[r, col]) > 0.0:
            tableau[r] -= tableau[r, col] * tableau[row]
    basis[row] = col


def _run_simplex(
    tableau: np.ndarray, basis: list[int], num_vars: int, max_iter: int
) -> LPStatus:
    """Primal simplex iterations on a tableau whose last row is the
    (negated-cost) objective and last column the RHS.  Bland's rule."""
    for _ in range(max_iter):
        cost = tableau[-1, :num_vars]
        entering = -1
        for j in range(num_vars):
            if cost[j] < -_TOL:
                entering = j
                break
        if entering < 0:
            return LPStatus.OPTIMAL
        col = tableau[:-1, entering]
        rhs = tableau[:-1, -1]
        best_ratio = np.inf
        leaving = -1
        for r in range(len(col)):
            if col[r] > _TOL:
                ratio = rhs[r] / col[r]
                if ratio < best_ratio - _TOL or (
                    abs(ratio - best_ratio) <= _TOL
                    and (leaving < 0 or basis[r] < basis[leaving])
                ):
                    best_ratio = ratio
                    leaving = r
        if leaving < 0:
            return LPStatus.UNBOUNDED
        _pivot(tableau, basis, leaving, entering)
    raise RuntimeError(f"simplex failed to converge in {max_iter} iterations")


def simplex_standard_form(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    *,
    max_iter: int = 10_000,
) -> LPResult:
    """Solve ``min c' x  s.t.  A x = b, x >= 0`` by two-phase simplex."""
    a = np.atleast_2d(np.asarray(a, dtype=float)).copy()
    b = np.asarray(b, dtype=float).copy()
    c = np.asarray(c, dtype=float)
    m, n = a.shape
    if b.shape != (m,) or c.shape != (n,):
        raise ValueError("inconsistent LP dimensions")

    # Row equilibration: scaling an equality row does not change the
    # feasible set, but it keeps badly mixed magnitudes (tiny geometry
    # coefficients next to large bound caps) within the pivot tolerances.
    row_scale = np.abs(a).max(axis=1)
    row_scale = np.where(row_scale > 0.0, row_scale, 1.0)
    a /= row_scale[:, None]
    b /= row_scale

    # Normalise to b >= 0 so the artificial basis is feasible.
    neg = b < 0
    a[neg] *= -1.0
    b[neg] *= -1.0

    # Phase 1: minimise the sum of artificial variables.
    tableau = np.zeros((m + 1, n + m + 1))
    tableau[:m, :n] = a
    tableau[:m, n : n + m] = np.eye(m)
    tableau[:m, -1] = b
    tableau[-1, n : n + m] = 1.0
    basis = list(range(n, n + m))
    # Price out the artificial basis.
    for r in range(m):
        tableau[-1] -= tableau[r]
    status = _run_simplex(tableau, basis, n + m, max_iter)
    # Phase 1 minimises the artificial sum, which is bounded below by 0,
    # so a textbook "unbounded" here can only be a numerical artifact of
    # the ratio test (entering column shrunk below tolerance after many
    # pivots).  The artificial-sum test below still decides feasibility
    # correctly in that case, so fall through rather than fail.
    if tableau[-1, -1] < -1e-7:
        return LPResult(status=LPStatus.INFEASIBLE, x=None, value=None)

    # Drive any artificial variables out of the basis.
    for r in range(m):
        if basis[r] >= n:
            pivot_col = -1
            for j in range(n):
                if abs(tableau[r, j]) > _TOL:
                    pivot_col = j
                    break
            if pivot_col >= 0:
                _pivot(tableau, basis, r, pivot_col)
        # Rows still basic in an artificial variable are redundant
        # (all-zero in the original columns); they stay harmless.

    # Phase 2: swap in the real objective.
    tableau2 = np.zeros((m + 1, n + 1))
    tableau2[:m, :n] = tableau[:m, :n]
    tableau2[:m, -1] = tableau[:m, -1]
    tableau2[-1, :n] = c
    for r in range(m):
        if basis[r] < n:
            tableau2[-1] -= tableau2[-1, basis[r]] * tableau2[r]
    status = _run_simplex(tableau2, basis, n, max_iter)
    if status is LPStatus.UNBOUNDED:
        return LPResult(status=LPStatus.UNBOUNDED, x=None, value=None)
    x = np.zeros(n)
    for r, j in enumerate(basis):
        if j < n:
            x[j] = tableau2[r, -1]
    return LPResult(status=LPStatus.OPTIMAL, x=x, value=float(c @ x))


def solve_lp(
    c: np.ndarray,
    a_ub: np.ndarray,
    b_ub: np.ndarray,
    *,
    max_iter: int = 10_000,
) -> LPResult:
    """Solve ``min c' x  s.t.  A_ub x <= b_ub`` with *free* variables.

    Free variables are split as ``x = x+ - x-`` and slacks are added to
    reach standard form.
    """
    a_ub = np.atleast_2d(np.asarray(a_ub, dtype=float))
    b_ub = np.asarray(b_ub, dtype=float)
    c = np.asarray(c, dtype=float)
    m, n = a_ub.shape
    big_a = np.hstack([a_ub, -a_ub, np.eye(m)])
    big_c = np.concatenate([c, -c, np.zeros(m)])
    res = simplex_standard_form(big_a, b_ub, big_c, max_iter=max_iter)
    if res.status is not LPStatus.OPTIMAL:
        return LPResult(status=res.status, x=None, value=None)
    assert res.x is not None
    x = res.x[:n] - res.x[n : 2 * n]
    return LPResult(status=LPStatus.OPTIMAL, x=x, value=float(c @ x))


def chebyshev_center(
    g: np.ndarray, h: np.ndarray, *, r_cap: float = _R_CAP
) -> tuple[np.ndarray | None, float]:
    """Largest inscribed-ball centre and radius of ``{y : G y <= h}``.

    Returns ``(center, radius)``.  ``radius < 0`` certifies the polyhedron
    is empty; ``radius`` is capped at ``r_cap`` for unbounded regions.
    To make emptiness detection work, the ball constraint is *relaxed*:
    we solve ``max r  s.t.  g_i' y + ||g_i|| r <= h_i`` with ``r`` free,
    so an infeasible system yields the (negative) least-violation radius.
    """
    g = np.atleast_2d(np.asarray(g, dtype=float))
    h = np.asarray(h, dtype=float)
    m, d = g.shape
    norms = np.linalg.norm(g, axis=1)
    # Degenerate all-zero rows encode "0 <= h_i": infeasible iff h_i < 0.
    zero_rows = norms <= _TOL
    if zero_rows.any():
        if (h[zero_rows] < -_TOL).any():
            return None, -np.inf
        g = g[~zero_rows]
        h = h[~zero_rows]
        norms = norms[~zero_rows]
        m = len(h)
        if m == 0:
            return np.zeros(d), r_cap
    # Variables: (y, r); maximise r == minimise -r, plus the cap r <= r_cap.
    a_ub = np.vstack([np.hstack([g, norms[:, None]]), np.zeros((1, d + 1))])
    a_ub[-1, -1] = 1.0
    b_ub = np.concatenate([h, [r_cap]])
    c = np.zeros(d + 1)
    c[-1] = -1.0
    res = solve_lp(c, a_ub, b_ub)
    if res.status is not LPStatus.OPTIMAL:
        # max r is always feasible thanks to the relaxation (take y = 0 and
        # r very negative), so only numerical trouble lands here.
        return None, -np.inf
    assert res.x is not None
    return res.x[:d], float(res.x[-1])


def _scipy_linprog():
    """Return scipy's linprog if importable, else None (cached)."""
    global _SCIPY_LINPROG
    if _SCIPY_LINPROG is _UNRESOLVED:
        try:
            from scipy.optimize import linprog  # type: ignore

            _SCIPY_LINPROG = linprog
        except ImportError:  # pragma: no cover - scipy present in CI
            _SCIPY_LINPROG = None
    return _SCIPY_LINPROG


_UNRESOLVED = object()
_SCIPY_LINPROG = _UNRESOLVED


def polyhedron_feasible_point(
    g: np.ndarray, h: np.ndarray, *, tol: float = 1e-7
) -> np.ndarray | None:
    """A point of ``{y : G y <= h}``, or ``None`` if (robustly) empty.

    Returns the Chebyshev centre: strictly negative inscribed-ball radius
    means even the relaxed system admits no ball, i.e. the polyhedron has
    no interior point and misses closure only by ``tol``.  Dominance
    pruning errs on the safe side: near-degenerate regions are reported
    non-empty (the partial combination is kept), and the returned centre
    doubles as a cacheable *witness* of non-emptiness.

    When scipy is importable its HiGHS solver answers the Chebyshev LP
    (roughly 20x faster than the didactic dense simplex here, which
    remains the dependency-free fallback and the cross-check in tests).
    """
    g = np.atleast_2d(np.asarray(g, dtype=float))
    h = np.asarray(h, dtype=float)
    norms = np.linalg.norm(g, axis=1)
    zero_rows = norms <= _TOL
    if zero_rows.any():
        if (h[zero_rows] < -_TOL).any():
            return None
        g, h, norms = g[~zero_rows], h[~zero_rows], norms[~zero_rows]
        if len(h) == 0:
            return np.zeros(g.shape[1] if g.size else 1)
    linprog = _scipy_linprog()
    if linprog is not None:
        d = g.shape[1]
        a_ub = np.hstack([g, norms[:, None]])
        c = np.zeros(d + 1)
        c[-1] = -1.0
        bounds = [(None, None)] * d + [(None, _R_CAP)]
        res = linprog(c, A_ub=a_ub, b_ub=h, bounds=bounds, method="highs")
        if res.status == 0:
            if float(res.x[-1]) < -tol:
                return None
            return np.asarray(res.x[:d], dtype=float)
        # HiGHS trouble (numerical): fall through to the dense simplex.
    center, radius = chebyshev_center(g, h)
    if radius < -tol or center is None:
        return None
    return center


def polyhedron_is_empty(g: np.ndarray, h: np.ndarray, *, tol: float = 1e-7) -> bool:
    """True iff ``{y : G y <= h}`` is (robustly) empty.

    See :func:`polyhedron_feasible_point` for the semantics and the
    solver-selection logic.
    """
    return polyhedron_feasible_point(g, h, tol=tol) is None
