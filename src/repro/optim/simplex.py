"""Dense linear programming: two-phase simplex and feasibility testing.

The dominance test of Section 3.2.2 asks whether the polyhedron

    { y in R^d :  G y <= h }            (paper eq. 35)

is empty.  We answer it with a Chebyshev-centre LP:

    maximize   r
    subject to g_i' y + ||g_i|| r <= h_i      for all i
               r <= R_CAP

whose optimum ``r*`` is the radius of the largest ball inscribed in the
polyhedron (capped so unbounded regions stay bounded).  ``r* < 0`` iff the
polyhedron is empty — exactly the signal dominance needs, and a strictly
negative optimum also certifies emptiness robustly under floating point.

The general solver is a textbook two-phase primal simplex on the standard
form ``min c' x  s.t.  A x = b, x >= 0`` with Bland-style anti-cycling.
Problem sizes here are tiny (d <= 16 variables, a few hundred
constraints), so dense numpy tableaus are the right tool.

Batched kernels (the bound-kernel refactor): a dominance pass produces
*many* of these tiny LPs at once — one feasibility test per candidate
that failed the witness pre-pass.  :func:`chebyshev_center_batch`,
:func:`polyhedron_feasible_point_batch` and
:func:`polyhedron_is_empty_batch` stack ``B`` problems into one 3-D
tableau and pivot them in lockstep (per-problem entering/leaving
selection and termination masks, shared elementwise pivot arithmetic), so
the per-problem Python overhead of the scalar loop is paid once per
*pivot wave* instead of once per problem.  Because every tableau update
is elementwise across the batch axis, each problem's pivot sequence — and
hence its centre and radius — is bit-identical to a scalar
:func:`chebyshev_center` call on the same data.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

__all__ = [
    "LPStatus",
    "LPResult",
    "simplex_standard_form",
    "solve_lp",
    "chebyshev_center",
    "chebyshev_center_batch",
    "polyhedron_feasible_point",
    "polyhedron_feasible_point_batch",
    "polyhedron_is_empty",
    "polyhedron_is_empty_batch",
]

_TOL = 1e-9
_R_CAP = 1e3
_HUGE_BASIS = np.iinfo(np.int64).max


class LPStatus(Enum):
    """Termination status of an LP solve."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"


@dataclass(frozen=True)
class LPResult:
    """Outcome of an LP: status, optimal point and objective value."""

    status: LPStatus
    x: np.ndarray | None
    value: float | None


def _pivot(tableau: np.ndarray, basis: list[int], row: int, col: int) -> None:
    """In-place Gauss-Jordan pivot of ``tableau`` on (row, col)."""
    tableau[row] /= tableau[row, col]
    for r in range(len(tableau)):
        if r != row and abs(tableau[r, col]) > 0.0:
            tableau[r] -= tableau[r, col] * tableau[row]
    basis[row] = col


def _run_simplex(
    tableau: np.ndarray, basis: list[int], num_vars: int, max_iter: int
) -> LPStatus:
    """Primal simplex iterations on a tableau whose last row is the
    (negated-cost) objective and last column the RHS.

    Entering: first improving column (Bland).  Leaving: smallest basis
    variable among the rows within ``_TOL`` of the minimum ratio —
    Bland-style anti-cycling with a tolerance band, stated as a pure
    reduction so the lockstep batch kernel replays the exact same
    selection per problem.
    """
    for _ in range(max_iter):
        cost = tableau[-1, :num_vars]
        neg = cost < -_TOL
        if not neg.any():
            return LPStatus.OPTIMAL
        entering = int(neg.argmax())
        col = tableau[:-1, entering]
        rhs = tableau[:-1, -1]
        pos = col > _TOL
        if not pos.any():
            return LPStatus.UNBOUNDED
        ratios = np.where(pos, rhs / np.where(pos, col, 1.0), np.inf)
        best = float(ratios.min())
        eligible = ratios <= best + _TOL
        cand = np.where(eligible, np.asarray(basis, dtype=np.int64), _HUGE_BASIS)
        leaving = int(cand.argmin())
        _pivot(tableau, basis, leaving, entering)
    raise RuntimeError(f"simplex failed to converge in {max_iter} iterations")


def simplex_standard_form(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    *,
    max_iter: int = 10_000,
) -> LPResult:
    """Solve ``min c' x  s.t.  A x = b, x >= 0`` by two-phase simplex."""
    a = np.atleast_2d(np.asarray(a, dtype=float)).copy()
    b = np.asarray(b, dtype=float).copy()
    c = np.asarray(c, dtype=float)
    m, n = a.shape
    if b.shape != (m,) or c.shape != (n,):
        raise ValueError("inconsistent LP dimensions")

    # Row equilibration: scaling an equality row does not change the
    # feasible set, but it keeps badly mixed magnitudes (tiny geometry
    # coefficients next to large bound caps) within the pivot tolerances.
    row_scale = np.abs(a).max(axis=1)
    row_scale = np.where(row_scale > 0.0, row_scale, 1.0)
    a /= row_scale[:, None]
    b /= row_scale

    # Normalise to b >= 0 so the artificial basis is feasible.
    neg = b < 0
    a[neg] *= -1.0
    b[neg] *= -1.0

    # Phase 1: minimise the sum of artificial variables.
    tableau = np.zeros((m + 1, n + m + 1))
    tableau[:m, :n] = a
    tableau[:m, n : n + m] = np.eye(m)
    tableau[:m, -1] = b
    tableau[-1, n : n + m] = 1.0
    basis = list(range(n, n + m))
    # Price out the artificial basis.
    for r in range(m):
        tableau[-1] -= tableau[r]
    status = _run_simplex(tableau, basis, n + m, max_iter)
    # Phase 1 minimises the artificial sum, which is bounded below by 0,
    # so a textbook "unbounded" here can only be a numerical artifact of
    # the ratio test (entering column shrunk below tolerance after many
    # pivots).  The artificial-sum test below still decides feasibility
    # correctly in that case, so fall through rather than fail.
    if tableau[-1, -1] < -1e-7:
        return LPResult(status=LPStatus.INFEASIBLE, x=None, value=None)

    # Drive any artificial variables out of the basis.
    for r in range(m):
        if basis[r] >= n:
            pivot_col = -1
            for j in range(n):
                if abs(tableau[r, j]) > _TOL:
                    pivot_col = j
                    break
            if pivot_col >= 0:
                _pivot(tableau, basis, r, pivot_col)
        # Rows still basic in an artificial variable are redundant
        # (all-zero in the original columns); they stay harmless.

    # Phase 2: swap in the real objective.
    tableau2 = np.zeros((m + 1, n + 1))
    tableau2[:m, :n] = tableau[:m, :n]
    tableau2[:m, -1] = tableau[:m, -1]
    tableau2[-1, :n] = c
    for r in range(m):
        if basis[r] < n:
            tableau2[-1] -= tableau2[-1, basis[r]] * tableau2[r]
    status = _run_simplex(tableau2, basis, n, max_iter)
    if status is LPStatus.UNBOUNDED:
        return LPResult(status=LPStatus.UNBOUNDED, x=None, value=None)
    x = np.zeros(n)
    for r, j in enumerate(basis):
        if j < n:
            x[j] = tableau2[r, -1]
    return LPResult(status=LPStatus.OPTIMAL, x=x, value=float(c @ x))


def solve_lp(
    c: np.ndarray,
    a_ub: np.ndarray,
    b_ub: np.ndarray,
    *,
    max_iter: int = 10_000,
) -> LPResult:
    """Solve ``min c' x  s.t.  A_ub x <= b_ub`` with *free* variables.

    Free variables are split as ``x = x+ - x-`` and slacks are added to
    reach standard form.
    """
    a_ub = np.atleast_2d(np.asarray(a_ub, dtype=float))
    b_ub = np.asarray(b_ub, dtype=float)
    c = np.asarray(c, dtype=float)
    m, n = a_ub.shape
    big_a = np.hstack([a_ub, -a_ub, np.eye(m)])
    big_c = np.concatenate([c, -c, np.zeros(m)])
    res = simplex_standard_form(big_a, b_ub, big_c, max_iter=max_iter)
    if res.status is not LPStatus.OPTIMAL:
        return LPResult(status=res.status, x=None, value=None)
    assert res.x is not None
    x = res.x[:n] - res.x[n : 2 * n]
    return LPResult(status=LPStatus.OPTIMAL, x=x, value=float(c @ x))


def _cheby_tableau_meta(m: int, d: int) -> tuple[int, int, int]:
    """Column layout of the specialised Chebyshev tableau:
    ``y+ (d) | y- (d) | r+ | r- | slacks (m+1) | rhs``.
    Returns ``(rows, num_vars, r_plus_col)``."""
    rows = m + 1
    return rows, 2 * d + 2 + rows, 2 * d


def chebyshev_center(
    g: np.ndarray, h: np.ndarray, *, r_cap: float = _R_CAP
) -> tuple[np.ndarray | None, float]:
    """Largest inscribed-ball centre and radius of ``{y : G y <= h}``.

    Returns ``(center, radius)``.  ``radius < 0`` certifies the polyhedron
    is empty; ``radius`` is capped at ``r_cap`` for unbounded regions.
    To make emptiness detection work, the ball constraint is *relaxed*:
    we solve ``max r  s.t.  g_i' y + ||g_i|| r <= h_i`` with ``r`` free,
    so an infeasible system yields the (negative) least-violation radius.

    The LP is solved by a *warm-started* simplex specialised to this
    family: every ``r`` coefficient is positive, so pivoting ``r`` into
    the row with the minimum ``h_i / ||g_i||`` ratio yields a basic
    feasible solution directly — no phase-1 artificial variables, which
    halves the tableau and skips the ``~m`` pivots the generic two-phase
    path spends proving feasibility.  The batched kernel
    (:func:`chebyshev_center_batch`) replays the identical construction
    in lockstep.
    """
    g = np.atleast_2d(np.asarray(g, dtype=float))
    h = np.asarray(h, dtype=float)
    m, d = g.shape
    norms = np.linalg.norm(g, axis=1)
    # Degenerate all-zero rows encode "0 <= h_i": infeasible iff h_i < 0.
    zero_rows = norms <= _TOL
    if zero_rows.any():
        if (h[zero_rows] < -_TOL).any():
            return None, -np.inf
        g = g[~zero_rows]
        h = h[~zero_rows]
        norms = norms[~zero_rows]
        m = len(h)
        if m == 0:
            return np.zeros(d), r_cap
    # Row equilibration (does not move the ratios h_i / ||g_i||).
    scale = np.abs(np.hstack([g, norms[:, None]])).max(axis=1)
    g = g / scale[:, None]
    n_r = norms / scale
    h = h / scale

    rows, num_vars, r_col = _cheby_tableau_meta(m, d)
    tab = np.zeros((rows + 1, num_vars + 1))
    tab[:m, :d] = g
    tab[:m, d : 2 * d] = -g
    tab[:m, r_col] = n_r
    tab[:m, r_col + 1] = -n_r
    tab[m, r_col] = 1.0
    tab[m, r_col + 1] = -1.0
    tab[:rows, r_col + 2 : r_col + 2 + rows] = np.eye(rows)
    tab[:m, -1] = h
    tab[m, -1] = r_cap
    # Objective: minimise -(r+ - r-).
    tab[-1, r_col] = -1.0
    tab[-1, r_col + 1] = 1.0
    basis = list(range(r_col + 2, r_col + 2 + rows))
    # Warm start: drive r into the tightest row (min ratio keeps every
    # slack non-negative); a negative ratio enters through r- instead.
    ratios = tab[:rows, -1] / np.concatenate([n_r, [1.0]])
    i_star = int(np.argmin(ratios))
    _pivot(tab, basis, i_star, r_col if ratios[i_star] >= 0.0 else r_col + 1)
    status = _run_simplex(tab, basis, num_vars, 10_000)
    if status is not LPStatus.OPTIMAL:
        # The objective is bounded by the cap row, so only numerical
        # trouble lands here.
        return None, -np.inf
    x = np.zeros(num_vars)
    for r_i, j in enumerate(basis):
        x[j] = tab[r_i, -1]
    return x[:d] - x[d : 2 * d], float(x[r_col] - x[r_col + 1])


# -- lockstep batch kernel --------------------------------------------------
#
# ``B`` stacked tableaus pivoted together: selection (entering column,
# ratio test, leaving row) is evaluated per problem, the Gauss-Jordan
# update runs as one elementwise array operation over the stack, and a
# per-problem status vector retires finished problems from the wave.
# Every arithmetic step per problem mirrors the scalar path above exactly.

_RUNNING, _OPT, _UNB = 0, 1, 2


def _pivot_batch(
    tab: np.ndarray, basis: np.ndarray, idx: np.ndarray,
    rows: np.ndarray, cols: np.ndarray,
) -> None:
    """Lockstep Gauss-Jordan pivot of problems ``idx`` on per-problem
    ``(rows, cols)``."""
    k = np.arange(len(idx))
    sub = tab[idx]
    piv = sub[k, rows, cols]
    pivrow = sub[k, rows, :] / piv[:, None]
    colv = sub[k, :, cols]
    sub = sub - colv[:, :, None] * pivrow[:, None, :]
    sub[k, rows, :] = pivrow
    tab[idx] = sub
    basis[idx, rows] = cols


def _run_simplex_batch(
    tab: np.ndarray, basis: np.ndarray, num_vars: int, max_iter: int
) -> np.ndarray:
    """Lockstep :func:`_run_simplex` over stacked tableaus.

    Returns the per-problem status vector (``_OPT`` / ``_UNB``)."""
    num_problems = tab.shape[0]
    status = np.full(num_problems, _RUNNING, dtype=np.int8)
    for _ in range(max_iter):
        run = np.flatnonzero(status == _RUNNING)
        if run.size == 0:
            return status
        cost = tab[run, -1, :num_vars]
        neg = cost < -_TOL
        improving = neg.any(axis=1)
        status[run[~improving]] = _OPT
        run = run[improving]
        if run.size == 0:
            continue
        entering = neg[improving].argmax(axis=1)
        body = tab[run, :-1, :]
        col = np.take_along_axis(body, entering[:, None, None], axis=2)[:, :, 0]
        rhs = body[:, :, -1]
        pos = col > _TOL
        bounded = pos.any(axis=1)
        status[run[~bounded]] = _UNB
        run = run[bounded]
        if run.size == 0:
            continue
        col = col[bounded]
        rhs = rhs[bounded]
        pos = pos[bounded]
        entering = entering[bounded]
        ratios = np.where(pos, rhs / np.where(pos, col, 1.0), np.inf)
        best = ratios.min(axis=1)
        eligible = ratios <= best[:, None] + _TOL
        cand = np.where(eligible, basis[run], _HUGE_BASIS)
        leaving = cand.argmin(axis=1)
        _pivot_batch(tab, basis, run, leaving, entering)
    if (status == _RUNNING).any():
        raise RuntimeError(f"simplex failed to converge in {max_iter} iterations")
    return status


def _cheby_solve_batch(
    g: np.ndarray,
    h: np.ndarray,
    norms: np.ndarray,
    r_cap: float,
    max_iter: int = 10_000,
) -> tuple[np.ndarray, np.ndarray]:
    """Lockstep warm-started Chebyshev simplex on ``B`` stacked problems
    of a common constraint count.  ``g`` is ``(B, m, d)``, ``h`` and
    ``norms`` are ``(B, m)`` with every norm positive (zero rows removed
    by the caller).  Returns ``(centers, radii)`` with NaN / ``-inf`` for
    problems the scalar path would answer ``(None, -inf)``.

    Construction, warm-start pivot and simplex iterations mirror
    :func:`chebyshev_center` operation for operation across the batch
    axis (elementwise pivots, per-problem selection), so every problem is
    bit-identical to its scalar solve.
    """
    num_problems, m, d = g.shape
    scale = np.abs(np.concatenate([g, norms[:, :, None]], axis=2)).max(axis=2)
    g = g / scale[:, :, None]
    n_r = norms / scale
    h = h / scale

    rows, num_vars, r_col = _cheby_tableau_meta(m, d)
    tab = np.zeros((num_problems, rows + 1, num_vars + 1))
    tab[:, :m, :d] = g
    tab[:, :m, d : 2 * d] = -g
    tab[:, :m, r_col] = n_r
    tab[:, :m, r_col + 1] = -n_r
    tab[:, m, r_col] = 1.0
    tab[:, m, r_col + 1] = -1.0
    tab[:, :rows, r_col + 2 : r_col + 2 + rows] = np.eye(rows)
    tab[:, :m, -1] = h
    tab[:, m, -1] = r_cap
    tab[:, -1, r_col] = -1.0
    tab[:, -1, r_col + 1] = 1.0
    basis = np.tile(
        np.arange(r_col + 2, r_col + 2 + rows, dtype=np.int64),
        (num_problems, 1),
    )
    denom = np.concatenate([n_r, np.ones((num_problems, 1))], axis=1)
    ratios = tab[:, :rows, -1] / denom
    i_star = ratios.argmin(axis=1)
    start_col = np.where(
        np.take_along_axis(ratios, i_star[:, None], axis=1)[:, 0] >= 0.0,
        r_col,
        r_col + 1,
    )
    _pivot_batch(
        tab, basis, np.arange(num_problems), i_star, start_col.astype(np.int64)
    )
    statuses = _run_simplex_batch(tab, basis, num_vars, max_iter)

    x = np.zeros((num_problems, num_vars))
    rows_all = np.arange(num_problems)
    for r_i in range(rows):
        x[rows_all, basis[:, r_i]] = tab[:, r_i, -1]
    centers = x[:, :d] - x[:, d : 2 * d]
    radii = x[:, r_col] - x[:, r_col + 1]
    failed = statuses != _OPT
    centers[failed] = np.nan
    radii[failed] = -np.inf
    return centers, radii


def chebyshev_center_batch(
    gs, hs, *, r_cap: float = _R_CAP
) -> tuple[np.ndarray, np.ndarray]:
    """Lockstep :func:`chebyshev_center` over ``B`` polyhedra.

    Parameters
    ----------
    gs / hs:
        Either stacked arrays (``(B, m, d)`` and ``(B, m)``) or ragged
        sequences of per-problem ``(m_i, d)`` / ``(m_i,)`` arrays (the
        shape a dominance pass produces: constraint counts differ across
        subsets).  Problems are grouped by effective constraint count and
        each group is pivoted in lockstep.

    Returns
    -------
    (centers, radii):
        ``(B, d)`` and ``(B,)``.  A problem the scalar path would answer
        with ``(None, -inf)`` (zero-row infeasibility or numerical
        failure) gets a NaN centre row and ``-inf`` radius.

    Every problem's answer is bit-identical to a scalar
    :func:`chebyshev_center` call on the same ``(g, h)`` — the batch is
    purely an execution strategy (see the module docstring).
    """
    problems = [
        (np.atleast_2d(np.asarray(g, dtype=float)), np.asarray(h, dtype=float))
        for g, h in zip(gs, hs)
    ]
    num_problems = len(problems)
    if num_problems == 0:
        return np.zeros((0, 0)), np.zeros(0)
    d = problems[0][0].shape[1]
    centers = np.full((num_problems, d), np.nan)
    radii = np.full(num_problems, -np.inf)

    groups: dict[int, list[tuple[int, np.ndarray, np.ndarray, np.ndarray]]] = {}
    for i, (g, h) in enumerate(problems):
        if g.shape[1] != d:
            raise ValueError("all problems must share the dimensionality d")
        norms = np.linalg.norm(g, axis=1)
        zero_rows = norms <= _TOL
        if zero_rows.any():
            if (h[zero_rows] < -_TOL).any():
                continue  # (None, -inf): certainly empty
            g, h, norms = g[~zero_rows], h[~zero_rows], norms[~zero_rows]
        if len(h) == 0:
            centers[i] = 0.0
            radii[i] = r_cap
            continue
        groups.setdefault(len(h), []).append((i, g, h, norms))

    for m, items in groups.items():
        idx = np.array([i for i, _, _, _ in items])
        g_stack = np.empty((len(items), m, d))
        h_stack = np.empty((len(items), m))
        n_stack = np.empty((len(items), m))
        for k, (_, g, h, norms) in enumerate(items):
            g_stack[k] = g
            h_stack[k] = h
            n_stack[k] = norms
        group_centers, group_radii = _cheby_solve_batch(
            g_stack, h_stack, n_stack, r_cap
        )
        centers[idx] = group_centers
        radii[idx] = group_radii
    return centers, radii


def _scipy_linprog():
    """Return scipy's linprog if importable, else None (cached)."""
    global _SCIPY_LINPROG
    if _SCIPY_LINPROG is _UNRESOLVED:
        try:
            from scipy.optimize import linprog  # type: ignore

            _SCIPY_LINPROG = linprog
        except ImportError:  # pragma: no cover - scipy present in CI
            _SCIPY_LINPROG = None
    return _SCIPY_LINPROG


_UNRESOLVED = object()
_SCIPY_LINPROG = _UNRESOLVED


def polyhedron_feasible_point(
    g: np.ndarray, h: np.ndarray, *, tol: float = 1e-7
) -> np.ndarray | None:
    """A point of ``{y : G y <= h}``, or ``None`` if (robustly) empty.

    Returns the Chebyshev centre: strictly negative inscribed-ball radius
    means even the relaxed system admits no ball, i.e. the polyhedron has
    no interior point and misses closure only by ``tol``.  Dominance
    pruning errs on the safe side: near-degenerate regions are reported
    non-empty (the partial combination is kept), and the returned centre
    doubles as a cacheable *witness* of non-emptiness.

    When scipy is importable its HiGHS solver answers the Chebyshev LP
    (roughly 20x faster than the didactic dense simplex here, which
    remains the dependency-free fallback and the cross-check in tests).
    """
    g = np.atleast_2d(np.asarray(g, dtype=float))
    h = np.asarray(h, dtype=float)
    norms = np.linalg.norm(g, axis=1)
    zero_rows = norms <= _TOL
    if zero_rows.any():
        if (h[zero_rows] < -_TOL).any():
            return None
        g, h, norms = g[~zero_rows], h[~zero_rows], norms[~zero_rows]
        if len(h) == 0:
            return np.zeros(g.shape[1] if g.size else 1)
    linprog = _scipy_linprog()
    if linprog is not None:
        d = g.shape[1]
        a_ub = np.hstack([g, norms[:, None]])
        c = np.zeros(d + 1)
        c[-1] = -1.0
        bounds = [(None, None)] * d + [(None, _R_CAP)]
        res = linprog(c, A_ub=a_ub, b_ub=h, bounds=bounds, method="highs")
        if res.status == 0:
            if float(res.x[-1]) < -tol:
                return None
            return np.asarray(res.x[:d], dtype=float)
        # HiGHS trouble (numerical): fall through to the dense simplex.
    center, radius = chebyshev_center(g, h)
    if radius < -tol or center is None:
        return None
    return center


def polyhedron_feasible_point_batch(
    gs, hs, *, tol: float = 1e-7
) -> tuple[np.ndarray, np.ndarray]:
    """Batched :func:`polyhedron_feasible_point` over ``B`` polyhedra.

    Accepts stacked ``(B, m, d)`` / ``(B, m)`` arrays or ragged
    per-problem sequences (see :func:`chebyshev_center_batch`).

    Returns
    -------
    (points, empty):
        ``points`` is ``(B, d)`` — the Chebyshev-centre witness per
        non-empty polyhedron, NaN rows where empty; ``empty`` is the
        ``(B,)`` boolean emptiness verdict.

    Always the dense lockstep kernel: per problem, the point and verdict
    are bit-identical to the scalar dense path (:func:`chebyshev_center`
    + the radius test).  The scalar :func:`polyhedron_feasible_point` may
    route through scipy's HiGHS instead, which returns a different (but
    equally valid) witness; the emptiness *verdicts* agree — both are
    robust sign tests on the same LP optimum — which is the invariant the
    dominance pass relies on.
    """
    centers, radii = chebyshev_center_batch(gs, hs)
    empty = (radii < -tol) | np.isnan(centers).any(axis=1)
    points = centers.copy()
    points[empty] = np.nan
    return points, empty


def polyhedron_is_empty(g: np.ndarray, h: np.ndarray, *, tol: float = 1e-7) -> bool:
    """True iff ``{y : G y <= h}`` is (robustly) empty.

    See :func:`polyhedron_feasible_point` for the semantics and the
    solver-selection logic.
    """
    return polyhedron_feasible_point(g, h, tol=tol) is None


def polyhedron_is_empty_batch(gs, hs, *, tol: float = 1e-7) -> np.ndarray:
    """Batched :func:`polyhedron_is_empty`: the ``(B,)`` boolean verdicts
    of :func:`polyhedron_feasible_point_batch`."""
    return polyhedron_feasible_point_batch(gs, hs, tol=tol)[1]
