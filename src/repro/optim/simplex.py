"""Dense linear programming: two-phase simplex and feasibility testing.

The dominance test of Section 3.2.2 asks whether the polyhedron

    { y in R^d :  G y <= h }            (paper eq. 35)

is empty.  We answer it with a Chebyshev-centre LP:

    maximize   r
    subject to g_i' y + ||g_i|| r <= h_i      for all i
               r <= R_CAP

whose optimum ``r*`` is the radius of the largest ball inscribed in the
polyhedron (capped so unbounded regions stay bounded).  ``r* < 0`` iff the
polyhedron is empty — exactly the signal dominance needs, and a strictly
negative optimum also certifies emptiness robustly under floating point.

The general solver is a textbook two-phase primal simplex on the standard
form ``min c' x  s.t.  A x = b, x >= 0`` with Bland-style anti-cycling.
Problem sizes here are tiny (d <= 16 variables, a few hundred
constraints), so dense numpy tableaus are the right tool.

Batched kernels (the bound-kernel refactor): a dominance pass produces
*many* of these tiny LPs at once — one feasibility test per candidate
that failed the witness pre-pass.  :func:`chebyshev_center_batch`,
:func:`polyhedron_feasible_point_batch` and
:func:`polyhedron_is_empty_batch` stack ``B`` problems into one 3-D
tableau and pivot them in lockstep (per-problem entering/leaving
selection and termination masks, shared elementwise pivot arithmetic), so
the per-problem Python overhead of the scalar loop is paid once per
*pivot wave* instead of once per problem.  Because every tableau update
is elementwise across the batch axis, each problem's pivot sequence — and
hence its centre and radius — is bit-identical to a scalar
:func:`chebyshev_center` call on the same data.

Incremental extensions (the cross-pass dominance work):

* Zero- and single-constraint problems are answered analytically — a
  single half-space always admits the capped ball — without building a
  tableau, in the scalar and batched paths alike.
* :func:`chebyshev_center_batch` / :func:`polyhedron_feasible_point_batch`
  accept ``bases=`` (per-problem starting bases cached from an earlier
  solve of a similar problem).  A basis that is the wrong size, out of
  range, singular or primal-infeasible for the *current* rows is
  rejected and that problem takes the cold start **bit-identically**; a
  valid basis is replayed (``B^{-1}[A|b]`` + reduced objective row) and
  the lockstep simplex resumes from it, typically in a handful of
  pivots.  Warm-started solves may differ from cold ones in the last
  bits of the *centre* — like the scipy scalar path, only the emptiness
  verdict (a robust sign test on the radius) is contract-bound.
* ``workspace=`` routes the per-group stacking and the 3-D tableau
  through :class:`ChebyGatherPlan` slabs (grow-only, owned by the
  caller's :class:`~repro.core.bounds.workspace.BoundWorkspace`), so
  steady-state dominance passes allocate no fresh gather buffers.
* ``stats=`` accumulates ``lp_warm_pivots`` / ``lp_cold_pivots`` /
  ``lp_warm_starts`` so callers can prove the reuse rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

import numpy as np

__all__ = [
    "LPStatus",
    "LPResult",
    "ChebyGatherPlan",
    "simplex_standard_form",
    "solve_lp",
    "chebyshev_center",
    "chebyshev_center_batch",
    "polyhedron_feasible_point",
    "polyhedron_feasible_point_batch",
    "polyhedron_is_empty",
    "polyhedron_is_empty_batch",
]

_TOL = 1e-9
_R_CAP = 1e3
_HUGE_BASIS = np.iinfo(np.int64).max


class LPStatus(Enum):
    """Termination status of an LP solve."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"


@dataclass(frozen=True)
class LPResult:
    """Outcome of an LP: status, optimal point and objective value."""

    status: LPStatus
    x: np.ndarray | None
    value: float | None


def _pivot(tableau: np.ndarray, basis: list[int], row: int, col: int) -> None:
    """In-place Gauss-Jordan pivot of ``tableau`` on (row, col)."""
    tableau[row] /= tableau[row, col]
    for r in range(len(tableau)):
        if r != row and abs(tableau[r, col]) > 0.0:
            tableau[r] -= tableau[r, col] * tableau[row]
    basis[row] = col


def _run_simplex(
    tableau: np.ndarray, basis: list[int], num_vars: int, max_iter: int
) -> LPStatus:
    """Primal simplex iterations on a tableau whose last row is the
    (negated-cost) objective and last column the RHS.

    Entering: first improving column (Bland).  Leaving: smallest basis
    variable among the rows within ``_TOL`` of the minimum ratio —
    Bland-style anti-cycling with a tolerance band, stated as a pure
    reduction so the lockstep batch kernel replays the exact same
    selection per problem.
    """
    for _ in range(max_iter):
        cost = tableau[-1, :num_vars]
        neg = cost < -_TOL
        if not neg.any():
            return LPStatus.OPTIMAL
        entering = int(neg.argmax())
        col = tableau[:-1, entering]
        rhs = tableau[:-1, -1]
        pos = col > _TOL
        if not pos.any():
            return LPStatus.UNBOUNDED
        ratios = np.where(pos, rhs / np.where(pos, col, 1.0), np.inf)
        best = float(ratios.min())
        eligible = ratios <= best + _TOL
        cand = np.where(eligible, np.asarray(basis, dtype=np.int64), _HUGE_BASIS)
        leaving = int(cand.argmin())
        _pivot(tableau, basis, leaving, entering)
    raise RuntimeError(f"simplex failed to converge in {max_iter} iterations")


def simplex_standard_form(
    a: np.ndarray,
    b: np.ndarray,
    c: np.ndarray,
    *,
    max_iter: int = 10_000,
) -> LPResult:
    """Solve ``min c' x  s.t.  A x = b, x >= 0`` by two-phase simplex."""
    a = np.atleast_2d(np.asarray(a, dtype=float)).copy()
    b = np.asarray(b, dtype=float).copy()
    c = np.asarray(c, dtype=float)
    m, n = a.shape
    if b.shape != (m,) or c.shape != (n,):
        raise ValueError("inconsistent LP dimensions")

    # Row equilibration: scaling an equality row does not change the
    # feasible set, but it keeps badly mixed magnitudes (tiny geometry
    # coefficients next to large bound caps) within the pivot tolerances.
    row_scale = np.abs(a).max(axis=1)
    row_scale = np.where(row_scale > 0.0, row_scale, 1.0)
    a /= row_scale[:, None]
    b /= row_scale

    # Normalise to b >= 0 so the artificial basis is feasible.
    neg = b < 0
    a[neg] *= -1.0
    b[neg] *= -1.0

    # Phase 1: minimise the sum of artificial variables.
    tableau = np.zeros((m + 1, n + m + 1))
    tableau[:m, :n] = a
    tableau[:m, n : n + m] = np.eye(m)
    tableau[:m, -1] = b
    tableau[-1, n : n + m] = 1.0
    basis = list(range(n, n + m))
    # Price out the artificial basis.
    for r in range(m):
        tableau[-1] -= tableau[r]
    status = _run_simplex(tableau, basis, n + m, max_iter)
    # Phase 1 minimises the artificial sum, which is bounded below by 0,
    # so a textbook "unbounded" here can only be a numerical artifact of
    # the ratio test (entering column shrunk below tolerance after many
    # pivots).  The artificial-sum test below still decides feasibility
    # correctly in that case, so fall through rather than fail.
    if tableau[-1, -1] < -1e-7:
        return LPResult(status=LPStatus.INFEASIBLE, x=None, value=None)

    # Drive any artificial variables out of the basis.
    for r in range(m):
        if basis[r] >= n:
            pivot_col = -1
            for j in range(n):
                if abs(tableau[r, j]) > _TOL:
                    pivot_col = j
                    break
            if pivot_col >= 0:
                _pivot(tableau, basis, r, pivot_col)
        # Rows still basic in an artificial variable are redundant
        # (all-zero in the original columns); they stay harmless.

    # Phase 2: swap in the real objective.
    tableau2 = np.zeros((m + 1, n + 1))
    tableau2[:m, :n] = tableau[:m, :n]
    tableau2[:m, -1] = tableau[:m, -1]
    tableau2[-1, :n] = c
    for r in range(m):
        if basis[r] < n:
            tableau2[-1] -= tableau2[-1, basis[r]] * tableau2[r]
    status = _run_simplex(tableau2, basis, n, max_iter)
    if status is LPStatus.UNBOUNDED:
        return LPResult(status=LPStatus.UNBOUNDED, x=None, value=None)
    x = np.zeros(n)
    for r, j in enumerate(basis):
        if j < n:
            x[j] = tableau2[r, -1]
    return LPResult(status=LPStatus.OPTIMAL, x=x, value=float(c @ x))


def solve_lp(
    c: np.ndarray,
    a_ub: np.ndarray,
    b_ub: np.ndarray,
    *,
    max_iter: int = 10_000,
) -> LPResult:
    """Solve ``min c' x  s.t.  A_ub x <= b_ub`` with *free* variables.

    Free variables are split as ``x = x+ - x-`` and slacks are added to
    reach standard form.
    """
    a_ub = np.atleast_2d(np.asarray(a_ub, dtype=float))
    b_ub = np.asarray(b_ub, dtype=float)
    c = np.asarray(c, dtype=float)
    m, n = a_ub.shape
    big_a = np.hstack([a_ub, -a_ub, np.eye(m)])
    big_c = np.concatenate([c, -c, np.zeros(m)])
    res = simplex_standard_form(big_a, b_ub, big_c, max_iter=max_iter)
    if res.status is not LPStatus.OPTIMAL:
        return LPResult(status=res.status, x=None, value=None)
    assert res.x is not None
    x = res.x[:n] - res.x[n : 2 * n]
    return LPResult(status=LPStatus.OPTIMAL, x=x, value=float(c @ x))


def _cheby_tableau_meta(m: int, d: int) -> tuple[int, int, int]:
    """Column layout of the specialised Chebyshev tableau:
    ``y+ (d) | y- (d) | r+ | r- | slacks (m+1) | rhs``.
    Returns ``(rows, num_vars, r_plus_col)``."""
    rows = m + 1
    return rows, 2 * d + 2 + rows, 2 * d


def _single_row_center(
    g: np.ndarray, h: np.ndarray, norms: np.ndarray, r_cap: float
) -> np.ndarray:
    """Analytic Chebyshev centre of a single half-space (post zero-row
    strip, so ``norms[0] > 0``): the cap binds (``r* = r_cap``) and the
    centre backs off along ``g`` until the constraint is tight.  Shared
    by the scalar and batched paths so both produce the same bits."""
    return g[0] * ((h[0] - norms[0] * r_cap) / (norms[0] * norms[0]))


def chebyshev_center(
    g: np.ndarray, h: np.ndarray, *, r_cap: float = _R_CAP
) -> tuple[np.ndarray | None, float]:
    """Largest inscribed-ball centre and radius of ``{y : G y <= h}``.

    Returns ``(center, radius)``.  ``radius < 0`` certifies the polyhedron
    is empty; ``radius`` is capped at ``r_cap`` for unbounded regions.
    To make emptiness detection work, the ball constraint is *relaxed*:
    we solve ``max r  s.t.  g_i' y + ||g_i|| r <= h_i`` with ``r`` free,
    so an infeasible system yields the (negative) least-violation radius.

    The LP is solved by a *warm-started* simplex specialised to this
    family: every ``r`` coefficient is positive, so pivoting ``r`` into
    the row with the minimum ``h_i / ||g_i||`` ratio yields a basic
    feasible solution directly — no phase-1 artificial variables, which
    halves the tableau and skips the ``~m`` pivots the generic two-phase
    path spends proving feasibility.  The batched kernel
    (:func:`chebyshev_center_batch`) replays the identical construction
    in lockstep.
    """
    g = np.atleast_2d(np.asarray(g, dtype=float))
    h = np.asarray(h, dtype=float)
    m, d = g.shape
    norms = np.linalg.norm(g, axis=1)
    # Degenerate all-zero rows encode "0 <= h_i": infeasible iff h_i < 0.
    zero_rows = norms <= _TOL
    if zero_rows.any():
        if (h[zero_rows] < -_TOL).any():
            return None, -np.inf
        g = g[~zero_rows]
        h = h[~zero_rows]
        norms = norms[~zero_rows]
        m = len(h)
        if m == 0:
            return np.zeros(d), r_cap
    if m == 1:
        return _single_row_center(g, h, norms, r_cap), float(r_cap)
    # Row equilibration (does not move the ratios h_i / ||g_i||).
    scale = np.abs(np.hstack([g, norms[:, None]])).max(axis=1)
    g = g / scale[:, None]
    n_r = norms / scale
    h = h / scale

    rows, num_vars, r_col = _cheby_tableau_meta(m, d)
    tab = np.zeros((rows + 1, num_vars + 1))
    tab[:m, :d] = g
    tab[:m, d : 2 * d] = -g
    tab[:m, r_col] = n_r
    tab[:m, r_col + 1] = -n_r
    tab[m, r_col] = 1.0
    tab[m, r_col + 1] = -1.0
    tab[:rows, r_col + 2 : r_col + 2 + rows] = np.eye(rows)
    tab[:m, -1] = h
    tab[m, -1] = r_cap
    # Objective: minimise -(r+ - r-).
    tab[-1, r_col] = -1.0
    tab[-1, r_col + 1] = 1.0
    basis = list(range(r_col + 2, r_col + 2 + rows))
    # Warm start: drive r into the tightest row (min ratio keeps every
    # slack non-negative); a negative ratio enters through r- instead.
    ratios = tab[:rows, -1] / np.concatenate([n_r, [1.0]])
    i_star = int(np.argmin(ratios))
    _pivot(tab, basis, i_star, r_col if ratios[i_star] >= 0.0 else r_col + 1)
    status = _run_simplex(tab, basis, num_vars, 10_000)
    if status is not LPStatus.OPTIMAL:
        # The objective is bounded by the cap row, so only numerical
        # trouble lands here.
        return None, -np.inf
    x = np.zeros(num_vars)
    for r_i, j in enumerate(basis):
        x[j] = tab[r_i, -1]
    return x[:d] - x[d : 2 * d], float(x[r_col] - x[r_col + 1])


# -- lockstep batch kernel --------------------------------------------------
#
# ``B`` stacked tableaus pivoted together: selection (entering column,
# ratio test, leaving row) is evaluated per problem, the Gauss-Jordan
# update runs as one elementwise array operation over the stack, and a
# per-problem status vector retires finished problems from the wave.
# Every arithmetic step per problem mirrors the scalar path above exactly.

_RUNNING, _OPT, _UNB = 0, 1, 2


def _pivot_batch(
    tab: np.ndarray, basis: np.ndarray, idx: np.ndarray,
    rows: np.ndarray, cols: np.ndarray,
) -> None:
    """Lockstep Gauss-Jordan pivot of problems ``idx`` on per-problem
    ``(rows, cols)``."""
    k = np.arange(len(idx))
    sub = tab[idx]
    piv = sub[k, rows, cols]
    pivrow = sub[k, rows, :] / piv[:, None]
    colv = sub[k, :, cols]
    sub = sub - colv[:, :, None] * pivrow[:, None, :]
    sub[k, rows, :] = pivrow
    tab[idx] = sub
    basis[idx, rows] = cols


def _run_simplex_batch(
    tab: np.ndarray, basis: np.ndarray, num_vars: int, max_iter: int
) -> tuple[np.ndarray, np.ndarray]:
    """Lockstep :func:`_run_simplex` over stacked tableaus.

    Returns ``(status, pivots)``: the per-problem status vector
    (``_OPT`` / ``_UNB``) and per-problem pivot counts (the raw material
    of the ``lp_warm_pivots`` / ``lp_cold_pivots`` reuse counters)."""
    num_problems = tab.shape[0]
    status = np.full(num_problems, _RUNNING, dtype=np.int8)
    pivots = np.zeros(num_problems, dtype=np.int64)
    for _ in range(max_iter):
        run = np.flatnonzero(status == _RUNNING)
        if run.size == 0:
            return status, pivots
        cost = tab[run, -1, :num_vars]
        neg = cost < -_TOL
        improving = neg.any(axis=1)
        status[run[~improving]] = _OPT
        run = run[improving]
        if run.size == 0:
            continue
        entering = neg[improving].argmax(axis=1)
        body = tab[run, :-1, :]
        col = np.take_along_axis(body, entering[:, None, None], axis=2)[:, :, 0]
        rhs = body[:, :, -1]
        pos = col > _TOL
        bounded = pos.any(axis=1)
        status[run[~bounded]] = _UNB
        run = run[bounded]
        if run.size == 0:
            continue
        col = col[bounded]
        rhs = rhs[bounded]
        pos = pos[bounded]
        entering = entering[bounded]
        ratios = np.where(pos, rhs / np.where(pos, col, 1.0), np.inf)
        best = ratios.min(axis=1)
        eligible = ratios <= best[:, None] + _TOL
        cand = np.where(eligible, basis[run], _HUGE_BASIS)
        leaving = cand.argmin(axis=1)
        pivots[run] += 1
        _pivot_batch(tab, basis, run, leaving, entering)
    if (status == _RUNNING).any():
        raise RuntimeError(f"simplex failed to converge in {max_iter} iterations")
    return status, pivots


class ChebyGatherPlan:
    """Precomputed stacking plan for one ``(m, d)`` constraint-count
    group of a batched Chebyshev wave.

    Owns no memory itself: the stacking buffers and the 3-D tableau are
    named slabs of the *arena* (any object with a
    ``array(name, shape, dtype, zero=)`` method — in the engine, the
    run's :class:`~repro.core.bounds.workspace.BoundWorkspace`), so a
    steady-state dominance pass re-fills grow-only memory instead of
    allocating.  The tableau metadata and the identity block are
    computed once per shape and reused every pass (plan-cache keying:
    one plan per ``(m, d)``, cached by the workspace).
    """

    __slots__ = ("m", "d", "rows", "num_vars", "r_col", "eye", "_arena", "_tag")

    def __init__(self, arena, m: int, d: int) -> None:
        self.m = m
        self.d = d
        self.rows, self.num_vars, self.r_col = _cheby_tableau_meta(m, d)
        self.eye = np.eye(self.rows)
        self._arena = arena
        self._tag = f"lp[{m}x{d}]"

    def stacks(
        self, count: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Slab-backed ``(g, h, norms)`` gather buffers for ``count``
        problems of this shape."""
        return (
            self._arena.array(self._tag + ".g", (count, self.m, self.d)),
            self._arena.array(self._tag + ".h", (count, self.m)),
            self._arena.array(self._tag + ".norms", (count, self.m)),
        )

    def tableau(self, count: int) -> np.ndarray:
        """A zeroed slab-backed lockstep tableau for ``count`` problems."""
        return self._arena.array(
            self._tag + ".tab",
            (count, self.rows + 1, self.num_vars + 1),
            zero=True,
        )


def _warm_replay(
    tab: np.ndarray,
    basis: np.ndarray,
    bases: np.ndarray,
    rows: int,
    num_vars: int,
) -> np.ndarray:
    """Restart problems from cached bases where possible.

    ``bases`` is ``(B, rows)`` int64 with negative entries marking "no
    cached basis".  For each candidate the basis representation
    ``B^{-1} [A | b]`` is rebuilt against the *current* tableau rows and
    the reduced objective row is recomputed; a basis that is out of
    range, singular, or primal-infeasible (negative basic rhs) is
    rejected — the staleness rule — and that problem keeps the all-slack
    tableau untouched, so its subsequent cold start is bit-identical to
    never having had a basis.  Returns the mask of warm-started problems.

    The replay uses BLAS (``np.linalg.solve``), so a warm-started
    problem's optimum may differ from its cold solve in the last bits;
    callers rely only on the robust emptiness verdict (same standing as
    the scipy scalar path).
    """
    num_problems = tab.shape[0]
    warm = np.zeros(num_problems, dtype=bool)
    cand = np.flatnonzero(
        (bases >= 0).all(axis=1) & (bases < num_vars).all(axis=1)
    )
    if cand.size == 0:
        return warm
    body = tab[cand][:, :rows, :]  # (W, rows, cols) copies
    bmat = np.take_along_axis(body, bases[cand][:, None, :], axis=2)
    try:
        rep = np.linalg.solve(bmat, body)
        ok = np.isfinite(rep).all(axis=(1, 2))
    except np.linalg.LinAlgError:
        rep = np.empty_like(body)
        ok = np.zeros(cand.size, dtype=bool)
        for k in range(cand.size):
            try:
                rep[k] = np.linalg.solve(bmat[k], body[k])
                ok[k] = True
            except np.linalg.LinAlgError:
                pass
    ok &= (rep[:, :, -1] >= -_TOL).all(axis=1)
    good = cand[np.flatnonzero(ok)]
    if good.size == 0:
        return warm
    rep = rep[ok]
    # Reduced objective row: price out the basic columns, then zero them
    # exactly (their reduced cost is 0 by definition; leaving roundoff
    # there could re-admit a basic column as entering).
    z = tab[good, -1, :]
    coeff = np.take_along_axis(z, bases[good], axis=1)
    z = z - np.einsum("wr,wrc->wc", coeff, rep)
    np.put_along_axis(z, bases[good], 0.0, axis=1)
    tab[good, :rows, :] = rep
    tab[good, -1, :] = z
    basis[good] = bases[good]
    warm[good] = True
    return warm


def _cheby_solve_batch(
    g: np.ndarray,
    h: np.ndarray,
    norms: np.ndarray,
    r_cap: float,
    max_iter: int = 10_000,
    *,
    bases: np.ndarray | None = None,
    plan: ChebyGatherPlan | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Lockstep warm-started Chebyshev simplex on ``B`` stacked problems
    of a common constraint count.  ``g`` is ``(B, m, d)``, ``h`` and
    ``norms`` are ``(B, m)`` with every norm positive (zero rows removed
    by the caller).  Returns ``(centers, radii, basis, pivots, warm)``
    with NaN / ``-inf`` centre/radius for problems the scalar path would
    answer ``(None, -inf)``; ``basis`` is the ``(B, rows)`` optimal basis
    (cacheable for a later ``bases=`` warm start), ``pivots`` the
    per-problem pivot counts and ``warm`` the basis-replay mask.

    For cold problems (no ``bases`` row, or a stale one), construction,
    warm-start pivot and simplex iterations mirror
    :func:`chebyshev_center` operation for operation across the batch
    axis (elementwise pivots, per-problem selection), so every problem is
    bit-identical to its scalar solve.  Warm problems resume from the
    replayed basis instead (see :func:`_warm_replay`).
    """
    num_problems, m, d = g.shape
    scale = np.abs(np.concatenate([g, norms[:, :, None]], axis=2)).max(axis=2)
    g = g / scale[:, :, None]
    n_r = norms / scale
    h = h / scale

    rows, num_vars, r_col = _cheby_tableau_meta(m, d)
    if plan is not None:
        tab = plan.tableau(num_problems)
        eye = plan.eye
    else:
        tab = np.zeros((num_problems, rows + 1, num_vars + 1))
        eye = np.eye(rows)
    tab[:, :m, :d] = g
    tab[:, :m, d : 2 * d] = -g
    tab[:, :m, r_col] = n_r
    tab[:, :m, r_col + 1] = -n_r
    tab[:, m, r_col] = 1.0
    tab[:, m, r_col + 1] = -1.0
    tab[:, :rows, r_col + 2 : r_col + 2 + rows] = eye
    tab[:, :m, -1] = h
    tab[:, m, -1] = r_cap
    tab[:, -1, r_col] = -1.0
    tab[:, -1, r_col + 1] = 1.0
    basis = np.tile(
        np.arange(r_col + 2, r_col + 2 + rows, dtype=np.int64),
        (num_problems, 1),
    )
    warm = (
        _warm_replay(tab, basis, bases, rows, num_vars)
        if bases is not None
        else np.zeros(num_problems, dtype=bool)
    )
    cold = np.flatnonzero(~warm)
    if cold.size:
        denom = np.concatenate([n_r[cold], np.ones((cold.size, 1))], axis=1)
        ratios = tab[cold, :rows, -1] / denom
        i_star = ratios.argmin(axis=1)
        start_col = np.where(
            np.take_along_axis(ratios, i_star[:, None], axis=1)[:, 0] >= 0.0,
            r_col,
            r_col + 1,
        )
        _pivot_batch(tab, basis, cold, i_star, start_col.astype(np.int64))
    statuses, pivots = _run_simplex_batch(tab, basis, num_vars, max_iter)
    pivots[cold] += 1  # the cold construction pivot

    x = np.zeros((num_problems, num_vars))
    rows_all = np.arange(num_problems)
    for r_i in range(rows):
        x[rows_all, basis[:, r_i]] = tab[:, r_i, -1]
    centers = x[:, :d] - x[:, d : 2 * d]
    radii = x[:, r_col] - x[:, r_col + 1]
    failed = statuses != _OPT
    centers[failed] = np.nan
    radii[failed] = -np.inf
    return centers, radii, basis, pivots, warm


def chebyshev_center_batch(
    gs,
    hs,
    *,
    r_cap: float = _R_CAP,
    bases=None,
    return_bases: bool = False,
    stats: dict | None = None,
    workspace=None,
):
    """Lockstep :func:`chebyshev_center` over ``B`` polyhedra.

    Parameters
    ----------
    gs / hs:
        Either stacked arrays (``(B, m, d)`` and ``(B, m)``) or ragged
        sequences of per-problem ``(m_i, d)`` / ``(m_i,)`` arrays (the
        shape a dominance pass produces: constraint counts differ across
        subsets).  Problems are grouped by effective constraint count and
        each group is pivoted in lockstep.
    bases:
        Optional length-``B`` sequence of cached per-problem starting
        bases (``None`` entries = no cache).  A basis whose length does
        not match the problem's current post-strip row count, or that
        fails the replay validity checks, is ignored — the problem cold
        starts bit-identically (see :func:`_warm_replay`).
    return_bases:
        Also return the per-problem optimal bases (``None`` for problems
        answered without a tableau), for caching into a later ``bases=``.
    stats:
        Optional dict accumulating ``lp_warm_starts`` /
        ``lp_warm_pivots`` / ``lp_cold_pivots``.
    workspace:
        Optional arena owning :class:`ChebyGatherPlan` slabs (duck-typed:
        needs ``lp_plan(m, d)``; the engine passes its
        :class:`~repro.core.bounds.workspace.BoundWorkspace`).  With a
        workspace, steady-state calls fill grow-only slabs instead of
        allocating stack and tableau buffers per group.

    Returns
    -------
    (centers, radii) or (centers, radii, bases_out):
        ``(B, d)`` and ``(B,)``.  A problem the scalar path would answer
        with ``(None, -inf)`` (zero-row infeasibility or numerical
        failure) gets a NaN centre row and ``-inf`` radius.

    Without ``bases``, every problem's answer is bit-identical to a
    scalar :func:`chebyshev_center` call on the same ``(g, h)`` — the
    batch is purely an execution strategy (see the module docstring).
    Warm-started problems keep the identical emptiness *verdict* but may
    differ in the centre's last bits.
    """
    problems = [
        (np.atleast_2d(np.asarray(g, dtype=float)), np.asarray(h, dtype=float))
        for g, h in zip(gs, hs)
    ]
    num_problems = len(problems)
    if num_problems == 0:
        if return_bases:
            return np.zeros((0, 0)), np.zeros(0), []
        return np.zeros((0, 0)), np.zeros(0)
    d = problems[0][0].shape[1]
    centers = np.full((num_problems, d), np.nan)
    radii = np.full(num_problems, -np.inf)
    bases_out: list[np.ndarray | None] = [None] * num_problems

    groups: dict[int, list[tuple[int, np.ndarray, np.ndarray, np.ndarray]]] = {}
    for i, (g, h) in enumerate(problems):
        if g.shape[1] != d:
            raise ValueError("all problems must share the dimensionality d")
        norms = np.linalg.norm(g, axis=1)
        zero_rows = norms <= _TOL
        if zero_rows.any():
            if (h[zero_rows] < -_TOL).any():
                continue  # (None, -inf): certainly empty
            g, h, norms = g[~zero_rows], h[~zero_rows], norms[~zero_rows]
        if len(h) == 0:
            centers[i] = 0.0
            radii[i] = r_cap
            continue
        if len(h) == 1:
            # Trivially feasible: answered analytically, no tableau.
            centers[i] = _single_row_center(g, h, norms, r_cap)
            radii[i] = r_cap
            continue
        groups.setdefault(len(h), []).append((i, g, h, norms))

    for m, items in groups.items():
        count = len(items)
        idx = np.array([i for i, _, _, _ in items])
        plan = workspace.lp_plan(m, d) if workspace is not None else None
        if plan is not None:
            g_stack, h_stack, n_stack = plan.stacks(count)
        else:
            g_stack = np.empty((count, m, d))
            h_stack = np.empty((count, m))
            n_stack = np.empty((count, m))
        for k, (_, g, h, norms) in enumerate(items):
            g_stack[k] = g
            h_stack[k] = h
            n_stack[k] = norms
        b_stack = None
        if bases is not None:
            group_rows = m + 1
            b_stack = np.full((count, group_rows), -1, dtype=np.int64)
            for k, (i, _, _, _) in enumerate(items):
                cached = bases[i]
                if cached is not None and len(cached) == group_rows:
                    b_stack[k] = cached
        group_centers, group_radii, group_basis, group_pivots, group_warm = (
            _cheby_solve_batch(
                g_stack, h_stack, n_stack, r_cap, bases=b_stack, plan=plan
            )
        )
        centers[idx] = group_centers
        radii[idx] = group_radii
        if return_bases:
            for k, i in enumerate(idx):
                bases_out[i] = group_basis[k].copy()
        if stats is not None:
            warm_n = int(group_warm.sum())
            stats["lp_warm_starts"] = stats.get("lp_warm_starts", 0) + warm_n
            stats["lp_warm_pivots"] = stats.get("lp_warm_pivots", 0) + int(
                group_pivots[group_warm].sum()
            )
            stats["lp_cold_pivots"] = stats.get("lp_cold_pivots", 0) + int(
                group_pivots[~group_warm].sum()
            )
    if return_bases:
        return centers, radii, bases_out
    return centers, radii


def _scipy_linprog():
    """Return scipy's linprog if importable, else None (cached)."""
    global _SCIPY_LINPROG
    if _SCIPY_LINPROG is _UNRESOLVED:
        try:
            from scipy.optimize import linprog  # type: ignore

            _SCIPY_LINPROG = linprog
        except ImportError:  # pragma: no cover - scipy present in CI
            _SCIPY_LINPROG = None
    return _SCIPY_LINPROG


_UNRESOLVED = object()
_SCIPY_LINPROG = _UNRESOLVED


def polyhedron_feasible_point(
    g: np.ndarray, h: np.ndarray, *, tol: float = 1e-7
) -> np.ndarray | None:
    """A point of ``{y : G y <= h}``, or ``None`` if (robustly) empty.

    Returns the Chebyshev centre: strictly negative inscribed-ball radius
    means even the relaxed system admits no ball, i.e. the polyhedron has
    no interior point and misses closure only by ``tol``.  Dominance
    pruning errs on the safe side: near-degenerate regions are reported
    non-empty (the partial combination is kept), and the returned centre
    doubles as a cacheable *witness* of non-emptiness.

    When scipy is importable its HiGHS solver answers the Chebyshev LP
    (roughly 20x faster than the didactic dense simplex here, which
    remains the dependency-free fallback and the cross-check in tests).
    """
    g = np.atleast_2d(np.asarray(g, dtype=float))
    h = np.asarray(h, dtype=float)
    norms = np.linalg.norm(g, axis=1)
    zero_rows = norms <= _TOL
    if zero_rows.any():
        if (h[zero_rows] < -_TOL).any():
            return None
        g, h, norms = g[~zero_rows], h[~zero_rows], norms[~zero_rows]
        if len(h) == 0:
            return np.zeros(g.shape[1] if g.size else 1)
    if len(h) == 1:
        # A single half-space is always non-empty: analytic centre, no LP.
        return _single_row_center(g, h, norms, _R_CAP)
    linprog = _scipy_linprog()
    if linprog is not None:
        d = g.shape[1]
        a_ub = np.hstack([g, norms[:, None]])
        c = np.zeros(d + 1)
        c[-1] = -1.0
        bounds = [(None, None)] * d + [(None, _R_CAP)]
        res = linprog(c, A_ub=a_ub, b_ub=h, bounds=bounds, method="highs")
        if res.status == 0:
            if float(res.x[-1]) < -tol:
                return None
            return np.asarray(res.x[:d], dtype=float)
        # HiGHS trouble (numerical): fall through to the dense simplex.
    center, radius = chebyshev_center(g, h)
    if radius < -tol or center is None:
        return None
    return center


def polyhedron_feasible_point_batch(
    gs,
    hs,
    *,
    tol: float = 1e-7,
    bases=None,
    return_bases: bool = False,
    stats: dict | None = None,
    workspace=None,
):
    """Batched :func:`polyhedron_feasible_point` over ``B`` polyhedra.

    Accepts stacked ``(B, m, d)`` / ``(B, m)`` arrays or ragged
    per-problem sequences, plus the warm-start / plan keywords of
    :func:`chebyshev_center_batch` (``bases`` / ``return_bases`` /
    ``stats`` / ``workspace``), which are passed straight through.

    Returns
    -------
    (points, empty) or (points, empty, bases_out):
        ``points`` is ``(B, d)`` — the Chebyshev-centre witness per
        non-empty polyhedron, NaN rows where empty; ``empty`` is the
        ``(B,)`` boolean emptiness verdict; ``bases_out`` (with
        ``return_bases``) holds the cacheable per-problem optimal bases.

    Always the dense lockstep kernel: per problem, the point and verdict
    are bit-identical to the scalar dense path (:func:`chebyshev_center`
    + the radius test).  The scalar :func:`polyhedron_feasible_point` may
    route through scipy's HiGHS instead, which returns a different (but
    equally valid) witness; the emptiness *verdicts* agree — both are
    robust sign tests on the same LP optimum — which is the invariant the
    dominance pass relies on.  Warm-started problems (``bases``) keep the
    same verdict standing: identical emptiness answer, possibly different
    witness bits.
    """
    result = chebyshev_center_batch(
        gs,
        hs,
        bases=bases,
        return_bases=return_bases,
        stats=stats,
        workspace=workspace,
    )
    centers, radii = result[0], result[1]
    empty = (radii < -tol) | np.isnan(centers).any(axis=1)
    points = centers.copy()
    points[empty] = np.nan
    if return_bases:
        return points, empty, result[2]
    return points, empty


def polyhedron_is_empty(g: np.ndarray, h: np.ndarray, *, tol: float = 1e-7) -> bool:
    """True iff ``{y : G y <= h}`` is (robustly) empty.

    See :func:`polyhedron_feasible_point` for the semantics and the
    solver-selection logic.
    """
    return polyhedron_feasible_point(g, h, tol=tol) is None


def polyhedron_is_empty_batch(gs, hs, *, tol: float = 1e-7) -> np.ndarray:
    """Batched :func:`polyhedron_is_empty`: the ``(B,)`` boolean verdicts
    of :func:`polyhedron_feasible_point_batch`."""
    return polyhedron_feasible_point_batch(gs, hs, tol=tol)[1]
