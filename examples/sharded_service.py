"""Sharded relations: partitioned storage behind an unchanged service.

Partitions each relation across S shards (hash partitioning by tuple
id), serves the same query mix through :class:`repro.service.
RankJoinService`, and checks the storage layer's core guarantee: the
ranked top-K — keys, scores and tie-break order — is *bit-identical* to
the single-shard run, because each shard keeps its own sorted order and
the access layer k-way-merges the per-shard cursors into one monotone
stream (``repro.core.access.MergeStream``).

What sharding buys is operational, not algorithmic: no global sorted
order ever exists (each shard sorts its own fraction, the prerequisite
for relations larger than one machine's memory), the service's LRU
caches orders per ``(relation, shard, query-bucket)`` so shards are
computed and evicted independently, and each block pull fans out to one
task per shard on a dedicated pool — the execution shape a distributed
deployment would put network fetches behind.

Run:  python examples/sharded_service.py
"""

import time

import numpy as np

from repro.core import EuclideanLogScoring, ShardedRelation
from repro.data import SyntheticConfig, generate_problem
from repro.service import RankJoinService

K = 5
SHARDS = 4
relations, base_query = generate_problem(
    SyntheticConfig(
        n_relations=3, dims=2, density=50.0, skew=1.0, n_tuples=250, seed=7
    )
)
scoring = EuclideanLogScoring(1.0, 1.0, 1.0)

sharded = [ShardedRelation.from_relation(r, shards=SHARDS) for r in relations]
for rel in sharded:
    sizes = [len(s) for s in rel.storage.shards]
    print(f"  {rel.name}: {len(rel)} tuples over {rel.shard_count} shards {sizes}")

rng = np.random.default_rng(0)
hot = [base_query + rng.uniform(-0.1, 0.1, 2) for _ in range(6)]
queries = [hot[i % len(hot)] for i in range(30)]

single = RankJoinService(relations, scoring, k=K, pull_block=16, max_workers=4)
t0 = time.perf_counter()
reference = single.submit_many(queries)
single_s = time.perf_counter() - t0

with RankJoinService(
    sharded, scoring, k=K, pull_block=16, max_workers=4
) as service:
    t0 = time.perf_counter()
    results = service.submit_many(queries)
    sharded_s = time.perf_counter() - t0
    stats = service.stats.as_dict()

for ref, got in zip(reference, results):
    assert [(c.key, c.score) for c in got.combinations] == [
        (c.key, c.score) for c in ref.combinations
    ], "sharded top-K must be bit-identical to single-shard"

print(f"\n{len(queries)} queries, n=3, S={SHARDS} (identical ranked top-K):")
print(f"  single-shard service: {single_s * 1e3:7.1f} ms")
print(f"  sharded service:      {sharded_s * 1e3:7.1f} ms "
      f"({len(queries) / sharded_s:.0f} queries/s)")
print(f"  per-shard order cache: {stats['stream_cache_hits']} hits / "
      f"{stats['stream_cache_misses']} misses "
      f"(one miss per relation-shard-bucket)")
print("\nTop combination of the last query:")
print(f"  {results[-1].combinations[0]}")
