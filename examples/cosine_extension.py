"""Cosine-similarity proximity rank join (the paper's future-work item).

Section 6 of the paper: "we also intend to specialize the tight bounding
scheme to the case of proximity based on cosine similarity."  This
example runs that extension: documents from three text collections,
represented by (toy) term-frequency direction vectors, joined by mutual
cosine similarity and similarity to a query profile, under score-based
access (collections ranked by, say, PageRank-like authority).

The exact QP machinery does not apply to cosine geometry, so the engine
runs with :class:`NumericTightBound` — the numeric completion solver with
a safety margin — and is checked against the brute-force oracle.

Run:  python examples/cosine_extension.py
"""

import numpy as np

from repro import AccessKind, CosineProximityScoring, ProxRJ, Relation, RoundRobin
from repro.core import brute_force_topk
from repro.core.bounds.numeric import NumericTightBound

rng = np.random.default_rng(42)
TERMS = 6  # toy vocabulary size
query_profile = np.array([0.9, 0.7, 0.1, 0.0, 0.2, 0.0])  # what we search for


def collection(name: str, size: int, topical_axis: int) -> Relation:
    """Documents as random direction vectors, biased towards one topic."""
    vecs = rng.exponential(scale=0.4, size=(size, TERMS))
    vecs[:, topical_axis] += rng.exponential(scale=1.0, size=size)
    authority = rng.uniform(0.1, 1.0, size=size)
    return Relation(name, authority, vecs, sigma_max=1.0)


collections = [
    collection("news", 8, topical_axis=0),
    collection("blogs", 8, topical_axis=1),
    collection("papers", 8, topical_axis=2),
]

scoring = CosineProximityScoring(w_s=0.5, w_q=1.0, w_mu=1.0)

engine = ProxRJ(
    collections,
    scoring,
    kind=AccessKind.SCORE,
    query=query_profile,
    bound=NumericTightBound(margin=0.02),
    pull=RoundRobin(),
    k=3,
)
result = engine.run()
oracle = brute_force_topk(collections, scoring, query_profile, k=3)

print("Top document triples by authority + cosine proximity:")
for combo in result.combinations:
    ids = " + ".join(f"{t.relation}#{t.tid}" for t in combo.tuples)
    print(f"  S = {combo.score:6.3f}   {ids}")

print(f"\nDepths: {result.depths}  (of {[len(c) for c in collections]} documents)")
match = [c.key for c in result.combinations] == [c.key for c in oracle]
print(f"Matches brute-force oracle: {match}")
assert match
