"""Quickstart: proximity rank join in a dozen lines.

Three tiny relations (the paper's Table 1), a query at the origin, and
the instance-optimal TBPA algorithm returning the top combination —
reproducing Example 3.1's certified top-1 with its aggregate score of -7.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import AccessKind, EuclideanLogScoring, Relation, tbpa

# Each relation: scores sigma(tau) and 2-D feature vectors x(tau).
restaurants = Relation(
    "restaurants", [0.5, 1.0, 0.1], [[0.0, -0.5], [0.0, 1.0], [40.0, 40.0]],
    sigma_max=1.0,
)
theaters = Relation(
    "theaters", [1.0, 0.8, 0.1], [[1.0, 1.0], [-2.0, 2.0], [40.0, 40.0]],
    sigma_max=1.0,
)
hotels = Relation(
    "hotels", [1.0, 0.4, 0.1], [[-1.0, 1.0], [-2.0, -2.0], [40.0, 40.0]],
    sigma_max=1.0,
)

# The aggregation function of the paper's eq. (2):
#   S = sum_i  ln(sigma_i) - ||x_i - q||^2 - ||x_i - mu||^2
scoring = EuclideanLogScoring(w_s=1.0, w_q=1.0, w_mu=1.0)
query = np.zeros(2)  # the user's position

engine = tbpa(
    [restaurants, theaters, hotels],
    scoring,
    query,
    k=3,
    kind=AccessKind.DISTANCE,  # services return results nearest-first
)
result = engine.run()

print("Top combinations (restaurant x theater x hotel):")
for combo in result.combinations:
    members = ", ".join(f"{t.relation}#{t.tid}" for t in combo.tuples)
    print(f"  S = {combo.score:7.2f}   {members}")

print(f"\nTuples fetched per relation: {result.depths}")
print(f"sumDepths (total I/O):        {result.sum_depths}")
print(f"Certified stopping bound:     {result.bound:.2f}")

assert result.combinations[0].score == -7.0 or abs(result.combinations[0].score + 7.0) < 1e-9
