"""Durable tiered storage: persist -> restart -> warm-start a service.

A production rank-join deployment doesn't rebuild its relations from
Python lists on every boot.  This demo walks the durable tier end to
end:

1. **Persist** two sharded relations into one store directory — an
   immutable columnar file per shard (memory-mapped on read) behind a
   WAL-mode SQLite catalog.
2. **Cold serve**: a service over the freshly opened store answers a
   batch of hot-bucket queries; every access order is sorted once and
   written back to the catalog.
3. **"Restart"**: close everything, re-open the store as a brand-new
   process would, and build a *warm* service — its order LRU preloads
   the persisted orders, so the first query of every hot bucket replays
   an order computed in the previous life (zero re-sorts, and the
   results are bit-identical to the in-memory reference).
4. **Evict**: drop a shard from RAM and stream it back page by page
   from the memmap through the same window API remote shards use —
   results still bit-identical.

Run:  python examples/durable_service.py
"""

import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core import EuclideanLogScoring, Relation, ShardedRelation
from repro.data import SyntheticConfig, generate_problem
from repro.service import RankJoinService

K = 5
SHARDS = 2
relations, base_query = generate_problem(
    SyntheticConfig(
        n_relations=2, dims=2, density=50.0, skew=1.0, n_tuples=400, seed=11
    )
)
scoring = EuclideanLogScoring(1.0, 1.0, 1.0)
sharded = [ShardedRelation.from_relation(r, shards=SHARDS) for r in relations]

rng = np.random.default_rng(0)
hot_buckets = [base_query + rng.uniform(-0.2, 0.2, 2) for _ in range(4)]
queries = [hot_buckets[i % len(hot_buckets)] for i in range(12)]


def ranked(res):
    return [(c.key, round(c.score, 10)) for c in res.combinations]


with tempfile.TemporaryDirectory() as tmp:
    store = Path(tmp) / "store"

    # -- 1. persist ---------------------------------------------------------
    for rel in sharded:
        rel.persist(store)
    n_files = len(list((store / "shards").glob("*.shard")))
    print(f"persisted {len(sharded)} relations as {n_files} shard files + catalog")

    # -- 2. cold service ----------------------------------------------------
    durable = [Relation.open(store, r.name) for r in sharded]
    t0 = time.perf_counter()
    # result_cache_size=0 keeps every submit on the stream path, so the
    # demo's meters show order/stream traffic rather than result-cache hits.
    cold = RankJoinService(durable, scoring, k=K, result_cache_size=0)
    cold_first = cold.submit(queries[0])
    cold_first_s = time.perf_counter() - t0
    cold_rest = [cold.submit(q) for q in queries[1:]]
    snap = cold.stats.snapshot()
    print(
        f"cold service: first query {cold_first_s * 1e3:.1f} ms, "
        f"{snap['order_sorts']} orders sorted, "
        f"{snap['catalog_order_writes']} written back to the catalog"
    )
    cold.close()
    for r in durable:
        r.close()

    # In-memory reference for the bit-identity claims below.
    reference = RankJoinService(sharded, scoring, k=K, result_cache_size=0)
    ref_results = [reference.submit(q) for q in queries]
    reference.close()

    # -- 3. restart + warm start --------------------------------------------
    durable = [Relation.open(store, r.name) for r in sharded]
    t0 = time.perf_counter()
    warm = RankJoinService(durable, scoring, k=K, result_cache_size=0)
    warm_first = warm.submit(queries[0])
    warm_first_s = time.perf_counter() - t0
    warm_rest = [warm.submit(q) for q in queries[1:]]
    snap = warm.stats.snapshot()
    assert snap["order_sorts"] == 0, "warm restart must not re-sort"
    assert ranked(warm_first) == ranked(cold_first) == ranked(ref_results[0])
    for w, c, ref in zip(warm_rest, cold_rest, ref_results[1:]):
        assert ranked(w) == ranked(c) == ranked(ref)
    print(
        f"warm restart: first query {warm_first_s * 1e3:.1f} ms "
        f"(vs {cold_first_s * 1e3:.1f} ms cold), zero re-sorts — "
        f"{snap['orders_warm_loaded']} orders preloaded from the catalog, "
        f"{snap['stream_cache_hits']} LRU hits"
    )
    print("warm results bit-identical to cold and in-memory runs")

    # -- 4. evict + page back -----------------------------------------------
    for r in durable:
        r.storage.evict_all()
    paged = [warm.submit(q) for q in queries]
    for p, ref in zip(paged, ref_results):
        assert ranked(p) == ranked(ref)
    counters = durable[0].storage.counters
    print(
        f"evicted shards paged back from disk: {counters['paged_windows']} "
        f"windows, {counters['paged_rows']} rows served via the memmap — "
        "results still bit-identical"
    )
    warm.close()
    for r in durable:
        r.close()

    # Catalog hit trail: the persisted orders did the serving.
    from repro.core.durable import ShardCatalog

    with ShardCatalog(store / "catalog.sqlite") as cat:
        hits = cat.total_order_hits()
        stats = cat.order_stats()
    print(
        f"catalog hit stats: {hits} order replays across "
        f"{len(stats)} persisted orders"
    )
