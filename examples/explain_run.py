"""Watch the tight bound race the K-th score (execution tracing).

Algorithm 1 stops as soon as the K-th best seen combination's score
reaches the upper bound on everything unseen.  This example traces that
race pull by pull on a small synthetic instance, for both the corner and
the tight bound — making the paper's core claim *visible*: the corner
bound hovers too high (it ignores geometry) and certifies much later.

Run:  python examples/explain_run.py
"""

import numpy as np

from repro import (
    AccessKind,
    CornerBound,
    EuclideanLogScoring,
    ProxRJ,
    RoundRobin,
    TightBound,
)
from repro.core import TraceBound
from repro.data import SyntheticConfig, generate_problem

relations, query = generate_problem(SyntheticConfig(n_tuples=200, seed=7))
scoring = EuclideanLogScoring()

for label, scheme in [("tight bound", TightBound()), ("corner bound", CornerBound())]:
    traced = TraceBound(scheme)
    engine = ProxRJ(
        relations, scoring, kind=AccessKind.DISTANCE, query=query,
        bound=traced, pull=RoundRobin(), k=5,
    )
    result = engine.run()
    print(f"=== {label}: stopped after {result.sum_depths} pulls ===")
    print(traced.trace.render(every=4))
