"""Async serving: 100 concurrent queries with deadlines over remote shards.

The relations live behind simulated remote shard endpoints (S=4, ~4 ms
per page round-trip — I/O-dominated, as the paper's search-computing
services are).  One asyncio event loop multiplexes every
in-flight query's window fetches; per-shard feeders keep the next
windows in flight while the engine scores the current block (pipelined
prefetch), so wall-clock is set by *overlapped* latency, not the serial
sum of round-trips.

The batch mixes three traffic classes:

* 90 normal queries over a handful of hot buckets (shared cached
  orders, generous deadline);
* 8 queries with a tight-but-serviceable deadline (the clock starts at
  submission, so queue time counts against it);
* 2 queries with a hopeless deadline — they come back as *certified
  partials*: ``completed=False``, and the leading ``certified_count``
  combinations are provably final because they score above the bound
  returned with the result.

Every completed answer is asserted bit-identical to the in-memory
sharded service.

Run:  python examples/async_service.py
"""

import asyncio
import time

import numpy as np

from repro.core import EuclideanLogScoring, ShardedRelation
from repro.data import SyntheticConfig, generate_problem
from repro.service import AsyncRankJoinService, LatencyModel, RankJoinService

K = 5
SHARDS = 4
relations, base_query = generate_problem(
    SyntheticConfig(
        n_relations=2, dims=2, density=50.0, skew=1.0, n_tuples=300, seed=7
    )
)
scoring = EuclideanLogScoring(1.0, 1.0, 1.0)
sharded = [ShardedRelation.from_relation(r, shards=SHARDS) for r in relations]

rng = np.random.default_rng(0)
hot = [base_query + rng.uniform(-0.1, 0.1, 2) for _ in range(6)]
normal = [hot[i % len(hot)] for i in range(90)]
tight = [base_query + rng.uniform(-0.3, 0.3, 2) for _ in range(8)]
hopeless = [base_query + rng.uniform(-0.5, 0.5, 2) for _ in range(2)]

reference = RankJoinService(sharded, scoring, k=K, result_cache_size=0)

service = AsyncRankJoinService(
    sharded,
    scoring,
    k=K,
    latency=LatencyModel(base=0.004, jitter=0.0008),
    page_size=8,
    max_inflight=8,
    queue_limit=128,
    result_cache_size=0,
)


async def main():
    tasks = (
        [service.submit(q, deadline=30.0) for q in normal]
        + [service.submit(q, deadline=10.0) for q in tight]
        + [service.submit(q, deadline=0.05) for q in hopeless]
    )
    start = time.perf_counter()
    results = await asyncio.gather(*tasks)
    return results, time.perf_counter() - start


results, wall = asyncio.run(main())
queries = normal + tight + hopeless
completed = [(q, r) for q, r in zip(queries, results) if r.completed]
partial = [r for r in results if not r.completed]

for q, r in completed:
    ref = reference.submit(q)
    assert [(c.key, c.score) for c in r.combinations] == [
        (c.key, c.score) for c in ref.combinations
    ], "completed async answers must be bit-identical to the sharded service"
for r in partial:
    # Certified partial: the leading combinations provably beat the bound.
    for combo in r.combinations[: r.certified_count]:
        assert combo.score > r.bound

meters = service.remote_meters()
stats = service.stats.as_dict()
print(f"{len(queries)} concurrent queries, n=2, S={SHARDS} "
      f"(~4 ms/page simulated shard latency):")
print(f"  wall-clock:               {wall * 1e3:8.1f} ms "
      f"({len(queries) / wall:.0f} queries/s)")
print(f"  serial remote latency:    {meters['simulated_seconds'] * 1e3:8.1f} ms "
      f"({meters['pages']} page round-trips over {meters['endpoints']} endpoints)")
print(f"  overlap win:              {meters['simulated_seconds'] / wall:8.1f}x "
      f"latency hidden by pipelined prefetch")
print(f"  completed / expired:      {len(completed)} / {stats['expired']}")
print(f"  per-shard order cache:    {stats['stream_cache_misses']} sorts for "
      f"{stats['queries']} queries")

expired = [r for r in partial]
if expired:
    r = expired[0]
    print(f"\nA deadline-expired query returned a certified partial: "
          f"{r.certified_count} of {len(r.combinations)} results certified, "
          f"bound {r.bound:.3f}")
print("\nTop combination of the last completed query:")
print(f"  {completed[-1][1].combinations[0]}")
service.close()
