"""Process-pool serving: GIL-free workers over shared memmap shards.

The threaded service overlaps I/O nicely, but on solver-bound batches
(tie-heavy TBPA: every pull stalls on quantised ranks and the dominance
LPs dominate the wall) Python threads serialise on the GIL.  This demo
walks the process-pool tier end to end:

1. **Spool + fork**: ``ProcPoolRankJoinService`` persists the relations
   once into a durable store (or serves an existing store in place) and
   forks N workers; each opens the shards *read-only* via memmap — the
   OS page cache shares the bytes, no per-worker copy — and runs
   queries end-to-end in-process.
2. **Threads vs processes**: the same tie-heavy TBPA batch runs through
   the threaded ``submit_many`` path and the worker pool; both
   wall-clocks are printed.  (On a single-core host the pool loses —
   the point of the comparison is the protocol, which CI re-runs on
   multi-core runners.)
3. **Bucket-affinity dispatch**: repeats of a query bucket hash to the
   same worker (crc32 of the canonical bucket key), so each worker's
   order LRU stays hot for *its* buckets — the per-worker hit rates
   show the cache working without any shared memory.
4. **Bit-identity**: every pooled answer (keys, float scores, depths,
   bound) equals the single-process answer under ``==`` — the compact
   wire format ships raw float64 bytes, never re-derived values.

Run:  python examples/procpool_service.py
"""

import time

import numpy as np

from repro.core import EuclideanLogScoring, Relation
from repro.service import ProcPoolRankJoinService, RankJoinService

N_TUPLES = 100
LEVELS = 5
WORKERS = 2
K = 5

# Tie-heavy n=3 workload: vectors snapped to a coarse grid, scores to a
# short ladder, so streams stall on ties and TBPA leans on the
# dominance solver — the solver-bound regime processes are for.
rng = np.random.default_rng(0)
side = (N_TUPLES / 50.0) ** 0.5
grid = np.linspace(-side / 2, side / 2, LEVELS)
relations = []
for i in range(3):
    vectors = rng.uniform(-side / 2, side / 2, size=(N_TUPLES, 2))
    vectors = grid[np.abs(vectors[..., None] - grid).argmin(axis=-1)]
    scores = rng.choice(np.linspace(0.1, 1.0, LEVELS), size=N_TUPLES)
    relations.append(Relation(f"R{i + 1}", scores, vectors, sigma_max=1.0))
scoring = EuclideanLogScoring(1.0, 1.0, 1.0)

# 4 distinct query buckets, each asked 3 times: affinity dispatch pins
# every repeat to the bucket's preferred worker.
buckets = [rng.uniform(-side / 2, side / 2, 2) for _ in range(4)]
queries = [buckets[i % len(buckets)] for i in range(12)]


def ranked(res):
    return [(c.key, c.score) for c in res.combinations], tuple(res.depths)


common = dict(algorithm="TBPA", k=K, pull_block=8, result_cache_size=0)

# -- threads ----------------------------------------------------------------
with RankJoinService(
    relations, scoring, max_workers=WORKERS, **common
) as threaded:
    threaded.submit(rng.uniform(-side / 2, side / 2, 2))  # warm imports
    t0 = time.perf_counter()
    thread_results = threaded.submit_many(queries)
    thread_wall = time.perf_counter() - t0
print(
    f"threads   ({WORKERS} threads):  {len(queries)} queries in "
    f"{thread_wall * 1e3:.0f} ms ({len(queries) / thread_wall:.1f} queries/s)"
)

# -- processes --------------------------------------------------------------
with ProcPoolRankJoinService(
    relations, scoring, workers=WORKERS, **common
) as pool:
    pool.warm_up()  # fork + ping the workers before the clock starts
    t0 = time.perf_counter()
    pool_results = pool.submit_many(queries)
    pool_wall = time.perf_counter() - t0
    stats = pool.stats.snapshot()
    per_worker = pool.per_worker_stats()
print(
    f"processes ({WORKERS} workers):  {len(queries)} queries in "
    f"{pool_wall * 1e3:.0f} ms ({len(queries) / pool_wall:.1f} queries/s) — "
    f"{stats['affinity_hits']} affinity hits, "
    f"{stats['affinity_steals']} steals, "
    f"{stats['worker_restarts']} restarts"
)

# -- per-worker cache affinity ----------------------------------------------
for i, snap in enumerate(per_worker):
    hits = snap.get("stream_cache_hits", 0)
    misses = snap.get("stream_cache_misses", 0)
    total = hits + misses
    rate = hits / total if total else 0.0
    print(
        f"  worker {i}: {snap.get('queries', 0)} queries, "
        f"order-LRU hit rate {rate:.0%} "
        f"({hits} hits / {misses} misses, {snap.get('order_sorts', 0)} sorts)"
    )
    # Affinity keeps each bucket on one worker: after its first sight a
    # bucket's orders are LRU hits, so sorts == misses (first sights).
    assert snap.get("order_sorts", 0) == misses

# -- bit-identity -----------------------------------------------------------
assert [ranked(r) for r in pool_results] == [ranked(r) for r in thread_results]
assert stats["worker_queries"] == len(queries)
print(
    "pooled answers bit-identical to the threaded single-process run "
    f"({len(queries)}/{len(queries)} queries, keys + float scores + depths)"
)
