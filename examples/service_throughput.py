"""Serving many queries: the block-pull engine behind a shared service.

Simulates heavy multi-query traffic against shared relations — the
"search computing" deployment the paper motivates — and shows the two
system-level levers this repo adds on top of Algorithm 1:

1. ``pull_block``: the engine pulls tuples in blocks, scores the enabled
   cross products in one vectorised pass, prunes hopeless blocks and
   amortises bound updates — same ranked top-K, less CPU.
2. :class:`repro.service.RankJoinService`: queries identical after
   bucket rounding share LRU-cached access orders and results.

Run:  python examples/service_throughput.py
"""

import time

import numpy as np

from repro import AccessKind, EuclideanLogScoring, make_algorithm
from repro.data import SyntheticConfig, generate_problem
from repro.service import RankJoinService

K = 5
relations, base_query = generate_problem(
    SyntheticConfig(
        n_relations=3, dims=2, density=50.0, skew=1.0, n_tuples=250, seed=7
    )
)
scoring = EuclideanLogScoring(1.0, 1.0, 1.0)

# -- 1. One query: per-tuple vs block-pull ------------------------------

t0 = time.perf_counter()
per_tuple = make_algorithm(
    "CBPA", relations, scoring, base_query, K, kind=AccessKind.DISTANCE
).run()
per_tuple_s = time.perf_counter() - t0

t0 = time.perf_counter()
blocked = make_algorithm(
    "CBPA", relations, scoring, base_query, K,
    kind=AccessKind.DISTANCE, pull_block=16,
).run()
blocked_s = time.perf_counter() - t0

assert [(c.key, c.score) for c in per_tuple.combinations] == [
    (c.key, c.score) for c in blocked.combinations
], "block-pull must return the identical ranked top-K"

print("CBPA on one n=3 query (identical ranked top-K):")
print(f"  per-tuple pull: {per_tuple_s * 1e3:7.1f} ms "
      f"({per_tuple.combinations_formed} combinations scored)")
print(f"  block pull:     {blocked_s * 1e3:7.1f} ms "
      f"({blocked.combinations_formed} scored, "
      f"{blocked.counters.get('combinations_pruned', 0):.0f} pruned)")

# -- 2. A traffic mix through the shared service ------------------------

rng = np.random.default_rng(0)
hot = [base_query + rng.uniform(-0.1, 0.1, 2) for _ in range(6)]
queries = [hot[i % len(hot)] for i in range(30)]  # popular queries repeat

service = RankJoinService(
    relations, scoring, kind=AccessKind.DISTANCE, algorithm="CBPA",
    k=K, pull_block=16, max_workers=4,
)
t0 = time.perf_counter()
results = service.submit_many(queries)
elapsed = time.perf_counter() - t0

assert all(r.completed for r in results)
stats = service.stats.as_dict()
assert stats["result_cache_hits"] > 0, "repeated queries must hit the cache"

print(f"\nRankJoinService: {len(queries)} queries in {elapsed * 1e3:.1f} ms "
      f"({len(queries) / elapsed:.0f} queries/s)")
print(f"  stream-cache hits/misses: {stats['stream_cache_hits']}"
      f"/{stats['stream_cache_misses']}")
print(f"  result-cache hits:        {stats['result_cache_hits']}")
print("\nTop combination of the last query:")
print(f"  {results[-1].combinations[0]}")
