"""Trip planner: the paper's motivating scenario on the city datasets.

A smartphone user at Fisherman's Wharf wants a hotel, a restaurant and a
theater that are (i) well rated, (ii) near them, and (iii) near each
other.  The data comes from three simulated location services (paged,
latency-metered) serving the San Francisco POI snapshot — the offline
stand-in for the paper's Yahoo! Local crawls.

The example contrasts HRJN* (CBPA) with the paper's TBPA: same answers,
fewer service calls — which is the entire point when every page fetch is
a 50 ms web-service round trip.

Run:  python examples/trip_planner.py [CITY]      (CITY in SF NY BO DA HO)
"""

import sys

from repro import AccessKind, EuclideanLogScoring, cbpa, tbpa
from repro.data import CITIES, city_problem
from repro.service import LatencyModel, make_service_streams

city = (sys.argv[1] if len(sys.argv) > 1 else "SF").upper()
relations, query = city_problem(city)
layout = CITIES[city]
print(f"Planning an evening in {layout.name}, starting near {layout.landmark}.\n")

# Ratings matter a bit less than walking distance here: weight the
# proximity terms up, exactly the tunability eq. (2) provides.
scoring = EuclideanLogScoring(w_s=1.0, w_q=0.5, w_mu=0.5)

def run_against_services(factory):
    """Run one algorithm with each relation behind a paged service:
    10 results per call, ~50 ms simulated latency per call."""
    streams_box = []

    def service_streams():
        streams_box[:] = make_service_streams(
            relations,
            kind=AccessKind.DISTANCE,
            query=query,
            page_size=10,
            latency=LatencyModel(base=0.05, jitter=0.02),
        )
        return list(streams_box)

    engine = factory(relations, scoring, query, k=5, kind=AccessKind.DISTANCE)
    engine.stream_factory = service_streams
    return engine.run(), streams_box


for name, factory in [("CBPA (HRJN*)", cbpa), ("TBPA (this paper)", tbpa)]:
    result, streams = run_against_services(factory)

    calls = sum(s.endpoint.calls for s in streams)
    latency = sum(s.endpoint.simulated_seconds for s in streams)
    print(f"--- {name} ---")
    print(f"tuples fetched: {result.depths}  (sumDepths={result.sum_depths})")
    print(f"service calls:  {calls}  (~{latency:.2f}s simulated network time)")
    best = result.combinations[0]
    print("best evening plan:")
    for tup in best.tuples:
        where = f"({tup.vector[0]:+.1f} km E, {tup.vector[1]:+.1f} km N)"
        print(
            f"  {tup.relation:<12} {tup.attrs.get('name', '?'):<18} "
            f"rating {tup.score:.2f}  {where}"
        )
    print(f"  aggregate score S = {best.score:.2f}\n")
