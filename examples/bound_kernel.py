"""The batched bound kernel, and where TBPA's CPU time actually goes.

The tight bound solves one tiny QP per stale partial combination and one
feasibility LP per dominance candidate.  The paper already warns that
"solving the LP might be too costly" — and on dominance-heavy workloads
those solver loops dominate TBPA's engine time.  The bound-kernel
refactor stops solving them one at a time: each refresh gathers every
subset's QPs into a single masked batch call, and each dominance pass
pivots all surviving feasibility LPs as one lockstep simplex wave.

This example runs the same dominance-heavy n=3 workload through both
execution strategies and prints the bound-time split
(engine / bound / dominance / solver), demonstrating that

* the answers are *identical* — same ranked top-K, depths and bound bit
  for bit (the kernels are row-stable replicas of the scalar solvers);
* the engine time drops by several x, almost all of it solver time won
  back from the dominance LP loop.

Run:  python examples/bound_kernel.py
"""

from repro.core import AccessKind, EuclideanLogScoring, make_algorithm
from repro.data import SyntheticConfig, generate_problem

relations, query = generate_problem(
    SyntheticConfig(n_relations=3, dims=2, density=50.0, skew=1.0,
                    n_tuples=80, seed=0)
)
scoring = EuclideanLogScoring(1.0, 1.0, 1.0)

results = {}
for kernel in (False, True):
    engine = make_algorithm(
        "TBPA", relations, scoring, query, 10,
        kind=AccessKind.DISTANCE,
        pull_block=8,
        dominance_period=2,       # dominance-heavy: LP pass every 2 accesses
        batch_kernel=kernel,
    )
    results[kernel] = engine.run()

print(f"{'path':<16}{'engine':>12}{'bound':>11}{'dominance':>12}"
      f"{'solver':>12}{'LPs':>7}{'QPs':>7}")
for kernel, label in ((False, "scalar loops"), (True, "batched kernel")):
    r = results[kernel]
    print(f"{label:<16}"
          f"{r.total_seconds * 1e3:>10.1f}ms"
          f"{r.bound_seconds * 1e3:>9.1f}ms"
          f"{r.dominance_seconds * 1e3:>10.1f}ms"
          f"{r.solver_seconds * 1e3:>10.1f}ms"
          f"{r.counters['lp_solves']:>7.0f}"
          f"{r.counters['qp_solves']:>7.0f}")

scalar, batched = results[False], results[True]
assert batched.depths == scalar.depths and batched.bound == scalar.bound
assert [(c.key, c.score) for c in batched.combinations] == [
    (c.key, c.score) for c in scalar.combinations
]
print(f"\nidentical top-{len(batched.combinations)}, depths and bound; "
      f"speedup {scalar.total_seconds / batched.total_seconds:.1f}x "
      f"(acceptance bar 1.5x)")
print("potentials memo:",
      f"{batched.counters['potential_evals']:.0f} evaluations for "
      f"{batched.counters['potential_consults']:.0f} strategy consultations")
