"""The batched bound kernel, and where TBPA's CPU time actually goes.

The tight bound solves one tiny QP per stale partial combination and one
feasibility LP per dominance candidate.  The paper already warns that
"solving the LP might be too costly" — and on dominance-heavy workloads
those solver loops dominate TBPA's engine time.  The bound-kernel
refactor stops solving them one at a time: each refresh gathers every
subset's QPs into a single masked batch call, and each dominance pass
pivots all surviving feasibility LPs as one lockstep simplex wave.  On
top of that, the *incremental* front end remembers across passes: cached
witnesses answer candidates without an LP, byte-identical duplicate LPs
collapse to one representative per value-equality class, unchanged
verdict keys are reused outright, and surviving solves warm start from
their previous simplex basis.

This example runs the same dominance-heavy n=3 workload — quantised to a
coarse grid so streams stall on ties and exact-duplicate dominance LPs
occur, the regime the reuse machinery targets — through all three
execution strategies and prints the bound-time split
(engine / bound / dominance / solver), demonstrating that

* the answers are *identical* — same ranked top-K, depths and bound bit
  for bit (the kernels are row-stable replicas of the scalar solvers,
  and the incremental accelerations are verdict-preserving);
* the engine time drops by several x, almost all of it solver time won
  back from the dominance LP loop;
* the incremental front end answers most dominance candidates without
  solving their LP at all (witness hits + dedup + key reuse).

Run:  python examples/bound_kernel.py
"""

import numpy as np

from repro.core import AccessKind, EuclideanLogScoring, make_algorithm
from repro.core.relation import Relation
from repro.data import SyntheticConfig, generate_problem

relations, query = generate_problem(
    SyntheticConfig(n_relations=3, dims=2, density=50.0, skew=1.0,
                    n_tuples=120, seed=0)
)
# Snap vectors and scores to a coarse ladder: tie-heavy streams with
# exact duplicate tuples, where cross-pass reuse has something to reuse.
LEVELS = 5
tied = []
for rel in relations:
    lo, hi = rel.vectors.min(), rel.vectors.max()
    grid = np.linspace(lo, hi, LEVELS)
    vectors = grid[np.abs(rel.vectors[..., None] - grid).argmin(axis=-1)]
    ladder = np.linspace(0.1, 1.0, LEVELS)
    scores = ladder[np.abs(rel.scores[:, None] - ladder).argmin(axis=-1)]
    tied.append(Relation(rel.name, scores, vectors, sigma_max=rel.sigma_max))
relations = tied
scoring = EuclideanLogScoring(1.0, 1.0, 1.0)

STRATEGIES = (
    ("scalar loops", dict(batch_kernel=False)),
    ("batched kernel", dict(batch_kernel=True, incremental=False)),
    ("incremental", dict(batch_kernel=True, incremental=True)),
)
results = {}
for label, knobs in STRATEGIES:
    engine = make_algorithm(
        "TBPA", relations, scoring, query, 10,
        kind=AccessKind.DISTANCE,
        pull_block=8,
        dominance_period=2,       # dominance-heavy: LP pass every 2 accesses
        **knobs,
    )
    results[label] = engine.run()

print(f"{'path':<16}{'engine':>12}{'bound':>11}{'dominance':>12}"
      f"{'solver':>12}{'LPs':>7}{'QPs':>7}")
for label, _ in STRATEGIES:
    r = results[label]
    print(f"{label:<16}"
          f"{r.total_seconds * 1e3:>10.1f}ms"
          f"{r.bound_seconds * 1e3:>9.1f}ms"
          f"{r.dominance_seconds * 1e3:>10.1f}ms"
          f"{r.solver_seconds * 1e3:>10.1f}ms"
          f"{r.counters['lp_solves']:>7.0f}"
          f"{r.counters['qp_solves']:>7.0f}")

scalar = results["scalar loops"]
batched = results["batched kernel"]
incremental = results["incremental"]
for other in (batched, incremental):
    assert other.depths == scalar.depths and other.bound == scalar.bound
    assert [(c.key, c.score) for c in other.combinations] == [
        (c.key, c.score) for c in scalar.combinations
    ]
print(f"\nidentical top-{len(batched.combinations)}, depths and bound "
      f"across all three strategies; "
      f"batched {scalar.total_seconds / batched.total_seconds:.1f}x, "
      f"incremental {scalar.total_seconds / incremental.total_seconds:.1f}x "
      f"vs scalar")
c = incremental.counters
print("incremental reuse:",
      f"{c['dominance_witness_hits']:.0f} cached-witness hits,",
      f"{c['dominance_lp_deduped']:.0f} duplicate LPs collapsed,",
      f"{c['dominance_lp_reused']:.0f} verdict keys reused,",
      f"{c['dominance_subset_skips']:.0f} subset passes skipped,",
      f"{c['lp_warm_pivots']:.0f} warm vs {c['lp_cold_pivots']:.0f} cold "
      f"pivots")
print("potentials memo:",
      f"{batched.counters['potential_evals']:.0f} evaluations for "
      f"{batched.counters['potential_consults']:.0f} strategy consultations")
