"""Adaptive pulling under skewed densities (Figure 3(g) in miniature).

When one service is much denser than another — a metropolitan restaurant
directory joined with a sparse national park registry — pulling both at
the same rate wastes accesses on the dense side.  The potential-adaptive
strategy notices (via the per-relation potentials) that deepening the
sparse relation lowers the bound faster, and unbalances its pulls
accordingly.

The example sweeps skew = rho1/rho2 in {1, 2, 4, 8} and prints how the
round-robin vs adaptive gap widens, for both bounding schemes.

Run:  python examples/skewed_services.py
"""

from repro import EuclideanLogScoring, make_algorithm
from repro.core import AccessKind
from repro.data import SyntheticConfig, generate_problem

scoring = EuclideanLogScoring()
K = 10
SEEDS = range(5)

print(f"{'skew':>6} {'CBRR':>8} {'CBPA':>8} {'TBRR':>8} {'TBPA':>8}   adaptive gain (TB)")
for skew in (1.0, 2.0, 4.0, 8.0):
    means = {}
    for algo in ("CBRR", "CBPA", "TBRR", "TBPA"):
        total = 0
        for seed in SEEDS:
            relations, query = generate_problem(
                SyntheticConfig(n_relations=2, dims=2, density=50.0,
                                skew=skew, n_tuples=400, seed=seed)
            )
            result = make_algorithm(
                algo, relations, scoring, query, K, kind=AccessKind.DISTANCE
            ).run()
            total += result.sum_depths
        means[algo] = total / len(SEEDS)
    gain = 1.0 - means["TBPA"] / means["TBRR"]
    print(
        f"{skew:6.0f} {means['CBRR']:8.1f} {means['CBPA']:8.1f} "
        f"{means['TBRR']:8.1f} {means['TBPA']:8.1f}   {gain:6.1%}"
    )

print(
    "\nAs skew grows, the adaptive strategy reads fewer tuples than "
    "round-robin\n(the paper reports gains of 25-30% at skew >= 4)."
)
