"""Multimedia search: score-based access in a high-dimensional space.

The paper's second motivating domain: given a sample image, request
similar images from several repositories.  Repositories rank their
content by *popularity score* (access kind B), while similarity to the
query descriptor and mutual similarity of the returned set enter through
the aggregation function.  This exercises the score-based tight bound of
Appendix C.

We synthesise three "repositories" of 8-dimensional image descriptors
(think tiny colour histograms) with a planted cluster of images similar
to the query, and ask for the top-5 triples.

Run:  python examples/multimedia_search.py
"""

import numpy as np

from repro import AccessKind, EuclideanLogScoring, Relation, brute_force_topk, cbrr, tbpa

rng = np.random.default_rng(2010)
D = 8
query = rng.uniform(0.3, 0.7, size=D)  # descriptor of the sample image


def make_repository(name: str, size: int, planted: int) -> Relation:
    """Random descriptors plus a few planted near-duplicates of the query."""
    vectors = rng.uniform(0.0, 1.0, size=(size, D))
    vectors[:planted] = query + rng.normal(scale=0.05, size=(planted, D))
    scores = rng.uniform(0.05, 1.0, size=size)
    return Relation(name, scores, vectors, sigma_max=1.0)


repos = [
    make_repository("flickr-like", 80, planted=6),
    make_repository("stock-photos", 70, planted=5),
    make_repository("news-archive", 60, planted=4),
]

scoring = EuclideanLogScoring(w_s=0.5, w_q=2.0, w_mu=1.0)

print(f"Query descriptor: {np.array2string(query, precision=2)}\n")

oracle = brute_force_topk(repos, scoring, query, k=5)

for name, factory in [("HRJN (CBRR)", cbrr), ("TBPA", tbpa)]:
    engine = factory(repos, scoring, query, k=5, kind=AccessKind.SCORE)
    result = engine.run()
    assert [c.score for c in result.combinations] == [c.score for c in oracle]
    print(f"--- {name}: score-based access ---")
    print(f"tuples fetched per repository: {result.depths}")
    print(f"sumDepths: {result.sum_depths}")

print("\nTop 5 triples (one image per repository):")
for combo in oracle:
    ids = " + ".join(f"{t.relation}#{t.tid}" for t in combo.tuples)
    dq = np.mean([np.linalg.norm(t.vector - query) for t in combo.tuples])
    print(f"  S = {combo.score:7.3f}  mean dist to query {dq:.3f}   {ids}")
