from setuptools import find_packages, setup

setup(
    name="proxrj-repro",
    version="0.6.0",
    description=(
        "Reproduction of proximity rank join (PVLDB 2010): ProxRJ template, "
        "CBRR/CBPA/TBRR/TBPA, sharded + durable tiered storage, services"
    ),
    package_dir={"": "src"},
    packages=find_packages("src"),
    python_requires=">=3.10",
    # numpy is the only third-party runtime dependency; the durable tier
    # additionally uses the sqlite3 standard-library module (present in
    # every normal CPython build — no extra install).
    install_requires=["numpy>=1.22"],
)
