"""Every example script must stay runnable end to end.

Examples are executed in-process via runpy with stdout captured; each
one carries its own assertions (oracle comparisons), so a clean exit is
a real correctness signal, not just an import check.
"""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, argv: list[str] | None = None):
    path = EXAMPLES / name
    assert path.exists(), f"missing example {name}"
    old_argv = sys.argv
    sys.argv = [str(path)] + (argv or [])
    try:
        runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = old_argv


class TestExamples:
    def test_quickstart(self, capsys):
        run_example("quickstart.py")
        out = capsys.readouterr().out
        assert "-7.00" in out
        assert "sumDepths" in out

    def test_trip_planner_sf(self, capsys):
        run_example("trip_planner.py", ["SF"])
        out = capsys.readouterr().out
        assert "San Francisco" in out
        assert "TBPA" in out
        assert "service calls" in out

    def test_trip_planner_other_city(self, capsys):
        run_example("trip_planner.py", ["HO"])
        assert "Honolulu" in capsys.readouterr().out

    def test_multimedia_search(self, capsys):
        run_example("multimedia_search.py")
        out = capsys.readouterr().out
        assert "score-based access" in out
        assert "Top 5 triples" in out

    def test_skewed_services(self, capsys):
        run_example("skewed_services.py")
        out = capsys.readouterr().out
        assert "skew" in out
        assert "adaptive" in out

    def test_async_service(self, capsys):
        run_example("async_service.py")
        out = capsys.readouterr().out
        assert "concurrent queries" in out
        assert "latency hidden by pipelined prefetch" in out
        assert "completed / expired" in out

    @pytest.mark.slow
    def test_cosine_extension(self, capsys):
        pytest.importorskip("scipy")
        run_example("cosine_extension.py")
        out = capsys.readouterr().out
        assert "Matches brute-force oracle: True" in out

    def test_service_throughput(self, capsys):
        run_example("service_throughput.py")
        out = capsys.readouterr().out
        assert "identical ranked top-K" in out
        assert "queries/s" in out
        assert "result-cache hits" in out

    def test_sharded_service(self, capsys):
        run_example("sharded_service.py")
        out = capsys.readouterr().out
        assert "identical ranked top-K" in out
        assert "per-shard order cache" in out
        assert "4 shards" in out

    def test_explain_run(self, capsys):
        run_example("explain_run.py")
        out = capsys.readouterr().out
        assert "certified" in out
        assert "tight bound" in out and "corner bound" in out

    def test_durable_service(self, capsys):
        run_example("durable_service.py")
        out = capsys.readouterr().out
        assert "zero re-sorts" in out
        assert "bit-identical" in out
        assert "catalog hit stats" in out

    def test_bound_kernel(self, capsys):
        run_example("bound_kernel.py")
        out = capsys.readouterr().out
        assert "batched kernel" in out
        assert "identical top-10, depths and bound" in out
        assert "potentials memo" in out

    def test_procpool_service(self, capsys):
        run_example("procpool_service.py")
        out = capsys.readouterr().out
        assert "queries/s" in out
        assert "affinity hits" in out
        assert "order-LRU hit rate" in out
        assert "bit-identical to the threaded single-process run" in out
