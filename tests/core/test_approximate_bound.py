"""Tests for the budgeted tight-bound approximation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AccessKind,
    CornerBound,
    EuclideanLogScoring,
    ProxRJ,
    Relation,
    RoundRobin,
    TightBound,
    TopKBuffer,
    brute_force_topk,
)
from repro.core.access import open_streams
from repro.core.bounds.approximate import ApproxTightBound
from repro.core.bounds.base import EngineState


def instance(seed, n=2, size=15, d=2):
    rng = np.random.default_rng(seed)
    rels = [
        Relation(
            f"R{i}", rng.uniform(0.05, 1, size), rng.uniform(-2, 2, (size, d)),
            sigma_max=1.0,
        )
        for i in range(n)
    ]
    return rels, rng.uniform(-0.5, 0.5, d)


def run_bound(bound, relations, query, rounds=4):
    state = EngineState(
        scoring=EuclideanLogScoring(),
        kind=AccessKind.DISTANCE,
        query=query,
        streams=open_streams(relations, AccessKind.DISTANCE, query),
        k=3,
        output=TopKBuffer(3),
    )
    values = []
    for _ in range(rounds):
        for i, s in enumerate(state.streams):
            tau = s.next()
            if tau is not None:
                values.append(bound.update(state, i, tau))
    return values


class TestValidation:
    def test_negative_budget(self):
        with pytest.raises(ValueError):
            ApproxTightBound(budget=-1)

    def test_score_access_rejected(self):
        relations, query = instance(0)
        state = EngineState(
            scoring=EuclideanLogScoring(),
            kind=AccessKind.SCORE,
            query=query,
            streams=open_streams(relations, AccessKind.SCORE),
            k=1,
            output=TopKBuffer(1),
        )
        bound = ApproxTightBound()
        state.streams[0].next()
        with pytest.raises(ValueError, match="score access"):
            bound.update(state, 0, state.streams[0].seen[-1])


class TestSandwich:
    """tight <= approx <= corner, pointwise along the pull sequence."""

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 300), st.sampled_from([0, 2, 16, 256]))
    def test_between_tight_and_corner(self, seed, budget):
        relations, query = instance(seed)
        tight_vals = run_bound(TightBound(), relations, query)
        corner_vals = run_bound(CornerBound(), relations, query)
        approx_vals = run_bound(ApproxTightBound(budget=budget), relations, query)
        for t, a, c in zip(tight_vals, approx_vals, corner_vals):
            assert t - 1e-7 <= a  # never below the exact tight bound
            assert a <= c + 1e-7  # never looser than the corner bound

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 300))
    def test_large_budget_equals_tight(self, seed):
        relations, query = instance(seed, size=10)
        tight_vals = run_bound(TightBound(), relations, query)
        approx_vals = run_bound(ApproxTightBound(budget=10_000), relations, query)
        np.testing.assert_allclose(approx_vals, tight_vals, atol=1e-7)


class TestEndToEnd:
    @pytest.mark.parametrize("budget", [0, 4, 64])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_correct_topk(self, budget, seed):
        relations, query = instance(seed, size=20)
        scoring = EuclideanLogScoring()
        expected = brute_force_topk(relations, scoring, query, 4)
        engine = ProxRJ(
            relations, scoring, kind=AccessKind.DISTANCE, query=query,
            bound=ApproxTightBound(budget=budget), pull=RoundRobin(), k=4,
        )
        result = engine.run()
        assert [c.key for c in result.combinations] == [c.key for c in expected]

    def test_io_between_corner_and_tight(self):
        """Averaged over instances, the approximation reads no more than
        the corner bound and no less than the exact tight bound."""
        scoring = EuclideanLogScoring()
        total = {"corner": 0, "approx": 0, "tight": 0}
        for seed in range(6):
            relations, query = instance(seed, size=30)
            for name, bound in (
                ("corner", CornerBound()),
                ("approx", ApproxTightBound(budget=8)),
                ("tight", TightBound()),
            ):
                engine = ProxRJ(
                    relations, scoring, kind=AccessKind.DISTANCE, query=query,
                    bound=bound, pull=RoundRobin(), k=5,
                )
                total[name] += engine.run().sum_depths
        assert total["tight"] <= total["approx"] <= total["corner"]

    def test_counters(self):
        relations, query = instance(3, size=20)
        bound = ApproxTightBound(budget=4)
        engine = ProxRJ(
            relations, EuclideanLogScoring(), kind=AccessKind.DISTANCE,
            query=query, bound=bound, pull=RoundRobin(), k=3,
        )
        engine.run()
        assert bound.counters.qp_solves > 0
        assert bound.counters.entries_created > 0
