"""Tests for the bounded top-K output buffer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Combination, RankTuple, TopKBuffer


def combo(key, score):
    tuples = tuple(RankTuple(f"R{i}", tid, 0.5, [0.0]) for i, tid in enumerate(key))
    return Combination(tuples, score)


class TestTopKBuffer:
    def test_invalid_k(self):
        with pytest.raises(ValueError):
            TopKBuffer(0)

    def test_kth_score_before_full(self):
        buf = TopKBuffer(2)
        buf.add(combo((0,), -1.0))
        assert not buf.full
        assert buf.kth_score == float("-inf")

    def test_kth_score_when_full(self):
        buf = TopKBuffer(2)
        buf.add(combo((0,), -1.0))
        buf.add(combo((1,), -3.0))
        assert buf.full
        assert buf.kth_score == -3.0

    def test_eviction_keeps_best(self):
        buf = TopKBuffer(2)
        buf.add(combo((0,), -5.0))
        buf.add(combo((1,), -1.0))
        assert buf.add(combo((2,), -2.0))  # evicts -5
        assert [c.score for c in buf.ranked()] == [-1.0, -2.0]

    def test_rejects_worse_than_kth(self):
        buf = TopKBuffer(1)
        buf.add(combo((0,), -1.0))
        assert not buf.add(combo((1,), -2.0))
        assert [c.key for c in buf.ranked()] == [(0,)]

    def test_duplicate_keys_ignored(self):
        buf = TopKBuffer(3)
        assert buf.add(combo((0, 1), -1.0))
        assert not buf.add(combo((0, 1), -1.0))
        assert len(buf) == 1

    def test_tie_break_smaller_key_wins(self):
        buf = TopKBuffer(1)
        buf.add(combo((5,), -1.0))
        buf.add(combo((2,), -1.0))  # same score, smaller key -> wins
        assert buf.ranked()[0].key == (2,)

    def test_tie_break_insertion_order_independent(self):
        a, b = combo((2,), -1.0), combo((5,), -1.0)
        buf1, buf2 = TopKBuffer(1), TopKBuffer(1)
        buf1.add(a), buf1.add(b)
        buf2.add(b), buf2.add(a)
        assert buf1.ranked()[0].key == buf2.ranked()[0].key == (2,)

    def test_iteration_is_ranked(self):
        buf = TopKBuffer(3)
        for i, s in enumerate([-3.0, -1.0, -2.0]):
            buf.add(combo((i,), s))
        assert [c.score for c in buf] == [-1.0, -2.0, -3.0]

    @settings(max_examples=50)
    @given(
        st.lists(
            st.floats(min_value=-100, max_value=0, allow_nan=False),
            min_size=1,
            max_size=40,
        ),
        st.integers(1, 10),
    )
    def test_matches_sorted_reference(self, scores, k):
        buf = TopKBuffer(k)
        for i, s in enumerate(scores):
            buf.add(combo((i,), s))
        got = [c.score for c in buf.ranked()]
        expected = sorted(scores, reverse=True)[:k]
        assert got == pytest.approx(expected)

    @settings(max_examples=30)
    @given(st.permutations(list(range(8))))
    def test_order_insensitive(self, perm):
        scores = [-1.0, -2.0, -2.0, -3.0, -4.0, -4.0, -4.0, -5.0]
        ref = TopKBuffer(4)
        for i in range(8):
            ref.add(combo((i,), scores[i]))
        shuffled = TopKBuffer(4)
        for i in perm:
            shuffled.add(combo((i,), scores[i]))
        assert [c.key for c in ref.ranked()] == [c.key for c in shuffled.ranked()]
