"""Tests for pulling strategies and engine-level behaviour."""

import numpy as np
import pytest

from repro.core import (
    AccessKind,
    CornerBound,
    EuclideanLogScoring,
    PotentialAdaptive,
    ProxRJ,
    Relation,
    RoundRobin,
    TightBound,
    TopKBuffer,
)
from repro.core.access import open_streams
from repro.core.bounds.base import EngineState


def tiny_relations(n=2, size=6, seed=0, d=2):
    rng = np.random.default_rng(seed)
    return [
        Relation(
            f"R{i}", rng.uniform(0.05, 1, size), rng.uniform(-2, 2, (size, d)),
            sigma_max=1.0,
        )
        for i in range(n)
    ], np.zeros(d)


def make_state(relations, query, kind=AccessKind.DISTANCE, k=2):
    return EngineState(
        scoring=EuclideanLogScoring(),
        kind=kind,
        query=query,
        streams=open_streams(relations, kind, query),
        k=k,
        output=TopKBuffer(k),
    )


class TestRoundRobin:
    def test_cycles_in_order(self):
        relations, query = tiny_relations(n=3)
        state = make_state(relations, query)
        rr = RoundRobin()
        bound = CornerBound()
        order = []
        for _ in range(6):
            i = rr.choose_input(state, bound)
            order.append(i)
            state.streams[i].next()
        assert order == [0, 1, 2, 0, 1, 2]

    def test_skips_exhausted(self):
        r1 = Relation("R1", [1.0], [[0.0, 0.0]], sigma_max=1.0)
        r2 = Relation("R2", [1.0, 0.9], [[0.0, 0.0], [1.0, 1.0]], sigma_max=1.0)
        state = make_state([r1, r2], np.zeros(2))
        rr = RoundRobin()
        bound = CornerBound()
        picks = []
        for _ in range(3):
            i = rr.choose_input(state, bound)
            picks.append(i)
            state.streams[i].next()
        assert picks == [0, 1, 1]

    def test_reset(self):
        relations, query = tiny_relations(n=2)
        state = make_state(relations, query)
        rr = RoundRobin()
        bound = CornerBound()
        rr.choose_input(state, bound)
        rr.reset()
        assert rr.choose_input(state, bound) == 0

    def test_all_exhausted_raises(self):
        r = Relation("R", [1.0], [[0.0, 0.0]], sigma_max=1.0)
        state = make_state([r], np.zeros(2))
        state.streams[0].next()
        with pytest.raises(RuntimeError, match="exhausted"):
            RoundRobin().choose_input(state, CornerBound())


class TestPotentialAdaptive:
    def test_prefers_higher_potential(self):
        # R1's frontier is much farther out than R2's, so with the corner
        # bound, deepening R2 has higher potential.
        r1 = Relation("R1", [1.0, 1.0], [[5.0, 0.0], [6.0, 0.0]], sigma_max=1.0)
        r2 = Relation("R2", [1.0, 1.0], [[0.1, 0.0], [0.2, 0.0]], sigma_max=1.0)
        state = make_state([r1, r2], np.zeros(2))
        bound = CornerBound()
        pa = PotentialAdaptive()
        # Two pulls from R1, one from R2: R1's frontier distance (6) makes
        # its corner term far worse than R2's (0.1), so R2 has higher
        # potential despite being shallower.
        for i in (0, 1, 0):
            tau = state.streams[i].next()
            bound.update(state, i, tau)
        assert pa.choose_input(state, bound) == 1

    def test_tie_breaks_by_depth_then_index(self):
        relations, query = tiny_relations(n=2, seed=3)
        state = make_state(relations, query)
        bound = CornerBound()  # no accesses yet: potentials equal
        pa = PotentialAdaptive()
        assert pa.choose_input(state, bound) == 0
        state.streams[0].next()
        # Now depths (1, 0): equal potentials -> pick least depth = R2.
        assert pa.choose_input(state, bound) in (0, 1)

    def test_skips_exhausted(self):
        r1 = Relation("R1", [1.0], [[0.0, 0.0]], sigma_max=1.0)
        r2 = Relation("R2", [1.0, 0.9], [[0.0, 0.0], [1.0, 1.0]], sigma_max=1.0)
        state = make_state([r1, r2], np.zeros(2))
        state.streams[0].next()  # exhaust R1
        pa = PotentialAdaptive()
        assert pa.choose_input(state, CornerBound()) == 1


class TestEngineValidation:
    def test_empty_relations(self):
        with pytest.raises(ValueError, match="at least one"):
            ProxRJ(
                [], EuclideanLogScoring(), kind=AccessKind.DISTANCE,
                query=np.zeros(2), bound=CornerBound(), pull=RoundRobin(), k=1,
            )

    def test_bad_k(self):
        relations, query = tiny_relations()
        with pytest.raises(ValueError, match="K"):
            ProxRJ(
                relations, EuclideanLogScoring(), kind=AccessKind.DISTANCE,
                query=query, bound=CornerBound(), pull=RoundRobin(), k=0,
            )

    def test_bad_bound_period(self):
        relations, query = tiny_relations()
        with pytest.raises(ValueError, match="bound_period"):
            ProxRJ(
                relations, EuclideanLogScoring(), kind=AccessKind.DISTANCE,
                query=query, bound=CornerBound(), pull=RoundRobin(), k=1,
                bound_period=0,
            )

    def test_bad_max_pulls(self):
        relations, query = tiny_relations()
        with pytest.raises(ValueError, match="max_pulls"):
            ProxRJ(
                relations, EuclideanLogScoring(), kind=AccessKind.DISTANCE,
                query=query, bound=CornerBound(), pull=RoundRobin(), k=1,
                max_pulls=0,
            )

    def test_dimension_mismatch(self):
        r1 = Relation("R1", [1.0], [[0.0, 0.0]])
        r2 = Relation("R2", [1.0], [[0.0]])
        with pytest.raises(ValueError, match="dimensionality"):
            ProxRJ(
                [r1, r2], EuclideanLogScoring(), kind=AccessKind.DISTANCE,
                query=np.zeros(2), bound=CornerBound(), pull=RoundRobin(), k=1,
            )

    def test_duplicate_names(self):
        r1 = Relation("R", [1.0], [[0.0]])
        r2 = Relation("R", [1.0], [[1.0]])
        with pytest.raises(ValueError, match="unique"):
            ProxRJ(
                [r1, r2], EuclideanLogScoring(), kind=AccessKind.DISTANCE,
                query=np.zeros(1), bound=CornerBound(), pull=RoundRobin(), k=1,
            )

    def test_stream_factory_count_mismatch(self):
        relations, query = tiny_relations()
        engine = ProxRJ(
            relations, EuclideanLogScoring(), kind=AccessKind.DISTANCE,
            query=query, bound=CornerBound(), pull=RoundRobin(), k=1,
            stream_factory=lambda: [],
        )
        with pytest.raises(ValueError, match="stream_factory"):
            engine.run()


class TestEngineBehaviour:
    def test_max_pulls_flags_incomplete(self):
        relations, query = tiny_relations(size=30, seed=9)
        engine = ProxRJ(
            relations, EuclideanLogScoring(), kind=AccessKind.DISTANCE,
            query=query, bound=CornerBound(), pull=RoundRobin(), k=10,
            max_pulls=4,
        )
        result = engine.run()
        assert not result.completed
        assert result.sum_depths == 4

    def test_exhaustion_returns_full_ranking(self):
        relations, query = tiny_relations(size=3, seed=10)
        engine = ProxRJ(
            relations, EuclideanLogScoring(), kind=AccessKind.DISTANCE,
            query=query, bound=TightBound(), pull=RoundRobin(), k=9,
        )
        result = engine.run()
        assert len(result.combinations) == 9  # the whole cross product
        assert result.completed

    def test_k_larger_than_cross_product(self):
        relations, query = tiny_relations(size=2, seed=11)
        engine = ProxRJ(
            relations, EuclideanLogScoring(), kind=AccessKind.DISTANCE,
            query=query, bound=TightBound(), pull=RoundRobin(), k=100,
        )
        result = engine.run()
        assert len(result.combinations) == 4

    def test_results_sorted_descending(self):
        relations, query = tiny_relations(size=10, seed=12)
        result = ProxRJ(
            relations, EuclideanLogScoring(), kind=AccessKind.DISTANCE,
            query=query, bound=TightBound(), pull=PotentialAdaptive(), k=5,
        ).run()
        scores = [c.score for c in result.combinations]
        assert scores == sorted(scores, reverse=True)
