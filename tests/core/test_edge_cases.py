"""Edge cases across the core: degenerate geometry, extreme weights,
duplicate tuples, antipodal cosine centroids, metric-disagreement
orderings."""

import numpy as np
import pytest

from repro.core import (
    AccessKind,
    CosineProximityScoring,
    EuclideanLogScoring,
    LinearScoring,
    Relation,
    brute_force_topk,
    make_algorithm,
)
from repro.core.access import DistanceAccess


class TestDegenerateGeometry:
    def test_all_tuples_at_query(self):
        """Everything at distance zero: ranking reduces to scores."""
        rels = [
            Relation("A", [0.3, 0.9, 0.6], [[0.0, 0.0]] * 3, sigma_max=1.0),
            Relation("B", [0.8, 0.2], [[0.0, 0.0]] * 2, sigma_max=1.0),
        ]
        scoring = EuclideanLogScoring()
        q = np.zeros(2)
        expected = brute_force_topk(rels, scoring, q, 3)
        result = make_algorithm(
            "TBPA", rels, scoring, q, 3, kind=AccessKind.DISTANCE
        ).run()
        assert [c.key for c in result.combinations] == [c.key for c in expected]
        assert expected[0].key == (1, 0)  # best scores win

    def test_duplicate_positions_and_scores(self):
        rels = [
            Relation("A", [0.5] * 5, [[1.0, 0.0]] * 5, sigma_max=1.0),
            Relation("B", [0.5] * 5, [[0.0, 1.0]] * 5, sigma_max=1.0),
        ]
        scoring = EuclideanLogScoring()
        q = np.zeros(2)
        result = make_algorithm(
            "TBRR", rels, scoring, q, 4, kind=AccessKind.DISTANCE
        ).run()
        # Deterministic tie-break: lexicographically smallest keys first.
        assert [c.key for c in result.combinations] == [
            (0, 0), (0, 1), (0, 2), (0, 3),
        ]

    def test_symmetric_centroid_on_query(self):
        """Partial centroid exactly at the query (nu = q): the degenerate
        ray case must still certify correctly."""
        rels = [
            Relation("A", [1.0, 1.0, 0.5], [[1.0, 0.0], [-1.0, 0.0], [9.0, 9.0]]),
            Relation("B", [1.0, 0.5], [[0.0, 1.0], [9.0, -9.0]]),
        ]
        scoring = EuclideanLogScoring()
        q = np.zeros(2)
        expected = brute_force_topk(rels, scoring, q, 2)
        result = make_algorithm(
            "TBPA", rels, scoring, q, 2, kind=AccessKind.DISTANCE
        ).run()
        assert [c.key for c in result.combinations] == [c.key for c in expected]

    def test_one_dimensional_space(self):
        rng = np.random.default_rng(0)
        rels = [
            Relation(f"R{i}", rng.uniform(0.05, 1, 10), rng.uniform(-2, 2, (10, 1)))
            for i in range(2)
        ]
        scoring = EuclideanLogScoring()
        q = np.zeros(1)
        expected = brute_force_topk(rels, scoring, q, 3)
        result = make_algorithm(
            "TBRR", rels, scoring, q, 3, kind=AccessKind.DISTANCE
        ).run()
        assert [c.key for c in result.combinations] == [c.key for c in expected]


class TestExtremeWeights:
    @pytest.mark.parametrize(
        "weights",
        [(1.0, 0.0, 0.0), (0.0, 1.0, 0.0), (0.0, 0.0, 1.0), (100.0, 0.01, 0.01)],
    )
    def test_single_term_dominates(self, weights):
        rng = np.random.default_rng(1)
        rels = [
            Relation(
                f"R{i}", rng.uniform(0.05, 1, 8), rng.uniform(-2, 2, (8, 2)),
                sigma_max=1.0,
            )
            for i in range(2)
        ]
        scoring = LinearScoring(*weights)
        q = np.zeros(2)
        expected = brute_force_topk(rels, scoring, q, 3)
        for algo in ("CBRR", "TBPA"):
            result = make_algorithm(
                algo, rels, scoring, q, 3, kind=AccessKind.DISTANCE
            ).run()
            got = [c.score for c in result.combinations]
            assert got == pytest.approx([c.score for c in expected])

    def test_score_only_weights_under_score_access(self):
        """w_q = w_mu = 0 under score access: pure rank aggregation."""
        rng = np.random.default_rng(2)
        rels = [
            Relation(
                f"R{i}", rng.uniform(0.05, 1, 10), rng.uniform(-2, 2, (10, 2)),
                sigma_max=1.0,
            )
            for i in range(2)
        ]
        scoring = LinearScoring(1.0, 0.0, 0.0)
        q = np.zeros(2)
        expected = brute_force_topk(rels, scoring, q, 1)
        result = make_algorithm(
            "TBRR", rels, scoring, q, 1, kind=AccessKind.SCORE
        ).run()
        assert result.combinations[0].score == pytest.approx(expected[0].score)
        # Top-1 of a monotone sum is the pair of top scores: depth 1 + 1
        # suffices and the tight bound certifies immediately.
        assert result.sum_depths <= 4


class TestCosineDegeneracies:
    def test_antipodal_centroid_fallback(self):
        s = CosineProximityScoring()
        c = s.centroid(np.array([[1.0, 0.0], [-1.0, 0.0]]))
        assert np.all(np.isfinite(c))

    def test_zero_vector_tuple(self):
        s = CosineProximityScoring()
        from repro.core import RankTuple

        tuples = [
            RankTuple("A", 0, 0.5, [0.0, 0.0]),
            RankTuple("B", 0, 0.5, [1.0, 0.0]),
        ]
        value = s.score_combination(tuples, np.array([1.0, 0.0]))
        assert np.isfinite(value)


class TestMetricDisagreement:
    def test_custom_metric_changes_order(self):
        # (0, 3): L2 = 3, L1 = 3;  (2.2, 2.2): L2 ~ 3.11, L1 = 4.4.
        # (2.9, 0.5): L2 ~ 2.94 (closer in L2), L1 = 3.4 (farther in L1).
        rel = Relation("R", [1.0, 1.0], [[0.0, 3.0], [2.9, 0.5]])
        q = np.zeros(2)
        l2_first = [t.tid for t in _drain(DistanceAccess(rel, q))]
        manhattan = lambda x, y: float(np.abs(x - y).sum())
        l1_first = [t.tid for t in _drain(DistanceAccess(rel, q, metric=manhattan))]
        assert l2_first == [1, 0]
        assert l1_first == [0, 1]


def _drain(stream):
    out = []
    while True:
        t = stream.next()
        if t is None:
            return out
        out.append(t)
