"""Unit tests for the tuple/relation/combination model."""

import numpy as np
import pytest

from repro.core import Combination, RankTuple, Relation


class TestRankTuple:
    def test_vector_is_read_only(self):
        t = RankTuple("R", 0, 0.5, np.array([1.0, 2.0]))
        with pytest.raises(ValueError):
            t.vector[0] = 9.0

    def test_equality_is_identity_based(self):
        a = RankTuple("R", 0, 0.5, [1.0])
        b = RankTuple("R", 0, 0.9, [2.0])  # same identity, different payload
        c = RankTuple("S", 0, 0.5, [1.0])
        assert a == b
        assert a != c
        assert hash(a) == hash(b)

    def test_repr_mentions_identity(self):
        t = RankTuple("hotels", 3, 0.25, [0.0, 1.0])
        assert "hotels#3" in repr(t)

    def test_attrs_default_empty(self):
        t = RankTuple("R", 0, 0.5, [1.0])
        assert t.attrs == {}


class TestRelation:
    def test_length_and_indexing(self):
        r = Relation("R", [0.1, 0.9], [[0.0], [1.0]])
        assert len(r) == 2
        assert r[1].score == 0.9
        assert [t.tid for t in r] == [0, 1]

    def test_dim(self):
        r = Relation("R", [0.5], [[1.0, 2.0, 3.0]])
        assert r.dim == 3

    def test_sigma_max_defaults_to_observed(self):
        r = Relation("R", [0.3, 0.7], [[0.0], [1.0]])
        assert r.sigma_max == 0.7

    def test_sigma_max_explicit(self):
        r = Relation("R", [0.3], [[0.0]], sigma_max=1.0)
        assert r.sigma_max == 1.0

    def test_sigma_max_below_observed_rejected(self):
        with pytest.raises(ValueError, match="sigma_max"):
            Relation("R", [0.9], [[0.0]], sigma_max=0.5)

    def test_score_vector_count_mismatch(self):
        with pytest.raises(ValueError, match="scores"):
            Relation("R", [0.1], [[0.0], [1.0]])

    def test_attrs_count_mismatch(self):
        with pytest.raises(ValueError, match="attrs"):
            Relation("R", [0.1, 0.2], [[0.0], [1.0]], attrs=[{}])

    def test_empty_relation_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            Relation("R", [], np.zeros((0, 2)))

    def test_from_tuples(self):
        r = Relation.from_tuples("R", [(0.5, [1.0, 2.0]), (0.8, [3.0, 4.0])])
        assert len(r) == 2
        np.testing.assert_allclose(r[1].vector, [3.0, 4.0])

    def test_attrs_propagate(self):
        r = Relation("R", [0.5], [[0.0]], attrs=[{"name": "x"}])
        assert r[0].attrs["name"] == "x"


class TestCombination:
    def test_key_is_tid_tuple(self):
        tuples = (
            RankTuple("A", 4, 0.1, [0.0]),
            RankTuple("B", 7, 0.2, [1.0]),
        )
        c = Combination(tuples, score=-1.5)
        assert c.key == (4, 7)

    def test_repr(self):
        c = Combination((RankTuple("A", 0, 0.1, [0.0]),), score=-2.0)
        assert "A#0" in repr(c)
        assert "-2" in repr(c)
