"""Integration tests combining engine knobs that interact: dominance +
bound period + k-d index + service streams, on both access kinds."""

import numpy as np
import pytest

from repro.core import AccessKind, EuclideanLogScoring, Relation, brute_force_topk, tbpa, tbrr
from repro.service import make_service_streams


def instance(seed, n=2, size=25, d=2):
    rng = np.random.default_rng(seed)
    rels = [
        Relation(
            f"R{i}", rng.uniform(0.05, 1, size), rng.uniform(-2, 2, (size, d)),
            sigma_max=1.0,
        )
        for i in range(n)
    ]
    return rels, rng.uniform(-0.5, 0.5, d)


class TestKnobCombinations:
    @pytest.mark.parametrize("seed", [0, 1])
    def test_all_knobs_together(self, seed):
        relations, query = instance(seed)
        scoring = EuclideanLogScoring()
        expected = brute_force_topk(relations, scoring, query, 4)
        engine = tbpa(
            relations, scoring, query, 4,
            kind=AccessKind.DISTANCE,
            dominance_period=2,
            bound_period=3,
            use_index=True,
        )
        result = engine.run()
        assert [c.key for c in result.combinations] == [c.key for c in expected]

    def test_dominance_with_bound_period_batched_sync(self):
        """Dominance passes must survive batched (multi-pull) syncs."""
        relations, query = instance(2, size=40)
        scoring = EuclideanLogScoring()
        expected = brute_force_topk(relations, scoring, query, 5)
        for bp in (1, 5):
            result = tbrr(
                relations, scoring, query, 5,
                kind=AccessKind.DISTANCE, dominance_period=1, bound_period=bp,
            ).run()
            assert [c.key for c in result.combinations] == [
                c.key for c in expected
            ]

    def test_service_streams_with_dominance(self):
        relations, query = instance(3, size=30)
        scoring = EuclideanLogScoring()
        expected = brute_force_topk(relations, scoring, query, 3)
        engine = tbpa(
            relations, scoring, query, 3,
            kind=AccessKind.DISTANCE, dominance_period=4,
        )
        engine.stream_factory = lambda: make_service_streams(
            relations, kind=AccessKind.DISTANCE, query=query, page_size=7
        )
        result = engine.run()
        assert [c.key for c in result.combinations] == [c.key for c in expected]

    def test_score_access_with_bound_period(self):
        relations, query = instance(4, size=30)
        scoring = EuclideanLogScoring()
        expected = brute_force_topk(relations, scoring, query, 3)
        result = tbpa(
            relations, scoring, query, 3,
            kind=AccessKind.SCORE, bound_period=4,
        ).run()
        assert [c.key for c in result.combinations] == [c.key for c in expected]

    def test_three_relations_all_knobs(self):
        relations, query = instance(5, n=3, size=10)
        scoring = EuclideanLogScoring()
        expected = brute_force_topk(relations, scoring, query, 5)
        result = tbpa(
            relations, scoring, query, 5,
            kind=AccessKind.DISTANCE, dominance_period=3, bound_period=2,
            use_index=True,
        ).run()
        assert [c.key for c in result.combinations] == [c.key for c in expected]
