"""Tests for the tight-bound geometry: projections, closed forms, the QP
reduction, batch paths, and the dominance coefficients."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import EuclideanLogScoring, LinearScoring
from repro.core.bounds.geometry import (
    dominance_coefficients,
    dominance_coefficients_batch,
    partial_geometry,
    score_access_completion,
    solve_completion,
    solve_completion_batch,
    unconstrained_optimum,
)

SCORING = EuclideanLogScoring(1.0, 1.0, 1.0)


class TestPartialGeometry:
    def test_empty_set(self):
        geo = partial_geometry(np.zeros((0, 2)), np.zeros(2))
        assert geo.projections == ()
        assert geo.residual_sq == 0.0
        assert np.linalg.norm(geo.direction) == pytest.approx(1.0)

    def test_single_point_projection_is_distance(self):
        geo = partial_geometry(np.array([[3.0, 4.0]]), np.zeros(2))
        assert geo.projections[0] == pytest.approx(5.0)
        assert geo.residual_sq == pytest.approx(0.0)

    def test_query_offset(self):
        q = np.array([1.0, 1.0])
        geo = partial_geometry(np.array([[4.0, 5.0]]), q)
        assert geo.projections[0] == pytest.approx(5.0)

    def test_nu_equals_query_degenerate(self):
        # Two symmetric points: centroid at the query.
        geo = partial_geometry(np.array([[1.0, 0.0], [-1.0, 0.0]]), np.zeros(2))
        assert np.linalg.norm(geo.direction) == pytest.approx(1.0)
        # Projections sum to ~0 regardless of the chosen axis.
        assert sum(geo.projections) == pytest.approx(0.0, abs=1e-12)

    @settings(max_examples=40)
    @given(st.integers(1, 5), st.randoms(use_true_random=False))
    def test_pythagoras(self, m, rnd):
        rng = np.random.default_rng(rnd.randint(0, 2**32 - 1))
        pts = rng.normal(size=(m, 3))
        q = rng.normal(size=3)
        geo = partial_geometry(pts, q)
        total_sq = float(((pts - q) ** 2).sum())
        proj_sq = float(np.sum(np.array(geo.projections) ** 2))
        assert total_sq == pytest.approx(proj_sq + geo.residual_sq)


class TestUnconstrainedOptimum:
    def test_paper_closed_form(self):
        # y* = nu * m w_mu / (m w_mu + n w_q) in query-centred coords.
        scoring = EuclideanLogScoring(1.0, 2.0, 3.0)
        nu = np.array([1.0, 0.0])
        y = unconstrained_optimum(scoring, n=3, m=2, nu_centred=nu)
        assert y[0] == pytest.approx(2 * 3.0 / (2 * 3.0 + 3 * 2.0))

    def test_m_zero_is_query(self):
        y = unconstrained_optimum(SCORING, n=2, m=0, nu_centred=np.array([5.0]))
        assert y[0] == 0.0

    def test_zero_weights(self):
        scoring = LinearScoring(1.0, 0.0, 0.0)
        y = unconstrained_optimum(scoring, n=2, m=1, nu_centred=np.array([5.0]))
        assert y[0] == 0.0


class TestSolveCompletionValidation:
    def test_overlap_rejected(self):
        with pytest.raises(ValueError, match="both"):
            solve_completion(
                SCORING, 2, np.zeros(1),
                {0: (1.0, np.array([1.0]))}, {0: 0.5}, {0: 1.0},
            )

    def test_partition_required(self):
        with pytest.raises(ValueError, match="partition"):
            solve_completion(
                SCORING, 3, np.zeros(1),
                {0: (1.0, np.array([1.0]))}, {1: 0.5}, {1: 1.0},
            )

    def test_sigma_delta_key_mismatch(self):
        with pytest.raises(ValueError, match="share keys"):
            solve_completion(
                SCORING, 2, np.zeros(1),
                {0: (1.0, np.array([1.0]))}, {1: 0.5}, {0: 1.0},
            )


class TestBoundIsActuallyAchievable:
    """Tightness in miniature (Theorem 3.2): placing real tuples at the
    solver's optimum attains exactly the bound value."""

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(2, 4),
        st.integers(1, 3),
        st.randoms(use_true_random=False),
    )
    def test_distance_bound_attained_by_construction(self, n, m, rnd):
        m = min(m, n - 1)
        rng = np.random.default_rng(rnd.randint(0, 2**32 - 1))
        query = rng.normal(size=2)
        scoring = EuclideanLogScoring(1.0, 1.0, 1.0)
        seen = {
            i: (float(rng.uniform(0.1, 1.0)), rng.normal(size=2))
            for i in range(m)
        }
        unseen_delta = {j: float(abs(rng.normal())) for j in range(m, n)}
        unseen_sigma = {j: 1.0 for j in range(m, n)}
        result = solve_completion(scoring, n, query, seen, unseen_delta, unseen_sigma)

        # Materialise the continuation: unseen tuples at y*_j with sigma_max.
        from repro.core.relation import RankTuple

        tuples = []
        for i in range(n):
            if i in seen:
                tuples.append(RankTuple(f"R{i}", 0, seen[i][0], seen[i][1]))
            else:
                pos = result.positions[i]
                # The optimum must respect the access constraint.
                assert np.linalg.norm(pos - query) >= unseen_delta[i] - 1e-7
                tuples.append(RankTuple(f"R{i}", 0, 1.0, pos))
        attained = scoring.score_combination(tuples, query)
        assert attained == pytest.approx(result.value, abs=1e-7)

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(2, 4),
        st.integers(0, 3),
        st.randoms(use_true_random=False),
    )
    def test_score_bound_attained_by_construction(self, n, m, rnd):
        m = min(m, n - 1)
        rng = np.random.default_rng(rnd.randint(0, 2**32 - 1))
        query = rng.normal(size=2)
        scoring = EuclideanLogScoring(1.0, 1.0, 1.0)
        seen = {
            i: (float(rng.uniform(0.1, 1.0)), rng.normal(size=2))
            for i in range(m)
        }
        unseen_sigma = {j: float(rng.uniform(0.1, 1.0)) for j in range(m, n)}
        result = score_access_completion(scoring, n, query, seen, unseen_sigma)

        from repro.core.relation import RankTuple

        tuples = []
        for i in range(n):
            if i in seen:
                tuples.append(RankTuple(f"R{i}", 0, seen[i][0], seen[i][1]))
            else:
                tuples.append(
                    RankTuple(f"R{i}", 0, unseen_sigma[i], result.positions[i])
                )
        attained = scoring.score_combination(tuples, query)
        assert attained == pytest.approx(result.value, abs=1e-7)

    @settings(max_examples=30, deadline=None)
    @given(st.integers(2, 4), st.randoms(use_true_random=False))
    def test_bound_upper_bounds_random_completions(self, n, rnd):
        """No feasible completion may exceed t(tau)."""
        rng = np.random.default_rng(rnd.randint(0, 2**32 - 1))
        query = np.zeros(2)
        scoring = EuclideanLogScoring(1.0, 1.0, 1.0)
        seen = {0: (float(rng.uniform(0.1, 1.0)), rng.normal(size=2))}
        unseen_delta = {j: float(abs(rng.normal()) + 0.1) for j in range(1, n)}
        unseen_sigma = {j: 1.0 for j in range(1, n)}
        result = solve_completion(scoring, n, query, seen, unseen_delta, unseen_sigma)

        from repro.core.relation import RankTuple

        for _ in range(25):
            tuples = [RankTuple("R0", 0, seen[0][0], seen[0][1])]
            for j in range(1, n):
                direction = rng.normal(size=2)
                direction /= np.linalg.norm(direction)
                radius = unseen_delta[j] + abs(rng.normal())
                tuples.append(
                    RankTuple(
                        f"R{j}", 0, float(rng.uniform(0.1, 1.0)),
                        query + radius * direction,
                    )
                )
            assert scoring.score_combination(tuples, query) <= result.value + 1e-7


class TestBatchConsistency:
    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(2, 4),
        st.integers(1, 3),
        st.integers(1, 6),
        st.randoms(use_true_random=False),
    )
    def test_batch_completion_matches_scalar(self, n, m, entries, rnd):
        m = min(m, n - 1)
        rng = np.random.default_rng(rnd.randint(0, 2**32 - 1))
        scoring = EuclideanLogScoring(0.8, 1.2, 0.6)
        query = rng.normal(size=2)
        member_idx = sorted(rng.choice(n, size=m, replace=False).tolist())
        others = [j for j in range(n) if j not in member_idx]
        unseen_delta = {j: float(abs(rng.normal())) for j in others}
        unseen_sigma = {j: float(rng.uniform(0.2, 1.0)) for j in others}
        scores = rng.uniform(0.1, 1.0, size=(entries, m))
        vectors = rng.normal(size=(entries, m, 2))

        values, thetas = solve_completion_batch(
            scoring, n, query, member_idx, scores, vectors, unseen_delta, unseen_sigma
        )
        for e in range(entries):
            seen = {
                j: (float(scores[e, r]), vectors[e, r])
                for r, j in enumerate(member_idx)
            }
            ref = solve_completion(scoring, n, query, seen, unseen_delta, unseen_sigma)
            assert values[e] == pytest.approx(ref.value, abs=1e-7)
            np.testing.assert_allclose(thetas[e], ref.theta, atol=1e-7)

    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(2, 4),
        st.integers(1, 3),
        st.integers(1, 6),
        st.randoms(use_true_random=False),
    )
    def test_batch_dominance_matches_scalar(self, n, m, entries, rnd):
        m = min(m, n - 1)
        rng = np.random.default_rng(rnd.randint(0, 2**32 - 1))
        scoring = EuclideanLogScoring(1.0, 0.5, 1.5)
        query = rng.normal(size=2)
        member_idx = sorted(rng.choice(n, size=m, replace=False).tolist())
        others = [j for j in range(n) if j not in member_idx]
        unseen_sigma = {j: float(rng.uniform(0.2, 1.0)) for j in others}
        scores = rng.uniform(0.1, 1.0, size=(entries, m))
        vectors = rng.normal(size=(entries, m, 2))

        bs, cs = dominance_coefficients_batch(
            scoring, n, query, scores, vectors, unseen_sigma
        )
        for e in range(entries):
            seen = {
                j: (float(scores[e, r]), vectors[e, r])
                for r, j in enumerate(member_idx)
            }
            b_ref, c_ref = dominance_coefficients(
                scoring, n, query, seen, unseen_sigma
            )
            np.testing.assert_allclose(bs[e], b_ref, atol=1e-9)
            assert cs[e] == pytest.approx(c_ref, abs=1e-9)


class TestDominanceHalfSpaceSemantics:
    def test_difference_of_objectives_is_linear(self):
        """f_alpha(y) - f_beta(y) must not depend on the quadratic term:
        check at random y that the half-space inequality characterises
        which partial combination offers the better completion."""
        rng = np.random.default_rng(7)
        scoring = EuclideanLogScoring(1.0, 1.0, 1.0)
        n, query = 3, np.zeros(2)
        seen_a = {0: (0.9, np.array([1.0, 0.5])), 1: (0.4, np.array([0.2, -1.0]))}
        seen_b = {0: (0.5, np.array([-1.0, 1.0])), 1: (0.8, np.array([0.7, 0.3]))}
        sigma = {2: 1.0}
        b_a, c_a = dominance_coefficients(scoring, n, query, seen_a, sigma)
        b_b, c_b = dominance_coefficients(scoring, n, query, seen_b, sigma)

        from repro.core.relation import RankTuple

        for _ in range(30):
            y = rng.normal(size=2) * 2
            # alpha's completion value at y (both unseen tuples at y).
            def value(seen):
                tuples = [
                    RankTuple("R0", 0, seen[0][0], seen[0][1]),
                    RankTuple("R1", 0, seen[1][0], seen[1][1]),
                    RankTuple("R2", 0, 1.0, y),
                ]
                return scoring.score_combination(tuples, query)

            diff = value(seen_a) - value(seen_b)
            halfspace = (c_b - c_a) - 2.0 * float((b_a - b_b) @ y)
            assert diff == pytest.approx(halfspace, abs=1e-9)
