"""Unit tests for the columnar prefix layer: ``ColumnarPrefix`` growth,
frozen-cursor mode, the scorer's derived slabs (running maxima,
range-based scoring/bounding) and ``TopKBuffer.add_many``."""

import numpy as np
import pytest

from repro.core import (
    AccessKind,
    EuclideanLogScoring,
    Relation,
    TopKBuffer,
)
from repro.core.access import DistanceAccess, ScoreAccess, open_streams
from repro.core.batchscore import QuadraticBatchScorer
from repro.core.columnar import ColumnarPrefix


def random_relation(seed, size=20, d=3, name="R"):
    rng = np.random.default_rng(seed)
    return Relation(
        name,
        rng.uniform(0.05, 1.0, size),
        rng.uniform(-3, 3, (size, d)),
        sigma_max=1.0,
    )


class TestColumnarPrefixGrowth:
    def test_append_grows_amortised(self):
        prefix = ColumnarPrefix(dim=2)
        start_cap = prefix.capacity
        for i in range(100):
            prefix.append(np.array([i, -i], dtype=float), float(i), i)
        assert len(prefix) == 100
        # Doubling growth: capacity is a power-of-two multiple of the
        # start, not 1-per-append reallocations.
        assert prefix.capacity >= 100
        assert prefix.capacity / start_cap in {2.0**k for k in range(10)}
        vecs, scores, tids = prefix.arrays()
        assert vecs.shape == (100, 2)
        np.testing.assert_array_equal(scores, np.arange(100.0))
        np.testing.assert_array_equal(tids, np.arange(100))

    def test_extend_matches_appends(self):
        rng = np.random.default_rng(0)
        vecs = rng.normal(size=(37, 4))
        scores = rng.uniform(size=37)
        tids = np.arange(37)
        one = ColumnarPrefix(dim=4)
        for i in range(37):
            one.append(vecs[i], scores[i], i)
        other = ColumnarPrefix(dim=4)
        other.extend(vecs[:20], scores[:20], tids[:20])
        other.extend(vecs[20:], scores[20:], tids[20:])
        for a, b in zip(one.arrays(), other.arrays()):
            np.testing.assert_array_equal(a, b)

    def test_arrays_slice_bounds_checked(self):
        prefix = ColumnarPrefix(dim=1)
        prefix.append(np.zeros(1), 1.0, 0)
        with pytest.raises(ValueError, match="outside the filled prefix"):
            prefix.arrays(0, 2)
        with pytest.raises(ValueError, match="outside the filled prefix"):
            prefix.arrays(-1, 1)

    def test_old_views_stay_valid_after_growth(self):
        """Growth reallocates, but previously returned views keep their
        (append-only, hence immutable) prefix data."""
        prefix = ColumnarPrefix(dim=1)
        prefix.append(np.array([7.0]), 0.5, 3)
        vecs_before, scores_before, _ = prefix.arrays()
        for i in range(64):  # force at least one reallocation
            prefix.append(np.array([float(i)]), float(i), i)
        assert vecs_before[0, 0] == 7.0 and scores_before[0] == 0.5

    def test_misaligned_columns_rejected(self):
        with pytest.raises(ValueError, match="misaligned"):
            ColumnarPrefix.from_arrays(np.zeros((3, 2)), np.zeros(2), np.arange(3))


class TestFrozenPrefix:
    def test_advance_cursor(self):
        vecs = np.arange(10.0).reshape(5, 2)
        prefix = ColumnarPrefix.from_arrays(vecs, np.ones(5), np.arange(5))
        assert len(prefix) == 0 and prefix.frozen
        prefix.advance(3)
        assert len(prefix) == 3
        got, _, _ = prefix.arrays()
        np.testing.assert_array_equal(got, vecs[:3])

    def test_advance_beyond_backing_rejected(self):
        prefix = ColumnarPrefix.from_arrays(np.zeros((2, 1)), np.zeros(2), np.arange(2))
        with pytest.raises(ValueError, match="advance"):
            prefix.advance(3)

    def test_append_on_frozen_rejected(self):
        prefix = ColumnarPrefix.from_arrays(np.zeros((2, 1)), np.zeros(2), np.arange(2))
        with pytest.raises(ValueError, match="frozen"):
            prefix.append(np.zeros(1), 0.0, 0)

    def test_advance_on_growing_rejected(self):
        with pytest.raises(ValueError, match="growing"):
            ColumnarPrefix(dim=1).advance(1)


class TestStreamPrefixes:
    def test_sorted_stream_prefix_tracks_pulls(self):
        rel = random_relation(1)
        stream = DistanceAccess(rel, np.zeros(3))
        assert len(stream.prefix) == 0
        stream.next_block(5)
        vecs, scores, tids = stream.prefix.arrays()
        assert len(stream.prefix) == 5
        for row, tup in enumerate(stream.seen):
            np.testing.assert_array_equal(vecs[row], tup.vector)
            assert scores[row] == tup.score
            assert tids[row] == tup.tid

    def test_indexed_stream_prefix_matches_sorted(self):
        rel = random_relation(2)
        q = np.zeros(3)
        sorted_stream = DistanceAccess(rel, q)
        indexed = DistanceAccess(rel, q, use_index=True)
        sorted_stream.next_block(len(rel))
        indexed.next_block(len(rel))
        for a, b in zip(sorted_stream.prefix.arrays(), indexed.prefix.arrays()):
            np.testing.assert_array_equal(a, b)

    def test_score_stream_prefix_is_score_ordered(self):
        rel = random_relation(3)
        stream = ScoreAccess(rel)
        stream.next_block(len(rel))
        _, scores, _ = stream.prefix.arrays()
        assert list(scores) == sorted(scores, reverse=True)

    def test_next_block_slices_match_repeated_next(self):
        rel = random_relation(4)
        q = np.zeros(3)
        blocked = DistanceAccess(rel, q)
        stepped = DistanceAccess(rel, q)
        pulled = []
        while True:
            block = blocked.next_block(7)
            if not block:
                break
            pulled.extend(block)
        singles = []
        while True:
            tup = stepped.next()
            if tup is None:
                break
            singles.append(tup)
        assert [t.tid for t in pulled] == [t.tid for t in singles]
        assert blocked.last_distance == stepped.last_distance
        for a, b in zip(blocked.prefix.arrays(), stepped.prefix.arrays()):
            np.testing.assert_array_equal(a, b)

    def test_custom_metric_distances_computed_once_and_reported(self):
        rel = Relation("R", [1.0, 1.0], [[0.0, 3.0], [2.0, 2.0]])
        calls = {"n": 0}

        def manhattan(x, y):
            calls["n"] += 1
            return float(np.abs(x - y).sum())

        stream = DistanceAccess(rel, np.zeros(2), metric=manhattan)
        # One evaluation per tuple at open time, none per pull.
        assert calls["n"] == len(rel)
        stream.next_block(len(rel))
        assert calls["n"] == len(rel)
        assert stream.last_distance == pytest.approx(4.0)


class TestPrefixSlabs:
    def _bound_scorer(self, seed=0, n=2, d=3):
        rng = np.random.default_rng(seed)
        relations = [
            random_relation(seed + i, d=d, name=f"R{i}") for i in range(n)
        ]
        query = rng.uniform(-1, 1, d)
        streams = open_streams(relations, AccessKind.DISTANCE, query)
        scorer = QuadraticBatchScorer(EuclideanLogScoring(1.3, 0.7, 2.1), query)
        assert scorer.bind_streams(streams)
        return scorer, streams

    def test_score_ranges_matches_score_pools(self):
        scorer, streams = self._bound_scorer()
        for s in streams:
            s.next_block(9)
        ranges = [(0, 0, 9), (1, 2, 9)]
        pools = [streams[0].seen[0:9], streams[1].seen[2:9]]
        batch = scorer.score_ranges(ranges)
        np.testing.assert_allclose(
            batch, scorer.score_pools(pools), rtol=0, atol=1e-12
        )

    def test_slab_syncs_incrementally_after_block_pulls(self):
        scorer, streams = self._bound_scorer(seed=5)
        streams[0].next_block(4)
        streams[1].next_block(4)
        first = scorer.score_ranges([(0, 0, 4), (1, 0, 4)])
        streams[0].next_block(6)
        second = scorer.score_ranges([(0, 0, 10), (1, 0, 4)])
        # The old rows must be byte-stable across slab growth.
        np.testing.assert_array_equal(second[:4, :], first)

    def test_ranges_upper_bound_matches_pools_upper_bound(self):
        scorer, streams = self._bound_scorer(seed=7)
        for s in streams:
            s.next_block(12)
        ranges = [(0, 0, 12), (1, 5, 12)]
        pools = [streams[0].seen[0:12], streams[1].seen[5:12]]
        assert scorer.ranges_upper_bound(ranges) == pytest.approx(
            scorer.pools_upper_bound(pools), rel=1e-12
        )

    def test_ranges_upper_bound_dominates_batch(self):
        scorer, streams = self._bound_scorer(seed=11)
        for s in streams:
            s.next_block(15)
        ranges = [(0, 0, 15), (1, 0, 15)]
        bound = scorer.ranges_upper_bound(ranges)
        assert bound >= scorer.score_ranges(ranges).max() - 1e-9

    def test_bind_streams_rejects_prefixless_streams(self):
        class Bare:
            prefix = None

        scorer = QuadraticBatchScorer(EuclideanLogScoring(), np.zeros(2))
        assert not scorer.bind_streams([Bare()])

    def test_add_cross_ranges_matches_add_cross_product(self):
        for k in (1, 3, 10):
            scorer, streams = self._bound_scorer(seed=13)
            for s in streams:
                s.next_block(14)
            ranges = [(0, 0, 14), (1, 0, 14)]
            pools = [streams[0].seen, streams[1].seen]
            via_ranges = TopKBuffer(k)
            count_r = scorer.add_cross_ranges(ranges, via_ranges)
            via_pools = TopKBuffer(k)
            count_p = scorer.add_cross_product(pools, via_pools)
            assert count_r == count_p
            assert [c.key for c in via_ranges.ranked()] == [
                c.key for c in via_pools.ranked()
            ]
            assert [c.score for c in via_ranges.ranked()] == [
                c.score for c in via_pools.ranked()
            ]

    def test_add_cross_ranges_sieve_with_full_buffer(self):
        """Once the buffer is full the staged sieve kicks in; retained
        sets must stay identical to dense pool scoring."""
        scorer, streams = self._bound_scorer(seed=17)
        streams[0].next_block(6)
        streams[1].next_block(6)
        sieved = TopKBuffer(3)
        dense = TopKBuffer(3)
        scorer.add_cross_ranges([(0, 0, 6), (1, 0, 6)], sieved)
        scorer.add_cross_product(
            [streams[0].seen[:6], streams[1].seen[:6]], dense
        )
        # Grow and rescore: kth is now finite, exercising every stage.
        streams[0].next_block(8)
        scorer.add_cross_ranges([(0, 6, 14), (1, 0, 6)], sieved)
        scorer.add_cross_product(
            [streams[0].seen[6:14], streams[1].seen[:6]], dense
        )
        assert [c.key for c in sieved.ranked()] == [c.key for c in dense.ranked()]


class TestAddMany:
    def _combos(self, seed, count):
        rng = np.random.default_rng(seed)
        scoring = EuclideanLogScoring()
        rel_a = random_relation(seed, size=count, d=2)
        rel_b = random_relation(seed + 1, size=count, d=2)
        query = np.zeros(2)
        return [
            scoring.make_combination((rel_a[i], rel_b[i]), query)
            for i in range(count)
        ]

    def test_matches_sequential_add(self):
        combos = self._combos(0, 30)
        combos.sort(key=lambda c: (-c.score, c.key))
        batch, single = TopKBuffer(5), TopKBuffer(5)
        retained = batch.add_many(combos)
        singles = sum(single.add(c) for c in combos)
        assert retained == singles
        assert [c.key for c in batch.ranked()] == [c.key for c in single.ranked()]

    def test_duplicates_ignored(self):
        combos = self._combos(1, 10)
        buf = TopKBuffer(20)
        assert buf.add_many(combos) == 10
        assert buf.add_many(combos) == 0

    def test_tied_scores_keep_key_order(self):
        scoring = EuclideanLogScoring()
        query = np.zeros(2)
        rel_a = Relation("A", [1.0] * 6, np.zeros((6, 2)), sigma_max=1.0)
        rel_b = Relation("B", [1.0] * 6, np.zeros((6, 2)), sigma_max=1.0)
        combos = [
            scoring.make_combination((rel_a[i], rel_b[j]), query)
            for i in range(6)
            for j in range(6)
        ]
        batch, single = TopKBuffer(4), TopKBuffer(4)
        batch.add_many(combos)
        for c in combos:
            single.add(c)
        assert [c.key for c in batch.ranked()] == [c.key for c in single.ranked()]
