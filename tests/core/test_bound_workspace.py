"""The bound-kernel acceptance suite: engine-level differential tests of
the batched bound kernel against the scalar reference path, the
workspace's slab reuse, and the potentials memo.

* Completed TBPA/TBRR runs with ``batch_kernel=True`` must return the
  *identical* ranked top-K, depths and bound as ``batch_kernel=False``
  (the pre-refactor per-subset / per-candidate path) — bit for bit,
  dominance on and off, per-tuple and block-pull.
* ``PotentialAdaptive`` consults the bound once per block; the memo must
  collapse repeat consultations of an unchanged bound version into cache
  hits (``potential_evals`` vs ``potential_consults``) without touching
  the run's outcome.
"""

import numpy as np
import pytest

from repro.core import AccessKind, EuclideanLogScoring, make_algorithm
from repro.core.bounds import BoundWorkspace
from repro.data import SyntheticConfig, generate_problem


def problem(seed, n_relations=3, n_tuples=70):
    return generate_problem(
        SyntheticConfig(
            n_relations=n_relations, dims=2, density=50.0, skew=1.0,
            n_tuples=n_tuples, seed=seed,
        )
    )


def run(algo, relations, query, *, batch_kernel, **kwargs):
    scoring = EuclideanLogScoring(1.0, 1.0, 1.0)
    engine = make_algorithm(
        algo, relations, scoring, query, 10,
        kind=kwargs.pop("kind", AccessKind.DISTANCE),
        batch_kernel=batch_kernel, **kwargs,
    )
    return engine.run()


def ranked_key(result):
    return [
        (c.score, tuple(t.tid for t in c.tuples)) for c in result.combinations
    ]


class TestEngineBitIdentity:
    @pytest.mark.parametrize("seed", range(3))
    @pytest.mark.parametrize("algo", ["TBPA", "TBRR"])
    @pytest.mark.parametrize("period", [4, None])
    @pytest.mark.parametrize("pull_block", [1, 8])
    def test_distance_access(self, seed, algo, period, pull_block):
        # max_pulls keeps the dominance-heavy scalar reference cheap; the
        # identity claim is pull-for-pull, so a capped prefix pins it as
        # strictly as a completed run (which test_completed_run covers).
        relations, query = problem(seed)
        a = run(relations=relations, query=query, algo=algo,
                batch_kernel=True, dominance_period=period,
                pull_block=pull_block, max_pulls=48)
        b = run(relations=relations, query=query, algo=algo,
                batch_kernel=False, dominance_period=period,
                pull_block=pull_block, max_pulls=48)
        assert a.completed == b.completed
        assert a.depths == b.depths
        assert a.bound == b.bound  # bitwise
        assert ranked_key(a) == ranked_key(b)
        # Same logical work: entry creation/revalidation and QP counts
        # are execution-strategy-independent.
        for key in ("qp_solves", "entries_created", "entries_revalidated",
                    "entries_dominated"):
            assert a.counters[key] == b.counters[key], key

    def test_completed_run(self):
        relations, query = problem(0, n_tuples=40)
        a = run(relations=relations, query=query, algo="TBPA",
                batch_kernel=True, dominance_period=4, pull_block=8)
        b = run(relations=relations, query=query, algo="TBPA",
                batch_kernel=False, dominance_period=4, pull_block=8)
        assert a.completed and b.completed
        assert a.depths == b.depths and a.bound == b.bound
        assert ranked_key(a) == ranked_key(b)

    @pytest.mark.parametrize("seed", range(2))
    def test_score_access(self, seed):
        relations, query = problem(seed)
        a = run(relations=relations, query=query, algo="TBPA",
                batch_kernel=True, kind=AccessKind.SCORE, pull_block=4)
        b = run(relations=relations, query=query, algo="TBPA",
                batch_kernel=False, kind=AccessKind.SCORE, pull_block=4)
        assert a.depths == b.depths and a.bound == b.bound
        assert ranked_key(a) == ranked_key(b)

    def test_n2_and_bound_period(self):
        relations, query = problem(1, n_relations=2, n_tuples=100)
        a = run(relations=relations, query=query, algo="TBPA",
                batch_kernel=True, dominance_period=1, bound_period=5)
        b = run(relations=relations, query=query, algo="TBPA",
                batch_kernel=False, dominance_period=1, bound_period=5)
        assert a.depths == b.depths and a.bound == b.bound
        assert ranked_key(a) == ranked_key(b)


class TestSolverSecondsSplit:
    def test_solver_share_reported(self):
        relations, query = problem(0)
        result = run(relations=relations, query=query, algo="TBPA",
                     batch_kernel=True, dominance_period=2, pull_block=8)
        assert result.solver_seconds > 0.0
        assert result.counters["solver_seconds"] == result.solver_seconds
        # The solver share lives inside the bound + dominance shares
        # (generous slack: both sides are wall-clock measurements).
        assert result.solver_seconds <= (
            result.bound_seconds + result.dominance_seconds
        ) * 1.5 + 1e-3


class TestPotentialsMemo:
    def test_one_eval_per_bound_version(self):
        relations, query = problem(0)
        # bound_period > pull_block means several strategy consultations
        # share one bound version; the memo must collapse them.
        result = run(relations=relations, query=query, algo="TBPA",
                     batch_kernel=True, bound_period=12, pull_block=3)
        consults = result.counters["potential_consults"]
        evals = result.counters["potential_evals"]
        updates = result.counters["updates"]
        assert consults > evals, (consults, evals)
        # One evaluation per bound version actually consulted: at most
        # one per update plus the pre-first-update version.
        assert evals <= updates + 1

    def test_memo_does_not_change_outcome(self):
        relations, query = problem(2)
        a = run(relations=relations, query=query, algo="TBPA",
                batch_kernel=True, bound_period=12, pull_block=3)
        b = run(relations=relations, query=query, algo="TBRR",
                batch_kernel=True, bound_period=12, pull_block=3)
        # Both certified the same ranked answer set (strategies differ
        # only in pull schedule).
        assert [c.score for c in a.combinations] == [
            c.score for c in b.combinations
        ]

    def test_corner_bound_unaffected(self):
        relations, query = problem(0)
        scoring = EuclideanLogScoring(1.0, 1.0, 1.0)
        result = make_algorithm(
            "CBPA", relations, scoring, query, 10,
            kind=AccessKind.DISTANCE, pull_block=4,
        ).run()
        assert result.completed


class TestWorkspaceSlabs:
    def test_grow_only_reuse(self):
        ws = BoundWorkspace()
        a = ws.array("x", (4, 3), zero=True)
        assert a.shape == (4, 3) and (a == 0).all()
        a[:] = 7.0
        b = ws.array("x", (2, 3))
        # Same backing memory, no reallocation for smaller requests.
        assert b.base is a.base
        c = ws.array("x", (64, 9))
        assert c.shape == (64, 9)

    def test_qp_slab_masks_zeroed(self):
        ws = BoundWorkspace()
        fm, fv, lm, lv = ws.qp_slabs(5, 3)
        fm[:] = True
        lm[:] = True
        fm2, _, lm2, _ = ws.qp_slabs(5, 3)
        assert not fm2.any() and not lm2.any()

    def test_potentials_memo_api(self):
        ws = BoundWorkspace()
        assert ws.potentials_if_fresh(0) is None
        ws.cache_potentials(3, [1.0, 2.0])
        assert ws.potentials_if_fresh(3) == [1.0, 2.0]
        assert ws.potentials_if_fresh(4) is None
