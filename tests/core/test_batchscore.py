"""The vectorised combination scorer must agree with the canonical path."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import EuclideanLogScoring, LinearScoring, Relation, TopKBuffer
from repro.core.batchscore import QuadraticBatchScorer
from repro.core.relation import RankTuple


def pools_from(rng, sizes, d):
    pools = []
    for idx, size in enumerate(sizes):
        rel = Relation(
            f"R{idx}",
            rng.uniform(0.05, 1.0, size),
            rng.uniform(-2, 2, (size, d)),
            sigma_max=1.0,
        )
        pools.append(list(rel))
    return pools


class TestScorePools:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(st.integers(1, 5), min_size=1, max_size=3),
        st.integers(1, 4),
        st.randoms(use_true_random=False),
    )
    def test_matches_scalar_scoring(self, sizes, d, rnd):
        rng = np.random.default_rng(rnd.randint(0, 2**32 - 1))
        scoring = EuclideanLogScoring(1.3, 0.7, 2.1)
        query = rng.uniform(-1, 1, d)
        pools = pools_from(rng, sizes, d)
        scorer = QuadraticBatchScorer(scoring, query)
        batch = scorer.score_pools(pools)
        assert batch.shape == tuple(sizes)
        for coords in itertools.product(*(range(s) for s in sizes)):
            tuples = [pools[j][c] for j, c in zip(range(len(pools)), coords)]
            expected = scoring.score_combination(tuples, query)
            assert batch[coords] == pytest.approx(expected, rel=1e-9, abs=1e-9)

    def test_linear_scoring_supported(self):
        rng = np.random.default_rng(0)
        scoring = LinearScoring(1.0, 1.0, 1.0)
        query = np.zeros(2)
        pools = pools_from(rng, [3, 3], 2)
        scorer = QuadraticBatchScorer(scoring, query)
        batch = scorer.score_pools(pools)
        expected = scoring.score_combination([pools[0][1], pools[1][2]], query)
        assert batch[1, 2] == pytest.approx(expected, abs=1e-9)

    def test_stats_cached_across_calls(self):
        rng = np.random.default_rng(1)
        scorer = QuadraticBatchScorer(EuclideanLogScoring(), np.zeros(2))
        pools = pools_from(rng, [4, 4], 2)
        scorer.score_pools(pools)
        cached = len(scorer._scalar)
        scorer.score_pools(pools)
        assert len(scorer._scalar) == cached == 8


class TestAddCrossProduct:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(st.integers(1, 6), min_size=2, max_size=3),
        st.integers(1, 5),
        st.randoms(use_true_random=False),
    )
    def test_buffer_equals_exhaustive_insertion(self, sizes, k, rnd):
        rng = np.random.default_rng(rnd.randint(0, 2**32 - 1))
        scoring = EuclideanLogScoring()
        query = rng.uniform(-1, 1, 2)
        pools = pools_from(rng, sizes, 2)
        scorer = QuadraticBatchScorer(scoring, query)

        fast = TopKBuffer(k)
        count = scorer.add_cross_product(pools, fast)
        assert count == int(np.prod(sizes))

        slow = TopKBuffer(k)
        for tuples in itertools.product(*pools):
            slow.add(scoring.make_combination(tuples, query))

        assert [c.key for c in fast.ranked()] == [c.key for c in slow.ranked()]
        assert [c.score for c in fast.ranked()] == pytest.approx(
            [c.score for c in slow.ranked()]
        )

    def test_empty_pool_short_circuits(self):
        scorer = QuadraticBatchScorer(EuclideanLogScoring(), np.zeros(2))
        buf = TopKBuffer(3)
        assert scorer.add_cross_product([[], []], buf) == 0
        assert len(buf) == 0

    def test_heavy_ties_keep_deterministic_tie_break(self):
        """With far more than ``k + _SLACK`` equal-score candidates, the
        partition cut must not drop tied combinations the sequential
        engine would retain under the tuple-id tie-break (regression:
        argpartition used to keep an arbitrary subset of the ties)."""
        scoring = EuclideanLogScoring()
        query = np.zeros(2)
        # Every tuple identical in score and vector: all 36 combinations
        # tie exactly; k + _SLACK = 13 < 36.
        pools = [
            [
                RankTuple(relation=name, tid=tid, score=1.0, vector=np.zeros(2))
                for tid in range(6)
            ]
            for name in ("A", "B")
        ]
        scorer = QuadraticBatchScorer(scoring, query)
        fast = TopKBuffer(5)
        scorer.add_cross_product(pools, fast)

        slow = TopKBuffer(5)
        for tuples in itertools.product(*pools):
            slow.add(scoring.make_combination(tuples, query))

        assert [c.key for c in fast.ranked()] == [c.key for c in slow.ranked()]

    def test_heavy_ties_two_levels(self):
        """Mixed tie cohorts across the partition boundary."""
        scoring = EuclideanLogScoring()
        query = np.zeros(2)
        pools = []
        for name in ("A", "B"):
            tuples = []
            for tid in range(8):
                score = 1.0 if tid % 2 == 0 else 0.5
                vec = [0.0, 0.0] if tid < 4 else [1.0, 0.0]
                tuples.append(
                    RankTuple(
                        relation=name, tid=tid, score=score, vector=np.array(vec)
                    )
                )
            pools.append(tuples)
        for k in (3, 5, 10):
            fast = TopKBuffer(k)
            scorer_fresh = QuadraticBatchScorer(scoring, query)
            scorer_fresh.add_cross_product(pools, fast)
            slow = TopKBuffer(k)
            for tuples in itertools.product(*pools):
                slow.add(scoring.make_combination(tuples, query))
            assert [c.key for c in fast.ranked()] == [
                c.key for c in slow.ranked()
            ], f"tie cohort dropped at k={k}"

    def test_incremental_pulls_match_sequential_engine_semantics(self):
        """Feeding pool batches pull by pull (as the engine does) fills
        the buffer exactly like scoring everything at once."""
        rng = np.random.default_rng(3)
        scoring = EuclideanLogScoring()
        query = np.zeros(2)
        pools = pools_from(rng, [5, 5], 2)
        scorer = QuadraticBatchScorer(scoring, query)

        incremental = TopKBuffer(4)
        seen0, seen1 = [], []
        for step in range(5):
            seen0.append(pools[0][step])
            scorer.add_cross_product([[pools[0][step]], seen1], incremental)
            seen1.append(pools[1][step])
            scorer.add_cross_product([seen0, [pools[1][step]]], incremental)

        oneshot = TopKBuffer(4)
        scorer.add_cross_product(pools, oneshot)
        assert [c.key for c in incremental.ranked()] == [
            c.key for c in oneshot.ranked()
        ]
