"""Tests for the execution-trace decorator."""

import numpy as np
import pytest

from repro.core import (
    AccessKind,
    CornerBound,
    EuclideanLogScoring,
    ProxRJ,
    Relation,
    RoundRobin,
    TightBound,
)
from repro.core.tracing import TraceBound


def run_traced(bound, seed=0, k=3, size=15):
    rng = np.random.default_rng(seed)
    relations = [
        Relation(
            f"R{i}", rng.uniform(0.05, 1, size), rng.uniform(-2, 2, (size, 2)),
            sigma_max=1.0,
        )
        for i in range(2)
    ]
    traced = TraceBound(bound)
    engine = ProxRJ(
        relations, EuclideanLogScoring(), kind=AccessKind.DISTANCE,
        query=np.zeros(2), bound=traced, pull=RoundRobin(), k=k,
    )
    return engine.run(), traced


class TestTraceBound:
    def test_transparent_results(self):
        result_plain, _ = run_traced(TightBound(), seed=1)
        # Fresh engine without tracing must match exactly.
        rng = np.random.default_rng(1)
        relations = [
            Relation(
                f"R{i}", rng.uniform(0.05, 1, 15), rng.uniform(-2, 2, (15, 2)),
                sigma_max=1.0,
            )
            for i in range(2)
        ]
        engine = ProxRJ(
            relations, EuclideanLogScoring(), kind=AccessKind.DISTANCE,
            query=np.zeros(2), bound=TightBound(), pull=RoundRobin(), k=3,
        )
        result_ref = engine.run()
        assert [c.key for c in result_plain.combinations] == [
            c.key for c in result_ref.combinations
        ]
        assert result_plain.depths == result_ref.depths

    def test_trace_length_equals_pulls(self):
        result, traced = run_traced(TightBound())
        assert len(traced.trace) == result.sum_depths

    def test_bound_series_non_increasing(self):
        _, traced = run_traced(TightBound())
        series = traced.trace.bound_series()
        assert all(b <= a + 1e-9 for a, b in zip(series, series[1:]))

    def test_kth_series_non_decreasing(self):
        _, traced = run_traced(TightBound())
        series = traced.trace.kth_series()
        finite = [s for s in series if s != float("-inf")]
        assert all(b >= a - 1e-9 for a, b in zip(finite, finite[1:]))

    def test_stop_step_is_final_pull(self):
        result, traced = run_traced(TightBound())
        # The engine stops right when certification first holds, so the
        # certified step is the last event.
        assert traced.trace.stop_step == len(traced.trace)

    def test_corner_stops_later_than_tight(self):
        _, tight = run_traced(TightBound(), seed=3)
        _, corner = run_traced(CornerBound(), seed=3)
        assert len(corner.trace) >= len(tight.trace)

    def test_pulls_per_relation_sums(self):
        result, traced = run_traced(TightBound(), seed=4)
        per_rel = traced.trace.pulls_per_relation()
        assert sum(per_rel.values()) == result.sum_depths

    def test_render_contains_certification(self):
        _, traced = run_traced(TightBound(), seed=5)
        text = traced.trace.render()
        assert "certified" in text
        assert "stopping condition first held" in text

    def test_render_thinning(self):
        _, traced = run_traced(TightBound(), seed=6)
        full = traced.trace.render()
        thin = traced.trace.render(every=5)
        assert len(thin) <= len(full)

    def test_counters_delegate_to_inner(self):
        inner = TightBound()
        _, traced = run_traced(inner)
        assert traced.counters is inner.counters
        assert inner.counters.qp_solves > 0
