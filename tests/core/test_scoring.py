"""Unit and property tests for the aggregation functions (Section 2)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    CosineProximityScoring,
    EuclideanLogScoring,
    LinearScoring,
    RankTuple,
)

pos_scores = st.floats(min_value=0.01, max_value=1.0, allow_nan=False)
dists = st.floats(min_value=0.0, max_value=10.0, allow_nan=False)


class TestEuclideanLogScoring:
    def test_weighted_score_formula(self):
        s = EuclideanLogScoring(w_s=2.0, w_q=3.0, w_mu=5.0)
        got = s.weighted_score(0, math.e, 2.0, 1.0)
        assert got == pytest.approx(2.0 * 1.0 - 3.0 * 4.0 - 5.0 * 1.0)

    def test_aggregate_is_sum(self):
        s = EuclideanLogScoring()
        assert s.aggregate([1.0, 2.0, -4.0]) == pytest.approx(-1.0)

    def test_nonpositive_score_rejected(self):
        s = EuclideanLogScoring()
        with pytest.raises(ValueError, match="positive"):
            s.score_utility(0.0)

    def test_negative_weights_rejected(self):
        with pytest.raises(ValueError):
            EuclideanLogScoring(w_s=-1.0)

    def test_centroid_is_mean(self):
        s = EuclideanLogScoring()
        np.testing.assert_allclose(
            s.centroid([[0.0, 0.0], [2.0, 4.0]]), [1.0, 2.0]
        )

    def test_score_combination_single_tuple(self):
        # n = 1: mu = x, so the centroid term vanishes.
        s = EuclideanLogScoring()
        t = RankTuple("R", 0, 1.0, [3.0, 4.0])
        assert s.score_combination([t], np.zeros(2)) == pytest.approx(-25.0)

    @settings(max_examples=50)
    @given(pos_scores, pos_scores, dists, dists)
    def test_monotone_in_score(self, s1, s2, dq, dm):
        scoring = EuclideanLogScoring()
        lo, hi = sorted([s1, s2])
        assert scoring.weighted_score(0, lo, dq, dm) <= scoring.weighted_score(
            0, hi, dq, dm
        )

    @settings(max_examples=50)
    @given(pos_scores, dists, dists, dists)
    def test_non_increasing_in_distances(self, sc, d1, d2, dm):
        scoring = EuclideanLogScoring()
        lo, hi = sorted([d1, d2])
        assert scoring.weighted_score(0, sc, hi, dm) <= scoring.weighted_score(
            0, sc, lo, dm
        )
        assert scoring.weighted_score(0, sc, dm, hi) <= scoring.weighted_score(
            0, sc, dm, lo
        )

    def test_table1_value(self):
        """Cross-check one Table 1 score end to end."""
        scoring = EuclideanLogScoring(1.0, 1.0, 1.0)
        tuples = [
            RankTuple("R1", 1, 1.0, [0.0, 1.0]),
            RankTuple("R2", 0, 1.0, [1.0, 1.0]),
            RankTuple("R3", 0, 1.0, [-1.0, 1.0]),
        ]
        assert scoring.score_combination(tuples, np.zeros(2)) == pytest.approx(-7.0)


class TestLinearScoring:
    def test_utility_is_identity(self):
        s = LinearScoring()
        assert s.score_utility(0.37) == 0.37

    def test_zero_scores_allowed(self):
        s = LinearScoring()
        assert s.weighted_score(0, 0.0, 1.0, 1.0) == pytest.approx(-2.0)


class TestCosineProximityScoring:
    def test_distance_is_cosine(self):
        s = CosineProximityScoring()
        assert s.distance([1.0, 0.0], [0.0, 1.0]) == pytest.approx(1.0)

    def test_weighted_score_linear_in_distances(self):
        s = CosineProximityScoring(w_s=1.0, w_q=2.0, w_mu=3.0)
        assert s.weighted_score(0, 0.5, 0.25, 0.5) == pytest.approx(
            0.5 - 0.5 - 1.5
        )

    def test_centroid_is_normalised(self):
        s = CosineProximityScoring()
        c = s.centroid([[2.0, 0.0], [0.0, 4.0]])
        assert np.linalg.norm(c) == pytest.approx(1.0)
        assert c[0] == pytest.approx(c[1])

    def test_not_flagged_for_quadratic_bound(self):
        assert CosineProximityScoring().supports_quadratic_bound is False
        assert EuclideanLogScoring().supports_quadratic_bound is True

    def test_score_combination_prefers_aligned(self):
        s = CosineProximityScoring()
        q = np.array([1.0, 0.0])
        near = [RankTuple("A", 0, 0.9, [2.0, 0.1]), RankTuple("B", 0, 0.9, [3.0, 0.0])]
        far = [RankTuple("A", 1, 0.9, [0.0, 2.0]), RankTuple("B", 1, 0.9, [-1.0, 0.0])]
        assert s.score_combination(near, q) > s.score_combination(far, q)
