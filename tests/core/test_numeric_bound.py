"""The numeric fallback bound must agree with the exact closed forms on
the quadratic family, and be usable for the cosine extension."""

import numpy as np
import pytest

from repro.core import CosineProximityScoring, EuclideanLogScoring
from repro.core.bounds.geometry import score_access_completion, solve_completion
from repro.core.bounds.numeric import numeric_completion

pytest.importorskip("scipy")

SCORING = EuclideanLogScoring(1.0, 1.0, 1.0)


class TestAgainstClosedForm:
    @pytest.mark.parametrize("seed", range(6))
    def test_distance_access_matches_qp(self, seed):
        rng = np.random.default_rng(seed)
        n = 3
        query = rng.normal(size=2)
        seen = {0: (float(rng.uniform(0.2, 1.0)), rng.normal(size=2))}
        unseen_delta = {1: float(abs(rng.normal())), 2: float(abs(rng.normal()))}
        unseen_sigma = {1: 1.0, 2: 1.0}
        exact = solve_completion(SCORING, n, query, seen, unseen_delta, unseen_sigma)
        approx = numeric_completion(
            SCORING, n, query, seen, unseen_sigma, unseen_delta, restarts=6
        )
        assert approx == pytest.approx(exact.value, abs=1e-4)

    @pytest.mark.parametrize("seed", range(6))
    def test_score_access_matches_closed_form(self, seed):
        rng = np.random.default_rng(seed + 100)
        n = 2
        query = rng.normal(size=2)
        seen = {0: (float(rng.uniform(0.2, 1.0)), rng.normal(size=2))}
        unseen_sigma = {1: float(rng.uniform(0.2, 1.0))}
        exact = score_access_completion(SCORING, n, query, seen, unseen_sigma)
        approx = numeric_completion(SCORING, n, query, seen, unseen_sigma, None)
        assert approx == pytest.approx(exact.value, abs=1e-4)

    def test_requires_unseen(self):
        with pytest.raises(ValueError, match="unseen"):
            numeric_completion(SCORING, 1, np.zeros(2), {0: (1.0, np.zeros(2))}, {})


class TestCosineExtension:
    def test_bound_dominates_sampled_completions(self):
        """For the cosine scoring (paper future work) the numeric bound
        should upper-bound random feasible completions."""
        scoring = CosineProximityScoring(1.0, 1.0, 1.0)
        rng = np.random.default_rng(7)
        query = np.array([1.0, 0.0])
        seen = {0: (0.8, np.array([0.9, 0.1]))}
        unseen_sigma = {1: 0.9}
        bound = numeric_completion(
            scoring, 2, query, seen, unseen_sigma, None, restarts=8
        )
        from repro.core.relation import RankTuple

        base = RankTuple("R0", 0, 0.8, seen[0][1])
        for _ in range(40):
            y = rng.normal(size=2)
            other = RankTuple("R1", 0, 0.9, y)
            s = scoring.score_combination((base, other), query)
            assert s <= bound + 1e-3
