"""Physical invariance properties of the scoring and the tight bound.

The Euclidean aggregation (2) depends only on relative geometry, so
rigid motions applied consistently to every vector *and* the query must
leave combination scores, tight-bound values and the algorithms' access
sequences unchanged.  These are strong whole-pipeline integrity checks:
almost any indexing or centring bug breaks one of them.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AccessKind, EuclideanLogScoring, Relation, make_algorithm
from repro.core.bounds.geometry import solve_completion

SCORING = EuclideanLogScoring(1.0, 1.0, 1.0)


def rotation_matrix(angle: float) -> np.ndarray:
    c, s = np.cos(angle), np.sin(angle)
    return np.array([[c, -s], [s, c]])


def random_setup(seed: int, size: int = 12):
    rng = np.random.default_rng(seed)
    relations = [
        Relation(
            f"R{i}", rng.uniform(0.05, 1, size), rng.uniform(-2, 2, (size, 2)),
            sigma_max=1.0,
        )
        for i in range(2)
    ]
    return relations, rng.uniform(-1, 1, 2)


def transform_setup(relations, query, rot, shift):
    moved = [
        Relation(
            r.name,
            [t.score for t in r],
            np.array([rot @ t.vector + shift for t in r]),
            sigma_max=r.sigma_max,
        )
        for r in relations
    ]
    return moved, rot @ query + shift


angles = st.floats(min_value=-np.pi, max_value=np.pi, allow_nan=False)
shifts = st.tuples(
    st.floats(min_value=-5, max_value=5, allow_nan=False),
    st.floats(min_value=-5, max_value=5, allow_nan=False),
)


class TestScoreInvariance:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 100), angles, shifts)
    def test_combination_scores_invariant(self, seed, angle, shift):
        relations, query = random_setup(seed, size=4)
        rot = rotation_matrix(angle)
        moved, moved_query = transform_setup(relations, query, rot, np.array(shift))
        for t0, m0 in zip(relations[0], moved[0]):
            for t1, m1 in zip(relations[1], moved[1]):
                original = SCORING.score_combination((t0, t1), query)
                transformed = SCORING.score_combination((m0, m1), moved_query)
                assert transformed == pytest.approx(original, abs=1e-8)


class TestBoundInvariance:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 100), angles, shifts)
    def test_completion_bound_invariant(self, seed, angle, shift):
        rng = np.random.default_rng(seed)
        rot = rotation_matrix(angle)
        shift = np.array(shift)
        query = rng.uniform(-1, 1, 2)
        seen = {0: (float(rng.uniform(0.1, 1)), rng.uniform(-2, 2, 2))}
        delta = {1: float(abs(rng.normal()) + 0.1)}
        sigma = {1: 1.0}
        original = solve_completion(SCORING, 2, query, seen, delta, sigma)
        moved_seen = {0: (seen[0][0], rot @ seen[0][1] + shift)}
        transformed = solve_completion(
            SCORING, 2, rot @ query + shift, moved_seen, delta, sigma
        )
        assert transformed.value == pytest.approx(original.value, abs=1e-8)
        # The optimiser's positions transform covariantly.
        np.testing.assert_allclose(
            transformed.positions[1],
            rot @ original.positions[1] + shift,
            atol=1e-7,
        )


class TestAlgorithmInvariance:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 50), angles, shifts)
    def test_depths_and_ranking_invariant(self, seed, angle, shift):
        relations, query = random_setup(seed)
        rot = rotation_matrix(angle)
        moved, moved_query = transform_setup(relations, query, rot, np.array(shift))
        a = make_algorithm(
            "TBPA", relations, SCORING, query, 3, kind=AccessKind.DISTANCE
        ).run()
        b = make_algorithm(
            "TBPA", moved, SCORING, moved_query, 3, kind=AccessKind.DISTANCE
        ).run()
        assert a.depths == b.depths
        assert [c.key for c in a.combinations] == [c.key for c in b.combinations]
        assert [c.score for c in a.combinations] == pytest.approx(
            [c.score for c in b.combinations], abs=1e-7
        )

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 50))
    def test_score_scaling_of_wq_wmu(self, seed):
        """Scaling both distance weights by a constant is the same as
        scaling all coordinates by its square root (gauge freedom)."""
        relations, query = random_setup(seed)
        scoring_scaled = EuclideanLogScoring(1.0, 4.0, 4.0)
        scaled_rels = [
            Relation(
                r.name,
                [t.score for t in r],
                np.array([t.vector * 2.0 for t in r]),
                sigma_max=r.sigma_max,
            )
            for r in relations
        ]
        a = make_algorithm(
            "TBRR", relations, scoring_scaled, query, 3, kind=AccessKind.DISTANCE
        ).run()
        b = make_algorithm(
            "TBRR", scaled_rels, SCORING, query * 2.0, 3, kind=AccessKind.DISTANCE
        ).run()
        assert a.depths == b.depths
        assert [c.score for c in a.combinations] == pytest.approx(
            [c.score for c in b.combinations], abs=1e-7
        )
