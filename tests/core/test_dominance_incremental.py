"""Soundness regression for the incremental dominance front end (PR 8).

Properties pinned, layer by layer:

* **Class collapse is byte-exact where ties stay within classes, and
  verdict-exact everywhere** — with value-equality class ids
  (``canon``), :func:`prepare_dominance_pass` keeps one representative
  LP per class; its assembled ``(G, h)`` system is byte-identical to the
  plain per-candidate assembly of *every* owner in the class (the
  self/twin swap contributes an all-zero vacuous row either way) unless
  a cross-class probe-value tie permutes rows between twins, and fanning
  one verdict out to the whole class flags exactly the candidates the
  memoryless pass flags in both regimes.
* **Warm starts are verdict-preserving and stale-safe** — a cached LP
  basis that is out of range, singular, or the wrong length is rejected
  and the problem cold starts *bit-identically* to never having had a
  basis; a valid basis may move a centre's last bits but never flips an
  emptiness verdict.
* **Trivial constraint counts skip the tableau soundly** — zero- and
  single-constraint problems are answered analytically by the batch,
  bit-identical to the scalar :func:`chebyshev_center`.
* **QP hints are pure acceleration** — garbage or recycled active-set
  hints reorder the enumeration only; values and optima stay bitwise
  equal to the hint-free solve.
* **Engine-level identity** — on tie-heavy workloads the incremental
  strategy returns the same ranked answer, depths and bound as the
  memoryless batched kernel and the scalar reference, while its reuse
  counters actually fire.
"""

import numpy as np
import pytest

from repro.core import AccessKind, EuclideanLogScoring, make_algorithm
from repro.core.bounds.dominance import prepare_dominance_pass
from repro.core.relation import Relation
from repro.optim.qp import solve_bound_qp_masked
from repro.optim.simplex import (
    chebyshev_center,
    chebyshev_center_batch,
    polyhedron_feasible_point_batch,
)


def duplicated_family(rng, count, d, dup_frac=0.4, tie_free=False):
    """A random ``(b, c)`` family where ``dup_frac`` of the rows are
    exact byte-copies of earlier rows, plus the per-row value-equality
    class ids the engine would assign at append time.  ``tie_free``
    keeps ``c`` continuous so strength-order ties occur only *within*
    duplicate classes; the default coarse rounding also ties distinct
    classes (the adversarial tie-heavy regime)."""
    bs = rng.normal(size=(count, d))
    cs = rng.normal(size=count)
    if not tie_free:
        cs = np.round(cs, 1)  # coarse -> cross-class value ties too
    n_dup = max(2, int(count * dup_frac))
    src = rng.integers(0, count - n_dup, size=n_dup)
    for k, s in enumerate(src):
        bs[count - n_dup + k] = bs[s]
        cs[count - n_dup + k] = cs[s]
    ids: dict[bytes, int] = {}
    canon = np.empty(count, dtype=np.int64)
    for r in range(count):
        key = bs[r].tobytes() + cs[r].tobytes()
        canon[r] = ids.setdefault(key, len(ids))
    return bs, cs, canon


@pytest.mark.parametrize("seed", range(8))
def test_class_collapse_assembly_byte_identical(seed):
    """Every owner's class-representative (G, h) is byte-equal to the
    plain assembly the memoryless path would have built for that owner —
    guaranteed whenever strength-order ties stay within classes (twins
    adjacent in the stable order; cross-class ties only permute rows,
    covered by the verdict-level test below)."""
    rng = np.random.default_rng(seed)
    count = int(rng.integers(8, 40))
    d = int(rng.integers(1, 4))
    bs, cs, canon = duplicated_family(rng, count, d, tie_free=True)
    already = np.zeros(count, dtype=bool)
    # quad_coeff=0 disables the witness pre-pass: every live candidate is
    # pending, so the collapse is exercised on the full family.
    plain = prepare_dominance_pass(bs, cs, already, quad_coeff=0.0)
    coll = prepare_dominance_pass(bs, cs, already, quad_coeff=0.0, canon=canon)

    assert coll.owners_alpha is not None and coll.owners_class is not None
    # Same pending set, just factored through class representatives.
    assert np.array_equal(np.sort(coll.owners_alpha), np.sort(plain.alpha))
    assert coll.alpha.size == len(np.unique(canon))
    assert coll.alpha.size < plain.alpha.size  # duplicates were planted

    plain_row = {int(a): k for k, a in enumerate(plain.alpha)}
    for i, owner in enumerate(coll.owners_alpha):
        g_rep, h_rep = coll.assemble(int(coll.owners_class[i]))
        g_own, h_own = plain.assemble(plain_row[int(owner)])
        assert g_rep.tobytes() == g_own.tobytes()
        assert h_rep.tobytes() == h_own.tobytes()


@pytest.mark.parametrize("seed", range(6))
def test_class_collapse_verdicts_match_memoryless(seed):
    """Solving one LP per class and fanning the verdict out flags exactly
    the candidates the memoryless one-LP-per-candidate pass flags — on
    the adversarial family whose cross-class value ties permute rows
    between twins (the regime where byte-identity no longer holds)."""
    rng = np.random.default_rng(50 + seed)
    count = int(rng.integers(8, 36))
    bs, cs, canon = duplicated_family(rng, count, 2)
    already = np.zeros(count, dtype=bool)
    plain = prepare_dominance_pass(bs, cs, already, quad_coeff=0.0)
    coll = prepare_dominance_pass(bs, cs, already, quad_coeff=0.0, canon=canon)

    probs_p = [plain.assemble(k) for k in range(plain.alpha.size)]
    _, empty_p = polyhedron_feasible_point_batch(
        [g for g, _ in probs_p], [h for _, h in probs_p]
    )
    mask_p = plain.out.copy()
    mask_p[plain.alpha[empty_p]] = True

    probs_c = [coll.assemble(k) for k in range(coll.alpha.size)]
    _, empty_c = polyhedron_feasible_point_batch(
        [g for g, _ in probs_c], [h for _, h in probs_c]
    )
    mask_c = coll.out.copy()
    mask_c[coll.owners_alpha[empty_c[coll.owners_class]]] = True

    assert np.array_equal(mask_c, mask_p)


@pytest.mark.parametrize("runner", ["scalar", "batched"])
def test_cached_witness_invalidated_by_new_competitor(runner):
    """A cached witness is never trusted after a constraint it violates
    arrives: the pre-pass re-checks it against the *current* competitor
    field, so a newly appended dominator flags the candidate on the next
    pass despite its stored pass-1 witness."""
    from repro.core.bounds.dominance import dominated_mask, dominated_mask_batch

    solve = dominated_mask if runner == "scalar" else dominated_mask_batch
    # Pass 1: A (b=0, c=0) wins at its own optimum against the weak B.
    bs = np.array([[0.0], [1.0]])
    cs = np.array([0.0, 5.0])
    witnesses = np.full((3, 1), np.nan)
    out, _ = solve(
        bs, cs, np.zeros(2, dtype=bool), quad_coeff=1.0,
        witnesses=witnesses[:2],
    )
    assert not out[0]
    assert not np.isnan(witnesses[0, 0])  # A's witness was cached
    # Pass 2: C (b=0, c=-1) beats A everywhere — A's region is now empty.
    bs2 = np.vstack([bs, [[0.0]]])
    cs2 = np.append(cs, -1.0)
    out2, _ = solve(
        bs2, cs2, np.append(out, False), quad_coeff=1.0, witnesses=witnesses
    )
    assert out2[0], "stale witness shielded a now-dominated candidate"
    assert not out2[2]


def random_polyhedra(rng, n_problems, d=2):
    """Mixed feasible/infeasible systems with 2..6 rows each."""
    gs, hs = [], []
    for _ in range(n_problems):
        m = int(rng.integers(2, 7))
        g = rng.normal(size=(m, d))
        if rng.random() < 0.4:  # force emptiness: x1 <= -1 and -x1 <= -1
            g[0] = 0.0
            g[0, 0] = 1.0
            g[1] = 0.0
            g[1, 0] = -1.0
            h = rng.normal(size=m)
            h[0] = -1.0
            h[1] = -1.0
        else:
            h = rng.normal(size=m) + 1.0
        gs.append(g)
        hs.append(h)
    return gs, hs


@pytest.mark.parametrize("seed", range(4))
def test_stale_bases_cold_start_bitwise(seed):
    """Garbage bases — wrong length, out of range, or singular — are all
    rejected; centres and radii match the no-bases cold path bit for bit."""
    rng = np.random.default_rng(200 + seed)
    gs, hs = random_polyhedra(rng, 20)
    cold_c, cold_r = chebyshev_center_batch(gs, hs)
    garbage = []
    for k, g in enumerate(gs):
        rows = g.shape[0] + 1
        if k % 4 == 0:
            garbage.append(None)
        elif k % 4 == 1:
            garbage.append(np.zeros(rows - 1, dtype=np.int64))  # wrong length
        elif k % 4 == 2:
            garbage.append(np.full(rows, 10**6, dtype=np.int64))  # out of range
        else:
            garbage.append(np.zeros(rows, dtype=np.int64))  # singular (dup col)
    warm_c, warm_r = chebyshev_center_batch(gs, hs, bases=garbage)
    assert np.array_equal(cold_c, warm_c, equal_nan=True)
    assert np.array_equal(cold_r, warm_r)


@pytest.mark.parametrize("seed", range(4))
def test_valid_warm_bases_preserve_verdicts(seed):
    """Re-solving with the previously optimal bases warm starts (stats
    prove it) and keeps every emptiness verdict identical."""
    rng = np.random.default_rng(300 + seed)
    gs, hs = random_polyhedra(rng, 24)
    cold_c, cold_r, bases = chebyshev_center_batch(gs, hs, return_bases=True)
    stats: dict = {}
    warm_c, warm_r = chebyshev_center_batch(gs, hs, bases=bases, stats=stats)
    assert stats.get("lp_warm_starts", 0) > 0
    assert np.array_equal(cold_r < 0.0, warm_r < 0.0)
    # Non-empty problems keep a finite centre either way.
    ok = cold_r >= 0.0
    assert np.isfinite(warm_c[ok]).all()


def test_trivial_constraint_counts_match_scalar():
    """m=0 (all rows stripped), m=1 (analytic centre) and the
    contradictory zero-row certificate are answered without a tableau,
    bit-identical to the scalar path."""
    d = 3
    gs = [
        np.zeros((2, d)),                       # all rows strip -> whole space
        np.array([[1.0, -2.0, 0.5]]),           # one half-space
        np.vstack([np.zeros(d), [1.0, 0.0, 0.0]]),  # zero row + real row
        np.zeros((1, d)),                       # zero row with h < 0: empty
    ]
    hs = [
        np.array([0.5, 0.0]),
        np.array([-3.0]),
        np.array([1.0, 2.0]),
        np.array([-1.0]),
    ]
    b_centers, b_radii = chebyshev_center_batch(gs, hs)
    for i, (g, h) in enumerate(zip(gs, hs)):
        center, radius = chebyshev_center(g, h)
        if center is None:
            assert np.isnan(b_centers[i]).all()
            assert b_radii[i] == -np.inf
        else:
            assert b_centers[i].tobytes() == np.asarray(center).tobytes()
            assert b_radii[i] == radius


@pytest.mark.parametrize("seed", range(4))
def test_qp_hints_bit_identical(seed):
    """Hints — absent, garbage, or recycled from ``return_active`` —
    never change a masked bound-QP value or optimum by a single bit."""
    rng = np.random.default_rng(400 + seed)
    n = 3
    B = 40
    a = rng.normal(size=(n, n))
    h = a.T @ a + np.eye(n) * 0.5
    fixed_mask = rng.random((B, n)) < 0.4
    lower_mask = (rng.random((B, n)) < 0.5) & ~fixed_mask
    fixed_vals = rng.normal(size=(B, n))
    lower_vals = rng.normal(size=(B, n))

    v0, t0, act = solve_bound_qp_masked(
        h, fixed_mask, fixed_vals, lower_mask, lower_vals, return_active=True
    )
    garbage = rng.integers(-1, 2**n, size=B).astype(np.int64)
    for hints in (garbage, act, np.full(B, -1, dtype=np.int64)):
        v, t = solve_bound_qp_masked(
            h, fixed_mask, fixed_vals, lower_mask, lower_vals, hints=hints
        )
        assert v.tobytes() == v0.tobytes()
        assert t.tobytes() == t0.tobytes()


def tie_heavy_problem(n_relations=3, n_tuples=90, dims=2, levels=4, seed=0):
    """Miniature of the benchmark's tie-heavy workload: quantised
    vectors/scores so streams stall and exact duplicates occur."""
    rng = np.random.default_rng(seed)
    side = (n_tuples / 50.0) ** (1.0 / dims)
    relations = []
    for i in range(n_relations):
        vectors = rng.uniform(-side / 2, side / 2, size=(n_tuples, dims))
        grid = np.linspace(-side / 2, side / 2, levels)
        vectors = grid[np.abs(vectors[..., None] - grid).argmin(axis=-1)]
        scores = rng.choice(np.linspace(0.1, 1.0, levels), size=n_tuples)
        relations.append(Relation(f"R{i + 1}", scores, vectors, sigma_max=1.0))
    return relations, np.zeros(dims)


def _run(relations, query, *, algo, batch_kernel, incremental):
    scoring = EuclideanLogScoring(1.0, 1.0, 1.0)
    return make_algorithm(
        algo, relations, scoring, query, 5,
        kind=AccessKind.DISTANCE, pull_block=4, dominance_period=2,
        batch_kernel=batch_kernel, incremental=incremental,
    ).run()


def _same_answer(a, b):
    return (
        a.depths == b.depths
        and a.bound == b.bound  # bitwise
        and [(c.key, c.score) for c in a.combinations]
        == [(c.key, c.score) for c in b.combinations]
    )


@pytest.mark.parametrize("algo", ["TBPA", "TBRR"])
@pytest.mark.parametrize("seed", [0, 1])
def test_engine_three_way_identity(algo, seed):
    """Incremental == memoryless batched == scalar, on the tie-heavy
    workload, for both pulling strategies."""
    relations, query = tie_heavy_problem(seed=seed)
    inc = _run(relations, query, algo=algo, batch_kernel=True, incremental=True)
    bat = _run(
        relations, query, algo=algo, batch_kernel=True, incremental=False
    )
    sca = _run(
        relations, query, algo=algo, batch_kernel=False, incremental=True
    )
    assert inc.completed and bat.completed and sca.completed
    assert _same_answer(inc, bat)
    assert _same_answer(inc, sca)


def test_engine_reuse_counters_fire():
    """The incremental machinery does real work on the tie-heavy
    workload: duplicates collapse, cached witnesses answer candidates,
    and the solved-LP count drops below the memoryless kernel's."""
    relations, query = tie_heavy_problem(n_tuples=120, seed=2)
    inc = _run(
        relations, query, algo="TBPA", batch_kernel=True, incremental=True
    )
    bat = _run(
        relations, query, algo="TBPA", batch_kernel=True, incremental=False
    )
    assert inc.counters["dominance_lp_deduped"] > 0
    assert inc.counters["dominance_witness_hits"] > 0
    assert inc.counters["lp_solves"] < bat.counters["lp_solves"]
    # The memoryless kernel never touches the reuse counters.
    assert bat.counters["dominance_lp_reused"] == 0
    assert bat.counters["dominance_lp_deduped"] == 0
