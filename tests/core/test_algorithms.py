"""End-to-end correctness of CBRR/CBPA/TBRR/TBPA against the brute-force
oracle, on randomised instances and both access kinds, plus the paper's
optimality relations (Theorem 3.5: TBPA never deeper than TBRR)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ALGORITHMS,
    AccessKind,
    EuclideanLogScoring,
    LinearScoring,
    Relation,
    brute_force_topk,
    make_algorithm,
)


def random_instance(rng, n_rel, sizes, d):
    relations = []
    for i in range(n_rel):
        size = sizes[i]
        scores = rng.uniform(0.05, 1.0, size=size)
        vectors = rng.uniform(-2.0, 2.0, size=(size, d))
        relations.append(Relation(f"R{i+1}", scores, vectors, sigma_max=1.0))
    query = rng.uniform(-1.0, 1.0, size=d)
    return relations, query


def assert_same_topk(got, expected):
    """Scores must match exactly in order; keys may differ only on ties."""
    assert len(got) == len(expected)
    for g, e in zip(got, expected):
        assert g.score == pytest.approx(e.score, abs=1e-9)
    # With the deterministic tie-break, keys must be identical too.
    assert [g.key for g in got] == [e.key for e in expected]


ALGO_NAMES = sorted(ALGORITHMS)


class TestAgainstBruteForceDistance:
    @pytest.mark.parametrize("algo", ALGO_NAMES)
    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(2, 3),
        st.integers(1, 3),
        st.integers(1, 5),
        st.randoms(use_true_random=False),
    )
    def test_topk_matches_oracle(self, algo, n_rel, d, k, rnd):
        rng = np.random.default_rng(rnd.randint(0, 2**32 - 1))
        sizes = rng.integers(3, 9, size=n_rel)
        relations, query = random_instance(rng, n_rel, sizes, d)
        scoring = EuclideanLogScoring(1.0, 1.0, 1.0)
        k = min(k, int(np.prod(sizes)))
        expected = brute_force_topk(relations, scoring, query, k)
        engine = make_algorithm(
            algo, relations, scoring, query, k, kind=AccessKind.DISTANCE
        )
        result = engine.run()
        assert_same_topk(result.combinations, expected)

    @pytest.mark.parametrize("algo", ALGO_NAMES)
    def test_k_exceeding_cross_product(self, algo):
        rng = np.random.default_rng(0)
        relations, query = random_instance(rng, 2, [2, 2], 2)
        scoring = EuclideanLogScoring()
        engine = make_algorithm(
            algo, relations, scoring, query, 4, kind=AccessKind.DISTANCE
        )
        result = engine.run()
        expected = brute_force_topk(relations, scoring, query, 4)
        assert_same_topk(result.combinations, expected)

    @pytest.mark.parametrize("algo", ALGO_NAMES)
    def test_single_relation(self, algo):
        rng = np.random.default_rng(1)
        relations, query = random_instance(rng, 1, [10], 2)
        scoring = EuclideanLogScoring()
        engine = make_algorithm(
            algo, relations, scoring, query, 3, kind=AccessKind.DISTANCE
        )
        result = engine.run()
        expected = brute_force_topk(relations, scoring, query, 3)
        assert_same_topk(result.combinations, expected)

    @pytest.mark.parametrize("algo", ALGO_NAMES)
    def test_weighted_scoring_variants(self, algo):
        rng = np.random.default_rng(2)
        relations, query = random_instance(rng, 2, [8, 8], 2)
        for scoring in (
            EuclideanLogScoring(2.0, 0.5, 3.0),
            EuclideanLogScoring(0.0, 1.0, 1.0),
            LinearScoring(1.0, 1.0, 0.0),
        ):
            expected = brute_force_topk(relations, scoring, query, 5)
            result = make_algorithm(
                algo, relations, scoring, query, 5, kind=AccessKind.DISTANCE
            ).run()
            assert_same_topk(result.combinations, expected)


class TestAgainstBruteForceScore:
    @pytest.mark.parametrize("algo", ALGO_NAMES)
    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(2, 3),
        st.integers(1, 3),
        st.integers(1, 4),
        st.randoms(use_true_random=False),
    )
    def test_topk_matches_oracle(self, algo, n_rel, d, k, rnd):
        rng = np.random.default_rng(rnd.randint(0, 2**32 - 1))
        sizes = rng.integers(3, 8, size=n_rel)
        relations, query = random_instance(rng, n_rel, sizes, d)
        scoring = EuclideanLogScoring(1.0, 1.0, 1.0)
        k = min(k, int(np.prod(sizes)))
        expected = brute_force_topk(relations, scoring, query, k)
        result = make_algorithm(
            algo, relations, scoring, query, k, kind=AccessKind.SCORE
        ).run()
        assert_same_topk(result.combinations, expected)


class TestBoundAndIndexVariants:
    @pytest.mark.parametrize("bound_period", [2, 5])
    def test_bound_period_preserves_correctness(self, bound_period):
        rng = np.random.default_rng(3)
        relations, query = random_instance(rng, 2, [12, 12], 2)
        scoring = EuclideanLogScoring()
        expected = brute_force_topk(relations, scoring, query, 5)
        result = make_algorithm(
            "TBPA", relations, scoring, query, 5,
            kind=AccessKind.DISTANCE, bound_period=bound_period,
        ).run()
        assert_same_topk(result.combinations, expected)

    def test_bound_period_reads_no_less(self):
        rng = np.random.default_rng(4)
        relations, query = random_instance(rng, 2, [25, 25], 2)
        scoring = EuclideanLogScoring()
        exact = make_algorithm(
            "TBRR", relations, scoring, query, 5, kind=AccessKind.DISTANCE
        ).run()
        periodic = make_algorithm(
            "TBRR", relations, scoring, query, 5,
            kind=AccessKind.DISTANCE, bound_period=4,
        ).run()
        assert periodic.sum_depths >= exact.sum_depths

    def test_kdtree_access_equals_sorted_access(self):
        rng = np.random.default_rng(5)
        relations, query = random_instance(rng, 2, [30, 30], 3)
        scoring = EuclideanLogScoring()
        plain = make_algorithm(
            "TBPA", relations, scoring, query, 5, kind=AccessKind.DISTANCE
        ).run()
        indexed = make_algorithm(
            "TBPA", relations, scoring, query, 5,
            kind=AccessKind.DISTANCE, use_index=True,
        ).run()
        assert_same_topk(indexed.combinations, plain.combinations)
        assert indexed.depths == plain.depths

    @pytest.mark.parametrize("period", [1, 4])
    def test_dominance_preserves_correctness(self, period):
        rng = np.random.default_rng(6)
        relations, query = random_instance(rng, 2, [15, 15], 2)
        scoring = EuclideanLogScoring()
        expected = brute_force_topk(relations, scoring, query, 5)
        result = make_algorithm(
            "TBPA", relations, scoring, query, 5,
            kind=AccessKind.DISTANCE, dominance_period=period,
        ).run()
        assert_same_topk(result.combinations, expected)

    def test_dominance_does_not_change_depths(self):
        """Dominated partial combinations can never carry t_M, so pruning
        them must not alter the stopping point."""
        rng = np.random.default_rng(7)
        relations, query = random_instance(rng, 2, [20, 20], 2)
        scoring = EuclideanLogScoring()
        plain = make_algorithm(
            "TBRR", relations, scoring, query, 5, kind=AccessKind.DISTANCE
        ).run()
        pruned = make_algorithm(
            "TBRR", relations, scoring, query, 5,
            kind=AccessKind.DISTANCE, dominance_period=1,
        ).run()
        assert pruned.depths == plain.depths
        assert pruned.counters["entries_dominated"] >= 0


class TestOptimalityRelations:
    """Empirical checks of the paper's optimality statements."""

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 5), st.randoms(use_true_random=False))
    def test_theorem_3_5_tbpa_never_deeper_than_tbrr(self, k, rnd):
        rng = np.random.default_rng(rnd.randint(0, 2**32 - 1))
        relations, query = random_instance(rng, 2, [20, 20], 2)
        scoring = EuclideanLogScoring()
        tbrr = make_algorithm(
            "TBRR", relations, scoring, query, k, kind=AccessKind.DISTANCE
        ).run()
        tbpa = make_algorithm(
            "TBPA", relations, scoring, query, k, kind=AccessKind.DISTANCE
        ).run()
        for i in range(2):
            assert tbpa.depths[i] <= tbrr.depths[i]

    @settings(max_examples=15, deadline=None)
    @given(st.integers(1, 5), st.randoms(use_true_random=False))
    def test_tight_never_reads_more_than_corner_under_rr(self, k, rnd):
        """Tight bounds stop no later than corner bounds on the same pull
        sequence (round-robin makes the sequences comparable)."""
        rng = np.random.default_rng(rnd.randint(0, 2**32 - 1))
        relations, query = random_instance(rng, 2, [20, 20], 2)
        scoring = EuclideanLogScoring()
        cb = make_algorithm(
            "CBRR", relations, scoring, query, k, kind=AccessKind.DISTANCE
        ).run()
        tb = make_algorithm(
            "TBRR", relations, scoring, query, k, kind=AccessKind.DISTANCE
        ).run()
        assert tb.sum_depths <= cb.sum_depths

    def test_run_result_metadata(self):
        rng = np.random.default_rng(8)
        relations, query = random_instance(rng, 2, [10, 10], 2)
        scoring = EuclideanLogScoring()
        result = make_algorithm(
            "TBPA", relations, scoring, query, 3, kind=AccessKind.DISTANCE
        ).run()
        assert result.sum_depths == sum(result.depths)
        assert result.total_seconds > 0
        assert result.bound_seconds >= 0
        assert result.combinations_formed >= len(result.combinations)
        assert result.counters["qp_solves"] > 0
