"""Behavioural tests of the TightBound bookkeeping (Algorithms 2 and 3):
monotonicity, tightness against continuations, dead subsets, caching and
the dominance hook."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AccessKind,
    CosineProximityScoring,
    EuclideanLogScoring,
    Relation,
    TightBound,
    TopKBuffer,
)
from repro.core.access import open_streams
from repro.core.bounds.base import EngineState


def make_state(relations, kind, query, k=3):
    return EngineState(
        scoring=EuclideanLogScoring(1.0, 1.0, 1.0),
        kind=kind,
        query=query,
        streams=open_streams(relations, kind, query),
        k=k,
        output=TopKBuffer(k),
    )


def random_relations(seed, n=2, size=15, d=2):
    rng = np.random.default_rng(seed)
    return [
        Relation(
            f"R{i}",
            rng.uniform(0.05, 1.0, size),
            rng.uniform(-2, 2, (size, d)),
            sigma_max=1.0,
        )
        for i in range(n)
    ], rng.uniform(-1, 1, d)


def round_robin_updates(state, bound, rounds):
    """Pull round-robin, returning the bound value after every update."""
    values = []
    for _ in range(rounds):
        for i, s in enumerate(state.streams):
            tau = s.next()
            if tau is not None:
                values.append(bound.update(state, i, tau))
    return values


class TestBoundMonotonicity:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 500), st.sampled_from([AccessKind.DISTANCE, AccessKind.SCORE]))
    def test_bound_never_increases(self, seed, kind):
        relations, query = random_relations(seed)
        state = make_state(relations, kind, query)
        bound = TightBound()
        values = round_robin_updates(state, bound, rounds=6)
        for a, b in zip(values, values[1:]):
            assert b <= a + 1e-9

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 500))
    def test_tight_below_corner(self, seed):
        """The tight bound never exceeds the corner bound (it optimises
        over strictly more constraints)."""
        from repro.core import CornerBound

        relations, query = random_relations(seed)
        state_t = make_state(relations, AccessKind.DISTANCE, query)
        state_c = make_state(relations, AccessKind.DISTANCE, query)
        tight, corner = TightBound(), CornerBound()
        tv = round_robin_updates(state_t, tight, rounds=4)
        cv = round_robin_updates(state_c, corner, rounds=4)
        for t, c in zip(tv, cv):
            assert t <= c + 1e-7


class TestTightness:
    """Definition 2.2: with >= K seen combinations, the bound must be a
    potential score — achievable by a continuation.  We verify it is
    attained by the witness the optimiser provides, via brute force over
    an explicitly extended instance."""

    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 200))
    def test_bound_upper_bounds_unseen_combinations(self, seed):
        relations, query = random_relations(seed, n=2, size=10)
        state = make_state(relations, AccessKind.DISTANCE, query)
        bound = TightBound()
        t = round_robin_updates(state, bound, rounds=3)[-1]
        scoring = state.scoring
        # Every *actual* combination with at least one unseen tuple must
        # score at most t.
        seen_ids = [set(tt.tid for tt in s.seen) for s in state.streams]
        for t0 in relations[0]:
            for t1 in relations[1]:
                unseen = t0.tid not in seen_ids[0] or t1.tid not in seen_ids[1]
                if unseen:
                    assert (
                        scoring.score_combination((t0, t1), query) <= t + 1e-7
                    )


class TestDeadSubsets:
    def test_exhausted_relation_kills_subsets(self):
        r1 = Relation("R1", [1.0, 0.9], [[0.1], [0.2]], sigma_max=1.0)
        r2 = Relation("R2", [1.0], [[0.3]], sigma_max=1.0)  # exhausts first
        state = make_state([r1, r2], AccessKind.DISTANCE, np.zeros(1))
        bound = TightBound()
        # Pull everything.
        for i, s in enumerate(state.streams):
            while True:
                tau = s.next()
                if tau is None:
                    break
                t = bound.update(state, i, tau)
        # All relations exhausted: no unseen combination exists.
        assert t == float("-inf")

    def test_partially_exhausted(self):
        r1 = Relation("R1", [1.0, 0.9, 0.8], [[0.1], [0.2], [5.0]], sigma_max=1.0)
        r2 = Relation("R2", [1.0], [[0.3]], sigma_max=1.0)
        state = make_state([r1, r2], AccessKind.DISTANCE, np.zeros(1))
        bound = TightBound()
        t = None
        state.streams[1].next()
        t = bound.update(state, 1, state.streams[1].seen[-1])
        state.streams[0].next()
        t = bound.update(state, 0, state.streams[0].seen[-1])
        # R2 exhausted: only subsets containing R2's index stay alive, so
        # the bound reflects completions with unseen tuples of R1 only.
        assert np.isfinite(t)
        pots = bound.potentials(state)
        assert np.isfinite(pots[0])
        assert pots[1] == float("-inf")


class TestCachingEquivalence:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(0, 300))
    def test_batched_sync_equals_per_pull_updates(self, seed):
        """Updating once after several pulls must give the same bound as
        updating after every pull (the sync logic behind bound_period)."""
        relations, query = random_relations(seed, n=2, size=12)

        state_a = make_state(relations, AccessKind.DISTANCE, query)
        bound_a = TightBound()
        per_pull = round_robin_updates(state_a, bound_a, rounds=4)[-1]

        state_b = make_state(relations, AccessKind.DISTANCE, query)
        bound_b = TightBound()
        last = None
        for _ in range(4):
            for i, s in enumerate(state_b.streams):
                last = (i, s.next())
        batched = bound_b.update(state_b, *last)
        assert batched == pytest.approx(per_pull, abs=1e-9)

    def test_revalidation_counter_grows(self):
        relations, query = random_relations(11, n=2, size=15)
        state = make_state(relations, AccessKind.DISTANCE, query)
        bound = TightBound()
        round_robin_updates(state, bound, rounds=6)
        # Some cached optima must have been invalidated by growing deltas.
        assert bound.counters.entries_created > 0
        assert bound.counters.qp_solves >= bound.counters.entries_created


class TestDominanceIntegration:
    def test_dominated_entries_never_raise_bound(self):
        relations, query = random_relations(13, n=2, size=15)
        state_plain = make_state(relations, AccessKind.DISTANCE, query)
        plain = TightBound()
        v_plain = round_robin_updates(state_plain, plain, rounds=6)

        state_dom = make_state(relations, AccessKind.DISTANCE, query)
        dom = TightBound(dominance_period=2)
        v_dom = round_robin_updates(state_dom, dom, rounds=6)
        # Dominance must not change the bound value at all (dominated
        # partial combinations can never carry the max).
        assert v_dom == pytest.approx(v_plain, abs=1e-7)

    def test_dominance_flags_some_entries(self):
        relations, query = random_relations(17, n=2, size=20)
        state = make_state(relations, AccessKind.DISTANCE, query)
        bound = TightBound(dominance_period=1)
        round_robin_updates(state, bound, rounds=8)
        assert bound.counters.entries_dominated > 0
        assert bound.counters.dominance_seconds > 0

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            TightBound(dominance_period=0)


class TestGuards:
    def test_too_many_relations_rejected(self):
        relations = [
            Relation(f"R{i}", [1.0], [[float(i)]], sigma_max=1.0) for i in range(11)
        ]
        state = make_state(relations, AccessKind.DISTANCE, np.zeros(1))
        bound = TightBound()
        state.streams[0].next()
        with pytest.raises(ValueError, match="2\\^n"):
            bound.update(state, 0, state.streams[0].seen[-1])

    def test_non_quadratic_scoring_rejected(self):
        relations, query = random_relations(0)
        state = make_state(relations, AccessKind.DISTANCE, query)
        state.scoring = CosineProximityScoring()
        bound = TightBound()
        state.streams[0].next()
        with pytest.raises(TypeError, match="QuadraticFormScoring"):
            bound.update(state, 0, state.streams[0].seen[-1])


class TestScoreAccessAlgorithm3:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 300))
    def test_single_incumbent_per_subset(self, seed):
        relations, query = random_relations(seed, n=2, size=12)
        state = make_state(relations, AccessKind.SCORE, query)
        bound = TightBound()
        round_robin_updates(state, bound, rounds=5)
        for sub in bound._subsets:
            assert sub.count <= 1

    @settings(max_examples=15, deadline=None)
    @given(st.integers(0, 300))
    def test_score_bound_upper_bounds_unseen(self, seed):
        relations, query = random_relations(seed, n=2, size=10)
        state = make_state(relations, AccessKind.SCORE, query)
        bound = TightBound()
        t = round_robin_updates(state, bound, rounds=3)[-1]
        scoring = state.scoring
        seen_ids = [set(tt.tid for tt in s.seen) for s in state.streams]
        for t0 in relations[0]:
            for t1 in relations[1]:
                if t0.tid not in seen_ids[0] or t1.tid not in seen_ids[1]:
                    assert scoring.score_combination((t0, t1), query) <= t + 1e-7
