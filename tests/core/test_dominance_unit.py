"""Unit tests for the dominance mask (Section 3.2.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds.dominance import dominated_mask


class TestDominatedMask:
    def test_single_entry_never_dominated(self):
        mask, lps = dominated_mask(
            np.array([[1.0, 0.0]]), np.array([0.0]),
            np.array([False]), quad_coeff=1.0,
        )
        assert not mask[0]
        assert lps == 0

    def test_identical_b_smaller_c_wins(self):
        # Same direction, alpha strictly better constant: beta dominated.
        bs = np.array([[1.0, 0.0], [1.0, 0.0]])
        cs = np.array([0.0, 1.0])
        mask, _ = dominated_mask(bs, cs, np.array([False, False]), quad_coeff=1.0)
        assert list(mask) == [False, True]

    def test_sandwiched_entry_dominated(self):
        # In 1-D with b in {-1, 0, +1} and equal c, the middle entry's
        # region {y: 0 <= -2y + c.. } ... construct explicitly: entry 1
        # never strictly beats both extremes anywhere.
        bs = np.array([[-1.0], [0.0], [1.0]])
        # Give the middle a worse constant so its region is empty.
        cs = np.array([0.0, 2.0, 0.0])
        mask, _ = dominated_mask(bs, cs, np.array([False] * 3), quad_coeff=1.0)
        assert mask[1]
        assert not mask[0] and not mask[2]

    def test_already_dominated_preserved_and_excluded(self):
        bs = np.array([[1.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
        cs = np.array([0.0, -1.0, 0.0])
        pre = np.array([False, True, False])  # entry 1 pre-flagged
        mask, _ = dominated_mask(bs, cs, pre, quad_coeff=1.0)
        # Entry 1 stays flagged; entry 0 must NOT be killed by the
        # excluded entry 1 (which would otherwise dominate it).
        assert mask[1]
        assert not mask[0]

    def test_distinct_directions_all_survive(self):
        # Symmetric star: each direction has its own winning half-space.
        bs = np.array([[1.0, 0.0], [-1.0, 0.0], [0.0, 1.0], [0.0, -1.0]])
        cs = np.zeros(4)
        mask, _ = dominated_mask(bs, cs, np.array([False] * 4), quad_coeff=1.0)
        assert not mask.any()

    @settings(max_examples=40, deadline=None)
    @given(st.integers(2, 10), st.integers(1, 3), st.randoms(use_true_random=False))
    def test_never_flags_the_best_at_any_point(self, u, d, rnd):
        """Soundness: the winner at any probe point is not dominated."""
        rng = np.random.default_rng(rnd.randint(0, 2**32 - 1))
        bs = rng.normal(size=(u, d))
        cs = rng.normal(size=u)
        mask, _ = dominated_mask(
            bs, cs, np.zeros(u, dtype=bool), quad_coeff=1.0
        )
        for _ in range(20):
            y = rng.normal(size=d) * 3
            g = 2.0 * bs @ y + cs
            winner = int(np.argmin(g))
            # Unique winner => certainly non-dominated.
            if (g < g[winner] + 1e-9).sum() == 1:
                assert not mask[winner]

    @settings(max_examples=20, deadline=None)
    @given(st.integers(3, 8), st.randoms(use_true_random=False))
    def test_flagged_entries_are_truly_covered(self, u, rnd):
        """Completeness check of the flagging itself: a dominated entry
        must lose (non-strictly) to someone at every probe point."""
        rng = np.random.default_rng(rnd.randint(0, 2**32 - 1))
        bs = rng.normal(size=(u, 2))
        cs = rng.normal(size=u)
        mask, _ = dominated_mask(bs, cs, np.zeros(u, dtype=bool), quad_coeff=1.0)
        live = np.flatnonzero(~mask)
        for alpha in np.flatnonzero(mask):
            for _ in range(50):
                y = rng.normal(size=2) * 4
                g = 2.0 * bs @ y + cs
                assert g[live].min() <= g[alpha] + 1e-6
