"""Tests for the random-access (anchor-and-probe) extension."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    AccessKind,
    CosineProximityScoring,
    EuclideanLogScoring,
    Relation,
    brute_force_topk,
    make_algorithm,
)
from repro.core.probing import ProbeRankJoin


def random_instance(seed, n_rel=2, size=25, d=2):
    rng = np.random.default_rng(seed)
    relations = [
        Relation(
            f"R{i}", rng.uniform(0.05, 1.0, size), rng.uniform(-2, 2, (size, d)),
            sigma_max=1.0,
        )
        for i in range(n_rel)
    ]
    return relations, rng.uniform(-1, 1, d)


class TestValidation:
    def test_needs_two_relations(self):
        relations, query = random_instance(0, n_rel=1)
        with pytest.raises(ValueError, match="two relations"):
            ProbeRankJoin(relations, EuclideanLogScoring(), query, 1)

    def test_needs_quadratic_scoring(self):
        relations, query = random_instance(0)
        with pytest.raises(TypeError, match="QuadraticFormScoring"):
            ProbeRankJoin(relations, CosineProximityScoring(), query, 1)

    def test_bad_k(self):
        relations, query = random_instance(0)
        with pytest.raises(ValueError, match="K"):
            ProbeRankJoin(relations, EuclideanLogScoring(), query, 0)


class TestCorrectness:
    @settings(max_examples=30, deadline=None)
    @given(
        st.integers(2, 3),
        st.integers(1, 5),
        st.randoms(use_true_random=False),
    )
    def test_matches_oracle(self, n_rel, k, rnd):
        seed = rnd.randint(0, 2**32 - 1)
        relations, query = random_instance(seed, n_rel=n_rel, size=12)
        scoring = EuclideanLogScoring(1.0, 1.0, 1.0)
        expected = brute_force_topk(relations, scoring, query, k)
        result = ProbeRankJoin(relations, scoring, query, k).run()
        assert [c.score for c in result.combinations] == pytest.approx(
            [c.score for c in expected]
        )

    @pytest.mark.parametrize("weights", [(1.0, 2.0, 0.5), (0.0, 1.0, 1.0)])
    def test_weight_variants(self, weights):
        relations, query = random_instance(7, size=15)
        scoring = EuclideanLogScoring(*weights)
        expected = brute_force_topk(relations, scoring, query, 3)
        result = ProbeRankJoin(relations, scoring, query, 3).run()
        assert [c.score for c in result.combinations] == pytest.approx(
            [c.score for c in expected]
        )

    def test_zero_wmu_disables_radius_pruning_but_stays_correct(self):
        relations, query = random_instance(8, size=10)
        scoring = EuclideanLogScoring(1.0, 1.0, 0.0)
        expected = brute_force_topk(relations, scoring, query, 3)
        result = ProbeRankJoin(relations, scoring, query, 3).run()
        assert [c.score for c in result.combinations] == pytest.approx(
            [c.score for c in expected]
        )


class TestAccessAccounting:
    def test_counts_populated(self):
        relations, query = random_instance(9, size=30)
        result = ProbeRankJoin(relations, EuclideanLogScoring(), query, 3).run()
        assert result.sorted_accesses >= 1
        assert result.probes >= result.sorted_accesses
        assert result.total_accesses == result.sorted_accesses + result.random_accesses

    def test_anchor_side_reads_less_than_sorted_only(self):
        """The whole point of random access: with a strong mutual-
        proximity weight, probes keep the anchor depth below what the
        sorted-only algorithms need in total."""
        rng = np.random.default_rng(10)
        # Clustered data: co-located pairs exist, so the probe finds the
        # winners quickly and the radius collapses.
        from repro.data import clustered_problem

        relations, query = clustered_problem(n_tuples=200, seed=10)
        scoring = EuclideanLogScoring(1.0, 1.0, 4.0)
        probe = ProbeRankJoin(relations, scoring, query, 5).run()
        sorted_only = make_algorithm(
            "TBPA", relations, scoring, query, 5, kind=AccessKind.DISTANCE
        ).run()
        assert [c.score for c in probe.combinations] == pytest.approx(
            [c.score for c in sorted_only.combinations]
        )
        assert probe.sorted_accesses < sorted_only.sum_depths
