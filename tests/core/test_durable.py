"""Differential and crash-consistency tests for the durable tier.

The acceptance bar: relations served from disk are *bit-identical* to
in-memory runs — same top-K combination keys, same float scores, same
depths and bounds — for S in {1, 2, 4} shards, both access kinds, and
all three disk paths (hot memmap-backed shards, evicted shards paged
back window by window, and a freshly restarted process re-opening the
store).  Plus the durability protocol itself: a writer killed anywhere
mid-``persist`` leaves the previous generation fully readable — no torn
columnar reads.
"""

import numpy as np
import pytest

from repro.core import (
    AccessKind,
    EuclideanLogScoring,
    Relation,
    ShardedRelation,
    make_algorithm,
)
from repro.core.durable import (
    DurableRelation,
    ShardCatalog,
    ShardFile,
    open_relation,
    persist_relation,
    write_shard_file,
)
from repro.core.durable.backend import LazyTuples
from repro.data import (
    SyntheticConfig,
    generate_problem,
    load_problem_durable,
    save_problem_durable,
)

SHARD_COUNTS = (1, 2, 4)


def ranked(result):
    return (
        [(c.key, c.score) for c in result.combinations],
        tuple(result.depths),
        result.bound,
    )


def make_problem(seed, n_relations=2, size=40, dims=2):
    return generate_problem(
        SyntheticConfig(
            n_relations=n_relations, dims=dims, density=50.0, skew=1.0,
            n_tuples=size, seed=seed,
        )
    )


def shard(relation, s):
    if s == 1:
        return relation
    return ShardedRelation.from_relation(relation, shards=s)


def run(relations, query, kind, k=8):
    scoring = EuclideanLogScoring(1.0, 1.0, 1.0)
    engine = make_algorithm(
        "TBPA", relations, scoring, query, k, kind=kind, pull_block=8
    )
    return engine.run()


# -- shard file format ------------------------------------------------------


def test_shard_file_round_trip(tmp_path):
    rng = np.random.default_rng(0)
    n, d = 30, 3
    scores = rng.random(n)
    vectors = rng.random((n, d))
    tids = np.arange(n, dtype=np.int64)
    positions = rng.permutation(n).astype(np.int64)
    attrs = [{"i": i} for i in range(n)]
    row = write_shard_file(
        tmp_path / "a.shard",
        relation="R", shard_index=0, generation=1, sigma_max=1.0,
        scores=scores, vectors=vectors, tids=tids, positions=positions,
        attrs=attrs,
    )
    assert row["n"] == n and row["dim"] == d
    f = ShardFile(tmp_path / "a.shard", verify=True)
    # Bit-exact columns through the memmap views.
    assert f.scores.tobytes() == scores.tobytes()
    assert f.vectors.tobytes() == vectors.tobytes()
    assert np.array_equal(f.tids, tids)
    assert np.array_equal(f.positions, positions)
    assert f.attrs[7] == {"i": 7}
    assert f.relation == "R" and f.generation == 1


def test_shard_file_rejects_garbage_and_truncation(tmp_path):
    bad = tmp_path / "bad.shard"
    bad.write_bytes(b"NOTASHARD" + b"\0" * 64)
    with pytest.raises(ValueError, match="bad magic"):
        ShardFile(bad)
    rng = np.random.default_rng(1)
    good = tmp_path / "good.shard"
    write_shard_file(
        good, relation="R", shard_index=0, generation=1, sigma_max=1.0,
        scores=rng.random(20), vectors=rng.random((20, 2)),
        tids=np.arange(20), positions=np.arange(20),
    )
    data = good.read_bytes()
    torn = tmp_path / "torn.shard"
    torn.write_bytes(data[: len(data) - 40])
    with pytest.raises(ValueError, match="torn"):
        ShardFile(torn)
    # Bit-flip inside a segment: caught by verify(), not by open.
    flipped = bytearray(data)
    flipped[-5] ^= 0xFF
    corrupt = tmp_path / "corrupt.shard"
    corrupt.write_bytes(bytes(flipped))
    with pytest.raises(ValueError, match="checksum mismatch"):
        ShardFile(corrupt, verify=True)


# -- catalog ----------------------------------------------------------------


def test_catalog_order_blobs_bit_identical(tmp_path):
    cat = ShardCatalog(tmp_path / "catalog.sqlite")
    rng = np.random.default_rng(2)
    perm = rng.permutation(100).astype(np.int64)
    ranks = rng.random(100)
    cat.commit_generation(
        name="R", generation=1, n=100, dim=2, sigma_max=0.123456789123456789,
        partition=None,
        shard_rows=[{
            "filename": "f", "n": 100, "dim": 2, "sigma_max": 1.0,
            "tid_min": 0, "tid_max": 99, "checksum": 0,
        }],
    )
    cat.put_order(
        relation="R", generation=1, shard_index=0, kind="distance",
        bucket=b"q", perm=perm, ranks=ranks,
    )
    got_perm, got_ranks = cat.get_order(
        relation="R", generation=1, shard_index=0, kind="distance", bucket=b"q"
    )
    assert got_perm.tobytes() == perm.tobytes()
    assert got_ranks.tobytes() == ranks.tobytes()
    # sigma_max is an SQLite REAL: IEEE double, exact round trip.
    assert cat.relation_row("R")["sigma_max"] == 0.123456789123456789
    # The hit was counted (the zero-re-sort evidence trail).
    assert cat.total_order_hits("R") == 1
    cat.close()


# -- differential: disk-served == in-memory ---------------------------------


@pytest.mark.parametrize("shards", SHARD_COUNTS)
@pytest.mark.parametrize("kind", [AccessKind.DISTANCE, AccessKind.SCORE])
def test_hot_disk_bit_identical(tmp_path, shards, kind):
    relations, query = make_problem(seed=shards, n_relations=2)
    sharded = [shard(r, shards) for r in relations]
    reference = ranked(run(sharded, query, kind))
    store = tmp_path / "store"
    for r in sharded:
        persist_relation(r, store)
    durable = [open_relation(store, r.name) for r in sharded]
    assert ranked(run(durable, query, kind)) == reference
    for r in durable:
        r.close()


@pytest.mark.parametrize("shards", SHARD_COUNTS)
@pytest.mark.parametrize("kind", [AccessKind.DISTANCE, AccessKind.SCORE])
def test_evicted_paged_bit_identical(tmp_path, shards, kind):
    relations, query = make_problem(seed=10 + shards, n_relations=2)
    sharded = [shard(r, shards) for r in relations]
    reference = ranked(run(sharded, query, kind))
    store = tmp_path / "store"
    for r in sharded:
        persist_relation(r, store)
    durable = [open_relation(store, r.name) for r in sharded]
    for r in durable:
        r.storage.evict_all()
    assert ranked(run(durable, query, kind)) == reference
    # The evicted path really paged: every shard was served by windows.
    assert all(r.storage.counters["paged_windows"] >= shards for r in durable)
    assert all(r.storage.counters["order_scans"] == shards for r in durable)
    for r in durable:
        r.close()


@pytest.mark.parametrize("shards", SHARD_COUNTS)
@pytest.mark.parametrize("kind", [AccessKind.DISTANCE, AccessKind.SCORE])
def test_restarted_process_bit_identical(tmp_path, shards, kind):
    """Simulated restart: persist, run once (orders land in the catalog),
    re-open fresh objects, run evicted — the persisted orders replay with
    zero scans and identical results."""
    relations, query = make_problem(seed=20 + shards, n_relations=2)
    sharded = [shard(r, shards) for r in relations]
    reference = ranked(run(sharded, query, kind))
    store = tmp_path / "store"
    for r in sharded:
        persist_relation(r, store)
    first = [open_relation(store, r.name) for r in sharded]
    for r in first:
        r.storage.evict_all()
    assert ranked(run(first, query, kind)) == reference
    for r in first:
        r.close()
    # "Restart": brand-new relation objects over the same store.
    second = [open_relation(store, r.name) for r in sharded]
    for r in second:
        r.storage.evict_all()
    assert ranked(run(second, query, kind)) == reference
    for r in second:
        assert r.storage.counters["order_scans"] == 0, "restart must not re-sort"
        assert r.storage.counters["catalog_order_hits"] == shards
        r.close()


def test_tie_heavy_orders_survive_the_round_trip(tmp_path):
    """Grid vectors + two-valued scores: the (rank, tid) tie-breaks are
    where a lossy order round-trip would first diverge."""
    rng = np.random.default_rng(3)
    size = 24
    rel = ShardedRelation(
        "T",
        rng.choice([0.5, 1.0], size),
        rng.choice([-1.0, 0.0, 1.0], (size, 2)),
        shards=4,
        sigma_max=1.0,
    )
    query = np.zeros(2)
    for kind in (AccessKind.DISTANCE, AccessKind.SCORE):
        reference = ranked(run([rel], query, kind, k=6))
        store = tmp_path / f"store-{kind.value}"
        persist_relation(rel, store)
        for _ in range(2):  # second pass replays persisted orders
            dur = open_relation(store)
            dur.storage.evict_all()
            assert ranked(run([dur], query, kind, k=6)) == reference
            dur.close()


# -- tier manager -----------------------------------------------------------


def test_memory_budget_evicts_lru(tmp_path):
    relations, _ = make_problem(seed=5, n_relations=1, size=64)
    sharded = shard(relations[0], 4)
    persist_relation(sharded, tmp_path / "s")
    dur = open_relation(tmp_path / "s")
    backend = dur.storage
    # Budget sized from the actual (possibly uneven) shard extents so it
    # fits any two of the shards this test touches but never three.
    s = [h.file.nbytes for h in backend.handles]
    budget = min(s[0] + s[1] + s[2], s[1] + s[2] + s[3]) - 1
    assert budget >= max(s[0] + s[1], s[1] + s[2], s[1] + s[3])
    backend.memory_budget = budget
    backend.shard_relation(0)
    backend.shard_relation(1)
    backend.shard_relation(2)  # budget forces the LRU shard (0) out
    assert backend.handles[0].relation is None and backend.handles[0].evicted
    assert backend.counters["evictions"] >= 1
    # Touch 1, then load 3: victim must be 2 (least recently touched).
    backend.shard_relation(1)
    backend.shard_relation(3)
    assert backend.handles[2].relation is None
    assert backend.handles[1].relation is not None
    # Reloading an evicted shard works and is counted.
    backend.shard_relation(0)
    assert backend.counters["reloads"] >= 1
    dur.close()


def test_whole_relation_readers_see_parent_order(tmp_path):
    relations, _ = make_problem(seed=6, n_relations=1, size=30)
    base = relations[0]
    sharded = ShardedRelation.from_relation(base, shards=4)
    persist_relation(sharded, tmp_path / "s")
    dur = open_relation(tmp_path / "s")
    assert len(dur) == len(base) and dur.dim == base.dim
    assert dur.sigma_max == base.sigma_max
    # Scatter-reconstructed parent columns match the original bit for bit.
    assert dur.vectors.tobytes() == base.vectors.tobytes()
    assert dur.scores.tobytes() == base.scores.tobytes()
    assert np.array_equal(dur.tids, base.tids)
    assert dur[7] == base[7] and dur[7].attrs == base[7].attrs
    dur.close()


def test_lazy_tuples_materialise_on_demand():
    rng = np.random.default_rng(7)
    lt = LazyTuples("L", rng.random(10), rng.random((10, 2)), np.arange(10))
    assert len(lt) == 10
    assert sum(t is not None for t in lt._cache) == 0
    t3 = lt[3]
    assert t3.tid == 3 and lt[3] is t3  # cached
    assert [t.tid for t in lt[2:5]] == [2, 3, 4]
    assert sum(t is not None for t in lt._cache) == 3


# -- persist/open API -------------------------------------------------------


def test_relation_persist_open_api(tmp_path):
    relations, query = make_problem(seed=8, n_relations=2)
    store = tmp_path / "store"
    for r in relations:
        r.persist(store)  # Relation.persist chains through the durable tier
    # name= optional only when unambiguous
    with pytest.raises(ValueError, match="pass name="):
        Relation.open(store)
    dur = Relation.open(store, relations[0].name)
    assert isinstance(dur, DurableRelation)
    assert len(dur) == len(relations[0])
    dur.close()
    with pytest.raises(KeyError):
        Relation.open(store, "nope")
    with pytest.raises(FileNotFoundError):
        Relation.open(tmp_path / "empty")


def test_problem_store_round_trip(tmp_path):
    relations, query = make_problem(seed=9, n_relations=3)
    store = save_problem_durable(relations, query, tmp_path / "problem")
    loaded, q2 = load_problem_durable(store, verify=True)
    assert [r.name for r in loaded] == [r.name for r in relations]
    assert np.array_equal(q2, query)
    reference = ranked(run(relations, query, AccessKind.DISTANCE))
    assert ranked(run(loaded, q2, AccessKind.DISTANCE)) == reference
    for r in loaded:
        r.close()


def test_repersist_bumps_generation_and_gcs_old_files(tmp_path):
    relations, _ = make_problem(seed=11, n_relations=1)
    rel = shard(relations[0], 2)
    store = tmp_path / "s"
    persist_relation(rel, store)
    persist_relation(rel, store)
    dur = open_relation(store)
    assert dur.generation == 2
    files = sorted(p.name for p in (store / "shards").glob("*.shard"))
    assert all("-g000002-" in f for f in files) and len(files) == 2
    dur.close()


# -- crash consistency ------------------------------------------------------


class _Boom(RuntimeError):
    pass


def _crash_at(stage):
    def failpoint(label):
        if label == stage:
            raise _Boom(stage)

    return failpoint


@pytest.mark.parametrize("stage", ["shard-bytes", "before-commit"])
def test_writer_killed_before_commit_keeps_previous_generation(tmp_path, stage):
    relations, query = make_problem(seed=12, n_relations=1)
    rel = shard(relations[0], 2)
    store = tmp_path / "s"
    persist_relation(rel, store)
    reference_files = sorted(p.name for p in (store / "shards").glob("*.shard"))
    dur = open_relation(store)
    dur.storage.evict_all()
    reference = ranked(run([dur], query, AccessKind.DISTANCE))
    dur.close()
    # Kill a second persist mid-flight at the given stage.
    with pytest.raises(_Boom):
        persist_relation(rel, store, _failpoint=_crash_at(stage))
    # The catalog still points at generation 1 and every one of its files
    # is intact: full differential run, checksum-verified open.
    dur2 = open_relation(store, verify=True)
    assert dur2.generation == 1
    dur2.storage.evict_all()
    assert ranked(run([dur2], query, AccessKind.DISTANCE)) == reference
    dur2.close()
    surviving = sorted(p.name for p in (store / "shards").glob("*.shard"))
    assert set(reference_files) <= set(surviving)


def test_writer_killed_after_commit_serves_new_generation(tmp_path):
    relations, query = make_problem(seed=13, n_relations=1)
    rel = shard(relations[0], 2)
    store = tmp_path / "s"
    persist_relation(rel, store)
    with pytest.raises(_Boom):
        persist_relation(rel, store, _failpoint=_crash_at("after-commit"))
    # Commit landed before the crash: readers see generation 2, verified.
    dur = open_relation(store, verify=True)
    assert dur.generation == 2
    in_memory = ranked(run([rel], query, AccessKind.DISTANCE))
    assert ranked(run([dur], query, AccessKind.DISTANCE)) == in_memory
    dur.close()
    # A later successful persist cleans up whatever the crash left.
    persist_relation(rel, store)
    assert not list((store / "shards").glob("*.tmp"))


def test_crashed_writer_leaves_no_readable_partial_files(tmp_path):
    relations, _ = make_problem(seed=14, n_relations=1)
    rel = shard(relations[0], 2)
    store = tmp_path / "s"
    with pytest.raises(_Boom):
        persist_relation(rel, store, _failpoint=_crash_at("shard-bytes"))
    # Nothing committed, and any debris is a .tmp no catalog row names.
    cat = ShardCatalog(store / "catalog.sqlite")
    assert cat.latest_generation(rel.name) == 0
    cat.close()
    assert not list((store / "shards").glob("*.shard")) or all(
        ShardFile(p) for p in (store / "shards").glob("*.shard")
    )
