"""Tests for the sequential access streams (Definition 2.1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import AccessKind, Relation, ShardedRelation
from repro.core.access import DistanceAccess, MergeStream, ScoreAccess, open_streams


def drain(stream):
    out = []
    while True:
        t = stream.next()
        if t is None:
            return out
        out.append(t)


def random_relation(seed, size=20, d=2):
    rng = np.random.default_rng(seed)
    return Relation(
        "R", rng.uniform(0.05, 1.0, size), rng.uniform(-3, 3, (size, d)),
        sigma_max=1.0,
    )


class TestDistanceAccess:
    def test_order_is_nondecreasing_distance(self):
        rel = random_relation(0)
        q = np.zeros(2)
        stream = DistanceAccess(rel, q)
        dists = [np.linalg.norm(t.vector - q) for t in drain(stream)]
        assert dists == sorted(dists)

    def test_depth_counts_pulls(self):
        rel = random_relation(1)
        stream = DistanceAccess(rel, np.zeros(2))
        assert stream.depth == 0
        stream.next()
        stream.next()
        assert stream.depth == 2
        assert len(stream.seen) == 2

    def test_distance_conventions_before_access(self):
        rel = random_relation(2)
        stream = DistanceAccess(rel, np.zeros(2))
        # Paper: both distances conventionally 0 while p_i = 0.
        assert stream.first_distance == 0.0
        assert stream.last_distance == 0.0

    def test_first_last_distance_track_prefix(self):
        rel = Relation("R", [1.0, 1.0, 1.0], [[1.0], [3.0], [2.0]])
        stream = DistanceAccess(rel, np.zeros(1))
        stream.next()
        assert stream.first_distance == pytest.approx(1.0)
        assert stream.last_distance == pytest.approx(1.0)
        stream.next()
        assert stream.first_distance == pytest.approx(1.0)
        assert stream.last_distance == pytest.approx(2.0)

    def test_exhaustion(self):
        rel = Relation("R", [1.0], [[0.0]])
        stream = DistanceAccess(rel, np.zeros(1))
        assert not stream.exhausted
        stream.next()
        assert stream.exhausted
        assert stream.next() is None

    def test_query_dimension_mismatch(self):
        rel = random_relation(3)
        with pytest.raises(ValueError, match="dimension"):
            DistanceAccess(rel, np.zeros(3))

    def test_tie_break_by_tid(self):
        rel = Relation("R", [1.0, 1.0], [[1.0, 0.0], [-1.0, 0.0]])
        stream = DistanceAccess(rel, np.zeros(2))
        assert [t.tid for t in drain(stream)] == [0, 1]

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 1000))
    def test_indexed_matches_sorted(self, seed):
        rel = random_relation(seed, size=30)
        q = np.zeros(2)
        plain = [t.tid for t in drain(DistanceAccess(rel, q))]
        indexed = [t.tid for t in drain(DistanceAccess(rel, q, use_index=True))]
        assert plain == indexed

    def test_custom_metric(self):
        rel = Relation("R", [1.0, 1.0], [[0.0, 3.0], [2.0, 2.0]])
        manhattan = lambda x, y: float(np.abs(x - y).sum())
        stream = DistanceAccess(rel, np.zeros(2), metric=manhattan)
        # Manhattan: |0|+|3| = 3 vs 4 -> tid 0 first (Euclidean agrees here);
        # use a point where they disagree: (0,3): L2=3, L1=3; (2,2): L2~2.83, L1=4.
        assert [t.tid for t in drain(stream)] == [0, 1]


class TestScoreAccess:
    def test_order_is_nonincreasing_score(self):
        rel = random_relation(4)
        scores = [t.score for t in drain(ScoreAccess(rel))]
        assert scores == sorted(scores, reverse=True)

    def test_score_conventions_before_access(self):
        rel = random_relation(5)
        stream = ScoreAccess(rel)
        assert stream.first_score == rel.sigma_max
        assert stream.last_score == rel.sigma_max

    def test_first_last_track_prefix(self):
        rel = Relation("R", [0.2, 0.9, 0.5], [[0.0], [1.0], [2.0]])
        stream = ScoreAccess(rel)
        stream.next()
        stream.next()
        assert stream.first_score == pytest.approx(0.9)
        assert stream.last_score == pytest.approx(0.5)

    def test_tie_break_by_tid(self):
        rel = Relation("R", [0.5, 0.5], [[0.0], [1.0]])
        assert [t.tid for t in drain(ScoreAccess(rel))] == [0, 1]

    def test_exhaustion(self):
        rel = Relation("R", [0.5], [[0.0]])
        stream = ScoreAccess(rel)
        stream.next()
        assert stream.exhausted
        assert stream.next() is None


class TestNextBlockDepletion:
    """Regression pins for block pulls at the end of the order: a limit
    past the remaining order must never raise, and ``exhausted`` flips
    exactly at depletion (not before, not after)."""

    def _streams(self, seed=0, size=9):
        rel = random_relation(seed, size=size)
        sharded = ShardedRelation(
            "R", rel.scores, rel.vectors, sigma_max=1.0, shards=3
        )
        q = np.zeros(2)
        return [
            DistanceAccess(rel, q),
            DistanceAccess(rel, q, use_index=True),
            ScoreAccess(rel),
            open_streams([sharded], AccessKind.DISTANCE, q)[0],
            open_streams([sharded], AccessKind.SCORE)[0],
        ]

    def test_limit_past_remaining_never_raises(self):
        for stream in self._streams():
            total = 9
            stream.next_block(4)
            assert not stream.exhausted
            tail = stream.next_block(total * 10)  # far past the remaining 5
            assert len(tail) == total - 4
            assert stream.exhausted
            assert stream.depth == total

    def test_exhausted_flips_exactly_at_depletion(self):
        for stream in self._streams():
            block = stream.next_block(8)
            assert len(block) == 8
            assert not stream.exhausted  # one tuple left
            assert len(stream.next_block(1)) == 1
            assert stream.exhausted

    def test_depleted_stream_keeps_returning_empty(self):
        for stream in self._streams():
            stream.next_block(100)
            assert stream.exhausted
            for limit in (1, 7, 100):
                assert stream.next_block(limit) == []
            assert stream.next() is None
            assert stream.depth == 9

    def test_zero_and_negative_limits_are_noops(self):
        for stream in self._streams():
            assert stream.next_block(0) == []
            assert stream.next_block(-3) == []
            assert stream.depth == 0
            assert not stream.exhausted

    def test_block_prefix_stays_aligned(self):
        """The columnar prefix cursor advances by exactly the block size,
        including on the final short block."""
        for stream in self._streams():
            stream.next_block(7)
            assert len(stream.prefix) == 7
            stream.next_block(7)
            assert len(stream.prefix) == 9
            assert stream.prefix.arrays()[2].tolist() == [
                t.tid for t in stream.seen
            ]


class TestOpenStreams:
    def test_distance_kind(self):
        rels = [random_relation(6), random_relation(7)]
        streams = open_streams(rels, AccessKind.DISTANCE, np.zeros(2))
        assert all(isinstance(s, DistanceAccess) for s in streams)

    def test_score_kind(self):
        rels = [random_relation(8)]
        streams = open_streams(rels, AccessKind.SCORE)
        assert all(isinstance(s, ScoreAccess) for s in streams)

    def test_distance_requires_query(self):
        with pytest.raises(ValueError, match="query"):
            open_streams([random_relation(9)], AccessKind.DISTANCE)
