"""Differential tests for the block-pull engine and run-loop regressions.

The acceptance bar: on >= 50 randomized workloads — including tie-heavy
ones — the columnar block-pull engine, the per-tuple engine, the
object-per-tuple reference path (``vectorise=False``) and the
brute-force oracle must agree on the ranked top-K *bit-identically*
(same keys, same float scores, same tie-break order), for pre-sorted and
k-d-indexed streams alike.
"""

import time

import numpy as np
import pytest

from repro.core import (
    AccessKind,
    CornerBound,
    EuclideanLogScoring,
    ProxRJ,
    PullingStrategy,
    Relation,
    RoundRobin,
    brute_force_topk,
    make_algorithm,
)
from repro.data import SyntheticConfig, generate_problem


def ranked_ids(result_combinations):
    return [(c.key, c.score) for c in result_combinations]


def random_workload(seed):
    """One randomized (n, d, k, skew) problem instance."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 4))  # n in {2, 3}
    d = int(rng.choice([2, 8]))
    k = int(rng.integers(1, 12))
    skew = float(rng.choice([1.0, 2.0, 4.0]))
    size = int(rng.integers(8, 16))
    relations, query = generate_problem(
        SyntheticConfig(
            n_relations=n, dims=d, density=50.0, skew=skew,
            n_tuples=size, seed=seed,
        )
    )
    return relations, query, k


def tie_heavy_workload(seed):
    """Vectors on a tiny integer grid, scores from a two-value set: most
    combinations collide exactly in aggregate score."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 4))
    k = int(rng.integers(2, 10))
    size = int(rng.integers(6, 12))
    relations = [
        Relation(
            f"R{i}",
            rng.choice([0.5, 1.0], size),
            rng.choice([-1.0, 0.0, 1.0], (size, 2)),
            sigma_max=1.0,
        )
        for i in range(n)
    ]
    return relations, np.zeros(2), k


class TestBlockPullDifferential:
    @pytest.mark.parametrize("seed", range(30))
    def test_randomized_workloads(self, seed):
        """Columnar engine == object path == oracle, per-tuple and block."""
        relations, query, k = random_workload(seed)
        scoring = EuclideanLogScoring(1.0, 1.0, 1.0)
        oracle = ranked_ids(brute_force_topk(relations, scoring, query, k))
        for algo in ("TBPA", "CBRR"):
            per_tuple = make_algorithm(
                algo, relations, scoring, query, k, kind=AccessKind.DISTANCE
            ).run()
            assert per_tuple.completed
            assert ranked_ids(per_tuple.combinations) == oracle
            objectpath = make_algorithm(
                algo, relations, scoring, query, k,
                kind=AccessKind.DISTANCE, vectorise=False,
            ).run()
            assert objectpath.completed
            assert ranked_ids(objectpath.combinations) == oracle
            for block in (3, 8):
                blocked = make_algorithm(
                    algo, relations, scoring, query, k,
                    kind=AccessKind.DISTANCE, pull_block=block,
                ).run()
                assert blocked.completed
                assert ranked_ids(blocked.combinations) == oracle

    @pytest.mark.parametrize("seed", range(30, 55))
    def test_tie_heavy_workloads(self, seed):
        relations, query, k = tie_heavy_workload(seed)
        scoring = EuclideanLogScoring(1.0, 1.0, 1.0)
        oracle = ranked_ids(brute_force_topk(relations, scoring, query, k))
        for block in (1, 4, 16):
            result = make_algorithm(
                "TBPA", relations, scoring, query, k,
                kind=AccessKind.DISTANCE, pull_block=block,
            ).run()
            assert result.completed
            assert ranked_ids(result.combinations) == oracle
        # The object-per-tuple reference path resolves the same ties.
        reference = make_algorithm(
            "TBPA", relations, scoring, query, k,
            kind=AccessKind.DISTANCE, pull_block=4, vectorise=False,
        ).run()
        assert reference.completed
        assert ranked_ids(reference.combinations) == oracle

    @pytest.mark.parametrize("seed", [3, 11, 27, 42])
    def test_indexed_stream_matches_oracle(self, seed):
        """The k-d indexed stream (growing columnar prefix, no order
        slicing) feeds the columnar engine bit-identically too."""
        relations, query, k = random_workload(seed)
        scoring = EuclideanLogScoring(1.0, 1.0, 1.0)
        oracle = ranked_ids(brute_force_topk(relations, scoring, query, k))
        for block in (1, 8):
            result = make_algorithm(
                "TBPA", relations, scoring, query, k,
                kind=AccessKind.DISTANCE, pull_block=block, use_index=True,
            ).run()
            assert result.completed
            assert ranked_ids(result.combinations) == oracle

    def test_score_access_kind(self):
        relations, query, k = random_workload(99)
        scoring = EuclideanLogScoring(1.0, 1.0, 1.0)
        oracle = ranked_ids(brute_force_topk(relations, scoring, query, k))
        for block in (1, 5):
            result = make_algorithm(
                "TBRR", relations, scoring, query, k,
                kind=AccessKind.SCORE, pull_block=block,
            ).run()
            assert ranked_ids(result.combinations) == oracle

    def test_pull_block_validation(self):
        relations, query, k = random_workload(0)
        with pytest.raises(ValueError, match="pull_block"):
            make_algorithm(
                "CBRR", relations, EuclideanLogScoring(), query, k,
                pull_block=0,
            )

    def test_max_pulls_caps_block(self):
        """A block never overshoots the max_pulls budget."""
        relations, query, _ = random_workload(7)
        result = make_algorithm(
            "CBRR", relations, EuclideanLogScoring(), query, 10,
            kind=AccessKind.DISTANCE, pull_block=8, max_pulls=5,
        ).run()
        assert not result.completed
        assert result.sum_depths == 5

    def test_pruner_counters_exposed(self):
        relations, query = generate_problem(
            SyntheticConfig(
                n_relations=3, dims=2, density=50.0, skew=1.0,
                n_tuples=120, seed=5,
            )
        )
        result = make_algorithm(
            "CBPA", relations, EuclideanLogScoring(), query, 5,
            kind=AccessKind.DISTANCE, pull_block=16,
        ).run()
        assert "blocks_pruned" in result.counters
        assert "combinations_pruned" in result.counters
        assert (
            result.counters["blocks_pruned"] + result.counters["blocks_scored"]
            > 0
        )


class _StuckStrategy(PullingStrategy):
    """Misbehaving strategy: always returns relation 0, even exhausted."""

    def __init__(self):
        self.calls = 0

    def choose_input(self, state, bound):
        self.calls += 1
        return 0


class TestMisbehavingStrategy:
    def _problem(self):
        # R0 exhausts after one pull; a strategy stuck on R0 used to spin
        # forever without incrementing the pull counter.
        r0 = Relation("R0", [1.0], [[0.0, 0.0]], sigma_max=1.0)
        rng = np.random.default_rng(0)
        r1 = Relation(
            "R1", rng.uniform(0.1, 1.0, 12), rng.uniform(-2, 2, (12, 2)),
            sigma_max=1.0,
        )
        return [r0, r1], np.zeros(2)

    def test_engine_terminates_and_matches_oracle(self):
        relations, query = self._problem()
        scoring = EuclideanLogScoring(1.0, 1.0, 1.0)
        engine = ProxRJ(
            relations, scoring, kind=AccessKind.DISTANCE, query=query,
            bound=CornerBound(), pull=_StuckStrategy(), k=4,
        )
        result = engine.run()  # pre-fix: infinite loop
        assert result.completed
        oracle = ranked_ids(brute_force_topk(relations, scoring, query, 4))
        assert ranked_ids(result.combinations) == oracle

    def test_max_pulls_not_bypassed(self):
        relations, query = self._problem()
        engine = ProxRJ(
            relations, EuclideanLogScoring(), kind=AccessKind.DISTANCE,
            query=query, bound=CornerBound(), pull=_StuckStrategy(), k=30,
            max_pulls=6,
        )
        result = engine.run()
        assert result.sum_depths <= 6


class TestTimerExcludesStreamSetup:
    def test_slow_stream_factory_not_measured(self):
        """total_seconds documents that stream setup is excluded; a
        deliberately slow factory must not inflate it."""
        rng = np.random.default_rng(3)
        relations = [
            Relation(
                f"R{i}", rng.uniform(0.1, 1.0, 6), rng.uniform(-1, 1, (6, 2)),
                sigma_max=1.0,
            )
            for i in range(2)
        ]
        query = np.zeros(2)

        def slow_factory():
            time.sleep(0.25)
            from repro.core.access import open_streams

            return open_streams(relations, AccessKind.DISTANCE, query)

        engine = ProxRJ(
            relations, EuclideanLogScoring(), kind=AccessKind.DISTANCE,
            query=query, bound=CornerBound(), pull=RoundRobin(), k=3,
            stream_factory=slow_factory,
        )
        result = engine.run()
        assert result.total_seconds < 0.2
