"""Soundness regression for dominance pruning (Section 3.2.2).

Property pinned: **a live partial combination is never flagged
dominated** — under the scalar LP loop, under capped constraint sets
(dropping competitors can only enlarge regions) and under the batched
lockstep kernel.  Liveness ground truth is established constructively: a
candidate that wins (within tolerance) at any probed point certainly has
a non-empty dominance region.
"""

import numpy as np
import pytest

from repro.core.bounds.dominance import (
    dominance_lp_problems,
    dominated_mask,
    dominated_mask_batch,
)


def random_family(rng, count, d):
    bs = rng.normal(size=(count, d))
    cs = rng.normal(size=count) * 2.0
    if count >= 4:
        bs[1] = bs[0]          # tied directions: ties resolved by c
        cs[1] = cs[0] + 0.5    # strictly worse everywhere -> dominated
    return bs, cs


def provably_live(bs, cs, quad_coeff, points):
    """Candidates that win at one of the probed ``points`` (tolerance
    shrunk so the certificate is strict)."""
    vals = 2.0 * points @ bs.T + cs[None, :]  # (P, u)
    best = vals.min(axis=1)
    return (vals <= best[:, None] + 1e-12).any(axis=0)


@pytest.mark.parametrize("seed", range(10))
@pytest.mark.parametrize(
    "runner",
    [
        pytest.param(lambda **kw: dominated_mask(**kw), id="scalar"),
        pytest.param(lambda **kw: dominated_mask_batch(**kw), id="batched"),
        pytest.param(
            lambda **kw: dominated_mask(max_lp_constraints=3, **kw), id="capped"
        ),
        pytest.param(
            lambda **kw: dominated_mask_batch(max_lp_constraints=3, **kw),
            id="capped-batched",
        ),
    ],
)
def test_live_combination_never_flagged(seed, runner):
    rng = np.random.default_rng(seed)
    count = int(rng.integers(4, 40))
    d = int(rng.integers(1, 4))
    quad = float(rng.uniform(0.2, 4.0))
    bs, cs = random_family(rng, count, d)
    witnesses = np.full((count, d), np.nan)
    out, _ = runner(
        bs=bs,
        cs=cs,
        already_dominated=np.zeros(count, dtype=bool),
        quad_coeff=quad,
        witnesses=witnesses,
    )
    # Probe a generous point cloud: each candidate's own optimum plus
    # random field points.  Winners there are live by construction.
    points = np.vstack([-bs / quad, rng.normal(size=(200, d)) * 3.0])
    live = provably_live(bs, cs, quad, points)
    flagged_live = out & live
    assert not flagged_live.any(), np.flatnonzero(flagged_live)


@pytest.mark.parametrize("seed", range(6))
def test_batched_mask_matches_scalar(seed):
    """The batched pass flags exactly the scalar pass's set (the kernels'
    emptiness verdicts agree), starting from identical inputs."""
    rng = np.random.default_rng(100 + seed)
    count = int(rng.integers(5, 30))
    bs, cs = random_family(rng, count, 2)
    already = rng.random(count) < 0.2
    quad = 1.0
    out_s, _ = dominated_mask(
        bs, cs, already.copy(), quad_coeff=quad,
        witnesses=np.full((count, 2), np.nan),
    )
    out_b, _ = dominated_mask_batch(
        bs, cs, already.copy(), quad_coeff=quad,
        witnesses=np.full((count, 2), np.nan),
    )
    assert (out_s == out_b).all()


def test_sequential_passes_with_witness_reuse():
    """Growing competitor fields across passes (the engine's usage):
    cached witnesses never let a dominated candidate slip through, and
    live candidates survive every pass, scalar and batched alike."""
    rng = np.random.default_rng(42)
    d, quad = 2, 1.5
    total = 30
    bs = rng.normal(size=(total, d))
    cs = rng.normal(size=total)
    for runner in (dominated_mask, dominated_mask_batch):
        witnesses = np.full((total, d), np.nan)
        out = np.zeros(total, dtype=bool)
        for upto in (10, 20, total):
            out_prefix, _ = runner(
                bs[:upto], cs[:upto], out[:upto].copy(),
                quad_coeff=quad, witnesses=witnesses[:upto],
            )
            out[:upto] = out_prefix
            points = np.vstack([-bs[:upto] / quad, rng.normal(size=(150, d)) * 3.0])
            live = provably_live(bs[:upto], cs[:upto], quad, points)
            assert not (out[:upto] & live).any()


def test_lp_problems_assembly_matches_scalar_competitors():
    """dominance_lp_problems assembles exactly the capped strongest-
    competitor systems the scalar loop solves."""
    rng = np.random.default_rng(7)
    count = 12
    bs, cs = random_family(rng, count, 2)
    out, problems = dominance_lp_problems(
        bs, cs, np.zeros(count, dtype=bool), quad_coeff=1.0,
        max_lp_constraints=5,
    )
    assert not out.any()  # assembly alone never flags
    for alpha, g, h in problems:
        assert g.shape[0] <= 5 and g.shape == (len(h), 2)
        # Each row is a valid half-space of alpha against some competitor.
        for row, rhs in zip(g, h):
            diffs = 2.0 * (bs[alpha] - bs)
            match = np.isclose(diffs, row[None, :]).all(axis=1)
            match &= np.isclose(cs - cs[alpha], rhs)
            match[alpha] = False
            assert match.any()
