"""Differential tests for the sharded storage layer.

The acceptance bar: for S in {1, 2, 4, 7} shards, under both partition
schemes and both access kinds, completed sharded runs return
*bit-identical* top-K (same combination keys, same float scores, same
tie-break order) to the single-shard reference and the brute-force
oracle — on randomized and tie-heavy workloads alike.  The merge layer
itself is additionally pinned against the single sorted access stream,
order position by order position.
"""

import numpy as np
import pytest

from repro.core import (
    AccessKind,
    DistanceAccess,
    EuclideanLogScoring,
    Relation,
    ScoreAccess,
    ShardedRelation,
    brute_force_topk,
    make_algorithm,
    open_streams,
    partition_indices,
)
from repro.core.access import MergeStream
from repro.data import SyntheticConfig, generate_problem

SHARD_COUNTS = (1, 2, 4, 7)


def ranked_ids(result_combinations):
    return [(c.key, c.score) for c in result_combinations]


def random_workload(seed):
    """One randomized (n, d, k, skew) problem instance (same family as
    the block-pull differential suite)."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 4))  # n in {2, 3}
    d = int(rng.choice([2, 8]))
    k = int(rng.integers(1, 12))
    skew = float(rng.choice([1.0, 2.0, 4.0]))
    size = int(rng.integers(8, 16))
    relations, query = generate_problem(
        SyntheticConfig(
            n_relations=n, dims=d, density=50.0, skew=skew,
            n_tuples=size, seed=seed,
        )
    )
    return relations, query, k


def tie_heavy_workload(seed):
    """Vectors on a tiny integer grid, scores from a two-value set: most
    combinations collide exactly in aggregate score."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 4))
    k = int(rng.integers(2, 10))
    size = int(rng.integers(6, 12))
    relations = [
        Relation(
            f"R{i}",
            rng.choice([0.5, 1.0], size),
            rng.choice([-1.0, 0.0, 1.0], (size, 2)),
            sigma_max=1.0,
        )
        for i in range(n)
    ]
    return relations, np.zeros(2), k


def shard_all(relations, shards, partition="hash"):
    return [
        ShardedRelation.from_relation(r, shards=shards, partition=partition)
        for r in relations
    ]


class TestPartitioning:
    @pytest.mark.parametrize("partition", ["hash", "range"])
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_partition_is_disjoint_and_complete(self, shards, partition):
        parts = partition_indices(23, shards, partition)
        assert len(parts) == shards
        merged = np.sort(np.concatenate(parts))
        assert merged.tolist() == list(range(23))

    def test_hash_partition_spreads_load(self):
        sizes = [len(p) for p in partition_indices(1000, 4, "hash")]
        assert min(sizes) > 150  # no starved shard

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError, match="partition"):
            partition_indices(10, 2, "zigzag")

    def test_shards_carry_global_tids_and_parent_metadata(self):
        rng = np.random.default_rng(0)
        rel = ShardedRelation(
            "R", rng.uniform(0.1, 1.0, 20), rng.uniform(-1, 1, (20, 2)),
            sigma_max=1.0, shards=4,
        )
        shards = rel.storage.shards
        all_tids = sorted(int(t) for s in shards for t in s.tids)
        assert all_tids == list(range(20))
        for shard in shards:
            assert shard.name == rel.name
            assert shard.sigma_max == rel.sigma_max
        # The sharded relation itself still reads whole, like any Relation.
        assert len(rel) == 20
        assert [t.tid for t in rel] == list(range(20))

    def test_more_shards_than_tuples(self):
        rel = ShardedRelation("R", [0.5, 0.6], [[0.0], [1.0]], shards=5)
        assert 1 <= rel.shard_count <= 2
        stream = open_streams([rel], AccessKind.SCORE)[0]
        assert [t.tid for t in stream.next_block(10)] == [1, 0]

    def test_hash_empty_shards_are_dropped_not_materialised(self):
        """Hash partitioning of a small relation can leave requested
        partitions empty; shard_count reports non-empty shards only and
        the union still covers every tuple."""
        rel = ShardedRelation(
            "R", [0.5, 0.6, 0.7], [[0.0], [1.0], [2.0]], shards=3
        )
        assert 1 <= rel.shard_count <= 3
        covered = sorted(
            int(t) for s in rel.storage.shards for t in s.tids
        )
        assert covered == [0, 1, 2]

    def test_shard_tuples_share_parent_objects(self):
        """Shards reuse the parent's RankTuple rows — sharding must not
        re-materialise the Python tuple layer."""
        rng = np.random.default_rng(1)
        rel = ShardedRelation(
            "R", rng.uniform(0.1, 1.0, 12), rng.uniform(-1, 1, (12, 2)),
            sigma_max=1.0, shards=3,
        )
        parent = {t.tid: t for t in rel}
        for shard in rel.storage.shards:
            for tup in shard:
                assert tup is parent[tup.tid]

    def test_from_relation_preserves_explicit_tids(self):
        base = Relation(
            "R", [0.5, 0.9, 0.7], [[0.0], [1.0], [2.0]], tids=[10, 11, 12]
        )
        sharded = ShardedRelation.from_relation(base, shards=2)
        assert sorted(int(t) for t in sharded.tids) == [10, 11, 12]
        shard_tids = sorted(
            int(t) for s in sharded.storage.shards for t in s.tids
        )
        assert shard_tids == [10, 11, 12]
        stream = open_streams([sharded], AccessKind.SCORE)[0]
        assert [t.tid for t in stream.next_block(3)] == [11, 12, 10]


class TestMergeStreamOrder:
    """The merged stream is the single sorted access, bit for bit."""

    @pytest.mark.parametrize("partition", ["hash", "range"])
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_distance_merge_matches_single_stream(self, shards, partition):
        rng = np.random.default_rng(shards * 10 + (partition == "range"))
        n = 41
        scores = rng.uniform(0.05, 1.0, n)
        vectors = rng.uniform(-2, 2, (n, 3))
        query = rng.uniform(-1, 1, 3)
        base = Relation("R", scores, vectors, sigma_max=1.0)
        sharded = ShardedRelation(
            "R", scores, vectors, sigma_max=1.0, shards=shards, partition=partition
        )
        ref = DistanceAccess(base, query)
        got = open_streams([sharded], AccessKind.DISTANCE, query)[0]
        ref_block = ref.next_block(n)
        got_block = got.next_block(n)
        assert [t.tid for t in got_block] == [t.tid for t in ref_block]
        assert np.array_equal(got.distances, ref.distances)
        assert got.last_distance == ref.last_distance

    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_score_merge_matches_single_stream(self, shards):
        rng = np.random.default_rng(shards)
        n = 33
        # Heavy score ties: the tid tie-break must hold across shards.
        scores = rng.choice([0.3, 0.7, 1.0], n)
        vectors = rng.uniform(-2, 2, (n, 2))
        base = Relation("R", scores, vectors, sigma_max=1.0)
        sharded = ShardedRelation("R", scores, vectors, sigma_max=1.0, shards=shards)
        ref = [t.tid for t in ScoreAccess(base).next_block(n)]
        got_stream = open_streams([sharded], AccessKind.SCORE)[0]
        assert [t.tid for t in got_stream.next_block(n)] == ref
        assert got_stream.exhausted

    @pytest.mark.parametrize("block", [1, 3, 8, 64])
    def test_merge_is_block_size_invariant(self, block):
        rng = np.random.default_rng(7)
        n = 29
        sharded = ShardedRelation(
            "R", rng.uniform(0.05, 1, n), rng.uniform(-2, 2, (n, 2)),
            sigma_max=1.0, shards=4,
        )
        query = np.zeros(2)
        whole = open_streams([sharded], AccessKind.DISTANCE, query)[0]
        expected = [t.tid for t in whole.next_block(n)]
        stream = open_streams([sharded], AccessKind.DISTANCE, query)[0]
        got = []
        while not stream.exhausted:
            got.extend(t.tid for t in stream.next_block(block))
        assert got == expected

    def test_merge_stream_requires_cursors(self):
        rel = Relation("R", [0.5], [[0.0]])
        with pytest.raises(ValueError, match="cursor"):
            MergeStream(rel, AccessKind.DISTANCE, [])


class TestShardedEngineDifferential:
    """Sharded runs through the full engine match the single-shard
    oracle exactly — keys, scores and tie-break order."""

    @pytest.mark.parametrize("seed", [0, 3, 11, 19])
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_randomized_distance_access(self, shards, seed):
        relations, query, k = random_workload(seed)
        scoring = EuclideanLogScoring(1.0, 1.0, 1.0)
        oracle = ranked_ids(brute_force_topk(relations, scoring, query, k))
        sharded = shard_all(relations, shards)
        for algo, block in (("TBPA", 8), ("CBRR", 1), ("CBPA", 4)):
            result = make_algorithm(
                algo, sharded, scoring, query, k,
                kind=AccessKind.DISTANCE, pull_block=block,
            ).run()
            assert result.completed
            assert ranked_ids(result.combinations) == oracle

    @pytest.mark.parametrize("seed", [30, 37, 44, 51])
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_tie_heavy_distance_access(self, shards, seed):
        relations, query, k = tie_heavy_workload(seed)
        scoring = EuclideanLogScoring(1.0, 1.0, 1.0)
        oracle = ranked_ids(brute_force_topk(relations, scoring, query, k))
        sharded = shard_all(relations, shards)
        for block in (1, 4, 16):
            result = make_algorithm(
                "TBPA", sharded, scoring, query, k,
                kind=AccessKind.DISTANCE, pull_block=block,
            ).run()
            assert result.completed
            assert ranked_ids(result.combinations) == oracle

    @pytest.mark.parametrize("seed", [99, 104])
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_score_access(self, shards, seed):
        relations, query, k = random_workload(seed)
        scoring = EuclideanLogScoring(1.0, 1.0, 1.0)
        oracle = ranked_ids(brute_force_topk(relations, scoring, query, k))
        sharded = shard_all(relations, shards)
        for block in (1, 5):
            result = make_algorithm(
                "TBRR", sharded, scoring, query, k,
                kind=AccessKind.SCORE, pull_block=block,
            ).run()
            assert ranked_ids(result.combinations) == oracle

    @pytest.mark.parametrize("seed", [36, 42])
    @pytest.mark.parametrize("shards", SHARD_COUNTS)
    def test_tie_heavy_score_access(self, shards, seed):
        relations, query, k = tie_heavy_workload(seed)
        scoring = EuclideanLogScoring(1.0, 1.0, 1.0)
        oracle = ranked_ids(brute_force_topk(relations, scoring, query, k))
        result = make_algorithm(
            "TBRR", shard_all(relations, shards), scoring, query, k,
            kind=AccessKind.SCORE, pull_block=4,
        ).run()
        assert ranked_ids(result.combinations) == oracle

    @pytest.mark.parametrize("partition", ["hash", "range"])
    def test_range_and_hash_partitions_agree(self, partition):
        relations, query, k = random_workload(5)
        scoring = EuclideanLogScoring(1.0, 1.0, 1.0)
        oracle = ranked_ids(brute_force_topk(relations, scoring, query, k))
        result = make_algorithm(
            "TBPA", shard_all(relations, 4, partition), scoring, query, k,
            kind=AccessKind.DISTANCE, pull_block=8,
        ).run()
        assert result.completed
        assert ranked_ids(result.combinations) == oracle

    def test_sharded_pull_schedule_matches_single_shard(self):
        """Beyond the ranked output: bounds and rank statistics are
        identical, so even the adaptive pull schedule (depths per
        relation) is partition-invariant."""
        relations, query, k = random_workload(13)
        scoring = EuclideanLogScoring(1.0, 1.0, 1.0)
        ref = make_algorithm(
            "TBPA", relations, scoring, query, k,
            kind=AccessKind.DISTANCE, pull_block=4,
        ).run()
        for shards in (2, 7):
            got = make_algorithm(
                "TBPA", shard_all(relations, shards), scoring, query, k,
                kind=AccessKind.DISTANCE, pull_block=4,
            ).run()
            assert got.depths == ref.depths
            assert got.bound == ref.bound
