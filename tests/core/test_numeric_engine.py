"""Engine-level tests of the NumericTightBound extension scheme."""

import numpy as np
import pytest

from repro.core import (
    AccessKind,
    CosineProximityScoring,
    EuclideanLogScoring,
    ProxRJ,
    Relation,
    RoundRobin,
    brute_force_topk,
)
from repro.core.bounds.numeric import NumericTightBound

pytest.importorskip("scipy")


def small_instance(seed, n=2, size=6, d=2):
    rng = np.random.default_rng(seed)
    relations = [
        Relation(
            f"R{i}", rng.uniform(0.1, 1.0, size), rng.normal(size=(size, d)),
            sigma_max=1.0,
        )
        for i in range(n)
    ]
    return relations, rng.normal(size=d)


class TestNumericTightBoundEngine:
    def test_margin_validation(self):
        with pytest.raises(ValueError):
            NumericTightBound(margin=-0.1)

    @pytest.mark.parametrize("kind", [AccessKind.DISTANCE, AccessKind.SCORE])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_euclidean_matches_oracle(self, kind, seed):
        relations, query = small_instance(seed)
        scoring = EuclideanLogScoring()
        expected = brute_force_topk(relations, scoring, query, 3)
        result = ProxRJ(
            relations, scoring, kind=kind, query=query,
            bound=NumericTightBound(), pull=RoundRobin(), k=3,
        ).run()
        assert [c.key for c in result.combinations] == [c.key for c in expected]

    @pytest.mark.parametrize("seed", [3, 4])
    def test_cosine_matches_oracle_score_access(self, seed):
        relations, query = small_instance(seed, d=3)
        scoring = CosineProximityScoring()
        expected = brute_force_topk(relations, scoring, query, 2)
        result = ProxRJ(
            relations, scoring, kind=AccessKind.SCORE, query=query,
            bound=NumericTightBound(), pull=RoundRobin(), k=2,
        ).run()
        assert [c.key for c in result.combinations] == [c.key for c in expected]

    def test_counters_populated(self):
        relations, query = small_instance(5)
        bound = NumericTightBound()
        ProxRJ(
            relations, EuclideanLogScoring(), kind=AccessKind.SCORE,
            query=query, bound=bound, pull=RoundRobin(), k=2,
        ).run()
        assert bound.counters.updates > 0
        assert bound.counters.entries_created > 0
        assert bound.counters.bound_seconds > 0
