"""Golden tests: every number the paper works out by hand.

Table 1 (aggregate scores), Example 3.1 (corner vs tight bound), Table 3
(all 15 partial-combination bounds), Example 3.2 (the QP reduction), and
the counterexample instances of Theorem 3.1 / Theorem C.1.
"""

import numpy as np
import pytest

from repro.core import (
    AccessKind,
    CornerBound,
    EuclideanLogScoring,
    Relation,
    RoundRobin,
    TightBound,
    ProxRJ,
    brute_force_topk,
)
from repro.core.access import open_streams
from repro.core.bounds.base import EngineState
from repro.core.bounds.geometry import solve_completion
from repro.core.buffers import TopKBuffer

Q = np.zeros(2)
SCORING = EuclideanLogScoring(w_s=1.0, w_q=1.0, w_mu=1.0)


def table1_relations(*, padded: bool = False) -> list[Relation]:
    """The three relations of Table 1.

    Table 1 shows two tuples per relation followed by "...": the relations
    are *not* exhausted at depth 2.  ``padded=True`` appends one distant
    low-score tuple per relation (never in any top-8 and never pulled by
    the tests) so that bound computations treat depth 2 as a prefix, as
    the paper does.
    """
    far = [[50.0, 50.0]]
    pad_score = [0.1]
    r1 = Relation(
        "R1",
        [0.5, 1.0] + (pad_score if padded else []),
        [[0.0, -0.5], [0.0, 1.0]] + (far if padded else []),
        sigma_max=1.0,
    )
    r2 = Relation(
        "R2",
        [1.0, 0.8] + (pad_score if padded else []),
        [[1.0, 1.0], [-2.0, 2.0]] + (far if padded else []),
        sigma_max=1.0,
    )
    r3 = Relation(
        "R3",
        [1.0, 0.4] + (pad_score if padded else []),
        [[-1.0, 1.0], [-2.0, -2.0]] + (far if padded else []),
        sigma_max=1.0,
    )
    return [r1, r2, r3]


class TestTable1Scores:
    """The 8 aggregate scores of Table 1 under eq. (2)."""

    # (tid1, tid2, tid3) -> S(tau); paper rounds to one decimal.
    EXPECTED = {
        (1, 0, 0): -7.0,
        (0, 0, 0): -8.4,
        (1, 1, 0): -13.9,
        (0, 1, 0): -16.3,
        (0, 0, 1): -21.0,
        (1, 0, 1): -22.6,
        (0, 1, 1): -28.9,
        (1, 1, 1): -29.5,
    }

    @pytest.mark.parametrize("key,expected", sorted(EXPECTED.items()))
    def test_combination_score(self, key, expected):
        r1, r2, r3 = table1_relations()
        tuples = (r1[key[0]], r2[key[1]], r3[key[2]])
        assert SCORING.score_combination(tuples, Q) == pytest.approx(expected, abs=0.05)

    def test_brute_force_ranking_matches_table(self):
        combos = brute_force_topk(table1_relations(), SCORING, Q, k=8)
        assert [c.key for c in combos] == sorted(
            self.EXPECTED, key=self.EXPECTED.__getitem__, reverse=True
        )


def _state_after_two_pulls_each() -> EngineState:
    """Engine state matching Table 1: two tuples pulled from each relation
    (distance order from q = 0)."""
    relations = table1_relations(padded=True)
    streams = open_streams(relations, AccessKind.DISTANCE, Q)
    state = EngineState(
        scoring=SCORING,
        kind=AccessKind.DISTANCE,
        query=Q,
        streams=streams,
        k=1,
        output=TopKBuffer(1),
    )
    return state


class TestExample31CornerBound:
    """Example 3.1: t_c = max{-5, -10.25, -10.25} = -5."""

    def test_corner_bound_value(self):
        state = _state_after_two_pulls_each()
        bound = CornerBound()
        t = float("inf")
        for _ in range(2):
            for i, s in enumerate(state.streams):
                tau = s.next()
                t = bound.update(state, i, tau)
        assert t == pytest.approx(-5.0)
        pots = bound.potentials(state)
        assert pots[0] == pytest.approx(-5.0)
        assert pots[1] == pytest.approx(-10.25)
        assert pots[2] == pytest.approx(-10.25)

    def test_corner_bound_cannot_certify_top1(self):
        # The best seen combination scores -7 < t_c = -5: not certifiable.
        state = _state_after_two_pulls_each()
        bound = CornerBound()
        t = float("inf")
        for _ in range(2):
            for i, s in enumerate(state.streams):
                t = bound.update(state, i, s.next())
        best_seen = -7.0
        assert t > best_seen


class TestTable3TightBound:
    """All 15 partial-combination bounds t(tau) and the subset maxima."""

    # Access order within each relation is by distance from q=0, and for
    # Table 1 that matches tid order, so tids equal access ranks here.
    CASES = [
        # (seen {rel: tid}, expected t(tau))
        ({}, -19.2),
        ({0: 0}, -20.6),
        ({0: 1}, -19.2),
        ({1: 0}, -12.8),
        ({1: 1}, -19.4),
        ({2: 0}, -12.8),
        ({2: 1}, -20.1),
        ({0: 0, 1: 0}, -16.0),
        ({0: 0, 1: 1}, -24.0),
        ({0: 1, 1: 0}, -13.5),
        ({0: 1, 1: 1}, -20.4),
        ({0: 0, 2: 0}, -16.0),
        ({0: 0, 2: 1}, -22.0),
        ({0: 1, 2: 0}, -13.5),
        ({0: 1, 2: 1}, -26.4),
        ({1: 0, 2: 0}, -7.0),
        ({1: 0, 2: 1}, -21.0),
        ({1: 1, 2: 0}, -13.1),
        ({1: 1, 2: 1}, -26.8),
    ]

    DELTAS = {0: 1.0, 1: 2 * np.sqrt(2.0), 2: 2 * np.sqrt(2.0)}

    @pytest.mark.parametrize("seen_spec,expected", CASES)
    def test_partial_combination_bound(self, seen_spec, expected):
        relations = table1_relations()
        seen = {
            rel: (relations[rel][tid].score, np.asarray(relations[rel][tid].vector))
            for rel, tid in seen_spec.items()
        }
        unseen = {j: self.DELTAS[j] for j in range(3) if j not in seen_spec}
        sigma = {j: 1.0 for j in unseen}
        result = solve_completion(SCORING, 3, Q, seen, unseen, sigma)
        assert result.value == pytest.approx(expected, abs=0.05)

    def test_global_tight_bound_is_minus_seven(self):
        """Example 3.1: the tight bound after Table 1's pulls is -7,
        certifying tau_1^(2) x tau_2^(1) x tau_3^(1) as top-1."""
        state = _state_after_two_pulls_each()
        bound = TightBound()
        t = float("inf")
        for _ in range(2):
            for i, s in enumerate(state.streams):
                t = bound.update(state, i, s.next())
        assert t == pytest.approx(-7.0, abs=0.01)

    def test_tight_potentials(self):
        """pot_i = max over subsets excluding i: pot_1 = t_{2,3} = -7."""
        state = _state_after_two_pulls_each()
        bound = TightBound()
        for _ in range(2):
            for i, s in enumerate(state.streams):
                bound.update(state, i, s.next())
        pots = bound.potentials(state)
        assert pots[0] == pytest.approx(-7.0, abs=0.01)
        assert pots[1] == pytest.approx(-12.8, abs=0.05)
        assert pots[2] == pytest.approx(-12.8, abs=0.05)


class TestExample32QPReduction:
    """Example 3.2: the worked solution of problem (12) via (14)."""

    def test_partial_tau21(self):
        relations = table1_relations()
        seen = {1: (1.0, np.array([1.0, 1.0]))}
        unseen = {0: 1.0, 2: 2 * np.sqrt(2.0)}
        sigma = {0: 1.0, 2: 1.0}
        result = solve_completion(SCORING, 3, Q, seen, unseen, sigma)
        assert result.value == pytest.approx(-12.8, abs=0.05)
        np.testing.assert_allclose(
            result.positions[0], [np.sqrt(2) / 2, np.sqrt(2) / 2], atol=1e-6
        )
        np.testing.assert_allclose(result.positions[2], [2.0, 2.0], atol=1e-6)

    def test_partial_tau11_x_tau31(self):
        relations = table1_relations()
        seen = {
            0: (0.5, np.array([0.0, -0.5])),
            2: (1.0, np.array([-1.0, 1.0])),
        }
        unseen = {1: 2 * np.sqrt(2.0)}
        sigma = {1: 1.0}
        result = solve_completion(SCORING, 3, Q, seen, unseen, sigma)
        # theta projections: -0.22 and 1.34; theta_2* = 2 sqrt 2.
        assert result.theta[0] == pytest.approx(-0.2236, abs=1e-3)
        assert result.theta[2] == pytest.approx(1.3416, abs=1e-3)
        assert result.theta[1] == pytest.approx(2 * np.sqrt(2.0), abs=1e-6)
        np.testing.assert_allclose(result.positions[1], [-2.53, 1.26], atol=0.01)
        assert result.value == pytest.approx(-16.0, abs=0.05)


class TestTheorem31Counterexample:
    """The instance from the proof of Theorem 3.1: the tight bound
    certifies the top-1 at depths (2, 1), while the corner bound stays
    above the answer's score no matter how much padding R1 contains."""

    def _relations(self, padding: int) -> list[Relation]:
        # w_s = 0 makes scores immaterial; pad R1 with tuples between
        # distance 1 and sqrt(1.5) that the corner bound forces HRJN to
        # read.
        r1_vecs = [[0.0, -0.5], [0.0, 1.0]]
        for i in range(padding):
            r = 1.0 + (np.sqrt(1.5) - 1.0 - 1e-6) * (i + 1) / (padding + 1)
            r1_vecs.append([r, 0.0])
        r1_vecs.append([2.0, 0.0])  # one tuple past sqrt(1.5)
        r1 = Relation("R1", [1.0] * len(r1_vecs), r1_vecs)
        r2 = Relation("R2", [1.0, 1.0], [[0.0, 2.0], [-2.0, 2.0]])
        return [r1, r2]

    def _scoring(self):
        return EuclideanLogScoring(w_s=0.0, w_q=1.0, w_mu=1.0)

    def test_top1_score(self):
        relations = self._relations(padding=0)
        combos = brute_force_topk(relations, self._scoring(), Q, k=1)
        assert combos[0].score == pytest.approx(-5.5)
        assert combos[0].key == (1, 0)

    @pytest.mark.parametrize("padding", [0, 5, 20])
    def test_tight_bound_depth_is_constant(self, padding):
        relations = self._relations(padding)
        engine = ProxRJ(
            relations,
            self._scoring(),
            kind=AccessKind.DISTANCE,
            query=Q,
            bound=TightBound(),
            pull=RoundRobin(),
            k=1,
        )
        result = engine.run()
        assert result.combinations[0].score == pytest.approx(-5.5)
        # Tight bound stops without reading the padding.
        assert result.depths[0] <= 3

    @pytest.mark.parametrize("padding", [0, 5, 20])
    def test_corner_bound_depth_grows_with_padding(self, padding):
        relations = self._relations(padding)
        engine = ProxRJ(
            relations,
            self._scoring(),
            kind=AccessKind.DISTANCE,
            query=Q,
            bound=CornerBound(),
            pull=RoundRobin(),
            k=1,
        )
        result = engine.run()
        assert result.combinations[0].score == pytest.approx(-5.5)
        # HRJN must read past all the padding in R1 before t_c <= -5.5.
        assert result.depths[0] >= padding + 3


class TestTheoremC1Counterexample:
    """Score-access analogue: the corner bound (36) cannot certify the
    top-1 until the score drops below e^{-4/3}, while the tight bound
    stops immediately."""

    def _relations(self, padding: int) -> list[Relation]:
        r1 = Relation(
            "R1", [1.0, np.exp(-5.0)], [[1.0], [0.0]], sigma_max=1.0
        )
        scores2 = [1.0, 1.0]
        vecs2 = [[1.0], [1.0 / 3.0]]
        for i in range(padding):
            # Scores strictly between e^{-4/3} and 1, far away in space.
            scores2.append(float(np.exp(-1.0)) - i * 1e-6)
            vecs2.append([10.0])
        scores2.append(float(np.exp(-4.0 / 3.0)) - 1e-3)
        vecs2.append([10.0])
        r2 = Relation("R2", scores2, vecs2, sigma_max=1.0)
        return [r1, r2]

    def _scoring(self):
        return EuclideanLogScoring(1.0, 1.0, 1.0)

    def test_top1_is_minus_four_thirds(self):
        relations = self._relations(0)
        combos = brute_force_topk(relations, self._scoring(), np.zeros(1), k=1)
        assert combos[0].score == pytest.approx(-4.0 / 3.0)

    @pytest.mark.parametrize("padding", [0, 10])
    def test_corner_reads_the_padding_but_tight_does_not(self, padding):
        relations = self._relations(padding)
        corner = ProxRJ(
            relations, self._scoring(), kind=AccessKind.SCORE,
            query=np.zeros(1), bound=CornerBound(), pull=RoundRobin(), k=1,
        ).run()
        tight = ProxRJ(
            relations, self._scoring(), kind=AccessKind.SCORE,
            query=np.zeros(1), bound=TightBound(), pull=RoundRobin(), k=1,
        ).run()
        assert corner.combinations[0].score == pytest.approx(-4.0 / 3.0)
        assert tight.combinations[0].score == pytest.approx(-4.0 / 3.0)
        assert tight.depths[1] <= 3
        if padding:
            assert corner.depths[1] >= padding + 2
            assert corner.sum_depths > tight.sum_depths
