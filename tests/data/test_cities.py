"""Tests for the city POI datasets (Appendix D.2 substitute)."""

import numpy as np
import pytest

from repro.data import CITIES, city_names, city_problem


class TestCityCatalogue:
    def test_five_cities_in_paper_order(self):
        assert city_names() == ["SF", "NY", "BO", "DA", "HO"]

    def test_layouts_complete(self):
        for code, layout in CITIES.items():
            assert layout.code == code
            assert set(layout.counts) == {"hotels", "restaurants", "theaters"}
            assert layout.districts
            assert all(len(d) == 4 for d in layout.districts)

    def test_unknown_city(self):
        with pytest.raises(KeyError, match="SF"):
            city_problem("XX")

    def test_case_insensitive(self):
        rels_a, _ = city_problem("sf")
        rels_b, _ = city_problem("SF")
        assert [len(r) for r in rels_a] == [len(r) for r in rels_b]


class TestCityProblem:
    @pytest.mark.parametrize("code", ["SF", "NY", "BO", "DA", "HO"])
    def test_three_typed_relations(self, code):
        relations, query = city_problem(code)
        assert [r.name for r in relations] == ["hotels", "restaurants", "theaters"]
        assert all(r.dim == 2 for r in relations)
        assert query.shape == (2,)

    def test_counts_match_layout(self):
        relations, _ = city_problem("SF")
        layout = CITIES["SF"]
        for rel in relations:
            assert len(rel) == layout.counts[rel.name]

    def test_restaurants_outnumber_theaters(self):
        for code in city_names():
            relations, _ = city_problem(code)
            by_name = {r.name: len(r) for r in relations}
            assert by_name["restaurants"] > by_name["hotels"] > by_name["theaters"]

    def test_ratings_are_valid_scores(self):
        relations, _ = city_problem("NY")
        for rel in relations:
            scores = [t.score for t in rel]
            assert min(scores) >= 0.05
            assert max(scores) <= 1.0
            assert rel.sigma_max == 1.0

    def test_deterministic_snapshot(self):
        a, qa = city_problem("BO")
        b, qb = city_problem("BO")
        np.testing.assert_allclose(qa, qb)
        for ra, rb in zip(a, b):
            np.testing.assert_allclose(
                [t.score for t in ra], [t.score for t in rb]
            )
            np.testing.assert_allclose(
                np.array([t.vector for t in ra]), np.array([t.vector for t in rb])
            )

    def test_attrs_have_names_and_types(self):
        relations, _ = city_problem("HO")
        for rel in relations:
            t = rel[0]
            assert t.attrs["type"] == rel.name
            assert t.attrs["name"]

    def test_points_cluster_near_districts(self):
        relations, _ = city_problem("DA")
        layout = CITIES["DA"]
        centres = np.array([[d[0], d[1]] for d in layout.districts])
        pts = np.array([t.vector for t in relations[1]])  # restaurants
        dists = np.linalg.norm(pts[:, None, :] - centres[None, :, :], axis=2).min(axis=1)
        # Most points within a few spreads of some district centre.
        assert np.quantile(dists, 0.9) < 6.0

    def test_runs_end_to_end(self):
        """The paper's Figure 3(i) workload shape: TBPA beats CBPA on I/O."""
        from repro.core import AccessKind, EuclideanLogScoring, make_algorithm

        relations, query = city_problem("SF")
        scoring = EuclideanLogScoring()
        cb = make_algorithm(
            "CBPA", relations, scoring, query, 10, kind=AccessKind.DISTANCE
        ).run()
        tb = make_algorithm(
            "TBPA", relations, scoring, query, 10, kind=AccessKind.DISTANCE
        ).run()
        assert [c.score for c in cb.combinations] == pytest.approx(
            [c.score for c in tb.combinations]
        )
        assert tb.sum_depths <= cb.sum_depths
