"""Tests for dataset persistence and the adversarial generators."""

import numpy as np
import pytest

from repro.core import AccessKind, EuclideanLogScoring, brute_force_topk, make_algorithm
from repro.data import (
    anticorrelated_problem,
    city_problem,
    clustered_problem,
    correlated_problem,
    generate_problem,
    load_problem_npz,
    load_relation_csv,
    save_problem_npz,
    save_relation_csv,
    SyntheticConfig,
)


class TestCSVRoundTrip:
    def test_roundtrip_preserves_everything(self, tmp_path):
        relations, _ = city_problem("SF")
        rel = relations[2]  # theaters, has attrs
        path = tmp_path / "theaters.csv"
        save_relation_csv(rel, path)
        back = load_relation_csv(path)
        assert back.name == rel.name
        assert back.sigma_max == rel.sigma_max
        assert len(back) == len(rel)
        np.testing.assert_array_equal(
            [t.score for t in back], [t.score for t in rel]
        )
        np.testing.assert_array_equal(
            np.array([t.vector for t in back]), np.array([t.vector for t in rel])
        )
        assert back[0].attrs == rel[0].attrs

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("score,x0\n0.5,1.0\n")
        with pytest.raises(ValueError, match="header"):
            load_relation_csv(path)

    def test_relation_without_attrs(self, tmp_path):
        relations, _ = generate_problem(SyntheticConfig(n_tuples=10))
        path = tmp_path / "r.csv"
        save_relation_csv(relations[0], path)
        back = load_relation_csv(path)
        assert len(back) == 10
        assert back[3].attrs == {}


class TestNPZRoundTrip:
    def test_roundtrip(self, tmp_path):
        relations, query = city_problem("BO")
        path = tmp_path / "boston.npz"
        save_problem_npz(relations, query, path)
        back_rels, back_query = load_problem_npz(path)
        np.testing.assert_allclose(back_query, query)
        assert [r.name for r in back_rels] == [r.name for r in relations]
        for a, b in zip(relations, back_rels):
            assert a.sigma_max == b.sigma_max
            np.testing.assert_array_equal(
                np.array([t.vector for t in a]), np.array([t.vector for t in b])
            )
            assert a[0].attrs == b[0].attrs

    def test_loaded_problem_gives_identical_results(self, tmp_path):
        relations, query = generate_problem(SyntheticConfig(n_tuples=40, seed=5))
        path = tmp_path / "p.npz"
        save_problem_npz(relations, query, path)
        back_rels, back_query = load_problem_npz(path)
        scoring = EuclideanLogScoring()
        a = make_algorithm(
            "TBPA", relations, scoring, query, 5, kind=AccessKind.DISTANCE
        ).run()
        b = make_algorithm(
            "TBPA", back_rels, scoring, back_query, 5, kind=AccessKind.DISTANCE
        ).run()
        assert [c.key for c in a.combinations] == [c.key for c in b.combinations]
        assert a.depths == b.depths


class TestGenerators:
    @pytest.mark.parametrize(
        "factory", [clustered_problem, correlated_problem, anticorrelated_problem]
    )
    def test_shapes_and_validity(self, factory):
        relations, query = factory(n_relations=3, dims=4, n_tuples=50, seed=1)
        assert len(relations) == 3
        assert all(r.dim == 4 for r in relations)
        assert query.shape == (4,)
        for rel in relations:
            for t in rel:
                assert 0.05 <= t.score <= 1.0

    def test_correlation_signs(self):
        (corr_rels, q) = correlated_problem(n_tuples=400, seed=2, noise=0.02)
        (anti_rels, _) = anticorrelated_problem(n_tuples=400, seed=2, noise=0.02)

        def corrcoef(rel):
            d = np.array([np.linalg.norm(t.vector - q) for t in rel])
            s = np.array([t.score for t in rel])
            return np.corrcoef(d, s)[0, 1]

        assert corrcoef(corr_rels[0]) < -0.8
        assert corrcoef(anti_rels[0]) > 0.8

    def test_clusters_share_centres_across_relations(self):
        relations, _ = clustered_problem(
            n_relations=2, n_clusters=3, cluster_spread=0.05, n_tuples=150, seed=3
        )
        a = np.array([t.vector for t in relations[0]])
        b = np.array([t.vector for t in relations[1]])
        # Every point of R2 lies close to some point of R1 (same centres).
        d = np.linalg.norm(a[None, :, :] - b[:, None, :], axis=2).min(axis=1)
        assert np.quantile(d, 0.95) < 0.5

    @pytest.mark.parametrize(
        "factory", [clustered_problem, correlated_problem, anticorrelated_problem]
    )
    def test_algorithms_agree_with_oracle(self, factory):
        relations, query = factory(n_tuples=25, seed=4)
        scoring = EuclideanLogScoring()
        expected = brute_force_topk(relations, scoring, query, 4)
        for algo in ("CBRR", "TBPA"):
            result = make_algorithm(
                algo, relations, scoring, query, 4, kind=AccessKind.DISTANCE
            ).run()
            assert [c.key for c in result.combinations] == [
                c.key for c in expected
            ]

    def test_determinism(self):
        a, _ = clustered_problem(seed=9, n_tuples=30)
        b, _ = clustered_problem(seed=9, n_tuples=30)
        np.testing.assert_array_equal(
            [t.score for t in a[0]], [t.score for t in b[0]]
        )
