"""Tests for the Appendix D.1 synthetic generator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import SyntheticConfig, generate_problem, generate_relation


class TestSyntheticConfig:
    def test_defaults_are_table2_bold(self):
        c = SyntheticConfig()
        assert (c.n_relations, c.dims, c.density, c.skew) == (2, 2, 50.0, 1.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_relations": 0},
            {"dims": 0},
            {"density": 0.0},
            {"skew": 0.5},
            {"n_tuples": 0},
            {"score_floor": 0.0},
            {"score_floor": 1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            SyntheticConfig(**kwargs)

    def test_densities_no_skew(self):
        assert SyntheticConfig(density=40.0).densities() == [40.0, 40.0]

    def test_densities_with_skew(self):
        d1, d2 = SyntheticConfig(density=50.0, skew=4.0).densities()
        assert d1 / d2 == pytest.approx(4.0)
        assert d1 * d2 == pytest.approx(50.0 * 50.0)  # geometric mean kept

    def test_skew_only_first_two(self):
        ds = SyntheticConfig(n_relations=3, density=50.0, skew=4.0).densities()
        assert ds[2] == 50.0


class TestGenerateRelation:
    def test_density_matches_volume(self):
        rng = np.random.default_rng(0)
        rel = generate_relation(
            "R", rng, dims=2, density=50.0, n_tuples=200, score_floor=0.05
        )
        side = (200 / 50.0) ** 0.5
        pts = np.array([t.vector for t in rel])
        assert pts.min() >= -side / 2 - 1e-9
        assert pts.max() <= side / 2 + 1e-9
        assert len(rel) == 200

    def test_scores_in_range(self):
        rng = np.random.default_rng(1)
        rel = generate_relation(
            "R", rng, dims=1, density=10.0, n_tuples=100, score_floor=0.3
        )
        scores = [t.score for t in rel]
        assert min(scores) >= 0.3
        assert max(scores) <= 1.0
        assert rel.sigma_max == 1.0


class TestGenerateProblem:
    def test_shapes(self):
        relations, query = generate_problem(
            SyntheticConfig(n_relations=3, dims=4, n_tuples=50)
        )
        assert len(relations) == 3
        assert all(r.dim == 4 for r in relations)
        assert query.shape == (4,)
        np.testing.assert_allclose(query, 0.0)

    def test_determinism(self):
        a, _ = generate_problem(SyntheticConfig(seed=7, n_tuples=20))
        b, _ = generate_problem(SyntheticConfig(seed=7, n_tuples=20))
        for ra, rb in zip(a, b):
            np.testing.assert_allclose(
                [t.score for t in ra], [t.score for t in rb]
            )

    def test_different_seeds_differ(self):
        a, _ = generate_problem(SyntheticConfig(seed=1, n_tuples=20))
        b, _ = generate_problem(SyntheticConfig(seed=2, n_tuples=20))
        assert [t.score for t in a[0]] != [t.score for t in b[0]]

    @settings(max_examples=20, deadline=None)
    @given(st.integers(1, 4), st.integers(1, 8), st.floats(10.0, 200.0))
    def test_skew_shrinks_first_relation_region(self, n, d, rho):
        """Higher density packs the same tuple count into a smaller cube."""
        cfg = SyntheticConfig(
            n_relations=max(n, 2), dims=d, density=rho, skew=4.0, n_tuples=64
        )
        relations, _ = generate_problem(cfg)
        span0 = np.ptp([t.vector for t in relations[0]], axis=0).max()
        span1 = np.ptp([t.vector for t in relations[1]], axis=0).max()
        assert span0 <= span1 + 1e-9
