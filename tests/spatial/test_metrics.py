"""Unit and property tests for distance metrics and centroids."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.spatial import (
    METRICS,
    chebyshev,
    cosine_distance,
    euclidean,
    geometric_median,
    get_metric,
    manhattan,
    mean_centroid,
    squared_euclidean,
)

finite_floats = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)


def vectors(dim: int):
    return arrays(np.float64, (dim,), elements=finite_floats)


class TestBasicDistances:
    def test_euclidean_known_value(self):
        assert euclidean([0.0, 0.0], [3.0, 4.0]) == pytest.approx(5.0)

    def test_squared_euclidean_known_value(self):
        assert squared_euclidean([0.0, 0.0], [3.0, 4.0]) == pytest.approx(25.0)

    def test_manhattan_known_value(self):
        assert manhattan([1.0, 2.0], [4.0, -2.0]) == pytest.approx(7.0)

    def test_chebyshev_known_value(self):
        assert chebyshev([1.0, 2.0], [4.0, -2.0]) == pytest.approx(4.0)

    def test_cosine_orthogonal(self):
        assert cosine_distance([1.0, 0.0], [0.0, 1.0]) == pytest.approx(1.0)

    def test_cosine_parallel(self):
        assert cosine_distance([2.0, 0.0], [5.0, 0.0]) == pytest.approx(0.0)

    def test_cosine_antiparallel(self):
        assert cosine_distance([1.0, 0.0], [-3.0, 0.0]) == pytest.approx(2.0)

    def test_cosine_zero_vector_convention(self):
        assert cosine_distance([0.0, 0.0], [1.0, 1.0]) == pytest.approx(1.0)

    def test_get_metric_lookup(self):
        assert get_metric("euclidean") is euclidean

    def test_get_metric_unknown_raises_with_listing(self):
        with pytest.raises(KeyError, match="euclidean"):
            get_metric("nope")

    def test_registry_contains_all(self):
        assert set(METRICS) == {
            "euclidean",
            "squared_euclidean",
            "manhattan",
            "chebyshev",
            "cosine",
        }


class TestMetricProperties:
    @given(vectors(3), vectors(3))
    def test_euclidean_symmetry(self, x, y):
        assert euclidean(x, y) == pytest.approx(euclidean(y, x))

    @given(vectors(3))
    def test_euclidean_identity(self, x):
        assert euclidean(x, x) == 0.0

    @given(vectors(3), vectors(3), vectors(3))
    def test_euclidean_triangle_inequality(self, x, y, z):
        assert euclidean(x, z) <= euclidean(x, y) + euclidean(y, z) + 1e-9

    @given(vectors(4), vectors(4), vectors(4))
    def test_manhattan_triangle_inequality(self, x, y, z):
        assert manhattan(x, z) <= manhattan(x, y) + manhattan(y, z) + 1e-9

    @given(vectors(2), vectors(2))
    def test_squared_euclidean_consistent_with_euclidean(self, x, y):
        assert squared_euclidean(x, y) == pytest.approx(euclidean(x, y) ** 2)

    @given(vectors(3), vectors(3))
    def test_cosine_range(self, x, y):
        assert 0.0 <= cosine_distance(x, y) <= 2.0


class TestMeanCentroid:
    def test_single_point(self):
        np.testing.assert_allclose(mean_centroid([[1.0, 2.0]]), [1.0, 2.0])

    def test_known_mean(self):
        pts = [[0.0, 0.0], [2.0, 0.0], [1.0, 3.0]]
        np.testing.assert_allclose(mean_centroid(pts), [1.0, 1.0])

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            mean_centroid(np.zeros((0, 2)))

    @settings(max_examples=50)
    @given(arrays(np.float64, (5, 3), elements=finite_floats))
    def test_mean_minimises_sum_of_squares(self, pts):
        c = mean_centroid(pts)
        base = sum(squared_euclidean(p, c) for p in pts)
        rng = np.random.default_rng(0)
        for _ in range(10):
            other = c + rng.normal(scale=0.5, size=3)
            assert base <= sum(squared_euclidean(p, other) for p in pts) + 1e-6


class TestGeometricMedian:
    def test_single_point(self):
        np.testing.assert_allclose(geometric_median([[3.0, 4.0]]), [3.0, 4.0])

    def test_collinear_median(self):
        pts = [[0.0, 0.0], [1.0, 0.0], [10.0, 0.0]]
        med = geometric_median(pts)
        assert med[0] == pytest.approx(1.0, abs=1e-6)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            geometric_median(np.zeros((0, 2)))

    def test_coincident_points(self):
        pts = [[1.0, 1.0]] * 4 + [[5.0, 5.0]]
        med = geometric_median(pts)
        np.testing.assert_allclose(med, [1.0, 1.0], atol=1e-6)

    @settings(max_examples=30)
    @given(arrays(np.float64, (6, 2), elements=finite_floats))
    def test_median_near_optimal(self, pts):
        med = geometric_median(pts)
        base = sum(euclidean(p, med) for p in pts)
        rng = np.random.default_rng(1)
        for _ in range(10):
            other = med + rng.normal(scale=0.3, size=2)
            # Weiszfeld converges to tolerance, not to machine precision:
            # allow a scale-relative slack.
            assert base <= sum(euclidean(p, other) for p in pts) + 1e-4 * (1 + base)
