"""Tests for the uniform grid index, cross-checked against the k-d tree."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.spatial import KDTree
from repro.spatial.grid import GridIndex

coords = st.floats(min_value=-30.0, max_value=30.0, allow_nan=False, allow_infinity=False)


class TestConstruction:
    def test_empty(self):
        grid = GridIndex(np.zeros((0, 2)))
        assert len(grid) == 0
        assert list(grid.iter_nearest([0.0, 0.0])) == []

    def test_payload_mismatch(self):
        with pytest.raises(ValueError, match="payloads"):
            GridIndex([[0.0, 0.0]], payloads=[])

    def test_bad_cell_size(self):
        with pytest.raises(ValueError, match="cell_size"):
            GridIndex([[0.0, 0.0]], cell_size=0.0)

    def test_auto_cell_size_positive(self):
        rng = np.random.default_rng(0)
        grid = GridIndex(rng.normal(size=(100, 2)))
        assert grid.cell_size > 0

    def test_coincident_points(self):
        grid = GridIndex([[1.0, 1.0]] * 7)
        assert len(list(grid.iter_nearest([0.0, 0.0]))) == 7


class TestQueries:
    def test_query_dim_mismatch(self):
        grid = GridIndex([[0.0, 0.0]])
        with pytest.raises(ValueError, match="shape"):
            list(grid.iter_nearest([0.0]))

    def test_nearest(self):
        grid = GridIndex([[0.0], [5.0], [2.0]], cell_size=1.0)
        assert grid.nearest([4.5])[0][1] == 1

    def test_nearest_invalid_k(self):
        with pytest.raises(ValueError):
            GridIndex([[0.0]]).nearest([0.0], k=0)

    def test_range_query(self):
        grid = GridIndex([[0.0], [1.0], [3.0]], cell_size=1.0)
        got = grid.range_query([0.0], radius=1.5)
        assert [p for _, p in got] == [0, 1]

    def test_range_negative_radius(self):
        with pytest.raises(ValueError):
            GridIndex([[0.0]]).range_query([0.0], radius=-1.0)


class TestCrossCheckAgainstKDTree:
    @settings(max_examples=40, deadline=None)
    @given(
        arrays(np.float64, st.tuples(st.integers(1, 50), st.just(2)), elements=coords),
        arrays(np.float64, (2,), elements=coords),
    )
    def test_same_distance_stream(self, pts, q):
        grid = GridIndex(pts)
        tree = KDTree(pts)
        grid_d = [d for d, _ in grid.iter_nearest(q)]
        tree_d = [d for d, _ in tree.iter_nearest(q)]
        np.testing.assert_allclose(grid_d, tree_d, atol=1e-9)

    @settings(max_examples=25, deadline=None)
    @given(
        arrays(np.float64, st.tuples(st.integers(1, 40), st.just(3)), elements=coords),
        arrays(np.float64, (3,), elements=coords),
        st.floats(min_value=0.1, max_value=20.0),
    )
    def test_same_range_results(self, pts, q, radius):
        grid = GridIndex(pts)
        tree = KDTree(pts)
        grid_ids = sorted(p for _, p in grid.range_query(q, radius))
        tree_ids = sorted(p for _, p in tree.range_query(q, radius))
        assert grid_ids == tree_ids

    def test_monotone_stream(self):
        rng = np.random.default_rng(3)
        grid = GridIndex(rng.normal(size=(200, 2)))
        dists = [d for d, _ in grid.iter_nearest(np.zeros(2))]
        assert all(a <= b + 1e-12 for a, b in zip(dists, dists[1:]))
