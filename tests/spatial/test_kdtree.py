"""Tests for the k-d tree and its incremental nearest-neighbour stream."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.spatial import KDTree

coords = st.floats(min_value=-50.0, max_value=50.0, allow_nan=False, allow_infinity=False)


class TestConstruction:
    def test_empty_tree(self):
        tree = KDTree(np.zeros((0, 2)))
        assert len(tree) == 0
        assert list(tree.iter_nearest([0.0, 0.0])) == []

    def test_payload_length_mismatch_raises(self):
        with pytest.raises(ValueError, match="payloads"):
            KDTree([[0.0, 0.0], [1.0, 1.0]], payloads=["a"])

    def test_bad_leaf_size_raises(self):
        with pytest.raises(ValueError, match="leaf_size"):
            KDTree([[0.0, 0.0]], leaf_size=0)

    def test_default_payloads_are_indices(self):
        tree = KDTree([[0.0], [5.0], [2.0]])
        dist, payload = next(tree.iter_nearest([4.9]))
        assert payload == 1
        assert dist == pytest.approx(0.1)

    def test_duplicate_points_all_returned(self):
        pts = [[1.0, 1.0]] * 20
        tree = KDTree(pts)
        results = list(tree.iter_nearest([0.0, 0.0]))
        assert len(results) == 20
        assert all(d == pytest.approx(np.sqrt(2)) for d, _ in results)


class TestQueries:
    def test_query_dim_mismatch_raises(self):
        tree = KDTree([[0.0, 0.0]])
        with pytest.raises(ValueError, match="shape"):
            list(tree.iter_nearest([0.0, 0.0, 0.0]))

    def test_nearest_k(self):
        tree = KDTree([[0.0], [1.0], [2.0], [3.0]])
        got = tree.nearest([0.2], k=2)
        assert [p for _, p in got] == [0, 1]

    def test_nearest_invalid_k(self):
        tree = KDTree([[0.0]])
        with pytest.raises(ValueError):
            tree.nearest([0.0], k=0)

    def test_range_query(self):
        tree = KDTree([[0.0], [1.0], [2.0], [10.0]])
        got = tree.range_query([0.0], radius=2.5)
        assert [p for _, p in got] == [0, 1, 2]

    def test_range_query_negative_radius(self):
        tree = KDTree([[0.0]])
        with pytest.raises(ValueError):
            tree.range_query([0.0], radius=-1.0)

    def test_custom_payloads(self):
        tree = KDTree([[0.0], [9.0]], payloads=["near", "far"])
        assert tree.nearest([1.0])[0][1] == "near"


class TestOrderingProperty:
    @settings(max_examples=40, deadline=None)
    @given(
        arrays(np.float64, st.tuples(st.integers(1, 60), st.just(3)), elements=coords),
        arrays(np.float64, (3,), elements=coords),
    )
    def test_stream_matches_brute_force_order(self, pts, q):
        tree = KDTree(pts, leaf_size=4)
        stream = [d for d, _ in tree.iter_nearest(q)]
        brute = sorted(np.linalg.norm(pts - q, axis=1))
        np.testing.assert_allclose(stream, brute, atol=1e-9)

    @settings(max_examples=40, deadline=None)
    @given(
        arrays(np.float64, st.tuples(st.integers(1, 60), st.just(2)), elements=coords),
        arrays(np.float64, (2,), elements=coords),
    )
    def test_stream_is_monotone(self, pts, q):
        tree = KDTree(pts)
        dists = [d for d, _ in tree.iter_nearest(q)]
        assert all(a <= b + 1e-12 for a, b in zip(dists, dists[1:]))

    @settings(max_examples=20, deadline=None)
    @given(
        arrays(np.float64, st.tuples(st.integers(1, 40), st.just(2)), elements=coords),
        arrays(np.float64, (2,), elements=coords),
        st.integers(1, 10),
    )
    def test_knn_matches_brute_force_set(self, pts, q, k):
        k = min(k, len(pts))
        tree = KDTree(pts, leaf_size=2)
        got = tree.nearest(q, k=k)
        brute = sorted(np.linalg.norm(pts - q, axis=1))[:k]
        np.testing.assert_allclose([d for d, _ in got], brute, atol=1e-9)

    def test_laziness_partial_consumption(self):
        # Consuming one element must not require distances to everything:
        # we only verify the generator protocol here (cheap smoke check).
        rng = np.random.default_rng(7)
        tree = KDTree(rng.normal(size=(1000, 2)), leaf_size=16)
        it = tree.iter_nearest([0.0, 0.0])
        first = next(it)
        second = next(it)
        assert first[0] <= second[0]
