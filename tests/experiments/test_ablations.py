"""Smoke and shape tests for the beyond-the-paper ablation studies."""

import pytest

from repro.experiments.ablations import (
    ABLATIONS,
    ablation_bound_period,
    ablation_probe,
    ablation_workload,
)


class TestAblations:
    def test_registry(self):
        assert set(ABLATIONS) == {
            "workload", "bound-period", "probe", "score-access", "approx-budget"
        }

    def test_workload_table_structure(self):
        out = ablation_workload(k=3, seeds=1)
        for token in ("uniform", "clustered", "correlated", "anticorrelated", "TBPA"):
            assert token in out

    def test_workload_tight_wins_everywhere(self):
        out = ablation_workload(k=3, seeds=1)
        for line in out.splitlines()[2:]:
            cols = line.split()
            cbrr, tbpa = float(cols[1]), float(cols[4])
            assert tbpa <= cbrr

    def test_bound_period_io_monotone_trend(self):
        out = ablation_bound_period(k=3, seeds=1, periods=(1, 8))
        rows = [l.split() for l in out.splitlines()[2:] if l.strip()]
        depths = [float(r[1]) for r in rows]
        # Staler bounds can only read more (never fewer) tuples.
        assert depths[0] <= depths[-1]

    def test_probe_accesses_fall_with_wmu(self):
        out = ablation_probe(k=3, seeds=1, w_mus=(0.5, 4.0))
        rows = [l.split() for l in out.splitlines()[2:] if l.strip()]
        probe_low, probe_high = float(rows[0][2]), float(rows[1][2])
        assert probe_high <= probe_low

    def test_cli(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["ablation", "bound-period", "--seeds", "1"]) == 0
        assert "period" in capsys.readouterr().out


class TestNewAblations:
    def test_score_access_tight_wins(self):
        from repro.experiments.ablations import ablation_score_access

        out = ablation_score_access(seeds=1, ks=(1, 5))
        rows = [l.split() for l in out.splitlines()[2:] if l.strip()]
        for row in rows:
            cbrr, tbpa = float(row[1]), float(row[4])
            assert tbpa <= cbrr

    def test_approx_budget_converges(self):
        from repro.experiments.ablations import ablation_approx_budget

        out = ablation_approx_budget(k=3, seeds=1, budgets=(0, 64))
        rows = [l.split() for l in out.splitlines()[2:] if l.strip()]
        by_label = {r[0]: float(r[1]) for r in rows}
        # Large budget reads exactly what the exact tight bound reads,
        # budget 0 no less.
        assert by_label["64"] == by_label["exact"]
        assert by_label["0"] >= by_label["exact"]

    def test_cli_new_names(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["ablation", "score-access", "--seeds", "1"]) == 0
        assert "Appendix C" in capsys.readouterr().out
