"""Tests for the sampling-based depth estimator."""

import numpy as np
import pytest

from repro.experiments.costmodel import DepthModel, calibration_observations


class TestDepthModelMechanics:
    def test_recovers_planted_power_law(self):
        rng = np.random.default_rng(0)
        model = DepthModel(features=("k", "density"))
        obs = []
        for _ in range(40):
            k = float(rng.uniform(1, 60))
            rho = float(rng.uniform(10, 300))
            depth = 3.0 * k**0.4 * rho**0.25
            obs.append(({"k": k, "density": rho}, depth))
        model.fit(obs)
        assert model.exponent("k") == pytest.approx(0.4, abs=1e-6)
        assert model.exponent("density") == pytest.approx(0.25, abs=1e-6)
        assert model.predict({"k": 10, "density": 100}) == pytest.approx(
            3.0 * 10**0.4 * 100**0.25, rel=1e-6
        )

    def test_unfitted_raises(self):
        with pytest.raises(RuntimeError):
            DepthModel(features=("k",)).predict({"k": 1})

    def test_too_few_observations(self):
        with pytest.raises(ValueError, match="at least"):
            DepthModel(features=("k", "density")).fit([({"k": 1, "density": 1}, 5.0)])

    def test_nonpositive_feature_rejected(self):
        model = DepthModel(features=("k",))
        with pytest.raises(ValueError, match="positive"):
            model.fit([({"k": 0}, 5.0), ({"k": 1}, 5.0)])

    def test_nonpositive_depth_rejected(self):
        model = DepthModel(features=("k",))
        with pytest.raises(ValueError, match="positive"):
            model.fit([({"k": 1}, 0.0), ({"k": 2}, 5.0)])


class TestCalibrationOnRealRuns:
    @pytest.fixture(scope="class")
    def observations(self):
        return calibration_observations(
            ks=(1, 5, 20), densities=(20.0, 50.0), seeds=2, n_tuples=250
        )

    def test_observation_grid(self, observations):
        assert len(observations) == 6
        assert all(depth > 0 for _, depth in observations)

    def test_fitted_exponents_match_paper_trends(self, observations):
        """The paper reports sumDepths grows sublinearly with K and
        increases with density: exponents in (0, 1)."""
        model = DepthModel(features=("k", "density")).fit(observations)
        assert 0.0 < model.exponent("k") < 1.0
        assert 0.0 < model.exponent("density") < 1.0

    def test_interpolation_within_factor_two(self, observations):
        """Predict a held-out middle point from the calibration grid."""
        from repro.core import AccessKind, EuclideanLogScoring, make_algorithm
        from repro.data import SyntheticConfig, generate_problem

        model = DepthModel(features=("k", "density")).fit(observations)
        predicted = model.predict({"k": 10, "density": 35.0})

        scoring = EuclideanLogScoring()
        actual = []
        for seed in range(3):
            relations, query = generate_problem(
                SyntheticConfig(density=35.0, n_tuples=250, seed=seed)
            )
            result = make_algorithm(
                "TBPA", relations, scoring, query, 10, kind=AccessKind.DISTANCE
            ).run()
            actual.append(result.sum_depths)
        mean_actual = float(np.mean(actual))
        assert predicted == pytest.approx(mean_actual, rel=1.0)  # within 2x
