"""Tests for the experiment harness, figures and reporting."""

from pathlib import Path

import numpy as np
import pytest

from repro.experiments import (
    DEFAULTS,
    FIGURES,
    ExperimentSettings,
    figure_cells,
    render_table,
    run_synthetic_cell,
    summarise_gain,
    write_csv,
)
from repro.experiments.harness import run_cell
from repro.data import city_problem

FAST = ExperimentSettings(seeds=2, n_tuples=120, max_pulls=300)


class TestSettings:
    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentSettings(seeds=0)
        with pytest.raises(ValueError):
            ExperimentSettings(n_tuples=0)

    def test_defaults_match_table2(self):
        assert DEFAULTS == {
            "k": 10,
            "dims": 2,
            "density": 50.0,
            "skew": 1.0,
            "n_relations": 2,
        }


class TestRunCell:
    def test_cell_contains_all_algorithms_and_seeds(self):
        cell = run_synthetic_cell(
            "test", k=3, n_relations=2, dims=2, density=30.0, skew=1.0,
            settings=FAST,
        )
        assert cell.algorithms() == ["CBRR", "CBPA", "TBRR", "TBPA"]
        assert len(cell.measurements) == 4 * FAST.seeds

    def test_means_are_finite(self):
        cell = run_synthetic_cell(
            "test", k=3, n_relations=2, dims=2, density=30.0, skew=1.0,
            settings=FAST,
        )
        for algo in cell.algorithms():
            assert np.isfinite(cell.mean_sum_depths(algo))
            assert cell.mean_total_seconds(algo) > 0
            assert cell.mean_combinations(algo) > 0

    def test_tight_beats_corner_on_io(self):
        cell = run_synthetic_cell(
            "test", k=5, n_relations=2, dims=2, density=50.0, skew=1.0,
            settings=ExperimentSettings(seeds=3, n_tuples=200),
        )
        assert cell.mean_sum_depths("TBPA") < cell.mean_sum_depths("CBPA")

    def test_algorithm_subset(self):
        cell = run_synthetic_cell(
            "test", k=3, n_relations=2, dims=2, density=30.0, skew=1.0,
            settings=FAST, algorithms=("TBRR", "TBPA"),
        )
        assert cell.algorithms() == ["TBRR", "TBPA"]

    def test_city_cell(self):
        cell = run_cell("SF", [city_problem("SF")], k=5, settings=FAST)
        assert len(cell.measurements) == 4


class TestFigureRegistry:
    def test_all_fourteen_figures_defined(self):
        assert sorted(FIGURES) == [f"fig3{c}" for c in "abcdefghijklmn"]

    def test_unknown_figure(self):
        with pytest.raises(KeyError):
            figure_cells("fig9z", FAST)

    def test_shared_sweeps_cached(self):
        cache = {}
        a = figure_cells("fig3a", FAST, cache)
        d = figure_cells("fig3d", FAST, cache)
        assert a is d  # one sweep backs both the I/O and the CPU figure

    def test_dominance_figures_only_tight_algorithms(self):
        tiny = ExperimentSettings(seeds=1, n_tuples=100, max_pulls=150)
        cells = figure_cells("fig3m", tiny)
        assert len(cells) == 7  # periods 1,2,4,8,12,16,inf
        assert cells[0].algorithms() == ["TBRR", "TBPA"]


class TestReporting:
    def _cells(self):
        return [
            run_synthetic_cell(
                "K=2", k=2, n_relations=2, dims=2, density=30.0, skew=1.0,
                settings=FAST,
            )
        ]

    def test_render_sumdepths(self):
        out = render_table(self._cells(), "sumDepths", title="demo")
        assert "demo" in out
        assert "TBPA" in out
        assert "K=2" in out

    def test_render_cpu(self):
        out = render_table(self._cells(), "cpu")
        assert "CBRR" in out

    def test_render_cpu_split(self):
        cells = [
            run_synthetic_cell(
                "p=4", k=2, n_relations=2, dims=2, density=30.0, skew=1.0,
                settings=FAST, dominance_period=4, algorithms=("TBRR",),
            )
        ]
        out = render_table(cells, "cpu_split")
        assert ":bound" in out and ":dom" in out

    def test_render_unknown_metric(self):
        with pytest.raises(ValueError):
            render_table(self._cells(), "nope")

    def test_render_empty(self):
        assert "no data" in render_table([], "cpu")

    def test_write_csv(self, tmp_path: Path):
        path = tmp_path / "out" / "fig.csv"
        write_csv(self._cells(), path)
        text = path.read_text()
        assert "mean_sum_depths" in text
        assert "TBPA" in text

    def test_summarise_gain_positive_for_tight(self):
        gains = summarise_gain(self._cells(), "TBPA", "CBPA")
        assert len(gains) == 1
        assert gains[0] > -0.5  # sanity: a ratio, not garbage


class TestCLI:
    def test_list_command(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig3a" in out and "fig3n" in out

    def test_run_requires_figure_or_all(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["run"]) == 2

    def test_run_single_figure(self, capsys, tmp_path, monkeypatch):
        from repro.experiments import __main__ as cli
        from repro.experiments import config as cfg

        # Shrink the workload through the settings object the CLI builds.
        orig = cfg.ExperimentSettings

        def small_settings(**kwargs):
            kwargs["n_tuples"] = 100
            return orig(**kwargs)

        monkeypatch.setattr(cli, "ExperimentSettings", small_settings)
        assert cli.main(
            ["run", "--figure", "fig3i", "--seeds", "1", "--out", str(tmp_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "fig3i" in out
        assert (tmp_path / "fig3i.csv").exists()
