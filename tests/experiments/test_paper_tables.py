"""The regenerated Tables 1 and 3 must contain the paper's exact values."""

import pytest

from repro.experiments.paper_tables import paper_instance, render_table1, render_table3


class TestPaperTables:
    def test_instance_shape(self):
        relations = paper_instance()
        assert [r.name for r in relations] == ["R1", "R2", "R3"]
        assert all(len(r) == 2 for r in relations)

    def test_table1_values_and_order(self):
        text = render_table1()
        for value in ["-7.0", "-8.4", "-13.9", "-16.3", "-21.0", "-22.6", "-28.9", "-29.5"]:
            assert value in text
        # Order: the -7.0 row first.
        lines = [l for l in text.splitlines() if " x " in l]
        assert lines[0].endswith("-7.0")
        assert lines[-1].endswith("-29.5")

    def test_table3_values(self):
        text = render_table3()
        for value in ["-19.2", "-12.8", "-13.5", "-7.0", "-16.0", "-24.0", "-26.8"]:
            assert value in text
        assert "Tight bound t = -7.0" in text

    def test_cli_commands(self, capsys):
        from repro.experiments.__main__ import main

        assert main(["table1"]) == 0
        assert "-29.5" in capsys.readouterr().out
        assert main(["table3"]) == 0
        assert "-7.0" in capsys.readouterr().out
