"""Tests for the ASCII bar-chart renderer."""

import pytest

from repro.experiments.harness import CellResult, Measurement
from repro.experiments.report import render_bars


def cell(label, depths_by_algo):
    c = CellResult(label=label)
    for algo, depth in depths_by_algo.items():
        c.measurements.append(
            Measurement(
                algorithm=algo,
                sum_depths=depth,
                depths=(depth // 2, depth - depth // 2),
                total_seconds=depth / 100.0,
                bound_seconds=0.0,
                dominance_seconds=0.0,
                combinations_formed=depth * depth,
                completed=True,
            )
        )
    return c


class TestRenderBars:
    def test_empty(self):
        assert "no data" in render_bars([], "sumDepths")

    def test_unknown_metric(self):
        with pytest.raises(ValueError):
            render_bars([cell("x", {"TBPA": 10})], "nope")

    def test_bars_scale_to_peak(self):
        cells = [cell("K=1", {"CBRR": 100, "TBPA": 50})]
        out = render_bars(cells, "sumDepths", width=40)
        lines = out.splitlines()
        cbrr = next(l for l in lines if "CBRR" in l)
        tbpa = next(l for l in lines if "TBPA" in l)
        assert cbrr.count("#") == 40
        assert tbpa.count("#") == 20

    def test_title_and_units(self):
        out = render_bars([cell("p", {"TBPA": 10})], "cpu", title="demo")
        assert out.startswith("demo")
        assert " s" in out

    def test_sumdepths_units(self):
        out = render_bars([cell("p", {"TBPA": 10})], "sumDepths")
        assert "tuples" in out

    def test_multiple_cells_grouped(self):
        cells = [cell("K=1", {"TBPA": 10}), cell("K=10", {"TBPA": 30})]
        out = render_bars(cells, "sumDepths")
        assert out.index("K=1") < out.index("K=10")
