"""Tests for the two-phase simplex and the dominance feasibility test."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.optim import (
    LPStatus,
    chebyshev_center,
    polyhedron_is_empty,
    simplex_standard_form,
    solve_lp,
)

coef = st.floats(min_value=-5.0, max_value=5.0, allow_nan=False, allow_infinity=False)


class TestStandardForm:
    def test_textbook_optimum(self):
        # max 3x + 2y s.t. x + y <= 4, x + 3y <= 6, x,y >= 0  -> (4, 0), 12
        a = np.array([[1.0, 1.0, 1.0, 0.0], [1.0, 3.0, 0.0, 1.0]])
        b = np.array([4.0, 6.0])
        c = np.array([-3.0, -2.0, 0.0, 0.0])
        res = simplex_standard_form(a, b, c)
        assert res.status is LPStatus.OPTIMAL
        assert res.value == pytest.approx(-12.0)
        np.testing.assert_allclose(res.x[:2], [4.0, 0.0], atol=1e-9)

    def test_infeasible(self):
        # x = -1 with x >= 0 is infeasible.
        res = simplex_standard_form([[1.0]], [-1.0], [0.0])
        assert res.status is LPStatus.INFEASIBLE

    def test_unbounded(self):
        # min -x s.t. x - s = 0  (x free upward)
        res = simplex_standard_form([[1.0, -1.0]], [0.0], [-1.0, 0.0])
        assert res.status is LPStatus.UNBOUNDED

    def test_negative_rhs_normalisation(self):
        # -x = -3, x >= 0 -> x = 3.
        res = simplex_standard_form([[-1.0]], [-3.0], [1.0])
        assert res.status is LPStatus.OPTIMAL
        assert res.x[0] == pytest.approx(3.0)

    def test_degenerate_redundant_rows(self):
        a = np.array([[1.0, 1.0], [2.0, 2.0]])
        b = np.array([2.0, 4.0])
        c = np.array([1.0, 0.0])
        res = simplex_standard_form(a, b, c)
        assert res.status is LPStatus.OPTIMAL
        assert res.value == pytest.approx(0.0)

    def test_dimension_mismatch(self):
        with pytest.raises(ValueError):
            simplex_standard_form([[1.0]], [1.0, 2.0], [1.0])


class TestSolveLPFreeVars:
    def test_free_variable_optimum_negative(self):
        # min x s.t. x >= -5 (i.e. -x <= 5) -> x = -5.
        res = solve_lp([1.0], [[-1.0]], [5.0])
        assert res.status is LPStatus.OPTIMAL
        assert res.x[0] == pytest.approx(-5.0)

    def test_two_dim_box(self):
        # min -x - y over the unit box.
        a = np.array([[1.0, 0.0], [0.0, 1.0], [-1.0, 0.0], [0.0, -1.0]])
        b = np.array([1.0, 1.0, 0.0, 0.0])
        res = solve_lp([-1.0, -1.0], a, b)
        assert res.value == pytest.approx(-2.0)

    def test_unbounded_detection(self):
        res = solve_lp([-1.0], [[-1.0]], [0.0])
        assert res.status is LPStatus.UNBOUNDED

    @pytest.mark.parametrize("seed", range(8))
    def test_against_scipy_linprog(self, seed):
        scipy_opt = pytest.importorskip("scipy.optimize")
        rng = np.random.default_rng(seed)
        n, m = 3, 6
        a = rng.normal(size=(m, n))
        x0 = rng.normal(size=n)
        b = a @ x0 + abs(rng.normal(size=m)) + 0.5  # feasible by construction
        c = rng.normal(size=n)
        # Keep bounded by boxing the variables.
        a_full = np.vstack([a, np.eye(n), -np.eye(n)])
        b_full = np.concatenate([b, np.full(n, 50.0), np.full(n, 50.0)])
        res = solve_lp(c, a_full, b_full)
        ref = scipy_opt.linprog(c, A_ub=a_full, b_ub=b_full, bounds=(None, None))
        assert res.status is LPStatus.OPTIMAL
        assert res.value == pytest.approx(float(ref.fun), abs=1e-6)


class TestChebyshevAndEmptiness:
    def test_unit_box_center(self):
        g = np.array([[1.0, 0.0], [-1.0, 0.0], [0.0, 1.0], [0.0, -1.0]])
        h = np.array([1.0, 1.0, 1.0, 1.0])
        center, radius = chebyshev_center(g, h)
        np.testing.assert_allclose(center, [0.0, 0.0], atol=1e-8)
        assert radius == pytest.approx(1.0)

    def test_empty_region_negative_radius(self):
        # x <= 0 and x >= 1.
        g = np.array([[1.0], [-1.0]])
        h = np.array([0.0, -1.0])
        _, radius = chebyshev_center(g, h)
        assert radius == pytest.approx(-0.5)

    def test_halfspace_unbounded_radius_capped(self):
        _, radius = chebyshev_center(np.array([[1.0, 0.0]]), np.array([0.0]))
        assert radius == pytest.approx(1e3)

    def test_zero_row_feasible(self):
        g = np.array([[0.0, 0.0], [1.0, 0.0]])
        h = np.array([1.0, 2.0])
        _, radius = chebyshev_center(g, h)
        assert radius > 0

    def test_zero_row_infeasible(self):
        g = np.array([[0.0, 0.0]])
        h = np.array([-1.0])
        assert polyhedron_is_empty(g, h)

    def test_emptiness_decisions(self):
        assert polyhedron_is_empty([[1.0], [-1.0]], [0.0, -1.0])
        assert not polyhedron_is_empty([[1.0], [-1.0]], [1.0, 0.0])

    def test_thin_region_kept(self):
        # A region that is a single point (x <= 0, x >= 0) is not
        # "robustly empty": pruning must keep it.
        assert not polyhedron_is_empty([[1.0], [-1.0]], [0.0, 0.0])

    @settings(max_examples=50, deadline=None)
    @given(st.integers(2, 4), st.integers(3, 8), st.randoms(use_true_random=False))
    def test_never_reports_feasible_region_empty(self, d, m, rnd):
        """Soundness: if we can exhibit an interior point, the test must
        never claim emptiness (dominance pruning correctness depends on
        this one-sided guarantee)."""
        rng = np.random.default_rng(rnd.randint(0, 2**32 - 1))
        g = rng.normal(size=(m, d))
        y0 = rng.normal(size=d)
        h = g @ y0 + abs(rng.normal(size=m)) + 0.05
        assert not polyhedron_is_empty(g, h)
