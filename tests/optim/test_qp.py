"""Tests for the active-set QP solver against analytic and scipy references."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.optim import solve_bound_qp, solve_qp, spread_matrix

weights = st.floats(min_value=0.1, max_value=10.0, allow_nan=False)


class TestSpreadMatrix:
    def test_structure(self):
        h = spread_matrix(3, w_q=1.0, w_mu=1.0)
        a = np.eye(3) - np.ones((3, 3)) / 3
        np.testing.assert_allclose(h, np.eye(3) + a.T @ a, atol=1e-12)

    def test_positive_definite_when_wq_positive(self):
        h = spread_matrix(4, w_q=0.5, w_mu=2.0)
        assert np.linalg.eigvalsh(h).min() > 0

    def test_singular_when_wq_zero(self):
        h = spread_matrix(4, w_q=0.0, w_mu=2.0)
        eig = np.linalg.eigvalsh(h)
        assert eig.min() == pytest.approx(0.0, abs=1e-10)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            spread_matrix(0, 1.0, 1.0)
        with pytest.raises(ValueError):
            spread_matrix(2, -1.0, 1.0)


class TestBoundQP:
    def test_all_fixed(self):
        h = spread_matrix(2, 1.0, 1.0)
        res = solve_bound_qp(h, fixed={0: 1.0, 1: 2.0}, lower={})
        np.testing.assert_allclose(res.x, [1.0, 2.0])
        theta = np.array([1.0, 2.0])
        assert res.value == pytest.approx(float(theta @ h @ theta))

    def test_unconstrained_free_goes_to_zero(self):
        h = spread_matrix(2, 1.0, 1.0)
        res = solve_bound_qp(h, fixed={}, lower={})
        np.testing.assert_allclose(res.x, [0.0, 0.0], atol=1e-10)

    def test_active_bound(self):
        # min theta' I theta with theta0 >= 3 -> theta0 = 3.
        res = solve_bound_qp(np.eye(2), fixed={}, lower={0: 3.0})
        assert res.x[0] == pytest.approx(3.0)
        assert res.x[1] == pytest.approx(0.0, abs=1e-10)
        assert res.active == (0,)

    def test_inactive_bound(self):
        res = solve_bound_qp(np.eye(2), fixed={}, lower={0: -3.0})
        np.testing.assert_allclose(res.x, [0.0, 0.0], atol=1e-10)
        assert res.active == ()

    def test_overlapping_fixed_lower_raises(self):
        with pytest.raises(ValueError, match="disjoint"):
            solve_bound_qp(np.eye(2), fixed={0: 1.0}, lower={0: 0.0})

    def test_out_of_range_index_raises(self):
        with pytest.raises(ValueError, match="out of range"):
            solve_bound_qp(np.eye(2), fixed={5: 1.0}, lower={})

    def test_paper_empty_set_example(self):
        # Table 3, M = {} row: n=3, w_q = w_mu = 1, bounds 1, 2sqrt2, 2sqrt2;
        # optimal value of the quadratic part is ~19.199 (see DESIGN.md).
        h = spread_matrix(3, 1.0, 1.0)
        res = solve_bound_qp(
            h, fixed={}, lower={0: 1.0, 1: 2 * np.sqrt(2), 2: 2 * np.sqrt(2)}
        )
        assert res.x[0] == pytest.approx(0.8 * np.sqrt(2), abs=1e-6)
        assert res.value == pytest.approx(19.2, abs=1e-9)

    def test_interaction_pushes_free_var_up(self):
        # With a big spread penalty the free variable is pulled towards the
        # fixed one rather than to zero.
        h = spread_matrix(2, w_q=0.1, w_mu=10.0)
        res = solve_bound_qp(h, fixed={0: 4.0}, lower={1: 0.0})
        assert res.x[1] > 3.0

    def test_linear_term(self):
        # min x^2 + c x over x >= 0 with c = -4 -> x = 2.
        res = solve_bound_qp(np.eye(1), fixed={}, lower={0: 0.0}, linear=[-4.0])
        assert res.x[0] == pytest.approx(2.0)
        assert res.value == pytest.approx(-4.0)

    def test_constant_term_propagates(self):
        res = solve_bound_qp(np.eye(1), fixed={0: 1.0}, lower={}, constant=7.0)
        assert res.value == pytest.approx(8.0)

    def test_psd_singular_hessian(self):
        # w_q = 0 leaves a flat direction along 1; solver must not blow up.
        h = spread_matrix(2, w_q=0.0, w_mu=1.0)
        res = solve_bound_qp(h, fixed={}, lower={0: 1.0, 1: 1.0})
        assert res.value == pytest.approx(0.0, abs=1e-8)

    @settings(max_examples=100, deadline=None)
    @given(
        st.integers(2, 5),
        st.integers(0, 4),
        weights,
        weights,
        st.randoms(use_true_random=False),
    )
    def test_kkt_and_grid_optimality(self, n, m, w_q, w_mu, rnd):
        """Random instances: solution is feasible, satisfies KKT, and beats
        a sampled cloud of feasible points."""
        m = min(m, n - 1)
        rng = np.random.default_rng(rnd.randint(0, 2**32 - 1))
        h = spread_matrix(n, w_q, w_mu)
        fixed = {i: float(rng.normal()) for i in range(m)}
        lower = {i: float(abs(rng.normal())) for i in range(m, n)}
        res = solve_bound_qp(h, fixed=fixed, lower=lower)
        for i, v in fixed.items():
            assert res.x[i] == pytest.approx(v)
        for i, l in lower.items():
            assert res.x[i] >= l - 1e-8
        # Sampled optimality check.
        for _ in range(30):
            cand = res.x.copy()
            for i in lower:
                cand[i] = lower[i] + abs(rng.normal(scale=2.0))
            assert res.value <= float(cand @ h @ cand) + 1e-7


class TestGenericQP:
    def test_unconstrained(self):
        q = 2 * np.eye(2)
        c = np.array([-2.0, -4.0])
        res = solve_qp(q, c)
        np.testing.assert_allclose(res.x, [1.0, 2.0], atol=1e-9)

    def test_single_active_constraint(self):
        # min (x-2)^2 s.t. x <= 1  ->  x = 1
        res = solve_qp(np.array([[2.0]]), np.array([-4.0]), [[1.0]], [1.0])
        assert res.x[0] == pytest.approx(1.0)

    def test_matches_bound_qp(self):
        rng = np.random.default_rng(3)
        h = spread_matrix(3, 1.0, 1.0)
        lower = {0: 1.0, 1: 0.5, 2: 2.0}
        res_b = solve_bound_qp(h, fixed={}, lower=lower)
        # Rewrite as generic problem: min theta' H theta s.t. -theta <= -l.
        res_g = solve_qp(
            2 * h,
            np.zeros(3),
            -np.eye(3),
            -np.array([1.0, 0.5, 2.0]),
            x0=np.array([2.0, 2.0, 3.0]),
        )
        np.testing.assert_allclose(res_b.x, res_g.x, atol=1e-6)

    def test_infeasible_x0_raises(self):
        with pytest.raises(ValueError, match="infeasible"):
            solve_qp(np.eye(1), np.zeros(1), [[1.0]], [0.0], x0=np.array([5.0]))

    @pytest.mark.parametrize("seed", range(5))
    def test_against_scipy(self, seed):
        scipy_opt = pytest.importorskip("scipy.optimize")
        rng = np.random.default_rng(seed)
        n = 3
        sq = rng.normal(size=(n, n))
        q = sq @ sq.T + n * np.eye(n)
        c = rng.normal(size=n)
        a = rng.normal(size=(4, n))
        x_feas = rng.normal(size=n)
        b = a @ x_feas + abs(rng.normal(size=4)) + 0.1
        res = solve_qp(q, c, a, b, x0=x_feas)
        ref = scipy_opt.minimize(
            lambda x: 0.5 * x @ q @ x + c @ x,
            x_feas,
            constraints=[{"type": "ineq", "fun": lambda x: b - a @ x}],
            method="SLSQP",
        )
        assert res.value == pytest.approx(float(ref.fun), abs=1e-5)
